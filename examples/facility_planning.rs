//! Facility planning with obstructed joins and closest pairs:
//!
//! * an **e-distance join** pairs every household with every pharmacy
//!   within actual walking distance (streets as obstacles),
//! * a **closest-pair** query sites an ambulance post: which
//!   (station, hospital) pair is genuinely closest on foot,
//! * the **incremental** variant answers the paper's "complex query"
//!   pattern — keep browsing pairs until one satisfies a predicate.
//!
//! ```sh
//! cargo run --release --example facility_planning
//! ```

use obstacle_suite::datagen::{sample_entities, City, CityConfig};
use obstacle_suite::queries::{
    closest_pairs, distance_join, incremental_closest_pairs, EngineOptions, EntityIndex,
    ObstacleIndex,
};
use obstacle_suite::rtree::RTreeConfig;

fn main() {
    let city = City::generate(CityConfig::new(1_500, 21));
    let households = sample_entities(&city, 400, 10);
    let pharmacies = sample_entities(&city, 25, 20);
    let hh = EntityIndex::bulk_load(RTreeConfig::default(), households);
    let ph = EntityIndex::bulk_load(RTreeConfig::default(), pharmacies);
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::default(), city.obstacles.clone());

    // 1. Households with a pharmacy within 0.05 walking distance.
    let e = 0.05;
    let join = distance_join(&hh, &ph, &obstacles, e, EngineOptions::default());
    let served: std::collections::HashSet<u64> = join.pairs.iter().map(|(h, _, _)| *h).collect();
    println!(
        "walking-coverage join (e = {e}): {} household-pharmacy pairs, {} of {} households served",
        join.pairs.len(),
        served.len(),
        hh.len()
    );
    println!(
        "  candidates (Euclidean) {}, false hits {} ({:.1}%)",
        join.stats.candidates,
        join.stats.false_hits,
        100.0 * join.stats.false_hit_ratio()
    );

    // 2. Best ambulance pairing: closest (station, hospital) pair on foot.
    let stations = EntityIndex::bulk_load(RTreeConfig::default(), sample_entities(&city, 12, 30));
    let hospitals = EntityIndex::bulk_load(RTreeConfig::default(), sample_entities(&city, 6, 40));
    let cp = closest_pairs(
        &stations,
        &hospitals,
        &obstacles,
        3,
        EngineOptions::default(),
    );
    println!("\ntop-3 station/hospital pairs by walking distance:");
    for (s, h, d) in &cp.pairs {
        let euclid = stations.position(*s).dist(hospitals.position(*h));
        println!("  station {s} <-> hospital {h}: obstructed {d:.4} (Euclidean {euclid:.4})");
    }

    // 3. Incremental browsing with a predicate: find the closest pair
    //    whose station id is even (the paper's "closest city with more
    //    than 1M residents" pattern — the top-1 pair may not qualify, so
    //    a batch OCP with fixed k cannot answer it).
    let hit =
        incremental_closest_pairs(&stations, &hospitals, &obstacles, EngineOptions::default())
            .find(|(s, _, _)| s % 2 == 0);
    match hit {
        Some((s, h, d)) => println!(
            "\nfirst qualifying pair while browsing: station {s} <-> hospital {h} at {d:.4}"
        ),
        None => println!("\nno qualifying pair exists"),
    }
}
