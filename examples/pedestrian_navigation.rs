//! The paper's Fig. 1 scenario at city scale: a pedestrian looking for
//! the closest restaurant, where buildings make the Euclidean nearest
//! neighbour the wrong answer.
//!
//! ```sh
//! cargo run --release --example pedestrian_navigation
//! ```

use obstacle_suite::datagen::{query_workload, sample_entities, City, CityConfig};
use obstacle_suite::queries::{
    close_rel, compute_obstructed_path, EntityIndex, LocalGraph, ObstacleIndex, QueryEngine,
};
use obstacle_suite::rtree::RTreeConfig;
use obstacle_suite::visibility::EdgeBuilder;

fn main() {
    // A small city with 2,000 buildings and 500 restaurants.
    let city = City::generate(CityConfig::new(2_000, 7));
    let restaurants = sample_entities(&city, 500, 1);
    let entities = EntityIndex::bulk_load(RTreeConfig::default(), restaurants);
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::default(), city.obstacles.clone());
    let engine = QueryEngine::new(&entities, &obstacles);

    let pedestrians = query_workload(&city, 5, 99);
    let mut disagreements = 0;
    for (i, q) in pedestrians.iter().enumerate() {
        // Euclidean nearest restaurant (what a naive app would return).
        let (euclid_item, euclid_d) = entities.tree().nearest(*q).next().unwrap();
        // Obstructed nearest restaurant (the paper's answer).
        let onn = engine.nearest(*q, 1);
        let (best_id, best_d) = onn.neighbors[0];

        println!("pedestrian {i} at {q}:");
        println!(
            "  Euclidean NN : restaurant {:<4} straight-line {:.4}",
            euclid_item.id, euclid_d
        );
        println!(
            "  obstructed NN: restaurant {:<4} walking dist  {:.4}",
            best_id, best_d
        );
        if euclid_item.id != best_id {
            disagreements += 1;
            println!("  -> the straight-line answer is wrong on foot!");
        }

        // Reconstruct and print the walking route to the true NN.
        let mut lg = LocalGraph::new(EdgeBuilder::RotationalSweep);
        let from = lg.add_waypoint(*q, u64::MAX);
        let to = lg.add_waypoint(entities.position(best_id), best_id);
        let path = compute_obstructed_path(&mut lg, from, to, &obstacles)
            .expect("restaurant is reachable");
        assert!(close_rel(path.distance, best_d));
        let corners = path.points.len().saturating_sub(2);
        println!(
            "  route: {} segment(s), {corners} corner(s) turned, length {:.4}\n",
            path.points.len() - 1,
            path.distance
        );
    }
    println!(
        "{disagreements}/{} pedestrians would be misdirected by Euclidean distance",
        pedestrians.len()
    );
}
