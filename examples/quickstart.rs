//! Quickstart: index a hand-made scene and run all four obstacle query
//! types.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use obstacle_suite::geom::{Point, Polygon, Rect};
use obstacle_suite::queries::{
    closest_pairs, distance_join, EngineOptions, EntityIndex, ObstacleIndex, QueryEngine,
};
use obstacle_suite::rtree::RTreeConfig;

fn main() {
    // Two buildings (obstacles) and a handful of cafés (entities).
    let obstacles = ObstacleIndex::build(
        RTreeConfig::default(),
        vec![
            Polygon::from_rect(Rect::from_coords(2.0, 1.0, 4.0, 3.0)), // block A
            Polygon::from_rect(Rect::from_coords(5.0, 2.0, 6.0, 6.0)), // block B
        ],
    );
    let cafes = vec![
        Point::new(4.5, 2.0), // 0: tucked between the blocks
        Point::new(1.0, 4.0), // 1: north-west, open approach
        Point::new(7.0, 4.0), // 2: east of block B
        Point::new(3.0, 0.5), // 3: south of block A
    ];
    let entities = EntityIndex::build(RTreeConfig::default(), cafes.clone());
    let engine = QueryEngine::new(&entities, &obstacles);

    let me = Point::new(1.0, 2.0);
    println!("standing at {me}, cafés at:");
    for (i, c) in cafes.iter().enumerate() {
        println!("  café {i}: {c}  (Euclidean {:.2})", me.dist(*c));
    }

    // 1. Obstructed nearest neighbour: who is actually closest on foot?
    let nn = engine.nearest(me, 2);
    println!("\nobstructed 2-NN:");
    for (id, d) in &nn.neighbors {
        println!("  café {id} at walking distance {d:.2}");
    }
    println!(
        "  ({} Euclidean candidates examined, {} false hits)",
        nn.stats.candidates, nn.stats.false_hits
    );

    // 2. Obstructed range: everything within 4 units of walking.
    let range = engine.range(me, 4.0);
    println!("\ncafés within walking distance 4.0:");
    for (id, d) in &range.hits {
        println!("  café {id} at {d:.2}");
    }

    // 3. e-distance join: café pairs within walking distance 3 of each
    //    other (self join — skip mirror and self pairs).
    let joined = distance_join(
        &entities,
        &entities,
        &obstacles,
        3.0,
        EngineOptions::default(),
    );
    println!("\ncafé pairs within walking distance 3.0:");
    for (a, b, d) in joined.pairs.iter().filter(|(a, b, _)| a < b) {
        println!("  café {a} and café {b}: {d:.2}");
    }

    // 4. Closest pair between the cafés and two kiosks.
    let kiosks = EntityIndex::build(
        RTreeConfig::default(),
        vec![Point::new(6.5, 1.0), Point::new(0.5, 6.0)],
    );
    let cp = closest_pairs(&entities, &kiosks, &obstacles, 1, EngineOptions::default());
    let (c, k, d) = cp.pairs[0];
    println!("\nclosest café/kiosk pair: café {c} and kiosk {k}, distance {d:.2}");

    // The disk cost model is visible on every query.
    println!(
        "\nlast query cost: {} entity-tree + {} obstacle-tree page accesses, {:?} CPU",
        cp.stats.entity_reads, cp.stats.obstacle_reads, cp.stats.cpu
    );
}
