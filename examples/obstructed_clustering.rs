//! Obstructed k-medoids clustering — the workload of El-Zawawy &
//! El-Sharkawi's *Clustering with Obstacles in Spatial Databases*, built
//! on the streaming batch engine.
//!
//! Points of interest are clustered under the **obstructed distance**
//! metric: two points on opposite sides of a wall belong to different
//! clusters even when they almost touch in Euclidean space. Each
//! iteration's assignment step is one batch of obstacle-NN probes
//! (every point against the current medoid set), issued through
//! `run_batch_streaming` with the **Hilbert schedule** — assignments are
//! consumed as workers finish them, and spatially adjacent probes run
//! back-to-back so each worker's scene cache stays warm. The example
//! also runs the first assignment batch under both schedules to show the
//! scene-cache hit-count gap the scheduler exists to create.
//!
//! ```sh
//! cargo run --release --example obstructed_clustering
//! ```

use obstacle_suite::datagen::{
    clustered_batch_workload, BatchMix, BatchQuery, City, CityConfig, ClusterSpec,
};
use obstacle_suite::geom::{hilbert_index_unit, Point};
use obstacle_suite::queries::{
    Answer, BatchOptions, EntityIndex, ObstacleIndex, Query, QueryEngine, Schedule,
};
use obstacle_suite::rtree::RTreeConfig;

const K: usize = 4;
const THREADS: usize = 2;
const MAX_ITERATIONS: usize = 6;

fn main() {
    let city = City::generate(CityConfig::new(400, 31));
    // Points of interest concentrate in districts — the input shape
    // clustering exists for. `clustered_batch_workload` already knows
    // how to generate it (hotspots following the obstacle distribution,
    // round-robin interleaved); an NN-only mix makes it a point source.
    let nn_only = BatchMix {
        range: 0,
        nearest: 1,
        distance_join: 0,
        semi_join: 0,
        closest_pairs: 0,
        path: 0,
    };
    let spec = ClusterSpec {
        clusters: 6,
        spread: 0.01,
    };
    let points: Vec<Point> = clustered_batch_workload(&city, 120, 17, nn_only, spec)
        .iter()
        .map(|q| match q {
            BatchQuery::Nearest { q, .. } => *q,
            _ => unreachable!("NN-only mix"),
        })
        .collect();
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::default(), city.obstacles.clone());
    println!(
        "obstructed {K}-medoids over {} points, {} obstacles",
        points.len(),
        obstacles.len()
    );

    // Initial medoids: Hilbert-order quantiles of the dataset — spread
    // across the city, deterministic, and cheap (no distance queries).
    let mut by_hilbert: Vec<usize> = (0..points.len()).collect();
    by_hilbert.sort_by_key(|&i| hilbert_index_unit(points[i], &city.universe));
    let mut medoids: Vec<usize> = (0..K)
        .map(|c| by_hilbert[(2 * c + 1) * points.len() / (2 * K)])
        .collect();

    let mut assignment = vec![0usize; points.len()];
    for iteration in 0..MAX_ITERATIONS {
        // ---- Assignment: one streaming batch of obstacle-NN probes
        // against an index of the K current medoids.
        let medoid_index = EntityIndex::build(
            RTreeConfig::default(),
            medoids.iter().map(|&m| points[m]).collect(),
        );
        let engine = QueryEngine::new(&medoid_index, &obstacles);
        let probes: Vec<Query> = points.iter().map(|&q| Query::Nearest { q, k: 1 }).collect();
        let options = BatchOptions::new(THREADS).schedule(Schedule::Hilbert);

        if iteration == 0 {
            // Same batch, both claim orders: the answers are identical
            // (the determinism contract), only the scene-cache economics
            // move. This is the knob the scheduling layer adds.
            for (name, schedule) in [
                ("input-order", Schedule::InputOrder),
                ("hilbert    ", Schedule::Hilbert),
            ] {
                let (_, stats) = engine
                    .batch(&probes)
                    .options(BatchOptions::new(THREADS).schedule(schedule))
                    .collect();
                println!(
                    "  schedule {name}: {} scene reuse(s), {} reset(s) across {} worker(s)",
                    stats.scene_reuses, stats.scene_resets, stats.workers
                );
            }
        }

        let mut cost = 0.0f64;
        let (moved, _stats) = engine.batch(&probes).options(options).stream(|stream| {
            // Assignments land while later probes are still running —
            // a real consumer would start updating cluster summaries
            // here instead of waiting for the barrier.
            let mut moved = 0usize;
            for (i, answer) in stream {
                let Answer::Nearest(nn) = answer else {
                    unreachable!("assignment batch is all NN probes")
                };
                // An empty answer means the probe can reach no medoid
                // (walled off); leave its previous assignment alone.
                let Some(&(medoid, d)) = nn.neighbors.first() else {
                    continue;
                };
                cost += d;
                if assignment[i] != medoid as usize {
                    assignment[i] = medoid as usize;
                    moved += 1;
                }
            }
            moved
        });
        println!("iteration {iteration}: total obstructed cost {cost:.4}, {moved} reassignment(s)");

        // ---- Update: each cluster's new medoid is the member nearest
        // (under d_O) to the cluster's Euclidean centroid — the cheap
        // medoid update of the obstructed-clustering line of work.
        let mut changed = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..points.len()).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let centroid = Point::new(
                members.iter().map(|&i| points[i].x).sum::<f64>() / members.len() as f64,
                members.iter().map(|&i| points[i].y).sum::<f64>() / members.len() as f64,
            );
            let member_index = EntityIndex::build(
                RTreeConfig::default(),
                members.iter().map(|&i| points[i]).collect(),
            );
            let member_engine = QueryEngine::new(&member_index, &obstacles);
            let nn = member_engine.nearest(centroid, 1);
            // A centroid can land inside an obstacle (members ringing a
            // block), where obstructed distances are undefined and the
            // answer is empty — keep the old medoid in that case.
            let Some(&(nn_id, _)) = nn.neighbors.first() else {
                continue;
            };
            let new_medoid = members[nn_id as usize];
            if new_medoid != *medoid {
                *medoid = new_medoid;
                changed = true;
            }
        }
        if !changed && moved == 0 {
            println!("converged after {} iteration(s)", iteration + 1);
            break;
        }
    }

    for c in 0..K {
        let size = assignment.iter().filter(|&&a| a == c).count();
        let m = points[medoids[c]];
        println!("cluster {c}: {size} point(s) around medoid {m}");
    }
}
