//! Moving query points — the future-work direction of §8, served live.
//!
//! A courier walks along a straight line through the city, and every
//! step submits its obstructed 3-NN probe to a resident
//! [`QueryService`](obstacle_suite::queries::QueryService) instead of
//! re-running a from-scratch batch per tick: the worker pool (and its
//! scene caches) stays up for the whole route, the client only streams
//! submissions and collects completions. Mid-route a building is
//! demolished through the same service (`apply_updates` races the
//! in-flight probes), and each completion's epoch stamp shows which
//! version of the city answered it.
//!
//! ```sh
//! cargo run --release --example moving_entity
//! ```

use obstacle_rtree::sync::Stopwatch;
use obstacle_suite::datagen::{sample_entities, City, CityConfig};
use obstacle_suite::geom::Point;
use obstacle_suite::queries::{
    Answer, EngineOptions, EntityIndex, ObstacleIndex, Outcome, Query, QueryEngine, QueryService,
    ServiceConfig, Update,
};
use obstacle_suite::rtree::RTreeConfig;
use std::collections::HashMap;

/// Per-tick result: the 3-NN (id, obstructed distance) list and the
/// obstacle epoch the answer was computed under.
type StepAnswer = (Vec<(u64, f64)>, u64);

fn main() {
    let city = City::generate(CityConfig::new(1_200, 5));
    let depots = sample_entities(&city, 150, 3);
    let entities = EntityIndex::bulk_load(RTreeConfig::default(), depots);
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::default(), city.obstacles.clone());

    // Route across the city.
    let start = Point::new(0.1, 0.15);
    let end = Point::new(0.9, 0.8);
    let steps = 24usize;
    let mid = start.lerp(end, 0.5);

    // The building that gets demolished mid-route: the obstacle whose
    // bounding-box centre is closest to the route midpoint.
    let (demolished, _) = obstacles
        .live_polygons()
        .map(|(id, p)| (id, p.bbox().center().dist(mid)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("the city has obstacles");

    let t0 = Stopwatch::start();
    println!("courier route: {start} -> {end} in {steps} steps, k = 3\n");
    let run = QueryService::run(
        entities,
        obstacles,
        EngineOptions::default(),
        ServiceConfig::default().workers(2).queue_depth(32),
        |svc| {
            let mut step_of: HashMap<u64, usize> = HashMap::new();
            for i in 0..=steps {
                let t = i as f64 / steps as f64;
                let pos = start.lerp(end, t);
                let ticket = svc
                    .submit(Query::Nearest { q: pos, k: 3 })
                    .expect("an open service with Block admission always admits");
                step_of.insert(ticket.detach(), i);
                if i == steps / 2 {
                    // Live edit racing the in-flight probes: ticks still
                    // queued may be answered by either city version.
                    let stats = svc.apply_updates(vec![Update::DeleteObstacle(demolished)]);
                    println!(
                        "[step {i}: demolished obstacle {demolished} (obstacle epoch -> {})]\n",
                        stats.obstacle_epoch
                    );
                }
            }
            // The route is submitted; collect one completion per tick.
            let mut per_step: Vec<Option<StepAnswer>> = vec![None; steps + 1];
            for _ in 0..step_of.len() {
                let c = svc.recv().expect("every tick completes");
                let step = step_of[&c.id];
                match c.outcome {
                    Outcome::Answered {
                        answer: Answer::Nearest(nn),
                        obstacle_epoch,
                        ..
                    } => per_step[step] = Some((nn.neighbors, obstacle_epoch)),
                    other => unreachable!("tick {step} came back as {other:?}"),
                }
            }
            (per_step, svc.stats().latency)
        },
    );

    let (per_step, latency) = run.output;
    let mut prev: Vec<u64> = Vec::new();
    let mut changes = 0;
    for (i, tick) in per_step.iter().enumerate() {
        let (neighbors, epoch) = tick.as_ref().expect("collected above");
        let ids: Vec<u64> = neighbors.iter().map(|(id, _)| *id).collect();
        if ids != prev {
            changes += 1;
            let dists: Vec<String> = neighbors
                .iter()
                .map(|(id, d)| format!("depot {id} @ {d:.4}"))
                .collect();
            let pos = start.lerp(end, i as f64 / steps as f64);
            println!("step {i:>2} ({pos}, city v{epoch}): {}", dists.join(", "));
            prev = ids;
        }
    }
    println!(
        "\n{changes} distinct 3-NN sets along the route; total time {:.1?} \
         (service p50 {:.2?} / p99 {:.2?} per probe)",
        t0.elapsed(),
        latency.p50(),
        latency.p99(),
    );

    // The service hands the (edited) indexes back, so the incremental
    // iterator still supports "keep going until satisfied" along the
    // route, e.g. the nearest depot beyond a minimum distance.
    let engine = QueryEngine::new(&run.entities, &run.obstacles);
    let min_d = 0.05;
    if let Some((id, d)) = engine.nearest_incremental(mid).find(|(_, d)| *d >= min_d) {
        println!("first depot at least {min_d} away from the midpoint: depot {id} at {d:.4}");
    }
}
