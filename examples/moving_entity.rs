//! Moving query points — the future-work direction of §8, built on the
//! primitives of this reproduction.
//!
//! A courier walks along a straight line through the city; at each step
//! we re-evaluate the obstructed 3-NN. The example contrasts re-running
//! the batch ONN per step with an incremental scan that reuses the
//! iterator machinery, and shows how often the answer set changes while
//! moving.
//!
//! ```sh
//! cargo run --release --example moving_entity
//! ```

use obstacle_rtree::sync::Stopwatch;
use obstacle_suite::datagen::{sample_entities, City, CityConfig};
use obstacle_suite::geom::Point;
use obstacle_suite::queries::{EntityIndex, ObstacleIndex, QueryEngine};
use obstacle_suite::rtree::RTreeConfig;

fn main() {
    let city = City::generate(CityConfig::new(1_200, 5));
    let depots = sample_entities(&city, 150, 3);
    let entities = EntityIndex::bulk_load(RTreeConfig::default(), depots);
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::default(), city.obstacles.clone());
    let engine = QueryEngine::new(&entities, &obstacles);

    // Route across the city.
    let start = Point::new(0.1, 0.15);
    let end = Point::new(0.9, 0.8);
    let steps = 24;

    let mut prev: Vec<u64> = Vec::new();
    let mut changes = 0;
    let t0 = Stopwatch::start();
    println!("courier route: {start} -> {end} in {steps} steps, k = 3\n");
    for i in 0..=steps {
        let t = i as f64 / steps as f64;
        let pos = start.lerp(end, t);
        let r = engine.nearest(pos, 3);
        let ids: Vec<u64> = r.neighbors.iter().map(|(id, _)| *id).collect();
        if ids != prev {
            changes += 1;
            let dists: Vec<String> = r
                .neighbors
                .iter()
                .map(|(id, d)| format!("depot {id} @ {d:.4}"))
                .collect();
            println!("step {i:>2} ({pos}): {}", dists.join(", "));
            prev = ids;
        }
    }
    println!(
        "\n{changes} distinct 3-NN sets along the route; total time {:.1?} \
         ({:.2?} per step)",
        t0.elapsed(),
        t0.elapsed() / (steps + 1)
    );

    // The incremental iterator supports "keep going until satisfied"
    // along the route, e.g. the nearest depot beyond a minimum distance.
    let mid = start.lerp(end, 0.5);
    let min_d = 0.05;
    if let Some((id, d)) = engine.nearest_incremental(mid).find(|(_, d)| *d >= min_d) {
        println!("first depot at least {min_d} away from the midpoint: depot {id} at {d:.4}");
    }
}
