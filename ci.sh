#!/usr/bin/env bash
# Tier-1 gate, fully offline: build every target in release mode, run the
# whole test suite, and verify formatting. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --all-targets (offline) =="
cargo build --release --all-targets --offline

echo "== cargo test -q (offline) =="
cargo test -q --offline

echo "== path-scaling wall-clock gate (release) =="
# Long obstructed paths must stay fast: corner-to-corner at |O| = 2000
# within 2 s (the pre-lazy-A* engine took ~21 s). Wall-clock gates are
# meaningless in debug builds, so this runs the release binary.
cargo test -q --offline --release -p obstacle-core --test path_scaling -- --ignored

echo "== batch-throughput smoke gate (release) =="
# The concurrent batch engine must produce results identical to the
# sequential loop at every thread count, and an 8-thread batch must beat
# 1 thread by >= 2x wherever >= 4 cores are available (the assertion
# degrades gracefully on core-starved CI runners — see the test header).
cargo test -q --offline --release -p obstacle-core --test batch_scaling -- --ignored --nocapture

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "ci.sh: all gates green"
