#!/usr/bin/env bash
# Tier-1 gate, fully offline: build every target in release mode, run the
# whole test suite, and verify formatting. Any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --all-targets (offline) =="
cargo build --release --all-targets --offline

echo "== cargo test -q (offline) =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "ci.sh: all gates green"
