#!/usr/bin/env bash
# Tier-1 gate, fully offline. Usage:
#
#   ./ci.sh                  # every stage, in order
#   ./ci.sh build test       # just those stages (debuggable in isolation)
#
# Stages:
#   build   release build of every target
#   test    full test suite (debug)
#   path    path-scaling wall-clock gate (release; see path_scaling.rs)
#   batch   batch-engine determinism + scaling gate (release)
#   updates interleaved update/query oracle suite: edits through
#           apply_updates must never leave a stale scene — every answer
#           bit-identical to a fresh-built engine (release)
#   serve   resident-service gate (release): the soak suite (concurrent
#           submitters x apply_updates on both backends, every answer
#           bit-identical to a sequential replay; exact admission
#           counts; ticket cancellation) plus an obstacle_cli serve
#           smoke run over both the stdin protocol and the open-loop
#           generator
#   bench   performance trajectory: runs the batch sweeps once per
#           storage backend (paged vs packed A/B), plus the interleaved
#           update/query sweep and the open-loop service saturation
#           sweep, writes BENCH_PR9.json,
#           diffs it per backend against the previous BENCH_*.json
#           artifact (q/s regression beyond tolerance or a service-p99
#           blowout fails), and enforces the path-ladder no-regression
#           budgets (release)
#   analyze in-tree static analysis: obstacle_lint must report the
#           workspace clean across all four invariant passes, and the
#           debug lock-order-cycle / held-lock-across-sweep checker
#           tests must pass
#   sanitize optional ThreadSanitizer smoke run of the sync-shim tests;
#           auto-skipped (with a message) when the toolchain lacks
#           -Zsanitizer support (stable rustc)
#   fmt     cargo fmt --check
#   clippy  cargo clippy --all-targets -D warnings
#
# Any failure fails the script; a per-stage timing summary prints at the
# end so slow gates are attributable.
set -euo pipefail
cd "$(dirname "$0")"

ALL_STAGES=(build test path batch updates serve bench analyze sanitize fmt clippy)
STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
  STAGES=("${ALL_STAGES[@]}")
fi

SUMMARY=()

stage_build() {
  cargo build --release --all-targets --offline
}

stage_test() {
  cargo test -q --offline
}

stage_path() {
  # Long obstructed paths must stay fast: corner-to-corner at |O| = 2000
  # within 2 s (the pre-lazy-A* engine took ~21 s). Wall-clock gates are
  # meaningless in debug builds, so this runs the release binary.
  cargo test -q --offline --release -p obstacle-core --test path_scaling -- --ignored
}

stage_batch() {
  # The concurrent batch engine must produce results identical to the
  # sequential loop at every thread count, and an 8-thread batch must
  # beat 1 thread by >= 2x wherever >= 4 cores are available (the
  # assertion degrades gracefully on core-starved CI runners — see the
  # test header).
  cargo test -q --offline --release -p obstacle-core --test batch_scaling -- --ignored --nocapture
}

stage_updates() {
  # Update/query interleaving correctness: insert/delete batches mixed
  # with all six operators (and the batch engine, both backends, both
  # schedules) must answer bit-identically to an engine freshly built
  # from the live data after every edit batch, through a scene cache
  # that survives every edit. Includes the stale-scene repro that fails
  # with epoch validation disabled.
  cargo test -q --offline --release -p obstacle-core --test updates_interleaved
}

stage_serve() {
  # The resident QueryService: soak + admission + cancellation suite in
  # release (the soak races submitter threads against edit batches), then
  # an end-to-end CLI smoke: the stdin line protocol must answer every
  # line, and the open-loop generator must sustain an offered load with
  # the bounded queue without wedging.
  cargo test -q --offline --release -p obstacle-core --test service
  local out
  out="$(printf 'nn 0.5 0.5 3\nrange 0.25 0.25 0.1\npath 0.1 0.1 0.9 0.9\n' | \
    cargo run -q --release --offline -p obstacle-bench --bin obstacle_cli -- \
    serve --obstacles 512 --entities 256 --threads 2 --depth 8)"
  echo "$out"
  echo "$out" | grep -q "answered in" || {
    echo "serve: stdin protocol produced no answers" >&2; exit 1;
  }
  echo "$out" | grep -q "3 submitted, 3 answered" || {
    echo "serve: expected 3/3 answered over stdin" >&2; exit 1;
  }
  out="$(cargo run -q --release --offline -p obstacle-bench --bin obstacle_cli -- \
    serve --obstacles 512 --entities 256 --threads 1 --depth 4 \
    --admission shed --generate 32 --rate 200)"
  echo "$out"
  echo "$out" | grep -q "completions/sec end to end" || {
    echo "serve: open-loop generator did not complete" >&2; exit 1;
  }
}

stage_bench() {
  # Records the per-PR performance trajectory (throughput + buffer hit
  # rates at 1/2/4/8 threads, InputOrder-vs-Hilbert scheduling on a
  # clustered workload, the interleaved update/query sweep, path-ladder
  # times) as machine-readable JSON,
  # then fails on a q/s regression against the previous BENCH_*.json
  # artifact (trajectory history) or a path-ladder budget blowout.
  local artifact="${OBSTACLE_TRAJECTORY_OUT:-BENCH_PR9.json}"
  cargo run -q --release --offline -p obstacle-bench --bin bench_trajectory
  if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$artifact"
    echo "$artifact: valid JSON"
  fi
}

stage_analyze() {
  # The in-tree linter (crates/lint) walks every workspace .rs file and
  # enforces the four invariant passes (tombstone-safety, nan-ordering,
  # no-unwrap-hot-path, lock-discipline); any violation fails the stage.
  cargo run -q --offline -p obstacle-lint --bin obstacle_lint
  # Lint-crate self tests: golden fixtures (each pass trips and passes
  # on its fixture pair) plus the live-workspace self-check.
  cargo test -q --offline -p obstacle-lint
  # Dynamic lock-discipline: the debug-build lock-order checker must
  # detect a deliberately inverted two-mutex acquisition and enforce the
  # no-lock-held-across-a-sweep assertion (debug build: the checker
  # compiles out of release).
  cargo test -q --offline -p obstacle-rtree --lib sync::
}

stage_sanitize() {
  # ThreadSanitizer smoke run over the sync shim's concurrency tests.
  # -Zsanitizer is nightly-only; probe for it and skip gracefully on a
  # stable toolchain rather than failing the gate.
  local target
  target="$(rustc -vV | sed -n 's/^host: //p')"
  if RUSTFLAGS="-Zsanitizer=thread" \
    cargo build -q --offline -p obstacle-rtree --target "$target" \
    >/dev/null 2>&1; then
    RUSTFLAGS="-Zsanitizer=thread" \
      cargo test -q --offline -p obstacle-rtree --lib --target "$target" sync::
  else
    echo "sanitize: toolchain lacks -Zsanitizer support; skipping (nightly-only)"
  fi
}

stage_fmt() {
  cargo fmt --all --check
}

stage_clippy() {
  cargo clippy --all-targets --offline -- -D warnings
}

# Validate every requested stage up front: a typo in the last argument
# must not cost a full release build first.
for s in "${STAGES[@]}"; do
  case "$s" in
    build|test|path|batch|updates|serve|bench|analyze|sanitize|fmt|clippy) ;;
    *)
      echo "ci.sh: unknown stage '$s' (stages: ${ALL_STAGES[*]})" >&2
      exit 2
      ;;
  esac
done

for s in "${STAGES[@]}"; do
  echo "== stage: $s =="
  t0=$SECONDS
  "stage_$s"
  SUMMARY+=("$(printf '%-7s %5ss' "$s" $((SECONDS - t0)))")
done

echo "== stage timings =="
for line in "${SUMMARY[@]}"; do
  echo "  $line"
done
echo "ci.sh: all requested gates green (${STAGES[*]})"
