//! Facade crate (`obstacle_suite`) for the obstacle spatial-query
//! reproduction (Zhang, Papadias, Mouratidis, Zhu — EDBT 2004).
//!
//! Re-exports the member crates under stable module names so examples,
//! integration tests and downstream users can depend on one crate,
//! `obstacle_suite` — note the underscore: there is no hyphenated
//! `obstacle-suite` package:
//!
//! * [`geom`] — geometry kernel (robust predicates, polygons, Hilbert curve),
//! * [`rtree`] — disk-model R*-tree with page-access accounting,
//! * [`visibility`] — dynamic local visibility graphs + shortest paths,
//! * [`queries`] — the paper's query processors (OR, ONN, ODJ, OCP, iOCP),
//! * [`datagen`] — synthetic city datasets and workloads.

pub use obstacle_core as queries;
pub use obstacle_datagen as datagen;
pub use obstacle_geom as geom;
pub use obstacle_rtree as rtree;
pub use obstacle_visibility as visibility;
