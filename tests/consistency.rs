//! Cross-operator consistency: the four query types plus their
//! incremental variants must tell one coherent story about the
//! obstructed distance metric.

use obstacle_suite::datagen::{query_workload, sample_entities, City, CityConfig};
use obstacle_suite::queries::compute_obstructed_distance;
use obstacle_suite::queries::{
    closest_pairs, distance_join, incremental_closest_pairs, EngineOptions, EntityIndex,
    LocalGraph, ObstacleIndex, QueryEngine,
};
use obstacle_suite::rtree::RTreeConfig;
use obstacle_suite::visibility::EdgeBuilder;

const TOL: f64 = 1e-9;

struct World {
    city: City,
    entities: EntityIndex,
    obstacles: ObstacleIndex,
}

fn world(seed: u64) -> World {
    let city = City::generate(CityConfig::new(40, seed));
    let pts = sample_entities(&city, 60, seed + 1);
    World {
        entities: EntityIndex::build(RTreeConfig::tiny(8), pts),
        obstacles: ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone()),
        city,
    }
}

fn pair_distance(
    w: &World,
    a: obstacle_suite::geom::Point,
    b: obstacle_suite::geom::Point,
) -> Option<f64> {
    let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
    let na = g.add_waypoint(a, 1);
    let nb = g.add_waypoint(b, 2);
    compute_obstructed_distance(&mut g, na, nb, &w.obstacles)
}

#[test]
fn obstructed_distance_is_a_metric_on_samples() {
    let w = world(1);
    let pts = sample_entities(&w.city, 8, 50);
    for i in 0..pts.len() {
        for j in 0..pts.len() {
            let dij = pair_distance(&w, pts[i], pts[j]).unwrap();
            // Symmetry.
            let dji = pair_distance(&w, pts[j], pts[i]).unwrap();
            assert!((dij - dji).abs() < TOL, "symmetry {i},{j}");
            // Identity and non-negativity.
            if i == j {
                assert_eq!(dij, 0.0);
            } else {
                assert!(dij >= pts[i].dist(pts[j]) - TOL, "Euclidean lower bound");
            }
        }
    }
    // Triangle inequality on a few triples.
    for (i, j, k) in [(0usize, 1usize, 2usize), (3, 4, 5), (1, 6, 7), (0, 4, 7)] {
        let dij = pair_distance(&w, pts[i], pts[j]).unwrap();
        let djk = pair_distance(&w, pts[j], pts[k]).unwrap();
        let dik = pair_distance(&w, pts[i], pts[k]).unwrap();
        assert!(dik <= dij + djk + TOL, "triangle {i},{j},{k}");
    }
}

#[test]
fn range_result_equals_nn_prefix_filter() {
    // OR(q, e) must equal the prefix of the incremental NN stream with
    // distance ≤ e.
    let w = world(2);
    let engine = QueryEngine::new(&w.entities, &w.obstacles);
    for q in query_workload(&w.city, 3, 60) {
        for e in [0.1, 0.25] {
            let range: Vec<(u64, f64)> = engine.range(q, e).hits;
            let stream: Vec<(u64, f64)> = engine
                .nearest_incremental(q)
                .take_while(|(_, d)| *d <= e)
                .collect();
            assert_eq!(range.len(), stream.len(), "q {q} e {e}");
            for (r, s) in range.iter().zip(stream.iter()) {
                assert!((r.1 - s.1).abs() < TOL);
            }
        }
    }
}

#[test]
fn nearest_k_is_prefix_of_nearest_k_plus_one() {
    let w = world(3);
    let engine = QueryEngine::new(&w.entities, &w.obstacles);
    let q = query_workload(&w.city, 1, 70)[0];
    let k5 = engine.nearest(q, 5).neighbors;
    let k9 = engine.nearest(q, 9).neighbors;
    for (a, b) in k5.iter().zip(k9.iter()) {
        assert!((a.1 - b.1).abs() < TOL);
    }
    // Distances ascend.
    for win in k9.windows(2) {
        assert!(win[0].1 <= win[1].1 + TOL);
    }
}

#[test]
fn join_is_symmetric_in_its_inputs() {
    let w = world(4);
    let city = &w.city;
    let s = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 30, 80));
    let t = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 25, 90));
    let e = 0.15;
    let ab = distance_join(&s, &t, &w.obstacles, e, EngineOptions::default());
    let ba = distance_join(&t, &s, &w.obstacles, e, EngineOptions::default());
    let mut x: Vec<(u64, u64)> = ab.pairs.iter().map(|(a, b, _)| (*a, *b)).collect();
    let mut y: Vec<(u64, u64)> = ba.pairs.iter().map(|(a, b, _)| (*b, *a)).collect();
    x.sort_unstable();
    y.sort_unstable();
    assert_eq!(x, y);
}

#[test]
fn join_pairs_match_pairwise_distances() {
    let w = world(5);
    let city = &w.city;
    let s = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 20, 100));
    let t = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 20, 110));
    let e = 0.12;
    let join = distance_join(&s, &t, &w.obstacles, e, EngineOptions::default());
    for (a, b, d) in &join.pairs {
        let check = pair_distance(&w, s.position(*a), t.position(*b)).unwrap();
        assert!((d - check).abs() < TOL);
        assert!(*d <= e + TOL);
    }
}

#[test]
fn closest_pairs_agree_with_join_at_matching_range() {
    // OCP's k-th distance defines a range; ODJ at that range must return
    // at least k pairs, and the k smallest must match.
    let w = world(6);
    let city = &w.city;
    let s = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 18, 120));
    let t = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 15, 130));
    let k = 6;
    let cp = closest_pairs(&s, &t, &w.obstacles, k, EngineOptions::default());
    assert_eq!(cp.pairs.len(), k);
    let kth = cp.pairs[k - 1].2;
    let join = distance_join(&s, &t, &w.obstacles, kth + 1e-9, EngineOptions::default());
    assert!(join.pairs.len() >= k);
    let mut join_d: Vec<f64> = join.pairs.iter().map(|(_, _, d)| *d).collect();
    join_d.sort_by(|a, b| obstacle_geom::total_cmp(*a, *b));
    for (i, (_, _, d)) in cp.pairs.iter().enumerate() {
        assert!((d - join_d[i]).abs() < TOL, "pair {i}");
    }
}

#[test]
fn iocp_prefix_equals_ocp_for_every_k() {
    let w = world(7);
    let city = &w.city;
    let s = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 12, 140));
    let t = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 10, 150));
    let stream: Vec<(u64, u64, f64)> =
        incremental_closest_pairs(&s, &t, &w.obstacles, EngineOptions::default())
            .take(10)
            .collect();
    for k in [1usize, 3, 7, 10] {
        let batch = closest_pairs(&s, &t, &w.obstacles, k, EngineOptions::default());
        assert_eq!(batch.pairs.len(), k);
        for (b, s) in batch.pairs.iter().zip(stream.iter()) {
            assert!((b.2 - s.2).abs() < TOL, "k {k}");
        }
    }
}

#[test]
fn semi_join_agrees_with_per_point_nearest() {
    use obstacle_suite::queries::{semi_join, SemiJoinStrategy};
    let w = world(9);
    let city = &w.city;
    let s = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 20, 170));
    let t = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(city, 15, 180));
    for strategy in [
        SemiJoinStrategy::PerObjectNn,
        SemiJoinStrategy::IncrementalClosestPairs,
    ] {
        let r = semi_join(&s, &t, &w.obstacles, strategy, EngineOptions::default());
        assert_eq!(r.pairs.len(), s.len());
        let engine = QueryEngine::new(&t, &w.obstacles);
        for (sid, tid, d) in &r.pairs {
            let nn = engine.nearest(s.position(*sid), 1);
            // Ties may pick a different id; the distance is unique.
            assert!(
                (nn.neighbors[0].1 - d).abs() < TOL,
                "{strategy:?} s{sid} t{tid}"
            );
        }
    }
}

#[test]
fn run_batch_is_thread_count_invariant() {
    // The batch engine's determinism contract: for every operator, the
    // answers of `run_batch` at any thread count are result-identical to
    // the sequential loop, and land at their input index.
    use obstacle_suite::queries::{Answer, Query, SemiJoinStrategy};
    let w = world(10);
    let engine = QueryEngine::new(&w.entities, &w.obstacles);

    let mut queries = vec![
        Query::DistanceJoin { e: 0.08 },
        Query::SemiJoin {
            strategy: SemiJoinStrategy::PerObjectNn,
        },
        Query::SemiJoin {
            strategy: SemiJoinStrategy::IncrementalClosestPairs,
        },
        Query::ClosestPairs { k: 5 },
    ];
    for (i, q) in query_workload(&w.city, 8, 200).into_iter().enumerate() {
        queries.push(Query::Range {
            q,
            e: 0.08 + 0.02 * i as f64,
        });
        queries.push(Query::Nearest { q, k: 1 + i });
    }
    for pair in query_workload(&w.city, 8, 300).chunks(2) {
        if let [a, b] = pair {
            queries.push(Query::Path { from: *a, to: *b });
        }
    }

    let sequential: Vec<Answer> = queries.iter().map(|q| engine.execute(q)).collect();
    // Sanity: the workload exercises non-trivial answers.
    assert!(sequential.iter().any(|a| a.result_count() > 0));
    for threads in [1usize, 2, 8] {
        let (parallel, _) = engine.batch(&queries).threads(threads).collect();
        assert_eq!(parallel.len(), sequential.len());
        for (i, (p, s)) in parallel.iter().zip(sequential.iter()).enumerate() {
            assert!(
                p.same_results(s),
                "query {i} diverged at {threads} threads: {p:?} vs {s:?}"
            );
        }
    }
}

#[test]
fn streaming_batches_match_run_batch_and_sequential_under_every_schedule() {
    // The streaming determinism contract: `run_batch_streaming` collected
    // and re-ordered equals `run_batch` equals the sequential loop, at
    // 1/2/4/8 threads × both schedules × all six operators. Scheduling
    // and streaming may change *when* a query runs — never its answer.
    use obstacle_suite::queries::{
        Answer, BatchOptions, Delivery, Query, Schedule, SemiJoinStrategy,
    };
    let w = world(11);
    let engine = QueryEngine::new(&w.entities, &w.obstacles);

    let mut queries = vec![
        Query::DistanceJoin { e: 0.07 },
        Query::SemiJoin {
            strategy: SemiJoinStrategy::PerObjectNn,
        },
        Query::ClosestPairs { k: 4 },
    ];
    for (i, q) in query_workload(&w.city, 6, 400).into_iter().enumerate() {
        queries.push(Query::Range {
            q,
            e: 0.06 + 0.02 * i as f64,
        });
        queries.push(Query::Nearest { q, k: 1 + i });
    }
    for pair in query_workload(&w.city, 6, 500).chunks(2) {
        if let [a, b] = pair {
            queries.push(Query::Path { from: *a, to: *b });
        }
    }

    let sequential: Vec<Answer> = queries.iter().map(|q| engine.execute(q)).collect();
    assert!(sequential.iter().any(|a| a.result_count() > 0));

    for threads in [1usize, 2, 4, 8] {
        let (batch, _) = engine.batch(&queries).threads(threads).collect();
        for (i, (p, s)) in batch.iter().zip(sequential.iter()).enumerate() {
            assert!(
                p.same_results(s),
                "run_batch query {i} diverged at {threads} threads"
            );
        }
        for schedule in [Schedule::InputOrder, Schedule::Hilbert] {
            let options = BatchOptions::new(threads).schedule(schedule);
            let (scheduled, _) = engine.batch(&queries).options(options).collect();
            let (mut streamed, _) = engine
                .batch(&queries)
                .options(options)
                .stream(|stream| stream.collect::<Vec<(usize, Answer)>>());
            streamed.sort_by_key(|(i, _)| *i);
            assert_eq!(streamed.len(), queries.len());
            for (i, ((idx, st), sq)) in streamed.iter().zip(sequential.iter()).enumerate() {
                assert_eq!(i, *idx, "stream lost or duplicated an index");
                assert!(
                    st.same_results(sq),
                    "streamed query {i} diverged at {threads} threads / {schedule:?}"
                );
                assert!(
                    st.same_results(&scheduled[i]),
                    "stream vs collected batch diverged at query {i}"
                );
            }
        }
        // In-order delivery under the Hilbert schedule: the re-order
        // buffer must emit exactly 0, 1, 2, … with unchanged answers.
        let options = BatchOptions::new(threads)
            .schedule(Schedule::Hilbert)
            .delivery(Delivery::InputOrder);
        let (in_order, _) = engine
            .batch(&queries)
            .options(options)
            .stream(|stream| stream.collect::<Vec<(usize, Answer)>>());
        for (i, (idx, a)) in in_order.iter().enumerate() {
            assert_eq!(i, *idx, "in-order delivery broke at {threads} threads");
            assert!(a.same_results(&sequential[i]));
        }
    }
}

#[test]
fn self_join_contains_every_point_with_itself() {
    let w = world(8);
    let pts = sample_entities(&w.city, 20, 160);
    let s = EntityIndex::build(RTreeConfig::tiny(8), pts);
    let join = distance_join(&s, &s, &w.obstacles, 0.0, EngineOptions::default());
    // d_O(x, x) = 0 ≤ 0 for all 20 points (plus any exact duplicates).
    assert!(join.pairs.len() >= 20);
    let self_pairs = join
        .pairs
        .iter()
        .filter(|(a, b, d)| a == b && *d == 0.0)
        .count();
    assert_eq!(self_pairs, 20);
}
