//! Cross-crate end-to-end tests through the `obstacle_suite` facade:
//! generated city → R*-trees → queries, plus persistence and failure
//! injection.

use obstacle_suite::datagen::{query_workload, sample_entities, City, CityConfig};
use obstacle_suite::geom::{Point, PointLocation, Polygon, Rect};
use obstacle_suite::queries::{BruteForce, EntityIndex, ObstacleIndex, QueryEngine};
use obstacle_suite::rtree::{Item, RTree, RTreeConfig, TreeBackend};

#[test]
fn full_pipeline_on_generated_city() {
    let city = City::generate(CityConfig::new(60, 77));
    let pts = sample_entities(&city, 80, 1);
    let entities = EntityIndex::build(RTreeConfig::tiny(8), pts.clone());
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
    let engine = QueryEngine::new(&entities, &obstacles);
    let oracle = BruteForce::new(city.obstacles.clone());

    for q in query_workload(&city, 4, 9) {
        let r = engine.range(q, 0.2);
        let expect = oracle.range(&pts, q, 0.2);
        assert_eq!(r.hits.len(), expect.len());
        let nn = engine.nearest(q, 5);
        let expect_nn = oracle.nearest(&pts, q, 5);
        for (g, x) in nn.neighbors.iter().zip(expect_nn.iter()) {
            assert!((g.1 - x.1).abs() < 1e-9);
        }
    }
}

#[test]
fn persisted_trees_answer_identically() {
    let city = City::generate(CityConfig::new(80, 5));
    let pts = sample_entities(&city, 300, 2);
    let tree = RTree::build(
        RTreeConfig::tiny(16),
        pts.iter()
            .enumerate()
            .map(|(i, &p)| Item::point(p, i as u64)),
    );
    let dir = std::env::temp_dir().join("obstacle_suite_e2e.ortr");
    tree.save_to_file(&dir).unwrap();
    let loaded = RTree::load_from_file(&dir).unwrap();
    std::fs::remove_file(&dir).ok();

    loaded.validate(true).unwrap();
    let q = Point::new(0.4, 0.4);
    let a: Vec<u64> = tree.k_nearest(q, 25).iter().map(|(i, _)| i.id).collect();
    let b: Vec<u64> = loaded.k_nearest(q, 25).iter().map(|(i, _)| i.id).collect();
    assert_eq!(a, b);
    let wa: Vec<u64> = tree.range_circle(q, 0.2).iter().map(|i| i.id).collect();
    let wb: Vec<u64> = loaded.range_circle(q, 0.2).iter().map(|i| i.id).collect();
    assert_eq!(wa, wb);
}

#[test]
fn failure_injection_minimal_buffer_and_capacity() {
    // Capacity-3 nodes and a single-page buffer: correctness must not
    // depend on the cost model.
    let city = City::generate(CityConfig::new(30, 3));
    let pts = sample_entities(&city, 50, 4);
    let config = RTreeConfig {
        capacity_override: Some(3),
        buffer_ratio: 0.0, // forced to min_buffer_pages
        min_buffer_pages: 1,
        ..RTreeConfig::default()
    };
    let entities = EntityIndex::build(config, pts.clone());
    let obstacles = ObstacleIndex::build(config, city.obstacles.clone());
    entities.tree().reset_buffer();
    obstacles.tree().reset_buffer();
    assert_eq!(entities.tree().buffer_capacity(), 1);

    let engine = QueryEngine::new(&entities, &obstacles);
    let oracle = BruteForce::new(city.obstacles.clone());
    let q = query_workload(&city, 1, 5)[0];
    let got = engine.nearest(q, 7);
    let expect = oracle.nearest(&pts, q, 7);
    assert_eq!(got.neighbors.len(), expect.len());
    for (g, x) in got.neighbors.iter().zip(expect.iter()) {
        assert!((g.1 - x.1).abs() < 1e-9);
    }
    // The tiny buffer must show in the I/O accounting (no free rides).
    assert!(got.stats.entity_reads + got.stats.obstacle_reads > 0);
}

#[test]
fn degenerate_scene_entities_on_corners_and_walls() {
    // Entities placed exactly on obstacle corners and edges; queries from
    // wall positions. Distances must match the oracle exactly.
    let obstacles_vec = vec![
        Polygon::from_rect(Rect::from_coords(0.3, 0.3, 0.5, 0.5)),
        Polygon::from_rect(Rect::from_coords(0.6, 0.3, 0.8, 0.7)),
    ];
    let pts = vec![
        Point::new(0.3, 0.3),  // corner of obstacle 0
        Point::new(0.4, 0.5),  // mid top wall of obstacle 0
        Point::new(0.6, 0.5),  // left wall of obstacle 1
        Point::new(0.55, 0.4), // in the corridor between them
    ];
    let entities = EntityIndex::build(RTreeConfig::tiny(4), pts.clone());
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), obstacles_vec.clone());
    let engine = QueryEngine::new(&entities, &obstacles);
    let oracle = BruteForce::new(obstacles_vec);

    for q in [
        Point::new(0.2, 0.2),
        Point::new(0.5, 0.3), // on a corner itself
        Point::new(0.55, 0.6),
    ] {
        let got = engine.nearest(q, 4);
        let expect = oracle.nearest(&pts, q, 4);
        assert_eq!(got.neighbors.len(), expect.len(), "q = {q}");
        for (g, x) in got.neighbors.iter().zip(expect.iter()) {
            assert!(
                (g.1 - x.1).abs() < 1e-9,
                "q = {q}: {got:?} vs {expect:?}",
                got = got.neighbors,
                expect = expect
            );
        }
    }
}

#[test]
fn query_surrounded_by_obstacles_sees_detours() {
    // Query point in a courtyard with a single gap; every neighbour is
    // reached through the gap.
    let walls = vec![
        Polygon::from_rect(Rect::from_coords(0.2, 0.2, 0.8, 0.25)), // south
        Polygon::from_rect(Rect::from_coords(0.2, 0.75, 0.8, 0.8)), // north
        Polygon::from_rect(Rect::from_coords(0.2, 0.25, 0.25, 0.75)), // west
        // east wall with a gap between y = 0.45 and 0.55
        Polygon::from_rect(Rect::from_coords(0.75, 0.25, 0.8, 0.45)),
        Polygon::from_rect(Rect::from_coords(0.75, 0.55, 0.8, 0.75)),
    ];
    let outside = vec![
        Point::new(0.95, 0.5), // straight through the gap
        Point::new(0.05, 0.5), // must round the whole courtyard
    ];
    let entities = EntityIndex::build(RTreeConfig::tiny(4), outside.clone());
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), walls.clone());
    let engine = QueryEngine::new(&entities, &obstacles);
    let oracle = BruteForce::new(walls);

    let q = Point::new(0.5, 0.5); // inside the courtyard
    let got = engine.nearest(q, 2);
    let expect = oracle.nearest(&outside, q, 2);
    assert_eq!(got.neighbors[0].0, 0, "gap-side entity must win");
    for (g, x) in got.neighbors.iter().zip(expect.iter()) {
        assert!((g.1 - x.1).abs() < 1e-9);
    }
    // The west entity's path must detour (through the gap, or along the
    // walkable seam where two wall rectangles touch — boundaries are
    // traversable, so courtyards of disjoint rectangles always leak at
    // their joints): strictly longer than the Euclidean distance.
    let west = got.neighbors.iter().find(|(id, _)| *id == 1).unwrap();
    assert!(west.1 > q.dist(outside[1]) + 0.1, "west detour {}", west.1);
}

#[test]
fn boundary_semantics_entity_on_wall_is_reachable() {
    // An entity exactly on a wall is at finite obstructed distance; an
    // entity strictly inside is unreachable and silently skipped.
    let wall = Polygon::from_rect(Rect::from_coords(0.4, 0.4, 0.6, 0.6));
    assert_eq!(wall.locate(Point::new(0.5, 0.4)), PointLocation::Boundary);
    let pts = vec![
        Point::new(0.5, 0.4), // on the south wall
        Point::new(0.5, 0.5), // strictly inside: unreachable
        Point::new(0.9, 0.9), // free
    ];
    let entities = EntityIndex::build(RTreeConfig::tiny(4), pts);
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), vec![wall]);
    let engine = QueryEngine::new(&entities, &obstacles);
    let got = engine.nearest(Point::new(0.5, 0.2), 3);
    let ids: Vec<u64> = got.neighbors.iter().map(|(id, _)| *id).collect();
    assert!(ids.contains(&0));
    assert!(ids.contains(&2));
    assert!(!ids.contains(&1), "interior entity must be unreachable");
}
