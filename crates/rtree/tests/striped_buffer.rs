//! Lock-striped buffer pool: shard-count edge cases and concurrent
//! exactness of the aggregated I/O accounting.

use obstacle_geom::Point;
use obstacle_rtree::{Item, RTree, RTreeConfig};

fn grid_items(n: usize) -> Vec<Item> {
    (0..n as u64)
        .map(|i| Item::point(Point::new((i % 64) as f64, (i / 64) as f64), i))
        .collect()
}

/// A mixed read-only query workload touching many pages; returns the ids
/// it produced so result equivalence can be asserted across shard counts.
fn workload(tree: &RTree, salt: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for i in 0..40u64 {
        let j = (i * 7 + salt) % 64;
        let q = Point::new(j as f64, ((j * 5) % 64) as f64);
        for (item, _) in tree.nearest(q).take(8) {
            out.push(item.id);
        }
    }
    out
}

#[test]
fn query_results_identical_across_shard_counts() {
    // The buffer pool is pure accounting: answers must be bit-identical
    // no matter how (or whether) the buffer is striped.
    let items = grid_items(4096);
    let base = RTree::build(RTreeConfig::tiny(16), items.clone());
    let expect = workload(&base, 3);
    for shards in [1usize, 2, 5, 8, 1024] {
        let tree = RTree::build(RTreeConfig::tiny(16).striped(shards), items.clone());
        // The stripe count honours the request up to the buffer capacity
        // (a stripe with no capacity could never cache its pages).
        assert_eq!(tree.buffer_shards(), shards.min(tree.buffer_capacity()));
        assert!(tree.buffer_shards() >= shards.min(2), "{shards} shards");
        assert_eq!(
            tree.buffer_capacity(),
            base.buffer_capacity(),
            "the 10 % total-capacity rule is shard-count invariant"
        );
        assert_eq!(workload(&tree, 3), expect, "{shards} shards");
    }
}

#[test]
fn one_shard_tree_reproduces_unsharded_accounting_exactly() {
    // `striped(1)` must be byte-for-byte the pre-striping single LRU:
    // identical hit/miss counts over an identical access sequence.
    let items = grid_items(4096);
    let a = RTree::build(RTreeConfig::tiny(16), items.clone());
    let b = RTree::build(RTreeConfig::tiny(16).striped(1), items);
    for t in [&a, &b] {
        t.reset_buffer();
        t.reset_io_stats();
    }
    let _ = workload(&a, 11);
    let _ = workload(&b, 11);
    assert_eq!(a.io_stats(), b.io_stats());
    assert!(a.io_stats().buffer_hits > 0, "workload must exercise hits");
    assert!(a.io_stats().reads > 0, "workload must exercise misses");
}

#[test]
fn shard_counters_sum_to_aggregate_under_concurrency() {
    // 8 threads hammer one striped tree. Exactness of the aggregate —
    // every logical fetch counted exactly once, none lost to a race — is
    // checked three ways: per-thread attribution windows sum to the
    // global delta, shard counters sum to the global counters, and the
    // total equals the single-threaded fetch count of the same workload.
    let items = grid_items(4096);
    let tree = RTree::build(RTreeConfig::tiny(16).striped(8), items);
    tree.reset_buffer();
    tree.reset_io_stats();

    let threads = 8;
    let solo: u64 = (0..threads)
        .map(|t| {
            let snap = tree.io_snapshot();
            let _ = workload(&tree, t as u64);
            snap.finish().fetches()
        })
        .sum();
    tree.reset_buffer();
    tree.reset_io_stats();

    let attributed: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let tree = &tree;
                scope.spawn(move || {
                    let snap = tree.io_snapshot();
                    let _ = workload(tree, t as u64);
                    snap.finish().fetches()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });

    let global = tree.io_stats();
    assert_eq!(
        attributed,
        global.fetches(),
        "thread-local windows must cover the global aggregate exactly"
    );
    assert_eq!(
        attributed, solo,
        "logical fetches are interleaving-independent"
    );
    let (miss_sum, hit_sum) = tree
        .buffer_shard_stats()
        .into_iter()
        .fold((0, 0), |(m, h), (sm, sh)| (m + sm, h + sh));
    assert_eq!(miss_sum, global.reads);
    assert_eq!(hit_sum, global.buffer_hits);
}
