//! Round-trip tests for the in-tree byte codec (`obstacle_rtree::codec`),
//! the offline replacement for the `bytes` crate: every `put_*`/`get_*`
//! width, mixed-width sequences, partial reads and underflow behaviour.

use obstacle_rtree::codec::{Buf, BufMut, Bytes, BytesMut};

#[test]
fn u8_roundtrip_all_values() {
    let mut buf = BytesMut::new();
    for v in 0..=u8::MAX {
        buf.put_u8(v);
    }
    let img = buf.freeze();
    let mut cur: &[u8] = &img;
    for v in 0..=u8::MAX {
        assert_eq!(cur.get_u8(), v);
    }
    assert_eq!(cur.remaining(), 0);
}

#[test]
fn u16_roundtrip_edge_values() {
    let values = [0u16, 1, 0x00FF, 0xFF00, 0x1234, u16::MAX];
    let mut buf = BytesMut::new();
    for &v in &values {
        buf.put_u16_le(v);
    }
    let img = buf.freeze();
    assert_eq!(img.len(), 2 * values.len());
    let mut cur: &[u8] = &img;
    for &v in &values {
        assert_eq!(cur.get_u16_le(), v);
    }
}

#[test]
fn u32_roundtrip_edge_values() {
    let values = [0u32, 1, 0xDEAD_BEEF, u32::MAX, 0x8000_0000];
    let mut buf = BytesMut::new();
    for &v in &values {
        buf.put_u32_le(v);
    }
    let mut cur: &[u8] = &buf;
    for &v in &values {
        assert_eq!(cur.get_u32_le(), v);
    }
}

#[test]
fn u64_roundtrip_edge_values() {
    let values = [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF, 1 << 63];
    let mut buf = BytesMut::new();
    for &v in &values {
        buf.put_u64_le(v);
    }
    let mut cur: &[u8] = &buf;
    for &v in &values {
        assert_eq!(cur.get_u64_le(), v);
    }
}

#[test]
fn float_roundtrips_are_bit_exact() {
    let f64s = [
        0.0f64,
        -0.0,
        1.5,
        -std::f64::consts::PI,
        f64::MIN_POSITIVE,
        f64::MAX,
        f64::NEG_INFINITY,
        f64::NAN,
    ];
    let f32s = [0.0f32, -1.25, f32::MAX, f32::INFINITY, f32::NAN];
    let mut buf = BytesMut::new();
    for &v in &f64s {
        buf.put_f64_le(v);
    }
    for &v in &f32s {
        buf.put_f32_le(v);
    }
    let mut cur: &[u8] = &buf;
    for &v in &f64s {
        assert_eq!(cur.get_f64_le().to_bits(), v.to_bits());
    }
    for &v in &f32s {
        assert_eq!(cur.get_f32_le().to_bits(), v.to_bits());
    }
    assert_eq!(cur.remaining(), 0);
}

#[test]
fn layout_is_little_endian() {
    let mut buf = BytesMut::new();
    buf.put_u32_le(0x0403_0201);
    assert_eq!(&buf[..], &[0x01, 0x02, 0x03, 0x04]);
    let mut buf = BytesMut::new();
    buf.put_u16_le(0xBEEF);
    assert_eq!(&buf[..], &[0xEF, 0xBE]);
}

#[test]
fn mixed_width_sequence_roundtrips() {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_slice(b"HDR!");
    buf.put_u8(7);
    buf.put_u16_le(513);
    buf.put_u32_le(70_000);
    buf.put_u64_le(1 << 40);
    buf.put_f64_le(-2.75);
    let img = buf.freeze();

    let mut cur: &[u8] = &img;
    let mut hdr = [0u8; 4];
    cur.copy_to_slice(&mut hdr);
    assert_eq!(&hdr, b"HDR!");
    assert_eq!(cur.get_u8(), 7);
    assert_eq!(cur.get_u16_le(), 513);
    assert_eq!(cur.get_u32_le(), 70_000);
    assert_eq!(cur.get_u64_le(), 1 << 40);
    assert_eq!(cur.get_f64_le(), -2.75);
    assert_eq!(cur.remaining(), 0);
}

#[test]
fn partial_reads_track_remaining() {
    let mut buf = BytesMut::new();
    buf.put_u64_le(42);
    buf.put_u32_le(43);
    let img = buf.freeze();
    let mut cur: &[u8] = &img;
    assert_eq!(cur.remaining(), 12);
    assert_eq!(cur.get_u64_le(), 42);
    assert_eq!(cur.remaining(), 4);
    // A reader can stop mid-image and hand the rest to another decoder.
    let rest = cur;
    let mut cur2: &[u8] = rest;
    assert_eq!(cur2.get_u32_le(), 43);
    assert_eq!(cur2.remaining(), 0);
}

#[test]
fn reads_can_resume_after_remaining_check() {
    // The persist decoder's `need()` pattern: check remaining, then read.
    let mut buf = BytesMut::new();
    for i in 0..10u8 {
        buf.put_u8(i);
    }
    let img = buf.freeze();
    let mut cur: &[u8] = &img;
    let mut seen = Vec::new();
    while cur.remaining() >= 2 {
        let mut two = [0u8; 2];
        cur.copy_to_slice(&mut two);
        seen.extend_from_slice(&two);
    }
    assert_eq!(seen, (0..10).collect::<Vec<u8>>());
}

#[test]
#[should_panic(expected = "codec underflow")]
fn underflow_panics_instead_of_reading_garbage() {
    let mut cur: &[u8] = &[1, 2, 3];
    let _ = cur.get_u32_le();
}

#[test]
fn bytes_slices_and_converts() {
    let mut buf = BytesMut::new();
    buf.put_slice(&[9, 8, 7, 6]);
    assert_eq!(buf.len(), 4);
    assert!(!buf.is_empty());
    let img = buf.freeze();
    // Deref-based slicing, as used to truncate images in persistence tests.
    assert_eq!(&img[..2], &[9, 8]);
    assert_eq!(img.as_ref(), &[9, 8, 7, 6]);
    let v = img.clone().into_vec();
    assert_eq!(Bytes::from(v), img);
    assert_eq!(Bytes::from_vec(vec![9, 8, 7, 6]), img);
}

#[test]
fn empty_buffer_roundtrip() {
    let img = BytesMut::new().freeze();
    assert_eq!(img.len(), 0);
    let cur: &[u8] = &img;
    assert_eq!(cur.remaining(), 0);
}
