//! Structural and semantic tests of the R*-tree.

use obstacle_geom::check;
use obstacle_geom::{Point, Rect};
use obstacle_rtree::{Item, RTree, RTreeConfig};

fn pts(n: usize, seed: u64) -> Vec<Point> {
    // Cheap deterministic pseudo-random points in the unit square.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next(), next())).collect()
}

fn items_of(points: &[Point]) -> Vec<Item> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| Item::point(p, i as u64))
        .collect()
}

#[test]
fn incremental_build_respects_all_invariants() {
    for cap in [3usize, 4, 8, 16] {
        let points = pts(500, cap as u64);
        let mut t = RTree::new(RTreeConfig::tiny(cap));
        for (i, it) in items_of(&points).into_iter().enumerate() {
            t.insert(it);
            if i % 97 == 0 {
                t.validate(true)
                    .unwrap_or_else(|e| panic!("cap {cap}: {e}"));
            }
        }
        t.validate(true).unwrap();
        assert_eq!(t.len(), 500);
    }
}

#[test]
fn paper_config_build_is_shallow_and_valid() {
    let points = pts(5000, 7);
    let t = RTree::build(RTreeConfig::paper(), items_of(&points));
    t.validate(true).unwrap();
    assert_eq!(t.len(), 5000);
    // 5000 items at capacity 204 needs height 2.
    assert_eq!(t.height(), 2);
    assert_eq!(t.config().capacity(), 204);
}

#[test]
fn bulk_loads_agree_with_insertion_on_queries() {
    let points = pts(2000, 42);
    let items = items_of(&points);
    let universe = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
    let a = RTree::build(RTreeConfig::tiny(8), items.clone());
    let b = RTree::bulk_load_str(RTreeConfig::tiny(8), items.clone());
    let c = RTree::bulk_load_hilbert(RTreeConfig::tiny(8), items, &universe);
    a.validate(true).unwrap();
    b.validate(false).unwrap();
    c.validate(false).unwrap();
    assert_eq!(b.len(), 2000);
    assert_eq!(c.len(), 2000);

    let window = Rect::from_coords(0.2, 0.3, 0.55, 0.6);
    let mut ra: Vec<u64> = a.range_rect(&window).iter().map(|i| i.id).collect();
    let mut rb: Vec<u64> = b.range_rect(&window).iter().map(|i| i.id).collect();
    let mut rc: Vec<u64> = c.range_rect(&window).iter().map(|i| i.id).collect();
    ra.sort_unstable();
    rb.sort_unstable();
    rc.sort_unstable();
    assert_eq!(ra, rb);
    assert_eq!(ra, rc);

    // Ground truth.
    let expect: Vec<u64> = points
        .iter()
        .enumerate()
        .filter(|(_, p)| window.contains_point(**p))
        .map(|(i, _)| i as u64)
        .collect();
    assert_eq!(ra, expect);
}

#[test]
fn range_circle_matches_linear_scan() {
    let points = pts(800, 3);
    let t = RTree::build(RTreeConfig::tiny(6), items_of(&points));
    let q = Point::new(0.4, 0.6);
    for radius in [0.0, 0.05, 0.2, 0.7] {
        let mut got: Vec<u64> = t.range_circle(q, radius).iter().map(|i| i.id).collect();
        got.sort_unstable();
        let expect: Vec<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(q) <= radius)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, expect, "radius {radius}");
    }
}

#[test]
fn delete_removes_and_preserves_invariants() {
    let points = pts(400, 11);
    let items = items_of(&points);
    let mut t = RTree::build(RTreeConfig::tiny(4), items.clone());
    // Delete every third item.
    for (i, it) in items.iter().enumerate() {
        if i % 3 == 0 {
            assert!(t.delete(it), "item {i} must be found");
        }
    }
    t.validate(true).unwrap();
    assert_eq!(t.len(), 400 - 134);
    // Deleted items are gone; others remain findable.
    for (i, it) in items.iter().enumerate() {
        let found = t.range_rect(&it.mbr).iter().any(|f| f.id == it.id);
        assert_eq!(found, i % 3 != 0, "item {i}");
    }
    // Deleting again returns false.
    assert!(!t.delete(&items[0]));
}

#[test]
fn delete_down_to_empty_and_reuse() {
    let points = pts(150, 5);
    let items = items_of(&points);
    let mut t = RTree::build(RTreeConfig::tiny(4), items.clone());
    for it in &items {
        assert!(t.delete(it));
        t.validate(true).unwrap();
    }
    assert!(t.is_empty());
    assert_eq!(t.height(), 1);
    // Tree remains usable after emptying.
    t.insert(Item::point(Point::new(0.5, 0.5), 999));
    assert_eq!(t.len(), 1);
    assert_eq!(t.k_nearest(Point::new(0.0, 0.0), 1)[0].0.id, 999);
}

#[test]
fn duplicate_points_are_supported() {
    let p = Point::new(0.25, 0.75);
    let items: Vec<Item> = (0..50).map(|i| Item::point(p, i)).collect();
    let mut t = RTree::build(RTreeConfig::tiny(4), items.clone());
    t.validate(true).unwrap();
    assert_eq!(t.range_circle(p, 0.0).len(), 50);
    for it in &items {
        assert!(t.delete(it));
    }
    assert!(t.is_empty());
}

#[test]
fn io_accounting_counts_misses_not_hits() {
    let points = pts(3000, 9);
    let t = RTree::build(RTreeConfig::tiny(16), items_of(&points));
    t.reset_buffer();
    t.reset_io_stats();
    let w = Rect::from_coords(0.4, 0.4, 0.42, 0.42);
    let _ = t.range_rect(&w);
    let first = t.io_stats();
    assert!(first.reads > 0, "cold buffer ⇒ some misses");
    // Re-running the identical query with a warm buffer must be cheaper.
    t.reset_io_stats();
    let _ = t.range_rect(&w);
    let second = t.io_stats();
    assert!(
        second.reads <= first.reads,
        "warm run ({}) must not exceed cold run ({})",
        second.reads,
        first.reads
    );
    assert!(second.buffer_hits > 0);
}

#[test]
fn buffer_is_ten_percent_of_pages() {
    let points = pts(4000, 13);
    let t = RTree::build(RTreeConfig::tiny(16), items_of(&points));
    t.reset_buffer();
    let expect = ((t.pages() as f64) * 0.1).ceil() as usize;
    assert_eq!(t.buffer_capacity(), expect.max(1));
}

#[test]
fn nearest_is_io_optimal_versus_range() {
    // Best-first NN should touch no more pages than a range query with the
    // radius of the found neighbour (optimality sanity check, [HS99]).
    let points = pts(3000, 21);
    let t = RTree::build(RTreeConfig::tiny(16), items_of(&points));
    let q = Point::new(0.37, 0.81);
    t.reset_buffer();
    t.reset_io_stats();
    let (_, d) = t.nearest(q).next().unwrap();
    let nn_reads = t.io_stats().reads;
    t.reset_buffer();
    t.reset_io_stats();
    let _ = t.range_circle(q, d);
    let range_reads = t.io_stats().reads;
    assert!(
        nn_reads <= range_reads + 1,
        "NN reads {nn_reads} vs range reads {range_reads}"
    );
}

#[test]
fn parallel_readers_share_one_tree() {
    // The tree is Sync: concurrent read-only queries share the LRU buffer
    // like clients of one database buffer pool, and results stay exact.
    let points = pts(2000, 33);
    let t = RTree::build(RTreeConfig::tiny(16), items_of(&points));
    t.reset_buffer();
    t.reset_io_stats();
    let queries: Vec<Point> = (0..16).map(|i| points[i * 100]).collect();
    let expected: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| t.k_nearest(*q, 10).iter().map(|(i, _)| i.id).collect())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .zip(expected.iter())
            .map(|(q, want)| {
                let tree = &t;
                scope.spawn(move || {
                    for _ in 0..5 {
                        let got: Vec<u64> =
                            tree.k_nearest(*q, 10).iter().map(|(i, _)| i.id).collect();
                        assert_eq!(&got, want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    // All accesses were accounted (16 threads × 5 repeats × >0 fetches).
    assert!(t.io_stats().fetches() >= 16 * 5);
}

#[test]
fn random_build_query_delete_cycle() {
    check::cases(24, |g| {
        let n = g.usize(1, 300);
        let cap = g.usize(3, 10);
        let seed = g.u64(0, 1000);
        let q = Point::new(g.f64(0.0, 1.0), g.f64(0.0, 1.0));
        let r = g.f64(0.0, 0.5);

        let points = pts(n, seed);
        let items = items_of(&points);
        let mut t = RTree::build(RTreeConfig::tiny(cap), items.clone());
        assert!(t.validate(true).is_ok());

        // Range vs scan.
        let mut got: Vec<u64> = t.range_circle(q, r).iter().map(|i| i.id).collect();
        got.sort_unstable();
        let expect: Vec<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(q) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, expect);

        // kNN vs scan.
        let k = (n / 3).max(1);
        let knn: Vec<f64> = t.k_nearest(q, k).iter().map(|(_, d)| *d).collect();
        let mut dists: Vec<f64> = points.iter().map(|p| p.dist(q)).collect();
        dists.sort_by(|a, b| obstacle_geom::total_cmp(*a, *b));
        for (knn_d, scan_d) in knn.iter().zip(dists.iter()) {
            assert!((knn_d - scan_d).abs() < 1e-12);
        }

        // Delete half, re-validate, re-query.
        for it in items.iter().take(n / 2) {
            assert!(t.delete(it));
        }
        assert!(t.validate(true).is_ok());
        let mut got: Vec<u64> = t.range_circle(q, r).iter().map(|i| i.id).collect();
        got.sort_unstable();
        let expect: Vec<u64> = points
            .iter()
            .enumerate()
            .skip(n / 2)
            .filter(|(_, p)| p.dist(q) <= r)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, expect);
    });
}

#[test]
fn str_bulk_load_equals_scan() {
    check::cases(24, |g| {
        let n = g.usize(1, 2000);
        let seed = g.u64(0, 100);
        let points = pts(n, seed);
        let t = RTree::bulk_load_str(RTreeConfig::tiny(8), items_of(&points));
        assert!(t.validate(false).is_ok());
        assert_eq!(t.len(), n);
        let all = t.items();
        assert_eq!(all.len(), n);
    });
}
