//! Little-endian byte codec — an in-tree replacement for the `bytes`
//! crate surface used by [`crate::persist`].
//!
//! The workspace builds fully offline, so instead of depending on `bytes`
//! this module provides API-compatible [`Buf`]/[`BufMut`] traits and the
//! [`Bytes`]/[`BytesMut`] buffer types. Semantics match `bytes` where the
//! two overlap: `get_*` methods consume from the front and panic on
//! underflow (callers guard with [`Buf::remaining`]), `put_*` methods
//! append, and [`BytesMut::freeze`] converts to an immutable [`Bytes`].

/// Read access to a contiguous, front-consumable byte buffer.
///
/// Implemented for `&[u8]`: each `get_*` advances the slice itself, so a
/// `&mut &[u8]` cursor walks an image exactly like a `bytes::Buf`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Panics
    /// If fewer than `n` bytes remain.
    fn take(&mut self, n: usize) -> &[u8];

    /// Copies `dst.len()` bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(self.take(dst.len()));
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Consumes a little-endian `f32` (bit-exact round trip).
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Consumes a little-endian `f64` (bit-exact round trip).
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            n <= self.len(),
            "codec underflow: need {n} bytes, {} remain",
            self.len()
        );
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer being written; freeze it into [`Bytes`] when
/// encoding is complete.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte image; dereferences to `[u8]` for slicing and I/O.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Wraps an owned byte vector.
    pub fn from_vec(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }

    /// Consumes the image, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}
