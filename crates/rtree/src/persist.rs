//! Byte-image persistence of a tree.
//!
//! Pages serialise to a simple little-endian layout (magic, config, free
//! list, then one record per page slot). Coordinates are stored as `f64`
//! so a round trip is bit-exact; note that the *cost-model* entry size
//! (20 bytes, matching the paper's 4 KiB/204-entry pages) is a property of
//! the simulated disk and is carried in the config, independent of this
//! on-disk image.

use crate::codec::{Buf, BufMut, Bytes, BytesMut};
use crate::config::RTreeConfig;
use crate::entry::Entry;
use crate::node::Node;
use crate::store::PageStore;
use crate::tree::RTree;
use obstacle_geom::Rect;
use std::path::Path;

const MAGIC: &[u8; 4] = b"ORTR";
const VERSION: u16 = 2;

/// Errors produced when decoding a tree image.
#[derive(Debug)]
pub enum PersistError {
    /// The image does not start with the expected magic bytes.
    BadMagic,
    /// The image was produced by an unsupported format version.
    BadVersion(u16),
    /// The image ended prematurely or contains inconsistent counts.
    Truncated,
    /// Reading or writing the backing file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an R-tree image (bad magic)"),
            PersistError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            PersistError::Truncated => write!(f, "truncated or inconsistent image"),
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl RTree {
    /// Serialises the tree (structure + config) to a byte image.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.pages() * 64);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        // Config.
        let c = &self.config;
        buf.put_u32_le(c.page_size as u32);
        buf.put_u32_le(c.entry_bytes as u32);
        buf.put_u32_le(c.header_bytes as u32);
        buf.put_u32_le(c.capacity_override.map(|v| v as u32).unwrap_or(0));
        buf.put_f64_le(c.min_fill_ratio);
        buf.put_f64_le(c.reinsert_ratio);
        buf.put_f64_le(c.buffer_ratio);
        buf.put_u32_le(c.min_buffer_pages as u32);
        buf.put_u32_le(c.buffer_shards as u32);
        // Tree header.
        buf.put_u32_le(self.root);
        buf.put_u32_le(self.height);
        buf.put_u64_le(self.len as u64);
        // Pages.
        let slots = self.store.slots();
        buf.put_u32_le(slots.len() as u32);
        for slot in slots {
            match slot {
                None => buf.put_u8(0),
                Some(node) => {
                    buf.put_u8(1);
                    buf.put_u32_le(node.level);
                    buf.put_u32_le(node.len() as u32);
                    for e in &node.entries {
                        buf.put_f64_le(e.mbr.min.x);
                        buf.put_f64_le(e.mbr.min.y);
                        buf.put_f64_le(e.mbr.max.x);
                        buf.put_f64_le(e.mbr.max.y);
                        buf.put_u64_le(e.ptr);
                    }
                }
            }
        }
        buf.freeze()
    }

    /// Reconstructs a tree from a byte image produced by
    /// [`RTree::to_bytes`]. The LRU buffer starts cold and counters start
    /// at zero.
    pub fn from_bytes(mut data: &[u8]) -> Result<RTree, PersistError> {
        fn need(data: &[u8], n: usize) -> Result<(), PersistError> {
            if data.remaining() < n {
                Err(PersistError::Truncated)
            } else {
                Ok(())
            }
        }
        need(data, 6)?;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = data.get_u16_le();
        if version != VERSION {
            return Err(PersistError::BadVersion(version));
        }
        need(data, 4 * 4 + 8 * 3 + 4 + 4)?;
        let config = RTreeConfig {
            page_size: data.get_u32_le() as usize,
            entry_bytes: data.get_u32_le() as usize,
            header_bytes: data.get_u32_le() as usize,
            capacity_override: match data.get_u32_le() {
                0 => None,
                v => Some(v as usize),
            },
            min_fill_ratio: data.get_f64_le(),
            reinsert_ratio: data.get_f64_le(),
            buffer_ratio: data.get_f64_le(),
            min_buffer_pages: data.get_u32_le() as usize,
            buffer_shards: data.get_u32_le() as usize,
            // An ORTR image is by definition a paged tree; the packed
            // backend has its own format (see `crate::packed`). The
            // backend knobs are not part of the page-image layout.
            backend: crate::config::Backend::Paged,
            packed_node_size: RTreeConfig::default().packed_node_size,
        };
        need(data, 4 + 4 + 8 + 4)?;
        let root = data.get_u32_le();
        let height = data.get_u32_le();
        let len = data.get_u64_le() as usize;
        let slot_count = data.get_u32_le() as usize;

        let mut pages: Vec<Option<Node>> = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            need(data, 1)?;
            if data.get_u8() == 0 {
                pages.push(None);
                continue;
            }
            need(data, 8)?;
            let level = data.get_u32_le();
            let count = data.get_u32_le() as usize;
            need(data, count * 40)?;
            let mut node = Node::new(level);
            node.entries.reserve_exact(count);
            for _ in 0..count {
                let minx = data.get_f64_le();
                let miny = data.get_f64_le();
                let maxx = data.get_f64_le();
                let maxy = data.get_f64_le();
                let ptr = data.get_u64_le();
                node.entries
                    .push(Entry::new(Rect::from_coords(minx, miny, maxx, maxy), ptr));
            }
            pages.push(Some(node));
        }
        if root as usize >= pages.len() || pages[root as usize].is_none() {
            return Err(PersistError::Truncated);
        }
        let buffer_pages = {
            let live = pages.iter().filter(|p| p.is_some()).count();
            config.buffer_pages(live)
        };
        let store = PageStore::from_slots(pages, buffer_pages, config.shards());
        let tree = RTree {
            config,
            store,
            root,
            height,
            len,
        };
        tree.reset_io_stats();
        Ok(tree)
    }

    /// Writes the byte image to a file.
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a tree image from a file.
    pub fn load_from_file(path: impl AsRef<Path>) -> Result<RTree, PersistError> {
        let data = std::fs::read(path)?;
        RTree::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Item;
    use obstacle_geom::Point;

    fn sample_tree() -> RTree {
        RTree::build(
            RTreeConfig::tiny(4),
            (0..200u64).map(|i| {
                Item::point(
                    Point::new((i % 17) as f64 * 0.31, (i % 23) as f64 * 0.17),
                    i,
                )
            }),
        )
    }

    #[test]
    fn roundtrip_preserves_structure_and_answers() {
        let t = sample_tree();
        let img = t.to_bytes();
        let u = RTree::from_bytes(&img).unwrap();
        assert_eq!(u.len(), t.len());
        assert_eq!(u.height(), t.height());
        u.validate(true).unwrap();

        let q = Point::new(2.0, 1.5);
        let a: Vec<u64> = t.k_nearest(q, 20).into_iter().map(|(i, _)| i.id).collect();
        let b: Vec<u64> = u.k_nearest(q, 20).into_iter().map(|(i, _)| i.id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_via_file() {
        let t = sample_tree();
        let path = std::env::temp_dir().join("obstacle_rtree_roundtrip.ortr");
        t.save_to_file(&path).unwrap();
        let u = RTree::load_from_file(&path).unwrap();
        assert_eq!(u.len(), t.len());
        u.validate(true).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            RTree::from_bytes(b"nope"),
            Err(PersistError::BadMagic) | Err(PersistError::Truncated)
        ));
        assert!(matches!(
            RTree::from_bytes(b"ORTR\xff\xff"),
            Err(PersistError::BadVersion(_)) | Err(PersistError::Truncated)
        ));
        // Truncated mid-page.
        let t = sample_tree();
        let img = t.to_bytes();
        let cut = &img[..img.len() / 2];
        assert!(matches!(
            RTree::from_bytes(cut),
            Err(PersistError::Truncated)
        ));
    }

    #[test]
    fn empty_tree_roundtrip() {
        let t = RTree::new(RTreeConfig::tiny(4));
        let u = RTree::from_bytes(&t.to_bytes()).unwrap();
        assert!(u.is_empty());
        u.validate(true).unwrap();
    }
}
