//! A disk-model R*-tree with page-access accounting.
//!
//! This crate implements the storage substrate assumed by *Spatial Queries
//! in the Presence of Obstacles* (Zhang et al., EDBT 2004): both the entity
//! datasets and the obstacle dataset are indexed by R*-trees \[BKSS90\]
//! backed by fixed-size disk pages and an LRU buffer. The paper's
//! experimental metric is the number of **page accesses** (buffer misses),
//! so the tree simulates the disk: every node visit during a query goes
//! through an [`buffer::LruBuffer`] sized at a fraction
//! (default 10 %) of the tree, and misses are counted per tree.
//!
//! Provided query algorithms (all used by the paper):
//!
//! * window and disk **range search**,
//! * **incremental best-first nearest neighbours** \[HS99\] — optimal and
//!   resumable, as required by the ONN algorithm's shrinking threshold,
//! * **e-distance join** \[BKS93\] — synchronized traversal of two trees,
//! * **incremental closest pairs** \[HS98, CMTV00\] — a priority queue over
//!   node/item pairs, as required by OCP/iOCP.
//!
//! Construction supports both one-by-one R* insertion (ChooseSubtree,
//! forced reinsertion, R* split) and bulk loading (STR and Hilbert), plus
//! deletion with the classic condense-tree reinsertion.
//!
//! Pages can be persisted to and reloaded from a byte image (see
//! [`persist`]); the in-memory representation always uses `f64`
//! coordinates, while the default cost-model node capacity (204 entries)
//! matches the paper's 4 KiB pages with 20-byte entries.
//!
//! # Storage backends
//!
//! The read-side query surface is abstracted by [`TreeBackend`] with two
//! implementations: the paged [`RTree`] above (the faithful reproduction,
//! with insert/delete and page-access accounting) and the
//! [`PackedRTree`] — a flatbush-style packed static tree in one
//! contiguous buffer, built by Hilbert sort, byte-serializable without a
//! rebuild, and entirely lock-free on the query path (its IO stats count
//! node visits instead of page accesses). [`AnyTree`] enum-dispatches
//! between the two, selected by [`RTreeConfig::backend`]. All query
//! algorithms ([`Nearest`], [`distance_join`], [`ClosestPairs`], the
//! range searches) are generic over the backend.
//!
//! # Example
//!
//! ```
//! use obstacle_geom::Point;
//! use obstacle_rtree::{Item, RTree, RTreeConfig};
//!
//! // Index 1,000 points with the paper's disk parameters.
//! let items = (0..1000u64)
//!     .map(|i| Item::point(Point::new((i % 32) as f64, (i / 32) as f64), i));
//! let tree = RTree::build(RTreeConfig::paper(), items);
//!
//! // Incremental nearest neighbours, in ascending distance order.
//! let q = Point::new(10.2, 14.8);
//! let two: Vec<u64> = tree.nearest(q).take(2).map(|(it, _)| it.id).collect();
//! assert_eq!(two.len(), 2);
//!
//! // Page accesses (LRU buffer misses) are counted per tree.
//! tree.reset_buffer();
//! tree.reset_io_stats();
//! let _ = tree.k_nearest(q, 8);
//! assert!(tree.io_stats().reads > 0);
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod codec;
pub mod sync;

mod backend;
mod config;
mod entry;
mod float;
mod node;
mod packed;
pub mod persist;
mod query;
mod stats;
mod store;
mod tree;

pub use backend::{AnyTree, NodeRef, TreeBackend};
pub use config::{Backend, RTreeConfig};
pub use entry::{Entry, Item, PageId};
pub use float::OrdF64;
pub use node::Node;
pub use packed::PackedRTree;
pub use query::closest_pairs::ClosestPairs;
pub use query::join::distance_join;
pub use query::nn::Nearest;
pub use stats::{LevelStats, TreeStats};
pub use store::{IoSnapshot, IoStats};
pub use tree::RTree;
