//! Tree nodes (one per simulated page).

use crate::entry::Entry;
use obstacle_geom::Rect;

/// A tree node. `level == 0` for leaves; the root has the highest level.
#[derive(Clone, Debug, Default)]
pub struct Node {
    /// Height of this node above the leaf level.
    pub level: u32,
    /// The node's entries (child pointers or objects).
    pub entries: Vec<Entry>,
}

impl Node {
    /// Creates an empty node at `level`.
    pub fn new(level: u32) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the node has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Union of all entry rectangles (the node's own MBR).
    pub fn mbr(&self) -> Rect {
        self.entries
            .iter()
            .fold(Rect::empty(), |acc, e| acc.union(&e.mbr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obstacle_geom::Rect;

    #[test]
    fn mbr_unions_entries() {
        let mut n = Node::new(0);
        assert!(n.mbr().is_empty());
        n.entries
            .push(Entry::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 1));
        n.entries
            .push(Entry::new(Rect::from_coords(2.0, 2.0, 3.0, 4.0), 2));
        assert_eq!(n.mbr(), Rect::from_coords(0.0, 0.0, 3.0, 4.0));
        assert!(n.is_leaf());
        assert_eq!(n.len(), 2);
    }
}
