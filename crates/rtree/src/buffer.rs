//! LRU page buffer.
//!
//! The paper measures query cost in *page accesses* with "an LRU buffer
//! that accommodates 10 % of each R-tree" (§7). [`LruBuffer`] simulates
//! exactly that: page reads that hit the buffer are free, misses count as
//! page accesses and evict the least-recently-used resident page.
//!
//! The implementation is an intrusive doubly-linked list over a slot
//! vector plus a `HashMap` from page id to slot, giving O(1) touch, hit
//! and eviction.

use crate::entry::PageId;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Clone, Copy, Debug)]
struct Slot {
    page: PageId,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU set of page ids.
#[derive(Debug)]
pub struct LruBuffer {
    slots: Vec<Slot>,
    index: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl LruBuffer {
    /// Creates a buffer holding at most `capacity` pages (`0` disables
    /// caching entirely: every access is a miss).
    pub fn new(capacity: usize) -> Self {
        LruBuffer {
            slots: Vec::with_capacity(capacity.min(1024)),
            index: HashMap::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Current capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident pages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no page is resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Changes the capacity, evicting LRU pages if shrinking.
    pub fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.index.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// Drops all resident pages (e.g. before starting a measured workload).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Accesses `page`; returns `true` on a buffer hit, `false` on a miss
    /// (after which the page is resident and most recently used).
    pub fn access(&mut self, page: PageId) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&slot) = self.index.get(&page) {
            self.unlink(slot);
            self.push_front(slot);
            return true;
        }
        // Miss: make room, then insert.
        let slot = if self.index.len() >= self.capacity {
            let s = self.evict_lru();
            self.slots[s].page = page;
            s
        } else {
            self.slots.push(Slot {
                page,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.index.insert(page, slot);
        self.push_front(slot);
        false
    }

    /// Removes `page` from the buffer if resident (used when pages are
    /// freed by node merges).
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(slot) = self.index.remove(&page) {
            self.unlink(slot);
            // Slot becomes garbage; it will be reused only via eviction
            // path when list is full, so mark it reusable by pushing to a
            // trivial free strategy: store at tail with NIL page is messy —
            // instead compact lazily: swap_remove semantics are unsafe for
            // linked slots, so just leave the hole; `len()` is tracked by
            // the index map. Holes are bounded by the number of
            // invalidations between clears.
        }
    }

    fn evict_lru(&mut self) -> usize {
        debug_assert!(self.tail != NIL);
        let slot = self.tail;
        let page = self.slots[slot].page;
        self.unlink(slot);
        self.index.remove(&page);
        slot
    }

    fn unlink(&mut self, slot: usize) {
        let Slot { prev, next, .. } = self.slots[slot];
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_then_hits() {
        let mut b = LruBuffer::new(2);
        assert!(!b.access(1)); // miss
        assert!(!b.access(2)); // miss
        assert!(b.access(1)); // hit
        assert!(b.access(2)); // hit
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn eviction_is_lru() {
        let mut b = LruBuffer::new(2);
        b.access(1);
        b.access(2);
        b.access(1); // 1 is now MRU, 2 is LRU
        assert!(!b.access(3)); // evicts 2
        assert!(b.access(1)); // still resident
        assert!(!b.access(2)); // was evicted
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut b = LruBuffer::new(0);
        assert!(!b.access(1));
        assert!(!b.access(1));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn capacity_one() {
        let mut b = LruBuffer::new(1);
        assert!(!b.access(1));
        assert!(b.access(1));
        assert!(!b.access(2));
        assert!(!b.access(1));
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let mut b = LruBuffer::new(4);
        for p in 0..4 {
            b.access(p);
        }
        b.resize(2);
        assert_eq!(b.len(), 2);
        // MRU pages 2 and 3 survive.
        assert!(b.access(3));
        assert!(b.access(2));
        assert!(!b.access(0));
        b.resize(8);
        assert_eq!(b.capacity(), 8);
    }

    #[test]
    fn clear_empties() {
        let mut b = LruBuffer::new(2);
        b.access(1);
        b.clear();
        assert!(b.is_empty());
        assert!(!b.access(1));
    }

    #[test]
    fn invalidate_removes_page() {
        let mut b = LruBuffer::new(3);
        b.access(1);
        b.access(2);
        b.invalidate(1);
        assert!(!b.access(1)); // miss again
        assert!(b.access(2));
    }

    #[test]
    fn long_mixed_workload_respects_capacity() {
        let mut b = LruBuffer::new(8);
        for i in 0..1000u32 {
            b.access(i % 16);
            assert!(b.len() <= 8);
        }
        // The most recent 8 distinct pages must all hit.
        for i in (1000 - 8)..1000u32 {
            let _ = i;
        }
        let recent: Vec<u32> = (0..16).map(|k| (999 - k) % 16).take(8).collect();
        for p in recent {
            assert!(b.access(p), "page {p} should be resident");
        }
    }
}
