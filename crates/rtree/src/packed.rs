//! Packed static R-tree: one contiguous buffer, zero locks, zero
//! deserialization.
//!
//! A flatbush-style layout (Kleppmann/Agafonkin lineage; see the
//! `geo-index` excerpts in `SNIPPETS.md`): every slot is four `f64` box
//! words plus one index word, items first in Hilbert order, then each
//! tree level packed bottom-up, root last. Because the whole tree is a
//! single word buffer:
//!
//! * queries are plain slice reads — no page buffer, no `Mutex`, no shard
//!   to acquire, so concurrent batch workers share nothing but immutable
//!   memory and a relaxed visit counter;
//! * [`PackedRTree::to_bytes`] is a header plus the raw words, and
//!   [`PackedRTree::from_bytes`] rebuilds without any per-node decode —
//!   a scene can be persisted or shipped and queried as-is.
//!
//! The trade: the structure is static. There is no insert/delete here;
//! [`AnyTree`](crate::AnyTree) rebuilds the pack on update, which is the
//! right cost model for the effectively immutable per-scene obstacle and
//! entity sets this backend targets. The paged [`RTree`](crate::RTree)
//! remains the faithful reproduction of the paper's disk simulation.
//!
//! ## Cost model
//!
//! There are no page accesses to count, so [`PackedRTree::io_stats`]
//! reports **node visits** instead: every visited node adds one
//! `buffer_hit` (a "free" access in [`IoStats`] terms — `fetches()` is
//! then the visit count and `reads` stays honestly zero). Per-query
//! [`IoSnapshot`] windows work exactly as on the paged backend.

use crate::codec::{Buf, BufMut, Bytes, BytesMut};
use crate::config::{Backend, RTreeConfig};
use crate::entry::{Entry, Item};
use crate::persist::PersistError;
use crate::stats::{LevelStats, TreeStats};
use crate::store::{record_access, IoSnapshot, IoStats};
use obstacle_geom::{hilbert_index_unit, Point, Rect};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes of a packed-tree image (`AnyTree::from_bytes` sniffs this
/// against the paged `ORTR` magic).
pub(crate) const PACKED_MAGIC: &[u8; 4] = b"OPKD";
const VERSION: u16 = 1;

/// Words per slot in the box region (min.x, min.y, max.x, max.y).
const BOX_WORDS: usize = 4;

/// A packed static R-tree over point/rectangle items.
///
/// Built once by Hilbert sort ([`PackedRTree::build`]); answers the same
/// query surface as the paged tree via [`TreeBackend`](crate::TreeBackend).
/// All query state is immutable borrowed memory — the only mutation on the
/// read path is a relaxed atomic visit counter, so `&PackedRTree` is
/// freely shared across batch worker threads without any lock.
#[derive(Debug)]
pub struct PackedRTree {
    config: RTreeConfig,
    /// The single contiguous buffer: `BOX_WORDS * slots` box words (f64
    /// bit patterns) followed by `slots` index words. Serialized verbatim.
    words: Box<[u64]>,
    /// Items in the tree (slots `0..num_items` of the buffer).
    num_items: usize,
    /// Fan-out of the pack.
    node_size: usize,
    /// Exclusive end slot of each level, items (level 0) first; the last
    /// entry is the total slot count and `level_ends.len() - 1` is the
    /// number of *tree node* levels.
    level_ends: Box<[usize]>,
    /// Relaxed count of nodes visited by queries (the packed cost model).
    visits: AtomicU64,
    /// How many times this pack has been rebuilt by `AnyTree` updates
    /// (0 for a fresh build or a deserialized image — the counter is a
    /// cost observable, not part of the tree, and is not persisted).
    /// `AnyTree::apply_edits` is asserted to bump it exactly once per
    /// edit batch.
    pub(crate) generation: u64,
}

/// Slot counts per level for `n` items at fan-out `node_size`: items
/// first, then each node level up to a single root. `n = 0` has no slots
/// at all; `n ≥ 1` always gets at least one node level, so the root is a
/// real node even over a single item.
fn level_counts(n: usize, node_size: usize) -> Vec<usize> {
    if n == 0 {
        return vec![0];
    }
    let mut counts = vec![n];
    loop {
        let next = counts.last().unwrap().div_ceil(node_size);
        counts.push(next);
        if next <= 1 {
            break;
        }
    }
    counts
}

impl PackedRTree {
    /// Packs `items` into a static tree with the fan-out
    /// `config.packed_node_size` (clamped to at least 2). Items are
    /// sorted by the Hilbert index of their MBR center over the item
    /// universe, then each level is packed left to right.
    pub fn build(config: RTreeConfig, items: impl IntoIterator<Item = Item>) -> Self {
        let mut items: Vec<Item> = items.into_iter().collect();
        let node_size = config.packed_node_size.max(2);
        let n = items.len();

        let universe = items.iter().fold(Rect::empty(), |u, i| u.union(&i.mbr));
        items.sort_by_key(|i| hilbert_index_unit(i.center(), &universe));

        let counts = level_counts(n, node_size);
        let mut level_ends = Vec::with_capacity(counts.len());
        let mut total = 0usize;
        for c in &counts {
            total += c;
            level_ends.push(total);
        }

        let mut words = vec![0u64; total * (BOX_WORDS + 1)].into_boxed_slice();
        let index_base = total * BOX_WORDS;
        let write_box = |words: &mut [u64], slot: usize, r: &Rect| {
            let w = slot * BOX_WORDS;
            words[w] = r.min.x.to_bits();
            words[w + 1] = r.min.y.to_bits();
            words[w + 2] = r.max.x.to_bits();
            words[w + 3] = r.max.y.to_bits();
        };

        // Item slots, in Hilbert order.
        for (slot, item) in items.iter().enumerate() {
            write_box(&mut words, slot, &item.mbr);
            words[index_base + slot] = item.id;
        }

        // Pack each node level over the one below it.
        let mut child_start = 0usize;
        for level in 1..counts.len() {
            let child_end = level_ends[level - 1];
            let mut slot = child_end;
            let mut child = child_start;
            while child < child_end {
                let first = child;
                let last = (first + node_size).min(child_end);
                let mut mbr = Rect::empty();
                for c in first..last {
                    let w = c * BOX_WORDS;
                    mbr = mbr.union(&Rect::from_coords(
                        f64::from_bits(words[w]),
                        f64::from_bits(words[w + 1]),
                        f64::from_bits(words[w + 2]),
                        f64::from_bits(words[w + 3]),
                    ));
                }
                write_box(&mut words, slot, &mbr);
                words[index_base + slot] = first as u64;
                slot += 1;
                child = last;
            }
            debug_assert_eq!(slot, level_ends[level]);
            child_start = child_end;
        }

        let tree = PackedRTree {
            config,
            words,
            num_items: n,
            node_size,
            level_ends: level_ends.into_boxed_slice(),
            visits: AtomicU64::new(0),
            generation: 0,
        };
        debug_assert_eq!(tree.validate(), Ok(()), "freshly packed tree must validate");
        tree
    }

    // -----------------------------------------------------------------
    // Shape accessors
    // -----------------------------------------------------------------

    /// Number of items.
    pub fn len(&self) -> usize {
        self.num_items
    }

    /// Whether the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.num_items == 0
    }

    /// The configuration the pack was built with.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Fan-out of the pack.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// How many times this pack has been rebuilt by `AnyTree` updates
    /// since it was first built or deserialized. A batch of k edits
    /// applied through [`AnyTree::apply_edits`](crate::AnyTree::apply_edits)
    /// costs exactly one rebuild (generation +1); k single-item
    /// `insert`/`delete` calls cost k.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of tree nodes (slots above the item level) — the packed
    /// analogue of the paged tree's page count.
    pub fn num_nodes(&self) -> usize {
        self.total_slots() - self.num_items
    }

    /// Height in node levels (1 = a single root over the items; 0 only
    /// for an empty tree).
    pub fn height(&self) -> u32 {
        (self.level_ends.len() - 1) as u32
    }

    fn total_slots(&self) -> usize {
        *self.level_ends.last().unwrap()
    }

    fn root_slot(&self) -> Option<usize> {
        (self.num_items > 0).then(|| self.total_slots() - 1)
    }

    fn slot_box(&self, slot: usize) -> Rect {
        let w = slot * BOX_WORDS;
        Rect::from_coords(
            f64::from_bits(self.words[w]),
            f64::from_bits(self.words[w + 1]),
            f64::from_bits(self.words[w + 2]),
            f64::from_bits(self.words[w + 3]),
        )
    }

    fn slot_index(&self, slot: usize) -> u64 {
        self.words[self.total_slots() * BOX_WORDS + slot]
    }

    /// Level of a slot: 0 for item slots, `k ≥ 1` for node slots. The
    /// *trait* level of a node slot is `slot_level - 1` (a node whose
    /// children are items is a leaf, level 0), matching the paged tree.
    fn slot_level(&self, slot: usize) -> usize {
        self.level_ends.iter().position(|&end| slot < end).unwrap()
    }

    /// Child slot range of the node at `slot`.
    fn children_of(&self, slot: usize) -> std::ops::Range<usize> {
        let level = self.slot_level(slot);
        debug_assert!(level >= 1, "items have no children");
        let first = self.slot_index(slot) as usize;
        let child_end = self.level_ends[level - 1];
        first..(first + self.node_size).min(child_end)
    }

    /// MBR of the whole tree (empty rect when the tree is empty).
    pub fn root_mbr(&self) -> Rect {
        match self.root_slot() {
            Some(s) => self.slot_box(s),
            None => Rect::empty(),
        }
    }

    // -----------------------------------------------------------------
    // Accounting — node visits, lock-free
    // -----------------------------------------------------------------

    fn record_visit(&self) {
        self.visits.fetch_add(1, Ordering::Relaxed);
        record_access(self as *const PackedRTree as usize, true);
    }

    /// Cumulative node visits, in [`IoStats`] form: visits are reported
    /// as `buffer_hits` (free accesses — there is no page IO), so
    /// `fetches()` is the visit count and `reads` is always 0.
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            reads: 0,
            buffer_hits: self.visits.load(Ordering::Relaxed),
            writes: 0,
        }
    }

    /// Zeroes the visit counter.
    pub fn reset_io_stats(&self) {
        self.visits.store(0, Ordering::Relaxed);
    }

    /// Opens a per-query attribution window over this tree's node visits
    /// (same mechanism as the paged backend's page-access windows).
    pub fn io_snapshot(&self) -> IoSnapshot<'_> {
        IoSnapshot::open(self as *const PackedRTree as usize)
    }

    // -----------------------------------------------------------------
    // Queries (the TreeBackend surface, as inherent methods)
    // -----------------------------------------------------------------

    /// All items whose MBR intersects `window`.
    pub fn range_rect(&self, window: &Rect) -> Vec<Item> {
        self.search(|r| r.intersects(window))
    }

    /// All items whose MBR lies within Euclidean distance `radius` of
    /// `center`.
    pub fn range_circle(&self, center: Point, radius: f64) -> Vec<Item> {
        let r_sq = radius * radius;
        self.search(|r| r.mindist_point_sq(center) <= r_sq)
    }

    fn search(&self, keep: impl Fn(&Rect) -> bool) -> Vec<Item> {
        let mut out = Vec::new();
        let Some(root) = self.root_slot() else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(slot) = stack.pop() {
            self.record_visit();
            let leaf = self.slot_level(slot) == 1;
            for c in self.children_of(slot) {
                let mbr = self.slot_box(c);
                if keep(&mbr) {
                    if leaf {
                        out.push(Item::new(mbr, self.slot_index(c)));
                    } else {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    /// Generic pruned range search with per-item bound values; see
    /// [`RTree::range_by_bound`](crate::RTree::range_by_bound) for the
    /// monotonicity contract.
    pub fn range_by_bound(&self, bound: impl Fn(&Rect) -> f64, threshold: f64) -> Vec<(Item, f64)> {
        let mut out = Vec::new();
        let Some(root) = self.root_slot() else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(slot) = stack.pop() {
            self.record_visit();
            let leaf = self.slot_level(slot) == 1;
            for c in self.children_of(slot) {
                let mbr = self.slot_box(c);
                let b = bound(&mbr);
                if b <= threshold {
                    if leaf {
                        out.push((Item::new(mbr, self.slot_index(c)), b));
                    } else {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    /// Every item, in storage (Hilbert) order; counts one visit per leaf
    /// node scanned.
    pub fn items(&self) -> Vec<Item> {
        if self.num_items == 0 {
            return Vec::new();
        }
        for _ in self.num_items..self.level_ends[1] {
            // One visit per leaf-level node: the packed analogue of the
            // paged full scan's page fetches. (Range is leaf node count.)
            self.record_visit();
        }
        self.items_uncounted()
    }

    /// Every item without touching the visit counter (rebuild support,
    /// diagnostics).
    pub fn items_uncounted(&self) -> Vec<Item> {
        (0..self.num_items)
            .map(|slot| Item::new(self.slot_box(slot), self.slot_index(slot)))
            .collect()
    }

    // -----------------------------------------------------------------
    // TreeBackend node protocol
    // -----------------------------------------------------------------

    pub(crate) fn root_node_ref(&self) -> Option<u64> {
        self.root_slot().map(|s| s as u64)
    }

    /// Trait level of node `slot` (0 = leaf). Derived from the slot index
    /// alone — free, unlike the paged backend where it costs a fetch.
    pub(crate) fn node_ref_level(&self, slot: u64) -> u32 {
        (self.slot_level(slot as usize) - 1) as u32
    }

    pub(crate) fn read_node_ref(&self, slot: u64, out: &mut Vec<Entry>) -> u32 {
        out.clear();
        self.record_visit();
        let slot = slot as usize;
        let leaf = self.slot_level(slot) == 1;
        for c in self.children_of(slot) {
            let ptr = if leaf { self.slot_index(c) } else { c as u64 };
            out.push(Entry::new(self.slot_box(c), ptr));
        }
        (self.slot_level(slot) - 1) as u32
    }

    // -----------------------------------------------------------------
    // Structure statistics
    // -----------------------------------------------------------------

    /// Per-level structural statistics (leaf nodes = level 0), matching
    /// the paged [`RTree::stats`](crate::RTree::stats) conventions.
    pub fn stats(&self) -> TreeStats {
        let node_levels = self.level_ends.len() - 1;
        let mut stats = TreeStats {
            levels: vec![LevelStats::default(); node_levels],
        };
        for lvl in 1..self.level_ends.len() {
            let slots = self.level_ends[lvl - 1]..self.level_ends[lvl];
            let s = &mut stats.levels[lvl - 1];
            s.nodes = slots.len();
            let mut mbrs = Vec::with_capacity(slots.len());
            for slot in slots {
                s.entries += self.children_of(slot).len();
                let mbr = self.slot_box(slot);
                s.area += mbr.area();
                mbrs.push(mbr);
            }
            for i in 0..mbrs.len() {
                for j in (i + 1)..mbrs.len() {
                    s.overlap += mbrs[i].intersection_area(&mbrs[j]);
                }
            }
        }
        stats
    }

    // -----------------------------------------------------------------
    // Structural validation
    // -----------------------------------------------------------------

    /// Deep structural check of the packed image. Verifies, in order:
    ///
    /// * **header sanity** — fan-out ≥ 2, the level layout matches a
    ///   recomputation from `(num_items, node_size)`, and the word buffer
    ///   has exactly `slots × (BOX_WORDS + 1)` words;
    /// * **level monotonicity** — each node level is `ceil(below /
    ///   node_size)` wide, shrinking to a single root (implied by the
    ///   layout recomputation, asserted explicitly for the root);
    /// * **item boxes** — every item MBR is finite and non-inverted;
    /// * **child coverage and index bounds** — each node's child pointer
    ///   lands exactly where the left-to-right pack put it, ranges tile
    ///   the level below with no gap, overlap, or out-of-bounds slot;
    /// * **child MBR containment** — every node box is *bit-exactly* the
    ///   union of its children's boxes (the build computes it that way,
    ///   so any drift is corruption, not rounding).
    ///
    /// Runs in `O(slots)` and is called via `debug_assert!` after every
    /// build and every `AnyTree::apply_edits` re-pack; a corrupted image
    /// yields a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_size < 2 {
            return Err(format!("fan-out {} < 2", self.node_size));
        }
        let counts = level_counts(self.num_items, self.node_size);
        let mut expect_ends = Vec::with_capacity(counts.len());
        let mut total = 0usize;
        for c in &counts {
            total += c;
            expect_ends.push(total);
        }
        if *self.level_ends != *expect_ends.as_slice() {
            return Err(format!(
                "level layout {:?} does not match recomputation {:?} for {} items at fan-out {}",
                self.level_ends, expect_ends, self.num_items, self.node_size
            ));
        }
        if self.words.len() != total * (BOX_WORDS + 1) {
            return Err(format!(
                "word buffer holds {} words, layout needs {}",
                self.words.len(),
                total * (BOX_WORDS + 1)
            ));
        }
        if self.num_items == 0 {
            return Ok(());
        }
        if counts.last() != Some(&1) {
            return Err(format!("top level has {:?} slots, want 1", counts.last()));
        }
        for slot in 0..self.num_items {
            // Read the raw words: `slot_box` round-trips through
            // `Rect::new`, whose f64::min/max would silently launder a
            // NaN coordinate into a finite box.
            let w = slot * BOX_WORDS;
            let coords = [
                f64::from_bits(self.words[w]),
                f64::from_bits(self.words[w + 1]),
                f64::from_bits(self.words[w + 2]),
                f64::from_bits(self.words[w + 3]),
            ];
            if coords.iter().any(|v| !v.is_finite()) {
                return Err(format!("item slot {slot} has non-finite box {coords:?}"));
            }
            if coords[0] > coords[2] || coords[1] > coords[3] {
                return Err(format!("item slot {slot} has inverted box {coords:?}"));
            }
        }
        for level in 1..self.level_ends.len() {
            let child_lo = if level >= 2 {
                self.level_ends[level - 2]
            } else {
                0
            };
            let child_hi = self.level_ends[level - 1];
            let mut expect_first = child_lo;
            for slot in self.level_ends[level - 1]..self.level_ends[level] {
                let first = self.slot_index(slot) as usize;
                if first != expect_first {
                    return Err(format!(
                        "node slot {slot} (level {level}) points at child {first}, \
                         left-to-right packing requires {expect_first}"
                    ));
                }
                let children = first..(first + self.node_size).min(child_hi);
                if children.is_empty() {
                    return Err(format!("node slot {slot} (level {level}) has no children"));
                }
                let parent = self.slot_box(slot);
                let mut union = Rect::empty();
                for c in children.clone() {
                    let cb = self.slot_box(c);
                    if cb.min.x < parent.min.x
                        || cb.min.y < parent.min.y
                        || cb.max.x > parent.max.x
                        || cb.max.y > parent.max.y
                    {
                        return Err(format!(
                            "child slot {c} box {cb:?} escapes parent slot {slot} box {parent:?}"
                        ));
                    }
                    union = union.union(&cb);
                }
                let pw = slot * BOX_WORDS;
                let union_bits = [
                    union.min.x.to_bits(),
                    union.min.y.to_bits(),
                    union.max.x.to_bits(),
                    union.max.y.to_bits(),
                ];
                if self.words[pw..pw + BOX_WORDS] != union_bits {
                    return Err(format!(
                        "node slot {slot} box {parent:?} is not the exact union {union:?} \
                         of its children"
                    ));
                }
                expect_first = children.end;
            }
            if expect_first != child_hi {
                return Err(format!(
                    "level {level} covers children only up to slot {expect_first}, \
                     level below ends at {child_hi}"
                ));
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Persistence — header + the raw word buffer
    // -----------------------------------------------------------------

    /// Serializes the pack: a small header followed by the word buffer
    /// verbatim (no per-node encoding — the buffer *is* the tree).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + self.words.len() * 8);
        buf.put_slice(PACKED_MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(self.node_size as u16);
        buf.put_u64_le(self.num_items as u64);
        buf.put_u64_le(self.words.len() as u64);
        for w in self.words.iter() {
            buf.put_u64_le(*w);
        }
        buf.freeze()
    }

    /// Decodes an image produced by [`PackedRTree::to_bytes`]. The level
    /// layout is recomputed from `(num_items, node_size)`; the word
    /// buffer is taken as-is, so the round trip is bit-exact and costs no
    /// per-node rebuild. The decoded tree carries a default config tagged
    /// with the packed backend and the stored fan-out.
    pub fn from_bytes(mut data: &[u8]) -> Result<PackedRTree, PersistError> {
        if data.remaining() < 4 {
            return Err(PersistError::Truncated);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != PACKED_MAGIC {
            return Err(PersistError::BadMagic);
        }
        if data.remaining() < 2 + 2 + 8 + 8 {
            return Err(PersistError::Truncated);
        }
        let version = data.get_u16_le();
        if version != VERSION {
            return Err(PersistError::BadVersion(version));
        }
        let node_size = data.get_u16_le() as usize;
        let num_items = data.get_u64_le() as usize;
        let word_count = data.get_u64_le() as usize;
        if node_size < 2 || data.remaining() < word_count * 8 {
            return Err(PersistError::Truncated);
        }
        let counts = level_counts(num_items, node_size);
        let mut level_ends = Vec::with_capacity(counts.len());
        let mut total = 0usize;
        for c in &counts {
            total += c;
            level_ends.push(total);
        }
        if word_count != total * (BOX_WORDS + 1) {
            return Err(PersistError::Truncated);
        }
        let words: Box<[u64]> = (0..word_count).map(|_| data.get_u64_le()).collect();
        let config = RTreeConfig {
            backend: Backend::Packed,
            packed_node_size: node_size,
            ..RTreeConfig::paper()
        };
        Ok(PackedRTree {
            config,
            words,
            num_items,
            node_size,
            level_ends: level_ends.into_boxed_slice(),
            visits: AtomicU64::new(0),
            generation: 0,
        })
    }

    /// Writes the byte image to a file.
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a packed-tree image from a file.
    pub fn load_from_file(path: impl AsRef<Path>) -> Result<PackedRTree, PersistError> {
        let data = std::fs::read(path)?;
        PackedRTree::from_bytes(&data)
    }
}

impl crate::backend::TreeBackend for PackedRTree {
    fn len(&self) -> usize {
        PackedRTree::len(self)
    }

    fn root_mbr(&self) -> Rect {
        PackedRTree::root_mbr(self)
    }

    fn root_node(&self) -> Option<u64> {
        self.root_node_ref()
    }

    fn node_level(&self, node: u64) -> u32 {
        self.node_ref_level(node)
    }

    fn read_node_into(&self, node: u64, out: &mut Vec<Entry>) -> u32 {
        self.read_node_ref(node, out)
    }

    fn range_rect(&self, window: &Rect) -> Vec<Item> {
        PackedRTree::range_rect(self, window)
    }

    fn range_circle(&self, center: Point, radius: f64) -> Vec<Item> {
        PackedRTree::range_circle(self, center, radius)
    }

    fn range_by_bound(&self, bound: &dyn Fn(&Rect) -> f64, threshold: f64) -> Vec<(Item, f64)> {
        PackedRTree::range_by_bound(self, bound, threshold)
    }

    fn items(&self) -> Vec<Item> {
        PackedRTree::items(self)
    }

    fn io_stats(&self) -> IoStats {
        PackedRTree::io_stats(self)
    }

    fn reset_io_stats(&self) {
        PackedRTree::reset_io_stats(self)
    }

    fn io_snapshot(&self) -> IoSnapshot<'_> {
        PackedRTree::io_snapshot(self)
    }

    fn reset_buffer(&self) {
        // Nothing is cached: the buffer-free read path is the point.
    }

    fn backend_name(&self) -> &'static str {
        "packed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTree;

    fn packed_config(node_size: usize) -> RTreeConfig {
        RTreeConfig {
            backend: Backend::Packed,
            packed_node_size: node_size,
            ..RTreeConfig::paper()
        }
    }

    fn sample_items(n: usize) -> Vec<Item> {
        (0..n as u64)
            .map(|i| {
                Item::point(
                    Point::new((i % 37) as f64 * 0.113, (i % 29) as f64 * 0.177),
                    i,
                )
            })
            .collect()
    }

    fn sorted_ids(items: Vec<Item>) -> Vec<u64> {
        let mut ids: Vec<u64> = items.into_iter().map(|i| i.id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn shape_of_small_packs() {
        let t = PackedRTree::build(packed_config(4), sample_items(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.num_nodes(), 1);

        let t = PackedRTree::build(packed_config(4), sample_items(4));
        assert_eq!(t.height(), 1);
        assert_eq!(t.num_nodes(), 1);

        let t = PackedRTree::build(packed_config(4), sample_items(17));
        // 17 items → 5 leaves → 2 mid → 1 root.
        assert_eq!(t.height(), 3);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(sorted_ids(t.items_uncounted()), (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn empty_pack_answers_empty() {
        let t = PackedRTree::build(packed_config(8), Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.root_mbr().is_empty());
        assert!(t
            .range_rect(&Rect::from_coords(-1.0, -1.0, 1.0, 1.0))
            .is_empty());
        assert!(t.range_circle(Point::new(0.0, 0.0), 10.0).is_empty());
        assert!(t.items().is_empty());
        assert!(t.nearest(Point::new(0.0, 0.0)).next().is_none());
    }

    #[test]
    fn range_queries_match_paged_tree() {
        let items = sample_items(500);
        let paged = RTree::bulk_load_str(RTreeConfig::tiny(8), items.clone());
        let packed = PackedRTree::build(packed_config(8), items);
        let windows = [
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            Rect::from_coords(1.0, 2.0, 3.0, 4.5),
            Rect::from_coords(-5.0, -5.0, 50.0, 50.0),
            Rect::from_coords(2.0, 2.0, 2.0, 2.0),
        ];
        for w in &windows {
            assert_eq!(
                sorted_ids(paged.range_rect(w)),
                sorted_ids(packed.range_rect(w)),
                "window {w:?}"
            );
        }
        for (c, r) in [
            (Point::new(1.0, 1.0), 0.7),
            (Point::new(2.5, 3.0), 1.3),
            (Point::new(0.0, 0.0), 100.0),
            (Point::new(-3.0, -3.0), 0.5),
        ] {
            assert_eq!(
                sorted_ids(paged.range_circle(c, r)),
                sorted_ids(packed.range_circle(c, r)),
            );
        }
    }

    #[test]
    fn scored_bound_search_matches_and_scores_are_exact() {
        let items = sample_items(300);
        let packed = PackedRTree::build(packed_config(16), items);
        let q = Point::new(1.7, 2.2);
        let got = PackedRTree::range_by_bound(&packed, |r| r.mindist_point(q), 1.5);
        for (item, score) in &got {
            assert_eq!(
                *score,
                item.mbr.mindist_point(q),
                "hoisted score is the bound value"
            );
            assert!(*score <= 1.5);
        }
        assert_eq!(
            sorted_ids(got.into_iter().map(|(i, _)| i).collect()),
            sorted_ids(packed.range_circle(q, 1.5)),
        );
    }

    #[test]
    fn nearest_iteration_matches_paged() {
        let items = sample_items(400);
        let paged = RTree::bulk_load_str(RTreeConfig::tiny(8), items.clone());
        let packed = PackedRTree::build(packed_config(8), items);
        let q = Point::new(2.05, 1.95);
        let a: Vec<(u64, u64)> = paged
            .k_nearest(q, 40)
            .into_iter()
            .map(|(i, d)| (i.id, d.to_bits()))
            .collect();
        let b: Vec<(u64, u64)> = packed
            .nearest(q)
            .take(40)
            .map(|(i, d)| (i.id, d.to_bits()))
            .collect();
        // Distances must agree bit-exactly; id order can differ on exact
        // ties, so compare (id, distance) sets.
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn visits_are_counted_and_windowed() {
        let packed = PackedRTree::build(packed_config(4), sample_items(200));
        packed.reset_io_stats();
        let snap = packed.io_snapshot();
        let hits = packed.range_circle(Point::new(1.0, 1.0), 1.0);
        assert!(!hits.is_empty());
        let io = snap.finish();
        assert_eq!(io.reads, 0, "packed has no page IO");
        assert!(io.buffer_hits > 0, "node visits are recorded");
        assert_eq!(io.fetches(), packed.io_stats().fetches());
        // Visits stay bounded by the node count per traversal.
        assert!(io.fetches() <= packed.num_nodes() as u64);
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let packed = PackedRTree::build(packed_config(8), sample_items(321));
        let img = packed.to_bytes();
        let back = PackedRTree::from_bytes(&img).unwrap();
        assert_eq!(back.len(), packed.len());
        assert_eq!(back.height(), packed.height());
        assert_eq!(back.words, packed.words);
        let w = Rect::from_coords(0.5, 0.5, 3.0, 3.0);
        assert_eq!(
            sorted_ids(back.range_rect(&w)),
            sorted_ids(packed.range_rect(&w))
        );
        // And the re-serialized image is identical.
        assert_eq!(&*back.to_bytes(), &*img);
    }

    #[test]
    fn rejects_garbage_images() {
        assert!(matches!(
            PackedRTree::from_bytes(b"nope"),
            Err(PersistError::BadMagic) | Err(PersistError::Truncated)
        ));
        assert!(matches!(
            PackedRTree::from_bytes(b"OPKD\xff\xff"),
            Err(PersistError::BadVersion(_)) | Err(PersistError::Truncated)
        ));
        let img = PackedRTree::build(packed_config(8), sample_items(64)).to_bytes();
        assert!(matches!(
            PackedRTree::from_bytes(&img[..img.len() / 2]),
            Err(PersistError::Truncated)
        ));
    }

    #[test]
    fn stats_mirror_paged_conventions() {
        let packed = PackedRTree::build(packed_config(4), sample_items(100));
        let s = packed.stats();
        assert_eq!(s.levels.len(), packed.height() as usize);
        assert_eq!(s.total_nodes(), packed.num_nodes());
        assert_eq!(s.leaves().entries, 100);
        for lvl in 1..s.levels.len() {
            assert_eq!(s.levels[lvl].entries, s.levels[lvl - 1].nodes);
        }
        // Hilbert packing fills every node except possibly the last per
        // level, so occupancy is near 1.
        assert!(s.leaves().occupancy(4) > 0.9);
    }

    #[test]
    fn validate_accepts_fresh_and_roundtripped_packs() {
        for n in [0usize, 1, 4, 17, 321] {
            let t = PackedRTree::build(packed_config(4), sample_items(n));
            assert_eq!(t.validate(), Ok(()), "fresh pack of {n} items");
            let back = PackedRTree::from_bytes(&t.to_bytes()).unwrap();
            assert_eq!(back.validate(), Ok(()), "roundtripped pack of {n} items");
        }
    }

    #[test]
    fn validate_detects_corrupted_words_and_layout() {
        // Shrink the root box: its children escape it.
        let mut t = PackedRTree::build(packed_config(4), sample_items(50));
        let root = t.total_slots() - 1;
        t.words[root * BOX_WORDS + 2] = 0.0f64.to_bits(); // max.x := 0
        let err = t.validate().unwrap_err();
        assert!(err.contains("escapes parent"), "got: {err}");

        // Point a node at the wrong child slot: packing contiguity broken.
        let mut t = PackedRTree::build(packed_config(4), sample_items(50));
        let first_node = t.num_items;
        let idx = t.total_slots() * BOX_WORDS + first_node;
        t.words[idx] += 1;
        let err = t.validate().unwrap_err();
        assert!(err.contains("left-to-right packing"), "got: {err}");

        // NaN a leaf item's coordinate: non-finite box.
        let mut t = PackedRTree::build(packed_config(4), sample_items(50));
        t.words[0] = f64::NAN.to_bits();
        let err = t.validate().unwrap_err();
        assert!(
            err.contains("non-finite") || err.contains("escapes parent"),
            "got: {err}"
        );

        // Tamper with the recorded level layout: header sanity.
        let mut t = PackedRTree::build(packed_config(4), sample_items(50));
        let mut ends = t.level_ends.to_vec();
        ends[0] += 1;
        t.level_ends = ends.into_boxed_slice();
        let err = t.validate().unwrap_err();
        assert!(err.contains("level layout"), "got: {err}");
    }
}
