//! The R*-tree proper: construction, maintenance and basic queries.

use crate::config::RTreeConfig;
use crate::entry::{Entry, Item, PageId};
use crate::node::Node;
use crate::store::{IoStats, PageStore};
use obstacle_geom::{hilbert_index_unit, Point, Rect};

/// Number of least-enlargement candidates examined by the overlap-based
/// `ChooseSubtree` rule (the R* paper's "nearly minimum" optimisation that
/// avoids the quadratic overlap scan on large nodes).
const CHOOSE_SUBTREE_P: usize = 32;

/// A disk-model R*-tree over [`Item`]s.
///
/// See the [crate docs](crate) for the big picture. All query entry points
/// count page accesses through the tree's LRU buffer; use
/// [`RTree::io_stats`] / [`RTree::reset_io_stats`] to measure workloads.
#[derive(Debug)]
pub struct RTree {
    pub(crate) config: RTreeConfig,
    pub(crate) store: PageStore,
    pub(crate) root: PageId,
    pub(crate) height: u32,
    pub(crate) len: usize,
}

impl RTree {
    /// Creates an empty tree.
    pub fn new(config: RTreeConfig) -> Self {
        let mut store = PageStore::new(config.min_buffer_pages, config.shards());
        let root = store.allocate(Node::new(0));
        RTree {
            config,
            store,
            root,
            height: 1,
            len: 0,
        }
    }

    /// Builds a tree by inserting every item one by one (R* insertion, as
    /// in the paper's experiments).
    pub fn build(config: RTreeConfig, items: impl IntoIterator<Item = Item>) -> Self {
        let mut t = RTree::new(config);
        for it in items {
            t.insert(it);
        }
        t.finish_build();
        t
    }

    /// Bulk loads with Sort-Tile-Recursive packing \[LEL97-style\]:
    /// much faster than one-by-one insertion and near-100 % occupancy.
    pub fn bulk_load_str(config: RTreeConfig, items: Vec<Item>) -> Self {
        let mut t = RTree::new(config);
        if items.is_empty() {
            t.finish_build();
            return t;
        }
        let cap = config.capacity();
        let mut entries: Vec<Entry> = items.into_iter().map(Entry::from).collect();
        let mut level = 0u32;
        loop {
            entries = t.pack_str_level(entries, level, cap);
            if entries.len() == 1 {
                t.store.release(t.root); // drop the placeholder empty root
                t.root = entries[0].child();
                t.height = level + 1;
                break;
            }
            level += 1;
        }
        t.recount();
        t.finish_build();
        t
    }

    /// Bulk loads in Hilbert order: items are sorted by the Hilbert index
    /// of their centers within `universe` and packed sequentially.
    pub fn bulk_load_hilbert(config: RTreeConfig, mut items: Vec<Item>, universe: &Rect) -> Self {
        items.sort_by_key(|i| hilbert_index_unit(i.center(), universe));
        let mut t = RTree::new(config);
        if items.is_empty() {
            t.finish_build();
            return t;
        }
        let cap = config.capacity();
        let mut entries: Vec<Entry> = items.into_iter().map(Entry::from).collect();
        let mut level = 0u32;
        loop {
            entries = t.pack_chunks(entries, level, cap);
            if entries.len() == 1 {
                t.store.release(t.root);
                t.root = entries[0].child();
                t.height = level + 1;
                break;
            }
            level += 1;
        }
        t.recount();
        t.finish_build();
        t
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 for a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The tree's configuration.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Number of live pages (nodes).
    pub fn pages(&self) -> usize {
        self.store.live_pages()
    }

    /// MBR of the whole dataset.
    pub fn root_mbr(&self) -> Rect {
        self.store.node(self.root).mbr()
    }

    /// Root page id (used by the cross-tree query algorithms).
    pub(crate) fn root_page(&self) -> PageId {
        self.root
    }

    /// Reads a page with I/O accounting (crate-internal query support).
    pub(crate) fn read_page(&self, id: PageId) -> &Node {
        self.store.read(id)
    }

    /// Snapshot of the I/O counters.
    ///
    /// These are **tree-global**: every query of every thread adds to
    /// them. For attributing accesses to one query — mandatory once
    /// queries run concurrently — open an [`IoSnapshot`](crate::IoSnapshot)
    /// via [`RTree::io_snapshot`] instead of diffing this.
    pub fn io_stats(&self) -> IoStats {
        self.store.stats()
    }

    /// Opens a per-query I/O attribution window: accesses performed by
    /// the *current thread* on this tree while the handle is alive are
    /// recorded and returned by [`IoSnapshot::finish`](crate::IoSnapshot::finish),
    /// unpolluted by concurrent queries on other threads.
    pub fn io_snapshot(&self) -> crate::IoSnapshot<'_> {
        self.store.snapshot()
    }

    /// Zeroes the I/O counters.
    pub fn reset_io_stats(&self) {
        self.store.reset_stats();
    }

    /// Clears the buffer (cold start) and resizes it to the configured
    /// fraction of the current tree size. Call after bulk modifications
    /// and before a measured workload. The stripe count stays as built;
    /// see [`crate::RTreeConfig::buffer_shards`] and the store's
    /// `reset_buffer` for the shrink-below-stripe-count caveat.
    pub fn reset_buffer(&self) {
        self.store
            .reset_buffer(self.config.buffer_pages(self.store.live_pages()));
    }

    /// Total buffer capacity in pages (summed over all shards).
    pub fn buffer_capacity(&self) -> usize {
        self.store.buffer_capacity()
    }

    /// Number of lock stripes in the buffer pool (see
    /// [`RTreeConfig::buffer_shards`]).
    pub fn buffer_shards(&self) -> usize {
        self.store.shard_count()
    }

    /// Per-shard `(misses, hits)` counters, in shard order. Sums to the
    /// aggregate [`RTree::io_stats`] view; exposed for stripe-balance
    /// diagnostics and the striping test suite.
    pub fn buffer_shard_stats(&self) -> Vec<(u64, u64)> {
        self.store.shard_stats()
    }

    fn finish_build(&mut self) {
        // Re-stripe now that the tree's final size — and therefore its
        // 10 %-rule buffer capacity — is known: the placeholder pool of
        // `RTree::new` was sized (and its stripe count clamped) before
        // any page existed.
        self.store.rebuild_buffer(
            self.config.buffer_pages(self.store.live_pages()),
            self.config.shards(),
        );
        self.reset_io_stats();
    }

    // -----------------------------------------------------------------
    // Insertion (R*: ChooseSubtree + forced reinsertion + R* split)
    // -----------------------------------------------------------------

    /// Inserts one item.
    pub fn insert(&mut self, item: Item) {
        self.len += 1;
        // One forced reinsertion per level per insertion (R* rule). The
        // vector is indexed by level and grows with the tree.
        let mut reinserted = vec![false; (self.height + 2) as usize];
        let mut queue: Vec<(Entry, u32)> = vec![(item.into(), 0)];
        while let Some((entry, level)) = queue.pop() {
            self.insert_at_level(entry, level, &mut reinserted, &mut queue);
        }
    }

    /// One root-to-level insertion pass. Overflow is handled on the way
    /// back up; forced-reinsertion victims are pushed onto `queue` and
    /// re-inserted by the caller once this pass finishes (deferring keeps
    /// the ancestor path valid during the pass).
    fn insert_at_level(
        &mut self,
        entry: Entry,
        level: u32,
        reinserted: &mut Vec<bool>,
        queue: &mut Vec<(Entry, u32)>,
    ) {
        let path = self.choose_path(entry.mbr, level);
        let target = *path.last().expect("path includes target");
        self.store.read_mut(target).entries.push(entry);

        // Walk back towards the root fixing overflows and parent MBRs.
        for i in (0..path.len()).rev() {
            let node_id = path[i];
            let (node_len, node_level) = {
                let n = self.store.node(node_id);
                (n.len(), n.level)
            };
            if node_len > self.config.capacity() {
                let is_root = i == 0;
                if reinserted.len() <= node_level as usize {
                    reinserted.resize(node_level as usize + 1, false);
                }
                if !is_root && !reinserted[node_level as usize] {
                    reinserted[node_level as usize] = true;
                    let victims = self.take_reinsert_victims(node_id);
                    for v in victims {
                        queue.push((v, node_level));
                    }
                } else {
                    let new_entry = self.split_node(node_id);
                    if is_root {
                        self.grow_root(node_id, new_entry);
                        return;
                    }
                    let parent = path[i - 1];
                    self.store.read_mut(parent).entries.push(new_entry);
                }
            }
            // Refresh this node's MBR in its parent.
            if i > 0 {
                let mbr = self.store.node(node_id).mbr();
                let parent = path[i - 1];
                let p = self.store.read_mut(parent);
                if let Some(e) = p.entries.iter_mut().find(|e| e.child() == node_id) {
                    e.mbr = mbr;
                }
            }
        }
    }

    /// Root-to-target-level descent using the R* `ChooseSubtree` rules.
    /// Returns the page ids from the root down to the target node.
    fn choose_path(&self, mbr: Rect, level: u32) -> Vec<PageId> {
        let mut path = vec![self.root];
        let mut cur = self.root;
        loop {
            let node = self.store.read(cur);
            if node.level == level {
                return path;
            }
            let child = if node.level == 1 && level == 0 {
                self.choose_subtree_overlap(node, &mbr)
            } else {
                choose_subtree_area(node, &mbr)
            };
            path.push(child);
            cur = child;
        }
    }

    /// R* leaf-parent rule: minimise overlap enlargement among the
    /// `CHOOSE_SUBTREE_P` least-area-enlargement candidates.
    fn choose_subtree_overlap(&self, node: &Node, mbr: &Rect) -> PageId {
        debug_assert!(!node.is_empty());
        let mut order: Vec<usize> = (0..node.len()).collect();
        if node.len() > CHOOSE_SUBTREE_P {
            order.sort_by(|&a, &b| {
                let ea = node.entries[a].mbr.enlargement(mbr);
                let eb = node.entries[b].mbr.enlargement(mbr);
                obstacle_geom::total_cmp(ea, eb)
            });
            order.truncate(CHOOSE_SUBTREE_P);
        }
        let mut best = order[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &i in &order {
            let cand = &node.entries[i];
            let enlarged = cand.mbr.union(mbr);
            let mut overlap_delta = 0.0;
            for (j, other) in node.entries.iter().enumerate() {
                if j != i {
                    overlap_delta += enlarged.intersection_area(&other.mbr)
                        - cand.mbr.intersection_area(&other.mbr);
                }
            }
            let key = (overlap_delta, cand.mbr.enlargement(mbr), cand.mbr.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        node.entries[best].child()
    }

    /// Removes the `reinsert_count` entries whose centers are farthest
    /// from the node's MBR center, returning them close-first (R* "close
    /// reinsert").
    fn take_reinsert_victims(&mut self, node_id: PageId) -> Vec<Entry> {
        let p = self.config.reinsert_count();
        let node = self.store.read_mut(node_id);
        let center = node.mbr().center();
        node.entries.sort_by(|a, b| {
            let da = a.mbr.center().dist_sq(center);
            let db = b.mbr.center().dist_sq(center);
            obstacle_geom::total_cmp(da, db)
        });
        let keep = node.len() - p;
        let mut victims = node.entries.split_off(keep);
        // split_off leaves the closest entries in the node; victims are
        // ordered near-to-far already, which is exactly close-reinsert.
        victims.reverse(); // queue is a LIFO stack: reverse so that the
                           // closest victim is inserted first.
        victims
    }

    /// Splits an overflowing node in place; returns the parent entry for
    /// the newly allocated sibling.
    fn split_node(&mut self, node_id: PageId) -> Entry {
        let level = self.store.node(node_id).level;
        let entries = std::mem::take(&mut self.store.node_mut(node_id).entries);
        let (left, right) = rstar_split(entries, self.config.min_fill());
        self.store.node_mut(node_id).entries = left;
        let mut sibling = Node::new(level);
        sibling.entries = right;
        let mbr = sibling.mbr();
        let new_page = self.store.allocate(sibling);
        Entry::new(mbr, new_page as u64)
    }

    fn grow_root(&mut self, old_root: PageId, new_entry: Entry) {
        let old_mbr = self.store.node(old_root).mbr();
        let level = self.store.node(old_root).level;
        let mut root = Node::new(level + 1);
        root.entries.push(Entry::new(old_mbr, old_root as u64));
        root.entries.push(new_entry);
        self.root = self.store.allocate(root);
        self.height += 1;
    }

    // -----------------------------------------------------------------
    // Deletion (find-leaf + condense-tree)
    // -----------------------------------------------------------------

    /// Deletes an item (matched by id and exact MBR). Returns whether the
    /// item was found.
    pub fn delete(&mut self, item: &Item) -> bool {
        let Some(path) = self.find_leaf(self.root, item, &mut Vec::new()) else {
            return false;
        };
        let leaf = *path.last().unwrap();
        {
            let n = self.store.read_mut(leaf);
            let idx = n
                .entries
                .iter()
                .position(|e| e.ptr == item.id && e.mbr == item.mbr)
                .expect("find_leaf returned a leaf containing the item");
            n.entries.swap_remove(idx);
        }
        self.len -= 1;

        // Condense: walk up, dissolving underfull nodes.
        let mut orphans: Vec<(Entry, u32)> = Vec::new();
        for i in (1..path.len()).rev() {
            let node_id = path[i];
            let (node_len, node_level) = {
                let n = self.store.node(node_id);
                (n.len(), n.level)
            };
            let parent = path[i - 1];
            if node_len < self.config.min_fill() {
                // Remove from parent and schedule entries for reinsertion.
                let p = self.store.read_mut(parent);
                let idx = p
                    .entries
                    .iter()
                    .position(|e| e.child() == node_id)
                    .expect("parent lists child");
                p.entries.swap_remove(idx);
                let node_entries = std::mem::take(&mut self.store.node_mut(node_id).entries);
                for e in node_entries {
                    orphans.push((e, node_level));
                }
                self.store.release(node_id);
            } else {
                let mbr = self.store.node(node_id).mbr();
                let p = self.store.read_mut(parent);
                if let Some(e) = p.entries.iter_mut().find(|e| e.child() == node_id) {
                    e.mbr = mbr;
                }
            }
        }

        // Reinsert orphans at their original levels (highest levels first
        // so subtrees land before loose leaves rearrange the tree).
        orphans.sort_by_key(|(_, lvl)| std::cmp::Reverse(*lvl));
        for (entry, level) in orphans {
            // If the tree shrank below the orphan's level, its subtree
            // must be dissolved into items; with top-down level ordering
            // this cannot happen before the root shrink below, so clamp.
            let level = level.min(self.height - 1);
            let mut reinserted = vec![true; (self.height + 2) as usize]; // no forced reinsert on delete
            let mut queue = vec![(entry, level)];
            while let Some((e, l)) = queue.pop() {
                self.insert_at_level(e, l, &mut reinserted, &mut queue);
            }
        }

        // Shrink the root while it is an internal node with one child.
        loop {
            let root = self.store.node(self.root);
            if root.level > 0 && root.len() == 1 {
                let child = root.entries[0].child();
                self.store.release(self.root);
                self.root = child;
                self.height -= 1;
            } else {
                break;
            }
        }
        true
    }

    fn find_leaf(&self, page: PageId, item: &Item, path: &mut Vec<PageId>) -> Option<Vec<PageId>> {
        path.push(page);
        let node = self.store.read(page);
        if node.is_leaf() {
            if node
                .entries
                .iter()
                .any(|e| e.ptr == item.id && e.mbr == item.mbr)
            {
                return Some(path.clone());
            }
        } else {
            let children: Vec<PageId> = node
                .entries
                .iter()
                .filter(|e| e.mbr.contains_rect(&item.mbr))
                .map(|e| e.child())
                .collect();
            for child in children {
                if let Some(found) = self.find_leaf(child, item, path) {
                    return Some(found);
                }
            }
        }
        path.pop();
        None
    }

    // -----------------------------------------------------------------
    // Bulk-load packing helpers
    // -----------------------------------------------------------------

    /// Packs `entries` into nodes of `level` using STR tiling; returns the
    /// parent-level entries.
    fn pack_str_level(&mut self, mut entries: Vec<Entry>, level: u32, cap: usize) -> Vec<Entry> {
        let n = entries.len();
        let node_count = n.div_ceil(cap);
        let slices = (node_count as f64).sqrt().ceil() as usize;
        let slice_len = slices * cap;
        entries.sort_by(|a, b| obstacle_geom::total_cmp(a.mbr.center().x, b.mbr.center().x));
        let mut parents = Vec::with_capacity(node_count);
        for slab in entries.chunks_mut(slice_len.max(1)) {
            slab.sort_by(|a, b| obstacle_geom::total_cmp(a.mbr.center().y, b.mbr.center().y));
            for chunk in slab.chunks(cap) {
                parents.push(self.pack_node(chunk, level));
            }
        }
        parents
    }

    /// Packs `entries` into consecutive nodes preserving their order
    /// (used after a Hilbert sort).
    fn pack_chunks(&mut self, entries: Vec<Entry>, level: u32, cap: usize) -> Vec<Entry> {
        let mut parents = Vec::with_capacity(entries.len().div_ceil(cap));
        for chunk in entries.chunks(cap) {
            parents.push(self.pack_node(chunk, level));
        }
        parents
    }

    fn pack_node(&mut self, chunk: &[Entry], level: u32) -> Entry {
        let mut node = Node::new(level);
        node.entries.extend_from_slice(chunk);
        let mbr = node.mbr();
        let page = self.store.allocate(node);
        Entry::new(mbr, page as u64)
    }

    fn recount(&mut self) {
        fn count(t: &RTree, page: PageId) -> usize {
            let n = t.store.node(page);
            if n.is_leaf() {
                n.len()
            } else {
                n.entries.iter().map(|e| count(t, e.child())).sum()
            }
        }
        self.len = count(self, self.root);
    }

    // -----------------------------------------------------------------
    // Basic queries (range); NN / join / closest pairs live in `query`.
    // -----------------------------------------------------------------

    /// All items whose MBR intersects `window`.
    pub fn range_rect(&self, window: &Rect) -> Vec<Item> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_page(page);
            if node.is_leaf() {
                out.extend(
                    node.entries
                        .iter()
                        .filter(|e| e.mbr.intersects(window))
                        .map(|e| Item::from(*e)),
                );
            } else {
                stack.extend(
                    node.entries
                        .iter()
                        .filter(|e| e.mbr.intersects(window))
                        .map(|e| e.child()),
                );
            }
        }
        out
    }

    /// All items whose MBR lies within Euclidean distance `radius` of
    /// `center` (`mindist(MBR, center) ≤ radius`) — for point items this is
    /// the exact disk range query of the paper; for rectangle items it
    /// returns exactly the rectangles intersecting the disk.
    pub fn range_circle(&self, center: Point, radius: f64) -> Vec<Item> {
        let r_sq = radius * radius;
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_page(page);
            if node.is_leaf() {
                out.extend(
                    node.entries
                        .iter()
                        .filter(|e| e.mbr.mindist_point_sq(center) <= r_sq)
                        .map(|e| Item::from(*e)),
                );
            } else {
                stack.extend(
                    node.entries
                        .iter()
                        .filter(|e| e.mbr.mindist_point_sq(center) <= r_sq)
                        .map(|e| e.child()),
                );
            }
        }
        out
    }

    /// Generic pruned range search: returns all items with
    /// `bound(item.mbr) ≤ threshold`, visiting only subtrees whose node
    /// MBR satisfies the same predicate. Each qualifying item is returned
    /// together with its bound value: the closure runs exactly once per
    /// entry on the descent path, and callers that need the score again
    /// (the obstructed-distance fixpoint re-checks every fresh obstacle
    /// against the current radius) reuse it instead of re-evaluating.
    ///
    /// `bound` must be *monotone under containment*: `R ⊆ R'` implies
    /// `bound(R') ≤ bound(R)` (true for any "min distance from the
    /// rectangle to X" metric). Circle ranges use `mindist` to a point;
    /// the ellipse pruning of the obstructed-distance computation uses
    /// the sum of `mindist`s to the two foci.
    pub fn range_by_bound(&self, bound: impl Fn(&Rect) -> f64, threshold: f64) -> Vec<(Item, f64)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_page(page);
            if node.is_leaf() {
                out.extend(node.entries.iter().filter_map(|e| {
                    let b = bound(&e.mbr);
                    (b <= threshold).then(|| (Item::from(*e), b))
                }));
            } else {
                stack.extend(
                    node.entries
                        .iter()
                        .filter(|e| bound(&e.mbr) <= threshold)
                        .map(|e| e.child()),
                );
            }
        }
        out
    }

    /// Every item in the tree, in storage order (full scan, counted I/O).
    pub fn items(&self) -> Vec<Item> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_page(page);
            if node.is_leaf() {
                out.extend(node.entries.iter().map(|e| Item::from(*e)));
            } else {
                stack.extend(node.entries.iter().map(|e| e.child()));
            }
        }
        out
    }

    // -----------------------------------------------------------------
    // Invariant checking (tests / debugging; no I/O accounting)
    // -----------------------------------------------------------------

    /// Checks the structural invariants of the tree. When `check_fill` is
    /// true, non-root nodes must respect the R* minimum fill (disable for
    /// bulk-loaded trees whose last sibling per level may be underfull).
    pub fn validate(&self, check_fill: bool) -> Result<(), String> {
        let root = self.store.node(self.root);
        if root.level != self.height - 1 {
            return Err(format!(
                "root level {} inconsistent with height {}",
                root.level, self.height
            ));
        }
        let mut item_count = 0usize;
        self.validate_node(self.root, true, check_fill, &mut item_count)?;
        if item_count != self.len {
            return Err(format!(
                "tree reports len {} but holds {} items",
                self.len, item_count
            ));
        }
        Ok(())
    }

    fn validate_node(
        &self,
        page: PageId,
        is_root: bool,
        check_fill: bool,
        item_count: &mut usize,
    ) -> Result<(), String> {
        let node = self.store.node(page);
        if node.len() > self.config.capacity() {
            return Err(format!(
                "node {page} overflows: {} > {}",
                node.len(),
                self.config.capacity()
            ));
        }
        if !is_root && check_fill && node.len() < self.config.min_fill() {
            return Err(format!(
                "node {page} underfull: {} < {}",
                node.len(),
                self.config.min_fill()
            ));
        }
        if is_root && !node.is_leaf() && node.len() < 2 {
            return Err(format!("internal root {page} has fewer than 2 children"));
        }
        if node.is_leaf() {
            *item_count += node.len();
            return Ok(());
        }
        for e in &node.entries {
            let child = self.store.node(e.child());
            if child.level + 1 != node.level {
                return Err(format!(
                    "child {} level {} under node {page} level {}",
                    e.child(),
                    child.level,
                    node.level
                ));
            }
            let child_mbr = child.mbr();
            if child_mbr != e.mbr {
                return Err(format!(
                    "entry MBR for child {} is stale: {:?} != {:?}",
                    e.child(),
                    e.mbr,
                    child_mbr
                ));
            }
            self.validate_node(e.child(), false, check_fill, item_count)?;
        }
        Ok(())
    }
}

/// `ChooseSubtree` for internal levels: least area enlargement, ties by
/// smallest area.
fn choose_subtree_area(node: &Node, mbr: &Rect) -> PageId {
    debug_assert!(!node.is_empty());
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for (i, e) in node.entries.iter().enumerate() {
        let key = (e.mbr.enlargement(mbr), e.mbr.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    node.entries[best].child()
}

/// The R* split: choose the split axis by minimum margin sum over all
/// legal distributions (sorted by lower and upper bounds), then the
/// distribution with minimal overlap (ties: minimal total area).
fn rstar_split(entries: Vec<Entry>, min_fill: usize) -> (Vec<Entry>, Vec<Entry>) {
    let m = entries.len();
    debug_assert!(m >= 2);
    let k_lo = min_fill.max(1).min(m - 1);
    let k_hi = (m - min_fill.max(1)).max(k_lo);

    // Candidate orderings: by (lower, upper) on each axis.
    let mut orderings: Vec<Vec<Entry>> = Vec::with_capacity(4);
    for axis in 0..2 {
        for bound in 0..2 {
            let mut v = entries.clone();
            v.sort_by(|a, b| {
                let ka = sort_key(&a.mbr, axis, bound);
                let kb = sort_key(&b.mbr, axis, bound);
                obstacle_geom::total_cmp(ka.0, kb.0).then(obstacle_geom::total_cmp(ka.1, kb.1))
            });
            orderings.push(v);
        }
    }

    // Margin sum per axis (two orderings each).
    let mut axis_margin = [0.0f64; 2];
    let mut prefix_suffix: Vec<(Vec<Rect>, Vec<Rect>)> = Vec::with_capacity(4);
    for (oi, ord) in orderings.iter().enumerate() {
        let (prefix, suffix) = prefix_suffix_mbrs(ord);
        for k in k_lo..=k_hi {
            axis_margin[oi / 2] += prefix[k - 1].margin() + suffix[k].margin();
        }
        prefix_suffix.push((prefix, suffix));
    }
    let axis = if axis_margin[0] <= axis_margin[1] {
        0
    } else {
        1
    };

    // Best distribution on the chosen axis across its two orderings.
    let mut best: Option<(usize, usize)> = None; // (ordering idx, k)
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    // Indexing two parallel tables (`orderings`, `prefix_suffix`) by the
    // same slot, so a range loop is the clear form here.
    #[allow(clippy::needless_range_loop)]
    for oi in (axis * 2)..(axis * 2 + 2) {
        let (prefix, suffix) = &prefix_suffix[oi];
        for k in k_lo..=k_hi {
            let left = prefix[k - 1];
            let right = suffix[k];
            let key = (left.intersection_area(&right), left.area() + right.area());
            if key < best_key {
                best_key = key;
                best = Some((oi, k));
            }
        }
    }
    let (oi, k) = best.expect("at least one distribution");
    let mut chosen = orderings.swap_remove(oi);
    let right = chosen.split_off(k);
    (chosen, right)
}

fn sort_key(r: &Rect, axis: usize, bound: usize) -> (f64, f64) {
    match (axis, bound) {
        (0, 0) => (r.min.x, r.max.x),
        (0, _) => (r.max.x, r.min.x),
        (_, 0) => (r.min.y, r.max.y),
        (_, _) => (r.max.y, r.min.y),
    }
}

/// `prefix[i]` = MBR of `ord[0..=i]`; `suffix[i]` = MBR of `ord[i..]`.
fn prefix_suffix_mbrs(ord: &[Entry]) -> (Vec<Rect>, Vec<Rect>) {
    let n = ord.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Rect::empty();
    for e in ord {
        acc = acc.union(&e.mbr);
        prefix.push(acc);
    }
    let mut suffix = vec![Rect::empty(); n + 1];
    let mut acc = Rect::empty();
    for i in (0..n).rev() {
        acc = acc.union(&ord[i].mbr);
        suffix[i] = acc;
    }
    (prefix, suffix)
}
