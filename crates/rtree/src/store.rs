//! Simulated paged storage with I/O accounting.

use crate::buffer::LruBuffer;
use crate::entry::PageId;
use crate::node::Node;
use crate::sync::Mutex;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative I/O counters of one tree.
///
/// `reads` is the paper's "page accesses" metric: the number of page
/// fetches that missed the LRU buffer. `buffer_hits` counts the fetches
/// that were served from the buffer, and `writes` counts page write-backs
/// (structure modifications).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer misses — the page-access metric reported in the paper.
    pub reads: u64,
    /// Buffer hits (free accesses).
    pub buffer_hits: u64,
    /// Page writes caused by structural modifications.
    pub writes: u64,
}

impl IoStats {
    /// Total logical page fetches (hits + misses).
    pub fn fetches(&self) -> u64 {
        self.reads + self.buffer_hits
    }
}

impl std::ops::Sub for IoStats {
    type Output = IoStats;
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - rhs.reads,
            buffer_hits: self.buffer_hits - rhs.buffer_hits,
            writes: self.writes - rhs.writes,
        }
    }
}

thread_local! {
    /// Active per-query recorders of this thread: `(store address, token,
    /// counts)`. Every page access of a store adds to *all* of that
    /// store's entries, so nested snapshots (a semi-join wrapping the NN
    /// queries it issues) each see their own full window.
    static RECORDERS: RefCell<Vec<(usize, u64, IoStats)>> = const { RefCell::new(Vec::new()) };
    static NEXT_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Per-query I/O attribution window over one tree's page accesses.
///
/// The tree-global counters ([`PageStore::stats`]) are shared by every
/// query of every thread, so before/after deltas silently misattribute
/// reads the moment two queries interleave. A snapshot instead registers a
/// **thread-local** recorder keyed by the store's address: page accesses
/// performed *by this thread* on *this tree* while the snapshot is alive
/// are added to it, and [`IoSnapshot::finish`] returns exactly those.
/// Concurrent queries on other threads never pollute the window, which is
/// what makes [`QueryStats`](IoStats) deltas trustworthy inside a
/// multi-threaded batch engine.
///
/// The handle is deliberately `!Send`: a query must finish its snapshot on
/// the thread that opened it (queries do not migrate threads here).
///
/// Windows are keyed by the watched backend's *address*, not by a concrete
/// store type: the paged [`PageStore`] and the packed backend both feed the
/// same recorder list, so per-query attribution works identically across
/// backends.
#[derive(Debug)]
pub struct IoSnapshot<'a> {
    key: usize,
    token: u64,
    /// Ties the window to the borrow of the tree it watches (so the keyed
    /// address stays stable) and pins the handle to its creating thread.
    _marker: PhantomData<(&'a (), *const ())>,
}

impl<'a> IoSnapshot<'a> {
    /// Opens a window over the accesses of the backend identified by
    /// `key` (its address, stable while the `&'a` borrow is alive).
    pub(crate) fn open(key: usize) -> IoSnapshot<'a> {
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        });
        RECORDERS.with(|r| r.borrow_mut().push((key, token, IoStats::default())));
        IoSnapshot {
            key,
            token,
            _marker: PhantomData,
        }
    }

    /// The accesses recorded so far without closing the window.
    pub fn so_far(&self) -> IoStats {
        RECORDERS.with(|r| {
            r.borrow()
                .iter()
                .rev()
                .find(|(k, t, _)| *k == self.key && *t == self.token)
                .map(|(_, _, s)| *s)
                .unwrap_or_default()
        })
    }

    /// Closes the window and returns the accesses it attributed.
    pub fn finish(self) -> IoStats {
        self.so_far()
        // Drop unregisters the recorder.
    }
}

impl Drop for IoSnapshot<'_> {
    fn drop(&mut self) {
        RECORDERS.with(|r| {
            let mut r = r.borrow_mut();
            if let Some(at) = r
                .iter()
                .rposition(|(k, t, _)| *k == self.key && *t == self.token)
            {
                r.remove(at);
            }
        });
    }
}

/// Adds one access to every recorder of this thread watching the backend
/// at `key` (no-op when none is active — the common single-query case
/// costs one thread-local read and an empty-vec scan).
pub(crate) fn record_access(key: usize, hit: bool) {
    RECORDERS.with(|r| {
        for (k, _, s) in r.borrow_mut().iter_mut() {
            if *k == key {
                if hit {
                    s.buffer_hits += 1;
                } else {
                    s.reads += 1;
                }
            }
        }
    });
}

/// One lock stripe of the buffer pool: its slice of the LRU capacity plus
/// the hit/miss counters of the pages hashed to it. Keeping the counters
/// shard-local means concurrent readers of different stripes share
/// nothing — neither the lock nor a counter cache line.
#[derive(Debug)]
struct BufferShard {
    buffer: Mutex<LruBuffer>,
    reads: AtomicU64,
    hits: AtomicU64,
}

impl BufferShard {
    fn new(capacity: usize) -> Self {
        BufferShard {
            buffer: Mutex::new(LruBuffer::new(capacity)),
            reads: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }
}

/// Splits a total page capacity across `shards` stripes, biasing the
/// remainder onto the first stripes so the sum is exactly `total`.
fn split_capacity(total: usize, shards: usize) -> impl Iterator<Item = usize> + Clone {
    let base = total / shards;
    let extra = total % shards;
    (0..shards).map(move |i| base + usize::from(i < extra))
}

/// In-memory page store: node storage, free-list, LRU buffer pool and
/// counters.
///
/// Reads take `&self`; the buffer and counters use interior mutability so
/// that query iterators holding `&RTree` can account their page accesses.
/// The buffer pool is **lock-striped**: pages hash across
/// [`BufferShard`]s, each an independently locked LRU over its share of
/// the total capacity, with its own hit/miss counters. With one shard
/// (the default) this is exactly the paper's single LRU buffer; with
/// more, concurrent batch workers of one tree stop serialising on a
/// single buffer mutex. Either way the store (and therefore
/// [`crate::RTree`]) is `Sync`, and [`PageStore::stats`] /
/// [`IoSnapshot`] aggregate across shards so per-query I/O attribution
/// is shard-count-agnostic.
#[derive(Debug)]
pub struct PageStore {
    pages: Vec<Option<Node>>,
    free: Vec<PageId>,
    shards: Box<[BufferShard]>,
    writes: AtomicU64,
}

/// Effective stripe count for a pool of `buffer_pages` total capacity:
/// the requested count, clamped so every stripe can hold at least one
/// page. Without the clamp a small tree (say 7 pages, 1 buffer page)
/// striped 8 ways would put its whole capacity on one stripe while the
/// pages hash across all eight — most of them then *never* cacheable.
fn effective_shards(buffer_pages: usize, shards: usize) -> usize {
    shards.max(1).min(buffer_pages.max(1))
}

impl PageStore {
    /// Creates an empty store with the given **total** buffer capacity
    /// (pages), striped across at most `shards` locks (clamped to the
    /// capacity — see [`effective_shards`]).
    pub fn new(buffer_pages: usize, shards: usize) -> Self {
        let shards = effective_shards(buffer_pages, shards);
        PageStore {
            pages: Vec::new(),
            free: Vec::new(),
            shards: split_capacity(buffer_pages, shards)
                .map(BufferShard::new)
                .collect(),
            writes: AtomicU64::new(0),
        }
    }

    /// Rebuilds a store from raw page slots (used when decoding a
    /// persisted image); `None` slots become free pages.
    pub(crate) fn from_slots(pages: Vec<Option<Node>>, buffer_pages: usize, shards: usize) -> Self {
        let free = pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_none().then_some(i as PageId))
            .collect();
        let shards = effective_shards(buffer_pages, shards);
        PageStore {
            pages,
            free,
            shards: split_capacity(buffer_pages, shards)
                .map(BufferShard::new)
                .collect(),
            writes: AtomicU64::new(0),
        }
    }

    /// Replaces the buffer pool with a cold one of **total** capacity
    /// `pages` across at most `shards` stripes (clamped, see
    /// [`effective_shards`]) and zeroes the per-shard counters. The
    /// `&mut` rebuild is how a tree re-stripes once its final size — and
    /// therefore its 10 %-rule capacity — is known (build finalisation,
    /// persistence decode); [`PageStore::reset_buffer`] is the `&self`
    /// variant that keeps the stripe structure.
    pub fn rebuild_buffer(&mut self, pages: usize, shards: usize) {
        let shards = effective_shards(pages, shards);
        self.shards = split_capacity(pages, shards)
            .map(BufferShard::new)
            .collect();
    }

    /// The shard a page hashes to. Page ids are dense and sequential, so
    /// plain modulo spreads both the id space and any contiguous access
    /// pattern evenly across stripes.
    fn shard_of(&self, id: PageId) -> &BufferShard {
        &self.shards[id as usize % self.shards.len()]
    }

    /// Number of lock stripes in the buffer pool.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard `(misses, hits)` counters, in shard order — the raw
    /// material for stripe-balance diagnostics and the striping tests.
    pub fn shard_stats(&self) -> Vec<(u64, u64)> {
        self.shards
            .iter()
            .map(|s| {
                (
                    s.reads.load(Ordering::Relaxed),
                    s.hits.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Raw page slots including freed holes (persistence support).
    pub(crate) fn slots(&self) -> &[Option<Node>] {
        &self.pages
    }

    /// Number of live (allocated, non-freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Allocates a page for `node` and returns its id.
    pub fn allocate(&mut self, node: Node) -> PageId {
        self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Some(node);
            id
        } else {
            self.pages.push(Some(node));
            (self.pages.len() - 1) as PageId
        }
    }

    /// Frees a page (node merged away).
    pub fn release(&mut self, id: PageId) {
        assert!(
            self.pages[id as usize].take().is_some(),
            "double free of page {id}"
        );
        self.shard_of(id).buffer.lock().invalidate(id);
        self.free.push(id);
    }

    /// Opens a per-query attribution window over this store's accesses
    /// (see [`IoSnapshot`]).
    pub fn snapshot(&self) -> IoSnapshot<'_> {
        IoSnapshot::open(self as *const PageStore as usize)
    }

    /// Adds one fetch to every recorder of this thread watching this
    /// store. Only reads are recorded: structural writes require
    /// `&mut self`, which cannot coexist with a live snapshot borrow of
    /// the same store.
    fn record(&self, hit: bool) {
        record_access(self as *const PageStore as usize, hit);
    }

    /// Fetches a page for reading, going through the page's buffer shard
    /// and counting a page access on a miss.
    pub fn read(&self, id: PageId) -> &Node {
        let shard = self.shard_of(id);
        if shard.buffer.lock().access(id) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.record(true);
        } else {
            shard.reads.fetch_add(1, Ordering::Relaxed);
            self.record(false);
        }
        self.node(id)
    }

    /// Fetches a page for modification; counts like a read plus a write.
    pub fn read_mut(&mut self, id: PageId) -> &mut Node {
        let shard = &mut self.shards[id as usize % self.shards.len()];
        if shard.buffer.get_mut().access(id) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.reads.fetch_add(1, Ordering::Relaxed);
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.pages[id as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("access to freed page {id}"))
    }

    /// Direct node access without I/O accounting (tree-internal bookkeeping
    /// such as validation; never used on query paths).
    pub fn node(&self, id: PageId) -> &Node {
        self.pages[id as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("access to freed page {id}"))
    }

    /// Direct mutable access without I/O accounting.
    pub fn node_mut(&mut self, id: PageId) -> &mut Node {
        self.pages[id as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("access to freed page {id}"))
    }

    /// Snapshot of the I/O counters, aggregated across all buffer shards.
    pub fn stats(&self) -> IoStats {
        let mut st = IoStats {
            writes: self.writes.load(Ordering::Relaxed),
            ..IoStats::default()
        };
        for shard in self.shards.iter() {
            st.reads += shard.reads.load(Ordering::Relaxed);
            st.buffer_hits += shard.hits.load(Ordering::Relaxed);
        }
        st
    }

    /// Zeroes the counters (the buffer contents are left untouched, so a
    /// measured workload starts from a warm or cold buffer as the caller
    /// arranged).
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.reads.store(0, Ordering::Relaxed);
            shard.hits.store(0, Ordering::Relaxed);
        }
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Empties every shard (cold start) and resizes the pool to a
    /// **total** of `pages`, re-split across the existing shards.
    ///
    /// The stripe *count* is fixed here (`&self` cannot rebuild the lock
    /// array): shrinking the total below it leaves trailing shards with
    /// zero capacity, whose pages then never cache. A tree whose 10 %
    /// capacity fell below its stripe count (mass deletions) should be
    /// re-striped via [`PageStore::rebuild_buffer`] — which is what
    /// build finalisation does.
    pub fn reset_buffer(&self, pages: usize) {
        for (shard, cap) in self
            .shards
            .iter()
            .zip(split_capacity(pages, self.shards.len()))
        {
            let mut b = shard.buffer.lock();
            b.clear();
            b.resize(cap);
        }
    }

    /// Current total buffer capacity in pages (summed over shards).
    pub fn buffer_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.buffer.lock().capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> Node {
        Node::new(0)
    }

    #[test]
    fn allocate_read_counts_misses_and_hits() {
        let mut s = PageStore::new(1, 1);
        let a = s.allocate(leaf());
        let b = s.allocate(leaf());
        s.reset_stats();
        s.read(a); // miss
        s.read(a); // hit
        s.read(b); // miss (evicts a)
        s.read(a); // miss
        let st = s.stats();
        assert_eq!(st.reads, 3);
        assert_eq!(st.buffer_hits, 1);
        assert_eq!(st.fetches(), 4);
    }

    #[test]
    fn release_and_reuse() {
        let mut s = PageStore::new(4, 1);
        let a = s.allocate(leaf());
        assert_eq!(s.live_pages(), 1);
        s.release(a);
        assert_eq!(s.live_pages(), 0);
        let b = s.allocate(leaf());
        assert_eq!(b, a, "freed page id is reused");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut s = PageStore::new(4, 1);
        let a = s.allocate(leaf());
        s.release(a);
        s.release(a);
    }

    #[test]
    #[should_panic(expected = "freed page")]
    fn read_after_free_panics() {
        let mut s = PageStore::new(4, 1);
        let a = s.allocate(leaf());
        s.release(a);
        s.read(a);
    }

    #[test]
    fn snapshot_attributes_only_its_window() {
        let mut s = PageStore::new(1, 1);
        let a = s.allocate(leaf());
        let b = s.allocate(leaf());
        s.read(a); // outside any window
        let snap = s.snapshot();
        s.read(a); // hit (a resident)
        s.read(b); // miss
        let io = snap.finish();
        assert_eq!(io.buffer_hits, 1);
        assert_eq!(io.reads, 1);
        assert_eq!(io.fetches(), 2);
        s.read(b); // after the window: unattributed
        assert_eq!(io.reads, 1);
    }

    #[test]
    fn snapshots_nest_and_ignore_other_stores() {
        let mut s = PageStore::new(0, 1);
        let mut other = PageStore::new(0, 1);
        let a = s.allocate(leaf());
        let o = other.allocate(leaf());
        let outer = s.snapshot();
        s.read(a);
        {
            let inner = s.snapshot();
            s.read(a);
            other.read(o); // different store: invisible to both windows
            assert_eq!(inner.finish().reads, 1);
        }
        s.read(a);
        let io = outer.finish();
        assert_eq!(io.reads, 3, "outer window spans the inner one");
    }

    #[test]
    fn snapshot_drop_order_is_not_lifo_sensitive() {
        let mut s = PageStore::new(0, 1);
        let a = s.allocate(leaf());
        let first = s.snapshot();
        let second = s.snapshot();
        s.read(a);
        // Dropping `first` before `second` must not disturb `second`.
        assert_eq!(first.finish().reads, 1);
        s.read(a);
        assert_eq!(second.finish().reads, 2);
    }

    /// Replays an access sequence against a plain single [`LruBuffer`],
    /// returning `(misses, hits)` — the pre-striping reference model.
    fn single_lru_reference(capacity: usize, accesses: &[PageId]) -> (u64, u64) {
        let mut b = LruBuffer::new(capacity);
        let mut misses = 0;
        let mut hits = 0;
        for &p in accesses {
            if b.access(p) {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        (misses, hits)
    }

    #[test]
    fn one_shard_reproduces_single_buffer_counts_exactly() {
        // The default configuration (1 shard) must be bit-for-bit the
        // paper's single LRU: same hits, same misses, on an adversarial
        // access pattern that exercises eviction, re-entry and skew.
        let capacity = 7;
        let mut s = PageStore::new(capacity, 1);
        let pages: Vec<PageId> = (0..32).map(|_| s.allocate(leaf())).collect();
        s.reset_stats();
        let mut accesses = Vec::new();
        for i in 0..1000usize {
            // Skewed mix: hot head, cold tail, periodic scans.
            let p = match i % 7 {
                0..=2 => pages[i % 4],
                3 | 4 => pages[(i * 13) % 16],
                _ => pages[(i * 31) % 32],
            };
            accesses.push(p);
            s.read(p);
        }
        let (misses, hits) = single_lru_reference(capacity, &accesses);
        let st = s.stats();
        assert_eq!(st.reads, misses, "1-shard misses must match single LRU");
        assert_eq!(st.buffer_hits, hits, "1-shard hits must match single LRU");
    }

    #[test]
    fn striped_capacity_splits_exactly_and_aggregates() {
        // 10 pages of capacity across 4 shards: 3+3+2+2.
        let mut s = PageStore::new(10, 4);
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.buffer_capacity(), 10);
        // More shards than pages: the stripe count clamps to the
        // capacity so no stripe is left permanently empty (pages hashed
        // to a zero-capacity stripe could never cache).
        let s2 = PageStore::new(3, 8);
        assert_eq!(s2.shard_count(), 3);
        assert_eq!(s2.buffer_capacity(), 3);
        // reset_buffer re-splits a new total over the same shards …
        s.reset_buffer(11);
        assert_eq!(s.buffer_capacity(), 11);
        assert_eq!(s.shard_count(), 4);
        // … while rebuild_buffer re-stripes (and re-clamps) as well.
        s.rebuild_buffer(2, 4);
        assert_eq!(s.shard_count(), 2);
        assert_eq!(s.buffer_capacity(), 2);
        s.rebuild_buffer(16, 4);
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.buffer_capacity(), 16);
    }

    #[test]
    fn striped_counters_sum_into_stats() {
        let mut s = PageStore::new(4, 4);
        let pages: Vec<PageId> = (0..8).map(|_| s.allocate(leaf())).collect();
        s.reset_stats();
        for round in 0..3 {
            for &p in &pages {
                let _ = round;
                s.read(p);
            }
        }
        let st = s.stats();
        assert_eq!(st.fetches(), 24, "every access lands in some shard");
        let by_shard = s.shard_stats();
        assert_eq!(by_shard.len(), 4);
        let (m, h) = by_shard
            .iter()
            .fold((0, 0), |(m, h), &(sm, sh)| (m + sm, h + sh));
        assert_eq!(m, st.reads);
        assert_eq!(h, st.buffer_hits);
        // Sequential page ids spread evenly: every shard saw traffic.
        assert!(by_shard.iter().all(|&(m, h)| m + h == 6));
    }

    #[test]
    fn shard_isolation_no_cross_shard_eviction() {
        // Two shards, one page of capacity each. Pages 0 and 1 hash to
        // different shards, so alternating between them never evicts —
        // under one shared 2-page LRU this would also hit, but with one
        // *1-page* buffer it would thrash. The point: residency of page 0
        // is decided only by shard-0 traffic.
        let mut s = PageStore::new(2, 2);
        let a = s.allocate(leaf()); // id 0 -> shard 0
        let b = s.allocate(leaf()); // id 1 -> shard 1
        let c = s.allocate(leaf()); // id 2 -> shard 0
        s.reset_stats();
        s.read(a); // miss
        s.read(b); // miss
        s.read(a); // hit (b did not evict it)
        s.read(b); // hit
        assert_eq!(s.stats().buffer_hits, 2);
        // c shares a's shard (capacity 1): it evicts a, but never b.
        s.read(c); // miss, evicts a
        s.read(b); // still a hit
        s.read(a); // miss again
        let st = s.stats();
        assert_eq!(st.reads, 4);
        assert_eq!(st.buffer_hits, 3);
    }

    #[test]
    fn snapshots_aggregate_across_shards() {
        let mut s = PageStore::new(4, 4);
        let pages: Vec<PageId> = (0..4).map(|_| s.allocate(leaf())).collect();
        let snap = s.snapshot();
        for &p in &pages {
            s.read(p); // 4 misses, one per shard
        }
        for &p in &pages {
            s.read(p); // 4 hits, one per shard
        }
        let io = snap.finish();
        assert_eq!(io.reads, 4);
        assert_eq!(io.buffer_hits, 4);
    }

    #[test]
    fn stats_subtraction_gives_deltas() {
        let mut s = PageStore::new(0, 1);
        let a = s.allocate(leaf());
        s.reset_stats();
        s.read(a);
        let before = s.stats();
        s.read(a);
        s.read(a);
        let delta = s.stats() - before;
        assert_eq!(delta.reads, 2);
    }
}
