//! Simulated paged storage with I/O accounting.

use crate::buffer::LruBuffer;
use crate::entry::PageId;
use crate::node::Node;
use crate::sync::Mutex;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative I/O counters of one tree.
///
/// `reads` is the paper's "page accesses" metric: the number of page
/// fetches that missed the LRU buffer. `buffer_hits` counts the fetches
/// that were served from the buffer, and `writes` counts page write-backs
/// (structure modifications).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer misses — the page-access metric reported in the paper.
    pub reads: u64,
    /// Buffer hits (free accesses).
    pub buffer_hits: u64,
    /// Page writes caused by structural modifications.
    pub writes: u64,
}

impl IoStats {
    /// Total logical page fetches (hits + misses).
    pub fn fetches(&self) -> u64 {
        self.reads + self.buffer_hits
    }
}

impl std::ops::Sub for IoStats {
    type Output = IoStats;
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - rhs.reads,
            buffer_hits: self.buffer_hits - rhs.buffer_hits,
            writes: self.writes - rhs.writes,
        }
    }
}

thread_local! {
    /// Active per-query recorders of this thread: `(store address, token,
    /// counts)`. Every page access of a store adds to *all* of that
    /// store's entries, so nested snapshots (a semi-join wrapping the NN
    /// queries it issues) each see their own full window.
    static RECORDERS: RefCell<Vec<(usize, u64, IoStats)>> = const { RefCell::new(Vec::new()) };
    static NEXT_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Per-query I/O attribution window over one tree's page accesses.
///
/// The tree-global counters ([`PageStore::stats`]) are shared by every
/// query of every thread, so before/after deltas silently misattribute
/// reads the moment two queries interleave. A snapshot instead registers a
/// **thread-local** recorder keyed by the store's address: page accesses
/// performed *by this thread* on *this tree* while the snapshot is alive
/// are added to it, and [`IoSnapshot::finish`] returns exactly those.
/// Concurrent queries on other threads never pollute the window, which is
/// what makes [`QueryStats`](IoStats) deltas trustworthy inside a
/// multi-threaded batch engine.
///
/// The handle is deliberately `!Send`: a query must finish its snapshot on
/// the thread that opened it (queries do not migrate threads here).
#[derive(Debug)]
pub struct IoSnapshot<'a> {
    store: &'a PageStore,
    token: u64,
    /// Pins the handle to its creating thread.
    _not_send: PhantomData<*const ()>,
}

impl<'a> IoSnapshot<'a> {
    fn new(store: &'a PageStore) -> Self {
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        });
        let key = store as *const PageStore as usize;
        RECORDERS.with(|r| r.borrow_mut().push((key, token, IoStats::default())));
        IoSnapshot {
            store,
            token,
            _not_send: PhantomData,
        }
    }

    /// The accesses recorded so far without closing the window.
    pub fn so_far(&self) -> IoStats {
        let key = self.store as *const PageStore as usize;
        RECORDERS.with(|r| {
            r.borrow()
                .iter()
                .rev()
                .find(|(k, t, _)| *k == key && *t == self.token)
                .map(|(_, _, s)| *s)
                .unwrap_or_default()
        })
    }

    /// Closes the window and returns the accesses it attributed.
    pub fn finish(self) -> IoStats {
        self.so_far()
        // Drop unregisters the recorder.
    }
}

impl Drop for IoSnapshot<'_> {
    fn drop(&mut self) {
        let key = self.store as *const PageStore as usize;
        RECORDERS.with(|r| {
            let mut r = r.borrow_mut();
            if let Some(at) = r
                .iter()
                .rposition(|(k, t, _)| *k == key && *t == self.token)
            {
                r.remove(at);
            }
        });
    }
}

/// In-memory page store: node storage, free-list, LRU buffer and counters.
///
/// Reads take `&self`; the buffer and counters use interior mutability so
/// that query iterators holding `&RTree` can account their page accesses.
/// The buffer sits behind a mutex and the counters are atomic, making the
/// store (and therefore [`crate::RTree`]) `Sync`: read-only query
/// workloads may run from multiple threads sharing one tree (they then
/// also share its LRU buffer, exactly like concurrent clients of one
/// database buffer pool).
#[derive(Debug)]
pub struct PageStore {
    pages: Vec<Option<Node>>,
    free: Vec<PageId>,
    buffer: Mutex<LruBuffer>,
    reads: AtomicU64,
    hits: AtomicU64,
    writes: AtomicU64,
}

impl PageStore {
    /// Creates an empty store with the given buffer capacity (pages).
    pub fn new(buffer_pages: usize) -> Self {
        PageStore {
            pages: Vec::new(),
            free: Vec::new(),
            buffer: Mutex::new(LruBuffer::new(buffer_pages)),
            reads: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Rebuilds a store from raw page slots (used when decoding a
    /// persisted image); `None` slots become free pages.
    pub(crate) fn from_slots(pages: Vec<Option<Node>>, buffer_pages: usize) -> Self {
        let free = pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_none().then_some(i as PageId))
            .collect();
        PageStore {
            pages,
            free,
            buffer: Mutex::new(LruBuffer::new(buffer_pages)),
            reads: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Raw page slots including freed holes (persistence support).
    pub(crate) fn slots(&self) -> &[Option<Node>] {
        &self.pages
    }

    /// Number of live (allocated, non-freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Allocates a page for `node` and returns its id.
    pub fn allocate(&mut self, node: Node) -> PageId {
        self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Some(node);
            id
        } else {
            self.pages.push(Some(node));
            (self.pages.len() - 1) as PageId
        }
    }

    /// Frees a page (node merged away).
    pub fn release(&mut self, id: PageId) {
        assert!(
            self.pages[id as usize].take().is_some(),
            "double free of page {id}"
        );
        self.buffer.lock().invalidate(id);
        self.free.push(id);
    }

    /// Opens a per-query attribution window over this store's accesses
    /// (see [`IoSnapshot`]).
    pub fn snapshot(&self) -> IoSnapshot<'_> {
        IoSnapshot::new(self)
    }

    /// Adds one fetch to every recorder of this thread watching this
    /// store (no-op when none is active — the common single-query case
    /// costs one thread-local read and an empty-vec scan). Only reads are
    /// recorded: structural writes require `&mut self`, which cannot
    /// coexist with a live snapshot borrow of the same store.
    fn record(&self, hit: bool) {
        let key = self as *const PageStore as usize;
        RECORDERS.with(|r| {
            for (k, _, s) in r.borrow_mut().iter_mut() {
                if *k == key {
                    if hit {
                        s.buffer_hits += 1;
                    } else {
                        s.reads += 1;
                    }
                }
            }
        });
    }

    /// Fetches a page for reading, going through the LRU buffer and
    /// counting a page access on a miss.
    pub fn read(&self, id: PageId) -> &Node {
        if self.buffer.lock().access(id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record(true);
        } else {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.record(false);
        }
        self.node(id)
    }

    /// Fetches a page for modification; counts like a read plus a write.
    pub fn read_mut(&mut self, id: PageId) -> &mut Node {
        if self.buffer.get_mut().access(id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.pages[id as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("access to freed page {id}"))
    }

    /// Direct node access without I/O accounting (tree-internal bookkeeping
    /// such as validation; never used on query paths).
    pub fn node(&self, id: PageId) -> &Node {
        self.pages[id as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("access to freed page {id}"))
    }

    /// Direct mutable access without I/O accounting.
    pub fn node_mut(&mut self, id: PageId) -> &mut Node {
        self.pages[id as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("access to freed page {id}"))
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            buffer_hits: self.hits.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (the buffer contents are left untouched, so a
    /// measured workload starts from a warm or cold buffer as the caller
    /// arranged).
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Empties the buffer (cold start) and resizes it to `pages`.
    pub fn reset_buffer(&self, pages: usize) {
        let mut b = self.buffer.lock();
        b.clear();
        b.resize(pages);
    }

    /// Current buffer capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.buffer.lock().capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> Node {
        Node::new(0)
    }

    #[test]
    fn allocate_read_counts_misses_and_hits() {
        let mut s = PageStore::new(1);
        let a = s.allocate(leaf());
        let b = s.allocate(leaf());
        s.reset_stats();
        s.read(a); // miss
        s.read(a); // hit
        s.read(b); // miss (evicts a)
        s.read(a); // miss
        let st = s.stats();
        assert_eq!(st.reads, 3);
        assert_eq!(st.buffer_hits, 1);
        assert_eq!(st.fetches(), 4);
    }

    #[test]
    fn release_and_reuse() {
        let mut s = PageStore::new(4);
        let a = s.allocate(leaf());
        assert_eq!(s.live_pages(), 1);
        s.release(a);
        assert_eq!(s.live_pages(), 0);
        let b = s.allocate(leaf());
        assert_eq!(b, a, "freed page id is reused");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut s = PageStore::new(4);
        let a = s.allocate(leaf());
        s.release(a);
        s.release(a);
    }

    #[test]
    #[should_panic(expected = "freed page")]
    fn read_after_free_panics() {
        let mut s = PageStore::new(4);
        let a = s.allocate(leaf());
        s.release(a);
        s.read(a);
    }

    #[test]
    fn snapshot_attributes_only_its_window() {
        let mut s = PageStore::new(1);
        let a = s.allocate(leaf());
        let b = s.allocate(leaf());
        s.read(a); // outside any window
        let snap = s.snapshot();
        s.read(a); // hit (a resident)
        s.read(b); // miss
        let io = snap.finish();
        assert_eq!(io.buffer_hits, 1);
        assert_eq!(io.reads, 1);
        assert_eq!(io.fetches(), 2);
        s.read(b); // after the window: unattributed
        assert_eq!(io.reads, 1);
    }

    #[test]
    fn snapshots_nest_and_ignore_other_stores() {
        let mut s = PageStore::new(0);
        let mut other = PageStore::new(0);
        let a = s.allocate(leaf());
        let o = other.allocate(leaf());
        let outer = s.snapshot();
        s.read(a);
        {
            let inner = s.snapshot();
            s.read(a);
            other.read(o); // different store: invisible to both windows
            assert_eq!(inner.finish().reads, 1);
        }
        s.read(a);
        let io = outer.finish();
        assert_eq!(io.reads, 3, "outer window spans the inner one");
    }

    #[test]
    fn snapshot_drop_order_is_not_lifo_sensitive() {
        let mut s = PageStore::new(0);
        let a = s.allocate(leaf());
        let first = s.snapshot();
        let second = s.snapshot();
        s.read(a);
        // Dropping `first` before `second` must not disturb `second`.
        assert_eq!(first.finish().reads, 1);
        s.read(a);
        assert_eq!(second.finish().reads, 2);
    }

    #[test]
    fn stats_subtraction_gives_deltas() {
        let mut s = PageStore::new(0);
        let a = s.allocate(leaf());
        s.reset_stats();
        s.read(a);
        let before = s.stats();
        s.read(a);
        s.read(a);
        let delta = s.stats() - before;
        assert_eq!(delta.reads, 2);
    }
}
