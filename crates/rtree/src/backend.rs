//! The read-side storage abstraction shared by both tree backends.
//!
//! The query operators of the paper (range, NN, e-distance join, closest
//! pairs) and the obstructed-distance machinery built on them only ever
//! *read* a tree: descend from the root, fetch a node, scan its entries.
//! [`TreeBackend`] captures exactly that surface, so the operators run
//! unchanged over either implementation:
//!
//! * [`RTree`](crate::RTree) — the paper's R*-tree over a paged store with
//!   a 10 %-rule LRU buffer. Every node fetch crosses the page buffer and
//!   is accounted as a page access (hit or miss).
//! * [`PackedRTree`](crate::PackedRTree) — a flatbush-style packed static
//!   tree in one contiguous buffer. Node fetches are plain slice reads
//!   (no buffer, no locks) and are accounted as *node visits*.
//!
//! [`AnyTree`] is the enum-dispatch wrapper the engine layer stores, so a
//! `QueryEngine` stays a plain `Copy` borrow regardless of backend.

use crate::config::{Backend, RTreeConfig};
use crate::entry::{Entry, Item};
use crate::packed::PackedRTree;
use crate::persist::PersistError;
use crate::stats::TreeStats;
use crate::store::{IoSnapshot, IoStats};
use crate::tree::RTree;
use obstacle_geom::{Point, Rect};

/// Opaque node handle of a [`TreeBackend`].
///
/// For the paged backend this is the page id; for the packed backend the
/// node's slot index. Handles are only meaningful on the tree that issued
/// them (from [`TreeBackend::root_node`] or a [`TreeBackend::read_node_into`]
/// entry's `ptr`).
pub type NodeRef = u64;

/// Read-side API of an obstacle/entity tree, as consumed by the query
/// operators, `LazyScene` candidate selection and the batch engine.
///
/// Implementations must answer queries over the same item set identically
/// (the backend-equivalence suite pins this); they may differ in *cost
/// model* — see the `io_stats` docs of each backend.
pub trait TreeBackend {
    /// Number of items in the tree.
    fn len(&self) -> usize;

    /// Whether the tree holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// MBR of the whole tree (empty rect for an empty tree).
    fn root_mbr(&self) -> Rect;

    /// Handle of the root node, or `None` for an empty tree.
    fn root_node(&self) -> Option<NodeRef>;

    /// Level of the node `node` (0 = leaf). On the paged backend this
    /// fetches the page (a counted access, as on disk); on the packed
    /// backend the level is derived from the slot index for free.
    fn node_level(&self, node: NodeRef) -> u32;

    /// Reads node `node`: clears `out`, appends the node's entries and
    /// returns the node's level (0 = leaf, whose entries are items; the
    /// `ptr` of an internal entry is a child [`NodeRef`]). Counts one
    /// accounted access/visit. The scratch vector lets generic traversals
    /// reuse one allocation across the whole descent.
    fn read_node_into(&self, node: NodeRef, out: &mut Vec<Entry>) -> u32;

    /// All items whose MBR intersects `window`.
    fn range_rect(&self, window: &Rect) -> Vec<Item>;

    /// All items whose MBR lies within Euclidean distance `radius` of
    /// `center` (`mindist(MBR, center) ≤ radius`).
    fn range_circle(&self, center: Point, radius: f64) -> Vec<Item>;

    /// Generic pruned range search: all items with `bound(mbr) ≤
    /// threshold`, each paired with its bound value (computed exactly
    /// once per entry). `bound` must be monotone under containment; see
    /// [`RTree::range_by_bound`].
    fn range_by_bound(&self, bound: &dyn Fn(&Rect) -> f64, threshold: f64) -> Vec<(Item, f64)>;

    /// Every item in the tree, in storage order (full counted scan).
    fn items(&self) -> Vec<Item>;

    /// Cumulative access counters of this tree. Paged: page accesses
    /// (`reads` = buffer misses). Packed: node visits (`buffer_hits` =
    /// visits, `reads` = 0 — there is no page IO to miss).
    fn io_stats(&self) -> IoStats;

    /// Zeroes the access counters.
    fn reset_io_stats(&self);

    /// Opens a per-query attribution window over this tree's accesses
    /// (see [`IoSnapshot`]). Works identically on both backends; the
    /// counters carry the backend's cost model.
    fn io_snapshot(&self) -> IoSnapshot<'_>;

    /// Cold-starts any cache state (paged: empties the LRU buffer;
    /// packed: no-op — there is nothing cached).
    fn reset_buffer(&self);

    /// `"paged"` or `"packed"` — the tag used by benches and artifacts.
    fn backend_name(&self) -> &'static str;
}

impl TreeBackend for RTree {
    fn len(&self) -> usize {
        RTree::len(self)
    }

    fn root_mbr(&self) -> Rect {
        RTree::root_mbr(self)
    }

    fn root_node(&self) -> Option<NodeRef> {
        (!RTree::is_empty(self)).then(|| NodeRef::from(self.root_page()))
    }

    fn node_level(&self, node: NodeRef) -> u32 {
        self.read_page(node as u32).level
    }

    fn read_node_into(&self, node: NodeRef, out: &mut Vec<Entry>) -> u32 {
        out.clear();
        let page = self.read_page(node as u32);
        out.extend_from_slice(&page.entries);
        page.level
    }

    fn range_rect(&self, window: &Rect) -> Vec<Item> {
        RTree::range_rect(self, window)
    }

    fn range_circle(&self, center: Point, radius: f64) -> Vec<Item> {
        RTree::range_circle(self, center, radius)
    }

    fn range_by_bound(&self, bound: &dyn Fn(&Rect) -> f64, threshold: f64) -> Vec<(Item, f64)> {
        RTree::range_by_bound(self, bound, threshold)
    }

    fn items(&self) -> Vec<Item> {
        RTree::items(self)
    }

    fn io_stats(&self) -> IoStats {
        RTree::io_stats(self)
    }

    fn reset_io_stats(&self) {
        RTree::reset_io_stats(self)
    }

    fn io_snapshot(&self) -> IoSnapshot<'_> {
        RTree::io_snapshot(self)
    }

    fn reset_buffer(&self) {
        RTree::reset_buffer(self)
    }

    fn backend_name(&self) -> &'static str {
        "paged"
    }
}

/// Enum dispatch over the two backends.
///
/// The engine layer stores an `AnyTree` per index so one `QueryEngine`
/// type serves both backends (chosen by [`RTreeConfig::backend`]), without
/// making every operator and the batch engine generic in the public API.
/// The paged variant keeps full update support; the packed variant is
/// static — [`AnyTree::insert`] / [`AnyTree::delete`] re-pack the whole
/// tree per call (O(n log n) *each*), so batched edits must go through
/// [`AnyTree::apply_edits`], which rebuilds exactly once per batch.
#[derive(Debug)]
pub enum AnyTree {
    /// The paper's paged, buffered R*-tree.
    Paged(RTree),
    /// The packed static backend.
    Packed(PackedRTree),
}

macro_rules! dispatch {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            AnyTree::Paged($t) => $body,
            AnyTree::Packed($t) => $body,
        }
    };
}

impl AnyTree {
    /// Builds a tree for `config.backend` by repeated insertion (paged)
    /// or a Hilbert pack (packed — a static backend has exactly one build
    /// path, so `build` and `bulk_load` coincide there).
    pub fn build(config: RTreeConfig, items: impl IntoIterator<Item = Item>) -> Self {
        match config.backend {
            Backend::Paged => AnyTree::Paged(RTree::build(config, items)),
            Backend::Packed => AnyTree::Packed(PackedRTree::build(config, items)),
        }
    }

    /// Bulk-loads a tree for `config.backend` (paged: STR; packed:
    /// Hilbert pack).
    pub fn bulk_load(config: RTreeConfig, items: Vec<Item>) -> Self {
        match config.backend {
            Backend::Paged => AnyTree::Paged(RTree::bulk_load_str(config, items)),
            Backend::Packed => AnyTree::Packed(PackedRTree::build(config, items)),
        }
    }

    /// The paged tree, if this is the paged backend.
    pub fn as_paged(&self) -> Option<&RTree> {
        match self {
            AnyTree::Paged(t) => Some(t),
            AnyTree::Packed(_) => None,
        }
    }

    /// The packed tree, if this is the packed backend.
    pub fn as_packed(&self) -> Option<&PackedRTree> {
        match self {
            AnyTree::Paged(_) => None,
            AnyTree::Packed(t) => Some(t),
        }
    }

    /// Which backend this tree uses.
    pub fn backend(&self) -> Backend {
        match self {
            AnyTree::Paged(_) => Backend::Paged,
            AnyTree::Packed(_) => Backend::Packed,
        }
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> &RTreeConfig {
        match self {
            AnyTree::Paged(t) => t.config(),
            AnyTree::Packed(t) => t.config(),
        }
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height(&self) -> u32 {
        match self {
            AnyTree::Paged(t) => t.height(),
            AnyTree::Packed(t) => t.height(),
        }
    }

    /// Number of nodes (paged: live pages; packed: packed node slots).
    pub fn pages(&self) -> usize {
        match self {
            AnyTree::Paged(t) => t.pages(),
            AnyTree::Packed(t) => t.num_nodes(),
        }
    }

    /// Total buffer capacity in pages (packed: 0 — no buffer exists).
    pub fn buffer_capacity(&self) -> usize {
        match self {
            AnyTree::Paged(t) => t.buffer_capacity(),
            AnyTree::Packed(_) => 0,
        }
    }

    /// Number of buffer lock stripes (packed: 0).
    pub fn buffer_shards(&self) -> usize {
        match self {
            AnyTree::Paged(t) => t.buffer_shards(),
            AnyTree::Packed(_) => 0,
        }
    }

    /// Per-level structure statistics.
    pub fn stats(&self) -> TreeStats {
        match self {
            AnyTree::Paged(t) => t.stats(),
            AnyTree::Packed(t) => t.stats(),
        }
    }

    /// Inserts an item. Paged: the R* insertion of the paper, O(log n).
    /// Packed: the backend is static, so **every call re-packs the whole
    /// tree** over the old items plus `item` — a full O(n log n) Hilbert
    /// sort and bottom-up build, *per call*. A k-edit sequence therefore
    /// costs k rebuilds through this entry point; batch callers must use
    /// [`AnyTree::apply_edits`], which collects the edits first and
    /// rebuilds exactly once.
    pub fn insert(&mut self, item: Item) {
        match self {
            AnyTree::Paged(t) => t.insert(item),
            AnyTree::Packed(t) => {
                let mut items = t.items_uncounted();
                items.push(item);
                Self::repack(t, items);
            }
        }
    }

    /// Deletes the item with matching `mbr` and `id`; returns whether it
    /// was present. Packed: re-packs without the item — the same full
    /// O(n log n) per-call cost as [`AnyTree::insert`]; batch callers
    /// must use [`AnyTree::apply_edits`].
    pub fn delete(&mut self, item: Item) -> bool {
        match self {
            AnyTree::Paged(t) => t.delete(&item),
            AnyTree::Packed(t) => {
                let mut items = t.items_uncounted();
                let before = items.len();
                items.retain(|i| !(i.id == item.id && i.mbr == item.mbr));
                let found = items.len() < before;
                if found {
                    Self::repack(t, items);
                }
                found
            }
        }
    }

    /// Applies a batch of edits: removes every item matching a `deletes`
    /// entry (by `id` + `mbr`, as in [`AnyTree::delete`]), then inserts
    /// all of `inserts`. Returns how many deletes matched.
    ///
    /// Paged: per-item R* insert/delete (each O(log n) — there is no
    /// cheaper batch path on the paged backend). Packed: **one** re-pack
    /// for the whole batch, amortising the static backend's O(n log n)
    /// rebuild over k edits instead of paying it k times; the pack's
    /// [`generation`](PackedRTree::generation) counter advances by
    /// exactly 1 per non-empty batch.
    pub fn apply_edits(&mut self, inserts: Vec<Item>, deletes: &[Item]) -> usize {
        match self {
            AnyTree::Paged(t) => {
                let mut removed = 0;
                for d in deletes {
                    if t.delete(d) {
                        removed += 1;
                    }
                }
                for item in inserts {
                    t.insert(item);
                }
                removed
            }
            AnyTree::Packed(t) => {
                let mut items = t.items_uncounted();
                let mut removed = 0;
                if !deletes.is_empty() {
                    // `Rect` is not hashable, so match deletes by id and
                    // confirm the MBR (ids are unique per engine contract).
                    let dead: std::collections::HashMap<u64, Rect> =
                        deletes.iter().map(|d| (d.id, d.mbr)).collect();
                    let before = items.len();
                    items.retain(|i| dead.get(&i.id).is_none_or(|mbr| *mbr != i.mbr));
                    removed = before - items.len();
                }
                if removed > 0 || !inserts.is_empty() {
                    items.extend(inserts);
                    Self::repack(t, items);
                }
                removed
            }
        }
    }

    /// Rebuilds a pack over `items`, carrying the rebuild counter forward
    /// (+1) — the observable that lets tests assert "one rebuild per
    /// batch" for [`AnyTree::apply_edits`].
    fn repack(t: &mut PackedRTree, items: Vec<Item>) {
        let generation = t.generation + 1;
        *t = PackedRTree::build(*t.config(), items);
        t.generation = generation;
        debug_assert_eq!(
            t.validate(),
            Ok(()),
            "apply_edits re-pack produced an invalid tree"
        );
    }

    /// Incremental nearest-neighbour iterator from `query` (\[HS99\] on
    /// either backend).
    pub fn nearest(&self, query: Point) -> crate::Nearest<'_, AnyTree> {
        crate::Nearest::new(self, query)
    }

    /// The `k` nearest items to `query`.
    pub fn k_nearest(&self, query: Point, k: usize) -> Vec<(Item, f64)> {
        self.nearest(query).take(k).collect()
    }

    /// Serializes the tree (backend-tagged: the magic distinguishes the
    /// two image formats, so [`AnyTree::from_bytes`] round-trips either).
    pub fn to_bytes(&self) -> crate::codec::Bytes {
        match self {
            AnyTree::Paged(t) => t.to_bytes(),
            AnyTree::Packed(t) => t.to_bytes(),
        }
    }

    /// Decodes a tree image produced by [`AnyTree::to_bytes`] (or by
    /// either backend's own `to_bytes`), sniffing the backend from the
    /// magic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.starts_with(crate::packed::PACKED_MAGIC) {
            PackedRTree::from_bytes(bytes).map(AnyTree::Packed)
        } else {
            RTree::from_bytes(bytes).map(AnyTree::Paged)
        }
    }
}

impl TreeBackend for AnyTree {
    fn len(&self) -> usize {
        dispatch!(self, t => TreeBackend::len(t))
    }

    fn root_mbr(&self) -> Rect {
        dispatch!(self, t => TreeBackend::root_mbr(t))
    }

    fn root_node(&self) -> Option<NodeRef> {
        dispatch!(self, t => t.root_node())
    }

    fn node_level(&self, node: NodeRef) -> u32 {
        dispatch!(self, t => t.node_level(node))
    }

    fn read_node_into(&self, node: NodeRef, out: &mut Vec<Entry>) -> u32 {
        dispatch!(self, t => t.read_node_into(node, out))
    }

    fn range_rect(&self, window: &Rect) -> Vec<Item> {
        dispatch!(self, t => t.range_rect(window))
    }

    fn range_circle(&self, center: Point, radius: f64) -> Vec<Item> {
        dispatch!(self, t => t.range_circle(center, radius))
    }

    fn range_by_bound(&self, bound: &dyn Fn(&Rect) -> f64, threshold: f64) -> Vec<(Item, f64)> {
        dispatch!(self, t => TreeBackend::range_by_bound(t, bound, threshold))
    }

    fn items(&self) -> Vec<Item> {
        dispatch!(self, t => TreeBackend::items(t))
    }

    fn io_stats(&self) -> IoStats {
        dispatch!(self, t => TreeBackend::io_stats(t))
    }

    fn reset_io_stats(&self) {
        dispatch!(self, t => TreeBackend::reset_io_stats(t))
    }

    fn io_snapshot(&self) -> IoSnapshot<'_> {
        dispatch!(self, t => TreeBackend::io_snapshot(t))
    }

    fn reset_buffer(&self) {
        dispatch!(self, t => TreeBackend::reset_buffer(t))
    }

    fn backend_name(&self) -> &'static str {
        dispatch!(self, t => t.backend_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packed_config() -> RTreeConfig {
        RTreeConfig {
            backend: Backend::Packed,
            packed_node_size: 4,
            ..RTreeConfig::paper()
        }
    }

    fn items(n: usize) -> Vec<Item> {
        (0..n as u64)
            .map(|i| Item::point(Point::new((i % 13) as f64 * 0.31, (i % 7) as f64 * 0.53), i))
            .collect()
    }

    fn ids(t: &AnyTree) -> Vec<u64> {
        let mut ids: Vec<u64> = TreeBackend::items(t).into_iter().map(|i| i.id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn packed_batch_edits_rebuild_once() {
        let mut t = AnyTree::bulk_load(packed_config(), items(20));
        assert_eq!(t.as_packed().unwrap().generation(), 0);

        // One batch of 5 inserts + 3 deletes: exactly one rebuild.
        let inserts: Vec<Item> = (0..5)
            .map(|i| Item::point(Point::new(9.0 + i as f64, 9.0), 100 + i as u64))
            .collect();
        let deletes: Vec<Item> = items(20).into_iter().filter(|i| i.id < 3).collect();
        let removed = t.apply_edits(inserts, &deletes);
        assert_eq!(removed, 3);
        assert_eq!(t.as_packed().unwrap().generation(), 1);
        assert_eq!(TreeBackend::len(&t), 22);
        assert_eq!(ids(&t), (3..20).chain(100..105).collect::<Vec<u64>>());

        // The same edits applied one call at a time cost one rebuild each.
        let mut s = AnyTree::bulk_load(packed_config(), items(20));
        for i in 0..5u64 {
            s.insert(Item::point(Point::new(9.0 + i as f64, 9.0), 100 + i));
        }
        for d in items(20).into_iter().filter(|i| i.id < 3) {
            assert!(s.delete(d));
        }
        assert_eq!(s.as_packed().unwrap().generation(), 8);
        assert_eq!(ids(&s), ids(&t));

        // An empty batch rebuilds nothing.
        assert_eq!(t.apply_edits(Vec::new(), &[]), 0);
        assert_eq!(t.as_packed().unwrap().generation(), 1);
        // A batch of misses (wrong id) rebuilds nothing either.
        let miss = [Item::point(Point::new(0.0, 0.0), 999)];
        assert_eq!(t.apply_edits(Vec::new(), &miss), 0);
        assert_eq!(t.as_packed().unwrap().generation(), 1);
    }

    #[test]
    fn paged_batch_edits_match_per_call_path() {
        let mut t = AnyTree::bulk_load(RTreeConfig::tiny(4), items(20));
        let deletes: Vec<Item> = items(20).into_iter().filter(|i| i.id % 4 == 0).collect();
        let inserts: Vec<Item> = (0..2)
            .map(|i| Item::point(Point::new(5.0, 5.0 + i as f64), 200 + i as u64))
            .collect();
        let removed = t.apply_edits(inserts, &deletes);
        assert_eq!(removed, 5);
        assert_eq!(
            ids(&t),
            (0..20)
                .filter(|i| i % 4 != 0)
                .chain(200..202)
                .collect::<Vec<u64>>()
        );
    }
}
