//! A thin mutex wrapper replacing the `parking_lot` dependency.
//!
//! `parking_lot::Mutex::lock` returns the guard directly (no `Result`);
//! this wrapper gives `std::sync::Mutex` the same ergonomics. Lock
//! poisoning is ignored: the protected state (one LRU shard of the
//! lock-striped buffer pool — see [`crate::buffer`] and the store's
//! `BufferShard`) is a cache whose worst corruption mode is a wrong
//! hit/miss count, and a panicking reader thread should not wedge every
//! other reader of a shared tree.

/// Mutual exclusion with `parking_lot`-style (non-poisoning) locking.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread until it is free.
    /// A poisoned lock is recovered rather than propagated.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Direct access through exclusive ownership — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
