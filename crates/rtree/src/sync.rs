//! Concurrency shim: the workspace's only sanctioned mutex and clock.
//!
//! Two jobs, one file:
//!
//! 1. **`parking_lot`-style ergonomics over `std::sync::Mutex`** —
//!    `lock()` returns the guard directly (no `Result`). Lock poisoning
//!    is recovered: the protected state (one LRU shard of the
//!    lock-striped buffer pool — see [`crate::buffer`] and the store's
//!    `BufferShard`) is a cache whose worst corruption mode is a wrong
//!    hit/miss count, and a panicking reader thread should not wedge
//!    every other reader of a shared tree.
//!
//! 2. **A debug-gated lock-discipline checker.** Every [`Mutex`] gets a
//!    unique id; every acquisition (with its [`std::panic::Location`],
//!    via `#[track_caller]`) pushes onto a per-thread held-lock stack
//!    and feeds a global acquisition-order graph. Acquiring lock *B*
//!    while holding lock *A* records the edge *A → B*; if *B ⇝ A* is
//!    already reachable the orders are contradictory — a latent
//!    deadlock — and the checker panics immediately with both hold
//!    sites, even though this particular interleaving did not deadlock.
//!    Re-acquiring a lock the thread already holds (guaranteed
//!    self-deadlock with a non-reentrant mutex) panics likewise.
//!    [`assert_unlocked`] additionally asserts a thread holds *no* shim
//!    lock — the engine calls it before every LazyScene sweep so a shard
//!    lock can never be held across an unbounded visibility expansion.
//!
//! The shim also wraps the two companion primitives the query service
//! needs: [`Condvar`] (whose `wait` releases and re-acquires through the
//! checker, so the held-stack stays truthful across a park) and
//! [`RwLock`]. The reader/writer lock is deliberately *not* tracked by
//! the order checker: service workers execute whole queries — including
//! LazyScene sweeps, which call [`assert_unlocked`] on entry — under a
//! read guard, and read guards do not exclude each other, so holding one
//! across a sweep cannot wedge other readers the way a shard mutex
//! could. Writers are rare (edit batches) and take no shim mutex while
//! holding the write guard.
//!
//! All checking compiles away in release builds (`cfg(debug_assertions)`);
//! the release `lock()` is exactly the old thin wrapper. The static side
//! of the same discipline — no raw `std::sync::Mutex`, `RwLock`,
//! `Condvar`, `thread::spawn` or `Instant::now` outside this file and
//! the bench crate — is enforced by the `lock-discipline` pass of
//! `crates/lint`.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion with `parking_lot`-style (non-poisoning) locking and
/// a debug-build lock-order checker (see the module docs).
#[derive(Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    #[cfg(debug_assertions)]
    id: u64,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
            #[cfg(debug_assertions)]
            id: order::next_id(),
        }
    }

    /// Acquires the lock, blocking the current thread until it is free.
    /// A poisoned lock is recovered rather than propagated.
    ///
    /// Debug builds first run the lock-order checker, which panics on a
    /// cycle in the global acquisition-order graph (latent deadlock) or
    /// on a same-thread re-acquisition (certain deadlock).
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let site = std::panic::Location::caller();
        #[cfg(debug_assertions)]
        order::on_acquire(self.id, site);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(debug_assertions)]
        order::on_locked(self.id, site);
        MutexGuard {
            inner: Some(inner),
            #[cfg(debug_assertions)]
            id: self.id,
        }
    }

    /// Direct access through exclusive ownership — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`]; releases the lock (and pops the
/// debug held-lock stack) on drop.
///
/// The inner guard is an `Option` only so [`Condvar::wait`] can hand it
/// back to the OS primitive while the thread parks; it is `Some` for the
/// guard's entire observable lifetime.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    id: u64,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock")
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            order::on_release(self.id);
        }
    }
}

/// Condition variable paired with the shim [`Mutex`].
///
/// `wait` keeps the debug lock-order checker truthful: the held-stack
/// entry is popped before the thread parks (the lock really is
/// released) and re-pushed — running the full cycle/re-entrancy check —
/// when the thread wakes holding the lock again.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// re-acquires the lock and returns a fresh guard. Spurious wakeups
    /// are possible; callers loop on their predicate as usual.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(debug_assertions)]
        let id = guard.id;
        #[cfg(debug_assertions)]
        let site = std::panic::Location::caller();
        let inner = guard.inner.take().expect("guard holds the lock");
        #[cfg(debug_assertions)]
        order::on_release(id);
        drop(guard);
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        #[cfg(debug_assertions)]
        {
            order::on_acquire(id, site);
            order::on_locked(id, site);
        }
        MutexGuard {
            inner: Some(inner),
            #[cfg(debug_assertions)]
            id,
        }
    }

    /// Wakes one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader/writer lock with the shim's non-poisoning conventions.
///
/// Deliberately untracked by the debug lock-order checker — see the
/// module docs: read guards do not exclude each other, and the query
/// service executes whole queries (including [`assert_unlocked`]-guarded
/// LazyScene sweeps) under one.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new reader/writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access; a poisoned lock is recovered.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access; a poisoned lock is recovered.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Direct access through exclusive ownership — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Panics (debug builds only) when the current thread holds any shim
/// lock. Call it at the entry of operations that must never run under a
/// lock — e.g. a LazyScene sweep, whose A\* expansion re-enters the
/// buffer pool and whose runtime is unbounded.
#[inline]
pub fn assert_unlocked(context: &str) {
    #[cfg(debug_assertions)]
    order::assert_unlocked(context);
    #[cfg(not(debug_assertions))]
    let _ = context;
}

/// Monotonic stopwatch: the workspace's only sanctioned wall-clock
/// source outside the bench crate.
///
/// Query operators time themselves through this facade rather than
/// calling `std::time::Instant::now` directly, so clock access stays
/// auditable (the `lock-discipline` lint pass forbids raw `Instant`
/// elsewhere) and can be centrally stubbed or coarsened later.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    t0: std::time::Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current instant.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch {
            t0: std::time::Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.t0.elapsed()
    }
}

/// Debug-build lock-order tracking: per-thread held stacks + a global
/// acquisition-order graph. See the module docs for the protocol.
#[cfg(debug_assertions)]
mod order {
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock};

    type Site = &'static Location<'static>;

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    pub(super) fn next_id() -> u64 {
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    thread_local! {
        /// Locks the current thread holds, acquisition order, with the
        /// `#[track_caller]` site of each acquisition.
        static HELD: RefCell<Vec<(u64, Site)>> = const { RefCell::new(Vec::new()) };
    }

    /// First observation of an "acquired `to` while holding `from`"
    /// edge: where `from` was held and where `to` was requested.
    struct Edge {
        held_site: Site,
        acquire_site: Site,
    }

    /// Global acquisition-order graph: `from → (to → first edge)`.
    fn graph() -> &'static StdMutex<HashMap<u64, HashMap<u64, Edge>>> {
        static G: OnceLock<StdMutex<HashMap<u64, HashMap<u64, Edge>>>> = OnceLock::new();
        G.get_or_init(|| StdMutex::new(HashMap::new()))
    }

    fn reachable(g: &HashMap<u64, HashMap<u64, Edge>>, from: u64, to: u64) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(es) = g.get(&n) {
                stack.extend(es.keys().copied());
            }
        }
        false
    }

    /// Pre-acquisition check: record held→acquiring edges, panic on a
    /// contradiction. Runs *before* blocking on the lock so the report
    /// fires even on interleavings that would have deadlocked for real.
    pub(super) fn on_acquire(id: u64, site: Site) {
        // Build the panic message inside the TLS borrow, panic outside
        // it: unwinding drops live guards, whose Drop re-enters HELD.
        let msg: Option<String> = HELD
            .try_with(|h| {
                let held = h.borrow();
                if let Some(&(_, prev)) = held.iter().find(|&&(hid, _)| hid == id) {
                    return Some(format!(
                        "lock-discipline: re-acquiring mutex #{id} already held by this \
                         thread (held at {prev}, re-requested at {site}) — certain deadlock"
                    ));
                }
                if held.is_empty() {
                    return None;
                }
                let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
                for &(hid, hsite) in held.iter() {
                    // Adding hid → id: contradiction iff id ⇝ hid exists.
                    if reachable(&g, id, hid) {
                        let reverse = match g.get(&id).and_then(|m| m.get(&hid)) {
                            Some(e) => format!(
                                "the reverse order was first observed holding #{id} at \
                                 {} while acquiring #{hid} at {}",
                                e.held_site, e.acquire_site
                            ),
                            None => format!(
                                "#{id} already reaches #{hid} through a longer \
                                 acquisition chain"
                            ),
                        };
                        return Some(format!(
                            "lock-discipline: lock-order cycle — this thread holds mutex \
                             #{hid} (acquired at {hsite}) while acquiring mutex #{id} (at \
                             {site}), but {reverse}"
                        ));
                    }
                    g.entry(hid).or_default().entry(id).or_insert(Edge {
                        held_site: hsite,
                        acquire_site: site,
                    });
                }
                None
            })
            .ok()
            .flatten();
        if let Some(m) = msg {
            panic!("{m}");
        }
    }

    /// Post-acquisition: push onto the held stack.
    pub(super) fn on_locked(id: u64, site: Site) {
        let _ = HELD.try_with(|h| h.borrow_mut().push((id, site)));
    }

    /// Guard drop: pop the newest matching entry (releases need not be
    /// LIFO — guards can outlive later acquisitions).
    pub(super) fn on_release(id: u64) {
        let _ = HELD.try_with(|h| {
            let mut v = h.borrow_mut();
            if let Some(pos) = v.iter().rposition(|&(hid, _)| hid == id) {
                v.remove(pos);
            }
        });
    }

    pub(super) fn assert_unlocked(context: &str) {
        let msg: Option<String> = HELD
            .try_with(|h| {
                let held = h.borrow();
                if held.is_empty() {
                    return None;
                }
                let sites: Vec<String> =
                    held.iter().map(|(id, s)| format!("#{id} at {s}")).collect();
                Some(format!(
                    "lock-discipline: {context} entered while this thread holds {} shim \
                     lock(s): {}",
                    held.len(),
                    sites.join(", ")
                ))
            })
            .ok()
            .flatten();
        if let Some(m) = msg {
            panic!("{m}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips_values() {
        let m = Mutex::new(41u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn consistent_nesting_order_is_clean() {
        // a → b in two threads, never inverted: no cycle, no panic.
        let a = std::sync::Arc::new(Mutex::new(0u32));
        let b = std::sync::Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..100 {
                        let mut ga = a.lock();
                        let mut gb = b.lock();
                        *ga += 1;
                        *gb += 1;
                    }
                });
            }
        });
        assert_eq!(*a.lock(), 200);
        assert_eq!(*b.lock(), 200);
    }

    #[test]
    fn non_lifo_release_keeps_the_held_stack_consistent() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release out of acquisition order
        drop(gb);
        assert_unlocked("after non-LIFO release"); // must not panic
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn detects_inverted_two_mutex_acquisition() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock(); // records a → b
        }
        let _gb = b.lock();
        let _ga = a.lock(); // b → a closes the cycle: panic with both sites
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "certain deadlock")]
    fn detects_same_thread_relock() {
        let m = Mutex::new(0u32);
        let _g = m.lock();
        let _g2 = m.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-discipline: LazyScene sweep")]
    fn assert_unlocked_trips_under_a_held_lock() {
        let m = Mutex::new(0u32);
        let _g = m.lock();
        assert_unlocked("LazyScene sweep");
    }

    #[test]
    fn assert_unlocked_passes_when_free() {
        let m = Mutex::new(0u32);
        drop(m.lock());
        assert_unlocked("test context");
    }

    #[test]
    fn condvar_hands_a_value_across_threads() {
        let slot = Mutex::new(None::<u32>);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                *slot.lock() = Some(7);
                cv.notify_all();
            });
            let mut g = slot.lock();
            while g.is_none() {
                g = cv.wait(g);
            }
            assert_eq!(*g, Some(7));
        });
    }

    #[test]
    fn condvar_wait_releases_the_held_stack() {
        // While parked in `wait` the thread must not count as holding
        // the mutex: another thread asserts progress, and after the
        // wakeup the woken thread holds it again (guard still works).
        let state = Mutex::new(0u32);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = state.lock();
                while *g == 0 {
                    g = cv.wait(g);
                }
                *g += 10;
            });
            loop {
                let mut g = state.lock();
                // This lock() succeeding at all proves the waiter
                // released the mutex; the order checker would also trip
                // on a stale held-stack entry in debug builds.
                if *g == 0 {
                    *g = 1;
                    cv.notify_all();
                    break;
                }
            }
        });
        assert_eq!(*state.lock(), 11);
        assert_unlocked("after condvar round-trip");
    }

    #[test]
    fn rwlock_allows_concurrent_readers_and_exclusive_writes() {
        let l = RwLock::new(5u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_guard_is_invisible_to_the_order_checker() {
        let l = RwLock::new(0u32);
        let _r = l.read();
        // Untracked by design: a sweep under a read guard must pass.
        assert_unlocked("LazyScene sweep under world read lock");
    }

    #[test]
    fn stopwatch_reports_monotone_elapsed() {
        let sw = Stopwatch::start();
        let e1 = sw.elapsed();
        let e2 = sw.elapsed();
        assert!(e2 >= e1);
    }
}
