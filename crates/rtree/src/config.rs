//! Tree configuration: the simulated disk-page cost model.

/// Which storage backend a tree is built on.
///
/// The engine layer ([`AnyTree::build`](crate::AnyTree::build) and the
/// indexes on top of it) dispatches on this knob; the CLI exposes it as
/// `--backend paged|packed`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The paper's R*-tree over a paged store with an LRU buffer (the
    /// faithful reproduction; supports insert/delete; IO stats count
    /// page accesses).
    #[default]
    Paged,
    /// Flatbush-style packed static tree in one contiguous buffer
    /// (zero locks, zero deserialization; rebuilt on update; IO stats
    /// count node visits).
    Packed,
}

impl Backend {
    /// `"paged"` or `"packed"` — the tag used by the CLI and benches.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Paged => "paged",
            Backend::Packed => "packed",
        }
    }

    /// Parses a CLI tag (the inverse of [`Backend::name`]).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "paged" => Some(Backend::Paged),
            "packed" => Some(Backend::Packed),
            _ => None,
        }
    }
}

/// Configuration of an [`RTree`](crate::RTree).
///
/// The defaults reproduce the experimental setup of the paper (§7):
/// 4 KiB pages with 20-byte entries (four 32-bit coordinates plus a 32-bit
/// pointer) give a node capacity of 204; the LRU buffer holds 10 % of the
/// tree's pages; R* parameters follow \[BKSS90\] (40 % minimum fill, 30 %
/// forced reinsertion).
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    /// Simulated page size in bytes (cost model only).
    pub page_size: usize,
    /// Simulated bytes per entry (cost model only).
    pub entry_bytes: usize,
    /// Simulated page-header bytes (cost model only).
    pub header_bytes: usize,
    /// Maximum entries per node. When `None`, derived from the byte
    /// parameters as `(page_size - header_bytes) / entry_bytes`.
    pub capacity_override: Option<usize>,
    /// Minimum fill ratio of non-root nodes (R*: 0.4).
    pub min_fill_ratio: f64,
    /// Fraction of entries removed by forced reinsertion (R*: 0.3).
    pub reinsert_ratio: f64,
    /// LRU buffer size as a fraction of the tree's page count (paper: 0.1).
    pub buffer_ratio: f64,
    /// Lower bound on the buffer size in pages.
    pub min_buffer_pages: usize,
    /// Number of lock stripes (shards) the LRU buffer is split into.
    ///
    /// `1` (the default, and the paper's model) is a single LRU over the
    /// whole buffer behind one lock. Higher counts hash pages across
    /// independently locked shards, each holding its share of the same
    /// **total** capacity (`buffer_pages`, the 10 % rule, is unchanged) —
    /// concurrent batch workers then rarely contend on one mutex. Query
    /// *results* never depend on this knob (the buffer only does
    /// accounting); the hit/miss split can differ from the single-LRU
    /// split because each shard evicts within its own page subset.
    pub buffer_shards: usize,
    /// Storage backend trees built from this config use. The paged
    /// fields above (page/buffer geometry, R* parameters) only apply to
    /// [`Backend::Paged`]; [`Backend::Packed`] uses
    /// [`RTreeConfig::packed_node_size`].
    pub backend: Backend,
    /// Fan-out of the packed backend (entries per packed node). The
    /// flatbush-lineage default of 16 balances pruning granularity
    /// against per-node scan cost for in-memory search; the paged
    /// capacity (204) models a 4 KiB disk page instead.
    pub packed_node_size: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            page_size: 4096,
            entry_bytes: 20,
            header_bytes: 16,
            capacity_override: None,
            min_fill_ratio: 0.4,
            reinsert_ratio: 0.3,
            buffer_ratio: 0.1,
            min_buffer_pages: 1,
            buffer_shards: 1,
            backend: Backend::Paged,
            packed_node_size: 16,
        }
    }
}

impl RTreeConfig {
    /// The paper's configuration (this is also `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A tiny-node configuration, useful in tests to force deep trees and
    /// many splits with few items.
    pub fn tiny(capacity: usize) -> Self {
        RTreeConfig {
            capacity_override: Some(capacity),
            ..Self::default()
        }
    }

    /// Maximum number of entries per node.
    pub fn capacity(&self) -> usize {
        let cap = self
            .capacity_override
            .unwrap_or((self.page_size.saturating_sub(self.header_bytes)) / self.entry_bytes);
        cap.max(2)
    }

    /// Minimum number of entries per non-root node.
    pub fn min_fill(&self) -> usize {
        ((self.capacity() as f64 * self.min_fill_ratio).floor() as usize)
            .clamp(1, self.capacity() / 2)
    }

    /// Number of entries removed by one forced reinsertion.
    pub fn reinsert_count(&self) -> usize {
        ((self.capacity() as f64 * self.reinsert_ratio).floor() as usize).max(1)
    }

    /// Buffer size in pages for a tree currently occupying `pages` pages.
    pub fn buffer_pages(&self, pages: usize) -> usize {
        (((pages as f64) * self.buffer_ratio).ceil() as usize).max(self.min_buffer_pages)
    }

    /// Lock-stripe count, clamped to at least one shard.
    pub fn shards(&self) -> usize {
        self.buffer_shards.max(1)
    }

    /// This configuration with the buffer split across `shards` lock
    /// stripes (total capacity unchanged — see
    /// [`RTreeConfig::buffer_shards`]). The natural choice for concurrent
    /// batch workloads is the worker-thread count.
    pub fn striped(self, shards: usize) -> Self {
        RTreeConfig {
            buffer_shards: shards,
            ..self
        }
    }

    /// This configuration targeting `backend`.
    pub fn with_backend(self, backend: Backend) -> Self {
        RTreeConfig { backend, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_give_capacity_204() {
        let c = RTreeConfig::default();
        assert_eq!(c.capacity(), 204);
        assert_eq!(c.min_fill(), 81);
        assert_eq!(c.reinsert_count(), 61);
    }

    #[test]
    fn tiny_override() {
        let c = RTreeConfig::tiny(4);
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.min_fill(), 1);
        assert_eq!(c.reinsert_count(), 1);
    }

    #[test]
    fn buffer_sizing() {
        let c = RTreeConfig::default();
        assert_eq!(c.buffer_pages(100), 10);
        assert_eq!(c.buffer_pages(5), 1);
        assert_eq!(c.buffer_pages(0), 1);
        assert_eq!(c.buffer_pages(1001), 101);
    }

    #[test]
    fn capacity_is_at_least_two() {
        let c = RTreeConfig::tiny(1);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn striping_defaults_to_single_shard_and_clamps() {
        let c = RTreeConfig::default();
        assert_eq!(c.shards(), 1, "paper model: one LRU behind one lock");
        assert_eq!(c.striped(8).shards(), 8);
        assert_eq!(c.striped(0).shards(), 1);
        // Striping never changes the total-capacity rule.
        assert_eq!(c.striped(8).buffer_pages(100), c.buffer_pages(100));
    }
}
