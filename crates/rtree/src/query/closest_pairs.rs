//! Incremental closest-pair search over two R-trees \[HS98, CMTV00\].
//!
//! A best-first traversal over *pairs*: the priority queue holds
//! node/node, node/item and item/item pairs keyed by the `mindist` of
//! their rectangles. Popping an item/item pair yields it; popping a pair
//! containing a node expands that node (one side at a time, choosing the
//! node with the larger MBR area, per Hjaltason & Samet's unbalanced
//! expansion). The iterator therefore reports object pairs in
//! non-decreasing distance order and can be consumed lazily — exactly what
//! the paper's OCP and iOCP algorithms require. The two sides are
//! independently generic over [`TreeBackend`] (defaulting to the paged
//! [`RTree`]), so the same traversal serves both storage backends.

use crate::backend::{NodeRef, TreeBackend};
use crate::entry::{Entry, Item};
use crate::float::OrdF64;
use crate::tree::RTree;
use obstacle_geom::Rect;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Node(NodeRef),
    Object(u64),
}

/// Level of a node side on backend `B` (expansion heuristic helper);
/// objects rank below every node.
fn side_level<B: TreeBackend>(tree: &B, side: Side) -> u32 {
    match side {
        Side::Node(n) => tree.node_level(n),
        Side::Object(_) => 0,
    }
}

#[derive(Debug, Clone, Copy)]
struct PairEntry {
    dist: Reverse<OrdF64>,
    // Tie-break: resolved pairs (two objects) surface before unresolved
    // ones at the same distance, guaranteeing progress.
    resolved: bool,
    left: Side,
    right: Side,
    lmbr: Rect,
    rmbr: Rect,
}

impl PartialEq for PairEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.resolved == other.resolved
    }
}
impl Eq for PairEntry {}
impl PartialOrd for PairEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PairEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .cmp(&other.dist)
            .then_with(|| self.resolved.cmp(&other.resolved))
    }
}

/// Incremental closest-pairs iterator; yields `(left_item, right_item,
/// distance)` in non-decreasing distance order.
pub struct ClosestPairs<'a, L: TreeBackend = RTree, R: TreeBackend = RTree> {
    left: &'a L,
    right: &'a R,
    heap: BinaryHeap<PairEntry>,
    scratch: Vec<Entry>,
}

impl<'a, L: TreeBackend, R: TreeBackend> ClosestPairs<'a, L, R> {
    /// Starts an incremental closest-pair computation between two trees.
    pub fn new(left: &'a L, right: &'a R) -> Self {
        let mut heap = BinaryHeap::new();
        if let (Some(lroot), Some(rroot)) = (left.root_node(), right.root_node()) {
            let lmbr = left.root_mbr();
            let rmbr = right.root_mbr();
            heap.push(PairEntry {
                dist: Reverse(OrdF64::new(lmbr.mindist_rect(&rmbr))),
                resolved: false,
                left: Side::Node(lroot),
                right: Side::Node(rroot),
                lmbr,
                rmbr,
            });
        }
        ClosestPairs {
            left,
            right,
            heap,
            scratch: Vec::new(),
        }
    }

    /// Lower bound on the distance of every pair yet to be produced.
    pub fn peek_dist(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.dist.0 .0)
    }

    /// Expands `entry` by opening one of its node sides.
    fn expand(&mut self, entry: PairEntry) {
        // Choose which side to open: prefer the side that is a node when
        // the other is an object; otherwise open the larger-area node.
        let open_left = match (entry.left, entry.right) {
            (Side::Node(_), Side::Object(_)) => true,
            (Side::Object(_), Side::Node(_)) => false,
            (Side::Node(_), Side::Node(_)) => {
                let (ln, rn) = (
                    side_level(self.left, entry.left),
                    side_level(self.right, entry.right),
                );
                match ln.cmp(&rn) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Equal => entry.lmbr.area() >= entry.rmbr.area(),
                }
            }
            (Side::Object(_), Side::Object(_)) => unreachable!("resolved pairs are yielded"),
        };

        if open_left {
            let Side::Node(node) = entry.left else {
                unreachable!()
            };
            let mut entries = std::mem::take(&mut self.scratch);
            let leaf = self.left.read_node_into(node, &mut entries) == 0;
            for e in &entries {
                let (side, mbr) = if leaf {
                    (Side::Object(e.ptr), e.mbr)
                } else {
                    (Side::Node(e.ptr), e.mbr)
                };
                let resolved =
                    matches!(side, Side::Object(_)) && matches!(entry.right, Side::Object(_));
                self.heap.push(PairEntry {
                    dist: Reverse(OrdF64::new(mbr.mindist_rect(&entry.rmbr))),
                    resolved,
                    left: side,
                    right: entry.right,
                    lmbr: mbr,
                    rmbr: entry.rmbr,
                });
            }
            self.scratch = entries;
        } else {
            let Side::Node(node) = entry.right else {
                unreachable!()
            };
            let mut entries = std::mem::take(&mut self.scratch);
            let leaf = self.right.read_node_into(node, &mut entries) == 0;
            for e in &entries {
                let (side, mbr) = if leaf {
                    (Side::Object(e.ptr), e.mbr)
                } else {
                    (Side::Node(e.ptr), e.mbr)
                };
                let resolved =
                    matches!(side, Side::Object(_)) && matches!(entry.left, Side::Object(_));
                self.heap.push(PairEntry {
                    dist: Reverse(OrdF64::new(entry.lmbr.mindist_rect(&mbr))),
                    resolved,
                    left: entry.left,
                    right: side,
                    lmbr: entry.lmbr,
                    rmbr: mbr,
                });
            }
            self.scratch = entries;
        }
    }
}

impl<L: TreeBackend, R: TreeBackend> Iterator for ClosestPairs<'_, L, R> {
    type Item = (Item, Item, f64);

    fn next(&mut self) -> Option<(Item, Item, f64)> {
        while let Some(entry) = self.heap.pop() {
            match (entry.left, entry.right) {
                (Side::Object(l), Side::Object(r)) => {
                    return Some((
                        Item::new(entry.lmbr, l),
                        Item::new(entry.rmbr, r),
                        entry.dist.0 .0,
                    ));
                }
                _ => self.expand(entry),
            }
        }
        None
    }
}

impl RTree {
    /// Incremental closest pairs between `self` (left) and `other`
    /// (right); see [`ClosestPairs`].
    pub fn closest_pairs<'a>(&'a self, other: &'a RTree) -> ClosestPairs<'a> {
        ClosestPairs::new(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use obstacle_geom::Point;

    fn points_tree(pts: &[(f64, f64)], cap: usize) -> RTree {
        RTree::build(
            RTreeConfig::tiny(cap),
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| Item::point(Point::new(x, y), i as u64)),
        )
    }

    fn brute_pairs(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<f64> {
        let mut d = Vec::new();
        for &(ax, ay) in a {
            for &(bx, by) in b {
                d.push(Point::new(ax, ay).dist(Point::new(bx, by)));
            }
        }
        d.sort_by(|x, y| obstacle_geom::total_cmp(*x, *y));
        d
    }

    #[test]
    fn first_pair_is_global_minimum() {
        let a = vec![(0.0, 0.0), (4.0, 4.0), (9.0, 1.0)];
        let b = vec![(5.0, 5.0), (0.5, 0.0), (2.0, 8.0)];
        let ta = points_tree(&a, 4);
        let tb = points_tree(&b, 4);
        let (s, t, d) = ta.closest_pairs(&tb).next().unwrap();
        assert_eq!((s.id, t.id), (0, 1));
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_enumeration_matches_brute_force() {
        let a: Vec<(f64, f64)> = (0..25)
            .map(|i| ((i % 5) as f64 * 1.3, (i / 5) as f64 * 0.7))
            .collect();
        let b: Vec<(f64, f64)> = (0..20)
            .map(|i| ((i % 4) as f64 * 0.9 + 0.2, (i / 4) as f64 * 1.1 + 0.1))
            .collect();
        let ta = points_tree(&a, 3);
        let tb = points_tree(&b, 4);
        let got: Vec<f64> = ta.closest_pairs(&tb).map(|(_, _, d)| d).collect();
        let expect = brute_pairs(&a, &b);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-9, "{g} vs {e}");
        }
    }

    #[test]
    fn non_decreasing_distances() {
        let a: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 0.37 % 7.0, i as f64 * 0.71 % 5.0))
            .collect();
        let b: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 0.53 % 6.0, i as f64 * 0.29 % 4.0))
            .collect();
        let ta = points_tree(&a, 4);
        let tb = points_tree(&b, 4);
        let mut prev = -1.0;
        for (_, _, d) in ta.closest_pairs(&tb).take(500) {
            assert!(d + 1e-12 >= prev);
            prev = d;
        }
    }

    #[test]
    fn peek_dist_bounds_next() {
        let a = vec![(0.0, 0.0), (1.0, 1.0)];
        let b = vec![(3.0, 3.0), (0.2, 0.0)];
        let ta = points_tree(&a, 4);
        let tb = points_tree(&b, 4);
        let mut it = ta.closest_pairs(&tb);
        let bound = it.peek_dist().unwrap();
        let (_, _, d) = it.next().unwrap();
        assert!(d >= bound - 1e-12);
    }

    #[test]
    fn empty_side_yields_nothing() {
        let empty = RTree::new(RTreeConfig::tiny(4));
        let t = points_tree(&[(0.0, 0.0)], 4);
        assert!(t.closest_pairs(&empty).next().is_none());
        assert!(empty.closest_pairs(&t).next().is_none());
    }
}
