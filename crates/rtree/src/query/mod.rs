//! Query algorithms beyond plain range search.

pub mod closest_pairs;
pub mod join;
pub mod nn;
