//! Incremental best-first nearest-neighbour search \[HS99\].
//!
//! The ONN algorithm of the paper needs Euclidean neighbours *one at a
//! time*: it keeps pulling the next Euclidean NN while the candidate's
//! Euclidean distance is below the shrinking obstructed-distance threshold
//! `d_Emax`. [`Nearest`] is exactly the distance-browsing iterator of
//! Hjaltason & Samet: a priority queue over nodes and objects keyed by
//! `mindist` to the query point. It is optimal (visits only pages whose
//! region is closer than the k-th neighbour) and resumable. The iterator
//! is generic over the storage backend — the same traversal browses the
//! paged tree's buffered pages or the packed tree's slots.

use crate::backend::{NodeRef, TreeBackend};
use crate::entry::{Entry, Item};
use crate::float::OrdF64;
use crate::tree::RTree;
use obstacle_geom::Point;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    dist: Reverse<OrdF64>,
    kind: CandidateKind,
}

/// Discriminates nodes from objects so that, at equal distance, objects are
/// reported before nodes are expanded (guarantees progress and stable
/// output order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CandidateKind {
    Object { id: u64, mbr_idx: u32 },
    Node(NodeRef),
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; `dist` is reversed so smaller distances
        // surface first. Prefer objects over nodes on ties.
        self.dist.cmp(&other.dist).then_with(|| {
            let rank = |k: &CandidateKind| match k {
                CandidateKind::Object { .. } => 1,
                CandidateKind::Node(_) => 0,
            };
            rank(&self.kind).cmp(&rank(&other.kind))
        })
    }
}

/// Incremental nearest-neighbour iterator over any [`TreeBackend`]
/// (defaults to the paged [`RTree`]).
///
/// Yields `(item, distance)` pairs in non-decreasing distance order from
/// the query point; for point items the distance is the exact Euclidean
/// distance, for rectangle items it is `mindist` to the MBR.
pub struct Nearest<'a, B: TreeBackend = RTree> {
    tree: &'a B,
    query: Point,
    heap: BinaryHeap<HeapEntry>,
    // Object MBRs are kept out of the heap entry to keep it `Copy`-small;
    // indexed storage of pending object rectangles.
    object_mbrs: Vec<obstacle_geom::Rect>,
    // Node entries are read into this scratch buffer, one allocation for
    // the whole iteration.
    scratch: Vec<Entry>,
}

impl<'a, B: TreeBackend> Nearest<'a, B> {
    pub(crate) fn new(tree: &'a B, query: Point) -> Self {
        let mut heap = BinaryHeap::new();
        if let Some(root) = tree.root_node() {
            heap.push(HeapEntry {
                dist: Reverse(OrdF64::new(0.0)),
                kind: CandidateKind::Node(root),
            });
        }
        Nearest {
            tree,
            query,
            heap,
            object_mbrs: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Distance of the next candidate without consuming it (a lower bound
    /// on every distance this iterator will ever yield again).
    pub fn peek_dist(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.dist.0 .0)
    }

    fn push_object(&mut self, item: Item, dist: f64) {
        let idx = self.object_mbrs.len() as u32;
        self.object_mbrs.push(item.mbr);
        self.heap.push(HeapEntry {
            dist: Reverse(OrdF64::new(dist)),
            kind: CandidateKind::Object {
                id: item.id,
                mbr_idx: idx,
            },
        });
    }
}

impl<B: TreeBackend> Iterator for Nearest<'_, B> {
    type Item = (Item, f64);

    fn next(&mut self) -> Option<(Item, f64)> {
        while let Some(HeapEntry { dist, kind }) = self.heap.pop() {
            match kind {
                CandidateKind::Object { id, mbr_idx } => {
                    let mbr = self.object_mbrs[mbr_idx as usize];
                    return Some((Item::new(mbr, id), dist.0 .0));
                }
                CandidateKind::Node(node) => {
                    let mut entries = std::mem::take(&mut self.scratch);
                    let level = self.tree.read_node_into(node, &mut entries);
                    if level == 0 {
                        for e in &entries {
                            let d = e.mbr.mindist_point(self.query);
                            self.push_object(Item::from(*e), d);
                        }
                    } else {
                        for e in &entries {
                            self.heap.push(HeapEntry {
                                dist: Reverse(OrdF64::new(e.mbr.mindist_point(self.query))),
                                kind: CandidateKind::Node(e.ptr),
                            });
                        }
                    }
                    self.scratch = entries;
                }
            }
        }
        None
    }
}

impl RTree {
    /// Incremental nearest-neighbour iterator from `query` \[HS99\].
    pub fn nearest(&self, query: Point) -> Nearest<'_> {
        Nearest::new(self, query)
    }

    /// The `k` nearest items to `query` (convenience over [`RTree::nearest`]).
    pub fn k_nearest(&self, query: Point, k: usize) -> Vec<(Item, f64)> {
        self.nearest(query).take(k).collect()
    }
}

impl crate::packed::PackedRTree {
    /// Incremental nearest-neighbour iterator from `query` \[HS99\].
    pub fn nearest(&self, query: Point) -> Nearest<'_, crate::packed::PackedRTree> {
        Nearest::new(self, query)
    }

    /// The `k` nearest items to `query`.
    pub fn k_nearest(&self, query: Point, k: usize) -> Vec<(Item, f64)> {
        self.nearest(query).take(k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;

    fn grid_tree(cap: usize) -> RTree {
        // 10×10 grid of points with ids y*10+x.
        let items =
            (0..100u64).map(|i| Item::point(Point::new((i % 10) as f64, (i / 10) as f64), i));
        RTree::build(RTreeConfig::tiny(cap), items)
    }

    #[test]
    fn first_neighbour_is_exact() {
        let t = grid_tree(4);
        let (item, d) = t.nearest(Point::new(3.2, 4.1)).next().unwrap();
        assert_eq!(item.id, 43); // (3,4)
        assert!((d - (0.2f64 * 0.2 + 0.1 * 0.1).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn distances_are_non_decreasing_and_complete() {
        let t = grid_tree(4);
        let all: Vec<(Item, f64)> = t.nearest(Point::new(0.5, 0.5)).collect();
        assert_eq!(all.len(), 100);
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        let mut ids: Vec<u64> = all.iter().map(|(i, _)| i.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn matches_linear_scan() {
        let t = grid_tree(5);
        let q = Point::new(7.3, 2.9);
        let got = t.k_nearest(q, 12);
        let mut expect: Vec<(u64, f64)> = (0..100u64)
            .map(|i| {
                let p = Point::new((i % 10) as f64, (i / 10) as f64);
                (i, p.dist(q))
            })
            .collect();
        expect.sort_by(|a, b| obstacle_geom::total_cmp(a.1, b.1));
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g.1 - e.1).abs() < 1e-12);
        }
    }

    #[test]
    fn peek_lower_bounds_future_results() {
        let t = grid_tree(4);
        let mut it = t.nearest(Point::new(5.0, 5.0));
        let _ = it.next();
        let bound = it.peek_dist().unwrap();
        for (_, d) in it {
            assert!(d + 1e-12 >= bound);
        }
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let t = RTree::new(RTreeConfig::tiny(4));
        assert!(t.nearest(Point::new(0.0, 0.0)).next().is_none());
    }
}
