//! R-tree e-distance join \[BKS93\].
//!
//! Synchronized depth-first traversal of two trees, following node pairs
//! whose MBR `mindist` does not exceed the join distance `e`. At the leaf
//! level a plane-sweep along the x axis avoids the full quadratic pairing
//! of the two nodes' entries. The ODJ algorithm of the paper runs this to
//! obtain candidate pairs before obstructed-distance refinement. The two
//! sides are independently generic over [`TreeBackend`], so a paged tree
//! can even join against a packed one.

use crate::backend::{NodeRef, TreeBackend};
use crate::entry::{Entry, Item};
use obstacle_geom::Rect;

/// All item pairs `(s, t)` with `mindist(s.mbr, t.mbr) ≤ e` (for point
/// items this is the exact Euclidean e-distance join of the paper).
///
/// `left` and `right` may be the same tree; self-pairs `(x, x)` are then
/// included (callers filter as needed).
pub fn distance_join<L: TreeBackend, R: TreeBackend>(
    left: &L,
    right: &R,
    e: f64,
) -> Vec<(Item, Item)> {
    let mut out = Vec::new();
    let (Some(lroot), Some(rroot)) = (left.root_node(), right.root_node()) else {
        return out;
    };
    join_pages(left, right, lroot, rroot, e, &mut out);
    out
}

/// MBR of a node given its entries (the entry list is never empty in a
/// well-formed non-empty tree).
fn entries_mbr(entries: &[Entry]) -> Rect {
    entries.iter().fold(Rect::empty(), |u, e| u.union(&e.mbr))
}

fn join_pages<L: TreeBackend, R: TreeBackend>(
    left: &L,
    right: &R,
    lp: NodeRef,
    rp: NodeRef,
    e: f64,
    out: &mut Vec<(Item, Item)>,
) {
    let mut ln = Vec::new();
    let mut rn = Vec::new();
    let l_leaf = left.read_node_into(lp, &mut ln) == 0;
    let r_leaf = right.read_node_into(rp, &mut rn) == 0;

    match (l_leaf, r_leaf) {
        (true, true) => {
            sweep_leaf_pairs(&ln, &rn, e, out);
        }
        (false, true) => {
            // Descend the left (taller) side only.
            let rmbr = entries_mbr(&rn);
            for le in &ln {
                if le.mbr.mindist_rect(&rmbr) <= e {
                    join_pages(left, right, le.ptr, rp, e, out);
                }
            }
        }
        (true, false) => {
            let lmbr = entries_mbr(&ln);
            for re in &rn {
                if re.mbr.mindist_rect(&lmbr) <= e {
                    join_pages(left, right, lp, re.ptr, e, out);
                }
            }
        }
        (false, false) => {
            // Both internal: pair children with mindist ≤ e. Sorting by
            // x-low lets the scan skip far-apart pairs early.
            let pairs = qualifying_pairs(&ln, &rn, e);
            for (lc, rc) in pairs {
                join_pages(left, right, lc, rc, e, out);
            }
        }
    }
}

/// Child-pair generation for two internal nodes with an x-axis sweep.
fn qualifying_pairs(ls: &[Entry], rs: &[Entry], e: f64) -> Vec<(NodeRef, NodeRef)> {
    let mut l: Vec<&Entry> = ls.iter().collect();
    let mut r: Vec<&Entry> = rs.iter().collect();
    l.sort_by(|a, b| obstacle_geom::total_cmp(a.mbr.min.x, b.mbr.min.x));
    r.sort_by(|a, b| obstacle_geom::total_cmp(a.mbr.min.x, b.mbr.min.x));
    let mut out = Vec::new();
    let mut start = 0usize;
    for le in &l {
        // Advance past right entries that end too far left of `le`.
        while start < r.len() && r[start].mbr.max.x < le.mbr.min.x - e {
            start += 1;
        }
        for re in r.iter().skip(start) {
            if re.mbr.min.x > le.mbr.max.x + e {
                break;
            }
            if le.mbr.mindist_rect(&re.mbr) <= e {
                out.push((le.ptr, re.ptr));
            }
        }
    }
    out
}

/// Leaf-level pairing with the same sweep.
fn sweep_leaf_pairs(ls: &[Entry], rs: &[Entry], e: f64, out: &mut Vec<(Item, Item)>) {
    let mut l: Vec<&Entry> = ls.iter().collect();
    let mut r: Vec<&Entry> = rs.iter().collect();
    l.sort_by(|a, b| obstacle_geom::total_cmp(a.mbr.min.x, b.mbr.min.x));
    r.sort_by(|a, b| obstacle_geom::total_cmp(a.mbr.min.x, b.mbr.min.x));
    let mut start = 0usize;
    for le in &l {
        while start < r.len() && r[start].mbr.max.x < le.mbr.min.x - e {
            start += 1;
        }
        for re in r.iter().skip(start) {
            if re.mbr.min.x > le.mbr.max.x + e {
                break;
            }
            if le.mbr.mindist_rect(&re.mbr) <= e {
                out.push((Item::from(**le), Item::from(**re)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::tree::RTree;
    use obstacle_geom::Point;

    fn points_tree(pts: &[(f64, f64)], cap: usize) -> RTree {
        RTree::build(
            RTreeConfig::tiny(cap),
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| Item::point(Point::new(x, y), i as u64)),
        )
    }

    fn brute_join(a: &[(f64, f64)], b: &[(f64, f64)], e: f64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (i, &(ax, ay)) in a.iter().enumerate() {
            for (j, &(bx, by)) in b.iter().enumerate() {
                if Point::new(ax, ay).dist(Point::new(bx, by)) <= e {
                    out.push((i as u64, j as u64));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_brute_force_on_grids() {
        let a: Vec<(f64, f64)> = (0..40).map(|i| ((i % 8) as f64, (i / 8) as f64)).collect();
        let b: Vec<(f64, f64)> = (0..30)
            .map(|i| ((i % 6) as f64 + 0.4, (i / 6) as f64 + 0.3))
            .collect();
        let ta = points_tree(&a, 4);
        let tb = points_tree(&b, 3);
        for e in [0.0, 0.5, 0.71, 1.5, 10.0] {
            let mut got: Vec<(u64, u64)> = distance_join(&ta, &tb, e)
                .into_iter()
                .map(|(s, t)| (s.id, t.id))
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_join(&a, &b, e), "e = {e}");
        }
    }

    #[test]
    fn asymmetric_heights() {
        // Left tree much larger than right → unequal heights exercise the
        // fix-one-side descent paths.
        let a: Vec<(f64, f64)> = (0..300)
            .map(|i| ((i % 20) as f64 * 0.1, (i / 20) as f64 * 0.1))
            .collect();
        let b = vec![(0.55, 0.55), (1.0, 1.4)];
        let ta = points_tree(&a, 4);
        let tb = points_tree(&b, 4);
        assert!(ta.height() > tb.height());
        let mut got: Vec<(u64, u64)> = distance_join(&ta, &tb, 0.25)
            .into_iter()
            .map(|(s, t)| (s.id, t.id))
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_join(&a, &b, 0.25));
    }

    #[test]
    fn zero_distance_is_intersection_join() {
        let a = vec![(1.0, 1.0), (2.0, 2.0)];
        let b = vec![(1.0, 1.0), (3.0, 3.0)];
        let got = distance_join(&points_tree(&a, 4), &points_tree(&b, 4), 0.0);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].0.id, got[0].1.id), (0, 0));
    }

    #[test]
    fn empty_inputs() {
        let empty = RTree::new(RTreeConfig::tiny(4));
        let t = points_tree(&[(0.0, 0.0)], 4);
        assert!(distance_join(&empty, &t, 1.0).is_empty());
        assert!(distance_join(&t, &empty, 1.0).is_empty());
    }

    #[test]
    fn self_join_includes_self_pairs() {
        let a = vec![(0.0, 0.0), (5.0, 5.0)];
        let t = points_tree(&a, 4);
        let got = distance_join(&t, &t, 1.0);
        assert_eq!(got.len(), 2); // (0,0) and (1,1)
    }
}
