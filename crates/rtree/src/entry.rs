//! Entries and items.

use obstacle_geom::{Point, Rect};

/// Identifier of a simulated disk page holding one tree node.
pub type PageId = u32;

/// An entry of a tree node: a bounding rectangle plus a pointer.
///
/// In internal nodes the pointer is the [`PageId`] of a child node; in
/// leaves it is the caller-assigned identifier of the indexed object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    /// Minimum bounding rectangle of the referenced subtree or object.
    pub mbr: Rect,
    /// Child page id (internal nodes) or object id (leaves).
    pub ptr: u64,
}

impl Entry {
    /// Creates an entry.
    #[inline]
    pub fn new(mbr: Rect, ptr: u64) -> Self {
        Entry { mbr, ptr }
    }

    /// The pointer reinterpreted as a page id (valid in internal nodes).
    #[inline]
    pub fn child(&self) -> PageId {
        self.ptr as PageId
    }
}

/// A leaf-level object: what callers insert into and get back from a tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Item {
    /// Minimum bounding rectangle of the object. For point objects this is
    /// degenerate (`min == max`).
    pub mbr: Rect,
    /// Caller-assigned object identifier.
    pub id: u64,
}

impl Item {
    /// Creates an item from an arbitrary rectangle.
    #[inline]
    pub fn new(mbr: Rect, id: u64) -> Self {
        Item { mbr, id }
    }

    /// Creates a point item.
    #[inline]
    pub fn point(p: Point, id: u64) -> Self {
        Item {
            mbr: Rect::from_point(p),
            id,
        }
    }

    /// Center of the item's rectangle (the point itself for point items).
    #[inline]
    pub fn center(&self) -> Point {
        self.mbr.center()
    }
}

impl From<Item> for Entry {
    fn from(i: Item) -> Entry {
        Entry::new(i.mbr, i.id)
    }
}

impl From<Entry> for Item {
    fn from(e: Entry) -> Item {
        Item::new(e.mbr, e.ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_entry_roundtrip() {
        let it = Item::point(Point::new(1.0, 2.0), 42);
        let e: Entry = it.into();
        let back: Item = e.into();
        assert_eq!(back, it);
        assert_eq!(back.center(), Point::new(1.0, 2.0));
    }

    #[test]
    fn entry_child_cast() {
        let e = Entry::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 7);
        assert_eq!(e.child(), 7u32);
    }
}
