//! Structural tree statistics.
//!
//! Quantifies tree quality — node occupancy, per-level page counts, MBR
//! area and overlap — so construction strategies (R\* insertion vs STR vs
//! Hilbert bulk loading) can be compared beyond raw query timings. Used
//! by the `loading strategies` ablation bench and handy when debugging
//! degenerate splits.

use crate::entry::PageId;
use crate::tree::RTree;

/// Statistics of one tree level (0 = leaves).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LevelStats {
    /// Nodes at this level.
    pub nodes: usize,
    /// Total entries across the level's nodes.
    pub entries: usize,
    /// Sum of node-MBR areas.
    pub area: f64,
    /// Sum of pairwise MBR intersection areas between sibling nodes of
    /// this level (the R\*-tree's overlap criterion; smaller is better).
    pub overlap: f64,
}

impl LevelStats {
    /// Mean entries per node, as a fraction of `capacity`.
    pub fn occupancy(&self, capacity: usize) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.entries as f64 / (self.nodes * capacity) as f64
        }
    }
}

/// Whole-tree structural statistics; see [`RTree::stats`].
#[derive(Clone, Debug, Default)]
pub struct TreeStats {
    /// Per-level stats, index 0 = leaf level.
    pub levels: Vec<LevelStats>,
}

impl TreeStats {
    /// Total number of nodes (pages).
    pub fn total_nodes(&self) -> usize {
        self.levels.iter().map(|l| l.nodes).sum()
    }

    /// Leaf-level statistics.
    pub fn leaves(&self) -> LevelStats {
        self.levels.first().copied().unwrap_or_default()
    }
}

impl RTree {
    /// Computes structural statistics (no I/O accounting: this walks the
    /// raw pages, it is an offline diagnostic).
    pub fn stats(&self) -> TreeStats {
        let mut stats = TreeStats {
            levels: vec![LevelStats::default(); self.height as usize],
        };
        // Collect per-level node MBR lists for the overlap metric.
        let mut mbrs_per_level: Vec<Vec<obstacle_geom::Rect>> =
            vec![Vec::new(); self.height as usize];
        let mut stack: Vec<PageId> = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.store.node(page);
            let lvl = node.level as usize;
            stats.levels[lvl].nodes += 1;
            stats.levels[lvl].entries += node.len();
            let mbr = node.mbr();
            stats.levels[lvl].area += mbr.area();
            mbrs_per_level[lvl].push(mbr);
            if !node.is_leaf() {
                stack.extend(node.entries.iter().map(|e| e.child()));
            }
        }
        for (lvl, mbrs) in mbrs_per_level.iter().enumerate() {
            let mut overlap = 0.0;
            for i in 0..mbrs.len() {
                for j in (i + 1)..mbrs.len() {
                    overlap += mbrs[i].intersection_area(&mbrs[j]);
                }
            }
            stats.levels[lvl].overlap = overlap;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::entry::Item;
    use obstacle_geom::Point;

    fn grid_items(n: usize) -> Vec<Item> {
        (0..n)
            .map(|i| {
                Item::point(
                    Point::new((i % 50) as f64 / 50.0, (i / 50) as f64 / 50.0),
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn counts_match_tree_shape() {
        let t = RTree::build(RTreeConfig::tiny(8), grid_items(500));
        let s = t.stats();
        assert_eq!(s.levels.len(), t.height() as usize);
        assert_eq!(s.total_nodes(), t.pages());
        assert_eq!(s.leaves().entries, 500);
        // Every non-leaf level's entries equal the node count below it.
        for lvl in 1..s.levels.len() {
            assert_eq!(s.levels[lvl].entries, s.levels[lvl - 1].nodes);
        }
    }

    #[test]
    fn str_packs_tighter_than_insertion() {
        let items = grid_items(2000);
        let built = RTree::build(RTreeConfig::tiny(16), items.clone());
        let bulk = RTree::bulk_load_str(RTreeConfig::tiny(16), items);
        let cap = 16;
        let s_built = built.stats();
        let s_bulk = bulk.stats();
        assert!(
            s_bulk.leaves().occupancy(cap) > s_built.leaves().occupancy(cap),
            "STR occupancy {} should beat insertion {}",
            s_bulk.leaves().occupancy(cap),
            s_built.leaves().occupancy(cap)
        );
        assert!(s_bulk.total_nodes() <= s_built.total_nodes());
    }

    #[test]
    fn overlap_is_zero_for_disjoint_tiles_and_positive_when_forced() {
        // STR over a uniform grid produces (nearly) disjoint leaf tiles.
        let bulk = RTree::bulk_load_str(RTreeConfig::tiny(16), grid_items(1000));
        let s = bulk.stats();
        // Overlap exists but should be tiny relative to covered area.
        let leaves = s.leaves();
        assert!(leaves.overlap <= leaves.area * 0.1 + 1e-9);
    }

    #[test]
    fn empty_and_single_node_trees() {
        let t = RTree::new(RTreeConfig::tiny(4));
        let s = t.stats();
        assert_eq!(s.total_nodes(), 1);
        assert_eq!(s.leaves().entries, 0);
        assert_eq!(s.leaves().occupancy(4), 0.0);
    }
}
