//! A totally-ordered `f64` wrapper for priority queues.

use std::cmp::Ordering;

/// An `f64` that implements `Ord`.
///
/// All distances flowing through the query priority queues are finite and
/// non-NaN by construction (they are Euclidean distances of finite
/// coordinates); the wrapper asserts that in debug builds and falls back to
/// the IEEE `totalOrder` of [`obstacle_geom::total_cmp`] otherwise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wraps a distance value, debug-asserting it is not NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "NaN distance in priority queue");
        OrdF64(v)
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // IEEE totalOrder — NaN keys (unreachable in practice, see type
        // docs) sort deterministically instead of panicking.
        obstacle_geom::total_cmp(self.0, other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        assert!(OrdF64::new(1.0) < OrdF64::new(2.0));
        assert!(OrdF64::new(-1.0) < OrdF64::new(0.0));
        assert_eq!(OrdF64::new(3.5), OrdF64::new(3.5));
    }

    #[test]
    fn works_in_a_binary_heap_as_min_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        for v in [3.0, 1.0, 2.0] {
            h.push(Reverse(OrdF64::new(v)));
        }
        assert_eq!(h.pop().unwrap().0 .0, 1.0);
        assert_eq!(h.pop().unwrap().0 .0, 2.0);
        assert_eq!(h.pop().unwrap().0 .0, 3.0);
    }

    #[test]
    fn nan_keys_order_deterministically_without_panicking() {
        // Regression for the NaN burn-down: a NaN key reaching the heap
        // (bypassing `new`'s debug assert) must not abort the query.
        let nan = OrdF64(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(OrdF64(1.0) < nan);
        assert!(OrdF64(f64::INFINITY) < nan);
        let mut v = [nan, OrdF64(2.0), OrdF64(-1.0)];
        v.sort();
        assert_eq!(v[0].0, -1.0);
        assert_eq!(v[1].0, 2.0);
        assert!(v[2].0.is_nan());
    }
}
