//! A totally-ordered `f64` wrapper for priority queues.

use std::cmp::Ordering;

/// An `f64` that implements `Ord`.
///
/// All distances flowing through the query priority queues are finite and
/// non-NaN by construction (they are Euclidean distances of finite
/// coordinates); the wrapper asserts that in debug builds and falls back to
/// a total order treating NaN as greatest otherwise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wraps a distance value, debug-asserting it is not NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "NaN distance in priority queue");
        OrdF64(v)
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or_else(|| {
            // NaN-tolerant total order (NaN sorts last) — unreachable in
            // practice, see type docs.
            match (self.0.is_nan(), other.0.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => unreachable!(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        assert!(OrdF64::new(1.0) < OrdF64::new(2.0));
        assert!(OrdF64::new(-1.0) < OrdF64::new(0.0));
        assert_eq!(OrdF64::new(3.5), OrdF64::new(3.5));
    }

    #[test]
    fn works_in_a_binary_heap_as_min_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        for v in [3.0, 1.0, 2.0] {
            h.push(Reverse(OrdF64::new(v)));
        }
        assert_eq!(h.pop().unwrap().0 .0, 1.0);
        assert_eq!(h.pop().unwrap().0 .0, 2.0);
        assert_eq!(h.pop().unwrap().0 .0, 3.0);
    }
}
