//! Spatial query processing in the presence of obstacles — the primary
//! contribution of Zhang, Papadias, Mouratidis, Zhu (EDBT 2004).
//!
//! Given entity datasets and an obstacle dataset, all indexed by
//! disk-model R*-trees, this crate answers the four query types of the
//! paper under the **obstructed distance** metric `d_O` (length of the
//! shortest path avoiding all obstacle interiors):
//!
//! | Query | Entry point | Paper |
//! |---|---|---|
//! | Obstacle range | [`QueryEngine::range`] | §3, Fig. 5 |
//! | Obstacle k-NN | [`QueryEngine::nearest`] | §4, Fig. 9 |
//! | incremental NN | [`QueryEngine::nearest_incremental`] | §6 (iONN remark) |
//! | e-distance join | [`distance_join`] | §5, Fig. 10 |
//! | closest pairs | [`closest_pairs`] | §6, Fig. 11 |
//! | incremental CP | [`incremental_closest_pairs`] | §6, Fig. 12 |
//! | distance semi-join | [`semi_join`] | §2.1 (both strategies) |
//! | shortest paths | [`shortest_obstructed_path`] | application layer |
//! | concurrent batches | [`QueryEngine::batch`] | scaling layer (§7 workloads) |
//! | resident service | [`QueryService`] | serving layer |
//!
//! All algorithms share two ideas:
//!
//! 1. the **Euclidean lower bound** (`d_E ≤ d_O`): conventional R-tree
//!    queries produce candidate supersets which are then refined;
//! 2. **local visibility scenes** built on-line from only the obstacles
//!    that can influence the result, grown iteratively by
//!    [`compute_obstructed_distance`] (Fig. 8) until provably sufficient —
//!    and explored *lazily*: distances come from A\* guided by the
//!    Euclidean heuristic over an on-demand successor oracle
//!    ([`obstacle_visibility::LazyScene`]), so only the corridor the
//!    shortest path actually touches ever pays for visibility sweeps.
//!
//! Every query returns a [`QueryStats`] with the paper's cost metrics:
//! R-tree page accesses split by tree (logical fetches and buffer
//! misses), CPU time, and false-hit counts.
//!
//! # Example: the paper's Fig. 1
//!
//! ```
//! use obstacle_geom::{Point, Polygon, Rect};
//! use obstacle_core::{EntityIndex, ObstacleIndex, QueryEngine};
//! use obstacle_rtree::RTreeConfig;
//!
//! // Entity a is the Euclidean NN of q, but a wall blocks the way;
//! // entity b is the true obstructed NN.
//! let entities = EntityIndex::build(
//!     RTreeConfig::default(),
//!     vec![Point::new(2.0, 0.0), Point::new(0.0, 2.2)], // a = 0, b = 1
//! );
//! let obstacles = ObstacleIndex::build(
//!     RTreeConfig::default(),
//!     vec![Polygon::from_rect(Rect::from_coords(1.0, -2.0, 1.2, 2.0))],
//! );
//! let engine = QueryEngine::new(&entities, &obstacles);
//! let nn = engine.nearest(Point::new(0.0, 0.0), 1);
//! assert_eq!(nn.neighbors[0].0, 1); // b wins under the obstructed metric
//! assert_eq!(nn.stats.false_hits, 1); // a was a false hit
//! ```

#![warn(missing_docs)]

mod batch;
mod brute;
mod closest_pair;
mod distance;
mod engine;
mod join;
mod nn;
mod path;
mod range;
mod semi_join;
mod service;
mod stats;
mod updates;

pub use batch::{
    Answer, BatchOptions, BatchRequest, BatchStats, BatchStream, Delivery, Query, SceneBudget,
    SceneCache, Schedule,
};
pub use brute::BruteForce;
pub use closest_pair::{closest_pairs, incremental_closest_pairs, IncrementalClosestPairs};
pub use distance::{
    compute_obstructed_distance, compute_obstructed_distance_pruned, compute_obstructed_path,
    compute_obstructed_path_pruned, compute_obstructed_range, LocalGraph,
};
pub use engine::{EngineOptions, EntityIndex, ObstacleIndex, QueryEngine};
pub use join::distance_join;
pub use nn::IncrementalNearest;
pub use path::{close_rel, shortest_obstructed_path, shortest_obstructed_path_in};
pub use semi_join::{semi_join, SemiJoinStrategy};
pub use service::{
    Admission, Completion, LatencyHistogram, Outcome, QueryService, ServiceConfig, ServiceRun,
    ServiceStats, SubmitError, Ticket,
};
pub use stats::{ClosestPairsResult, JoinResult, NearestResult, QueryStats, RangeResult};
pub use updates::{Update, UpdateStats};

/// Node tag used for query points inside local visibility graphs (entity
/// tags are dataset object ids, far below this sentinel).
pub(crate) const QUERY_TAG: u64 = u64::MAX;
