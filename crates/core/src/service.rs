//! Resident query service: a long-lived worker pool with admission
//! control, fed concurrently while it executes.
//!
//! The batch engine ([`QueryEngine::batch`](crate::QueryEngine::batch))
//! drains one fixed slice and exits — the experiment shape. A server
//! shape is different: queries arrive while earlier ones execute, the
//! pending set must stay bounded (or the process melts under offered
//! load), and the interesting metric is *time to answer*, not batch
//! wall-clock. [`QueryService`] provides that shape on the same
//! machinery:
//!
//! * **One pool for the process lifetime.** Workers are
//!   `std::thread::scope` threads living as long as
//!   [`QueryService::run`]'s body; each owns a persistent [`SceneCache`]
//!   exactly like a batch worker, so a resident service keeps its scenes
//!   warm *across* submissions — the whole point of staying resident.
//! * **Live Hilbert re-scheduling.** The pending queue is a B-tree keyed
//!   by the batch engine's Hilbert scheduling key; workers claim in an
//!   elevator scan over that key space, so a late arrival near the
//!   current scan position slots into the live claim order instead of
//!   queueing behind everything submitted before it (under
//!   [`Schedule::InputOrder`] the queue degrades to FIFO).
//! * **Admission control.** The queue depth is bounded; a submission
//!   over the bound blocks, is rejected, or evicts the oldest pending
//!   query per [`Admission`].
//! * **Completions over the streaming channel machinery.** Every
//!   submission is eventually answered with a [`Completion`] over the
//!   same `mpsc` channel shape [`BatchStream`](crate::BatchStream)
//!   drains, carrying the answer, its time-to-answer (stamped via
//!   [`Stopwatch`] from the submission instant), and the epoch pair the
//!   execution observed — the replay handle the soak suite pins
//!   bit-identical answers with.
//! * **Edits while serving.** [`QueryService::apply_updates`] takes the
//!   world write lock, so an edit batch commits atomically between
//!   queries; workers re-validate their scene caches through the epoch
//!   machinery like any batch run.
//!
//! Determinism note: a concurrent service cannot promise a global
//! execution order, but it promises something just as testable — every
//! answer is bit-identical to a sequential
//! [`execute`](crate::QueryEngine::execute) of the same query against
//! the index state identified by the completion's epoch pair. The
//! `service` integration suite replays exactly that.

use crate::batch::{hilbert_key, Answer, SceneBudget, SceneCache, Schedule};
use crate::engine::{EngineOptions, EntityIndex, ObstacleIndex, QueryEngine};
use crate::updates::{Update, UpdateStats};
use crate::Query;
use obstacle_geom::Rect;
use obstacle_rtree::sync::{Condvar, Mutex, RwLock, Stopwatch};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::Duration;

/// Admission policy of a full service queue (depth at
/// [`ServiceConfig::queue_depth`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// Block the submitting thread until a slot frees (back-pressure;
    /// closed-loop clients).
    #[default]
    Block,
    /// Refuse the new submission with [`SubmitError::Rejected`]
    /// (load-shedding at the door; the submitter keeps the query).
    Reject,
    /// Admit the new submission and evict the *oldest* pending query,
    /// which completes immediately as [`Outcome::Shed`] (freshness over
    /// fairness: under overload, old queries are the stalest).
    ShedOldest,
}

/// Configuration of a [`QueryService`] run.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads owned by the service (min 1).
    pub workers: usize,
    /// Maximum pending (submitted, unclaimed) queries.
    pub queue_depth: usize,
    /// Policy when a submission finds the queue full.
    pub admission: Admission,
    /// Claim-order policy: [`Schedule::Hilbert`] runs the elevator scan
    /// over the live queue, [`Schedule::InputOrder`] is FIFO.
    pub schedule: Schedule,
    /// Scene-retirement budgets of each worker's [`SceneCache`].
    pub budget: SceneBudget,
    /// Start with claiming paused: submissions queue (and admission
    /// applies) but nothing executes until [`QueryService::resume`].
    /// Lets tests — and staged warm-ups — fill the queue
    /// deterministically.
    pub paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_depth: 64,
            admission: Admission::default(),
            schedule: Schedule::Hilbert,
            budget: SceneBudget::default(),
            paused: false,
        }
    }
}

impl ServiceConfig {
    /// Same config with `workers` worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Same config with the given queue bound.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Same config with the given admission policy.
    pub fn admission(mut self, admission: Admission) -> Self {
        self.admission = admission;
        self
    }

    /// Same config with the given claim-order policy.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Same config with the given scene budgets.
    pub fn budget(mut self, budget: SceneBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Same config starting paused (see [`ServiceConfig::paused`]).
    pub fn paused(mut self, paused: bool) -> Self {
        self.paused = paused;
        self
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue was full under [`Admission::Reject`].
    Rejected,
    /// The service is shutting down (its body already returned).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected => write!(f, "query rejected: service queue full"),
            SubmitError::Closed => write!(f, "query refused: service closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a submission ended.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The query executed.
    Answered {
        /// The query's answer.
        answer: Answer,
        /// Entity-index epoch observed during execution.
        entity_epoch: u64,
        /// Obstacle-index epoch observed during execution.
        obstacle_epoch: u64,
    },
    /// Evicted unexecuted by [`Admission::ShedOldest`].
    Shed,
    /// Cancelled unexecuted by its [`Ticket`] being dropped.
    Cancelled,
}

impl Outcome {
    /// The answer, when the query executed.
    pub fn answer(&self) -> Option<&Answer> {
        match self {
            Outcome::Answered { answer, .. } => Some(answer),
            _ => None,
        }
    }
}

/// One delivered completion: every admitted submission produces exactly
/// one, whether it was answered, shed, or cancelled.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The ticket id of the submission this answers.
    pub id: u64,
    /// How the submission ended.
    pub outcome: Outcome,
    /// Time from submission to this completion (time-to-answer), from
    /// the submission's [`Stopwatch`].
    pub latency: Duration,
}

/// Receipt of an admitted submission. Dropping the ticket cancels the
/// query if it is still pending (it completes as [`Outcome::Cancelled`]);
/// call [`Ticket::detach`] for fire-and-forget submissions.
#[derive(Debug)]
pub struct Ticket<'s> {
    id: u64,
    shared: &'s Shared,
    armed: bool,
}

impl Ticket<'_> {
    /// The id completions for this submission carry.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Disarms cancel-on-drop and returns the id: the query will run (or
    /// shed) regardless of the ticket's lifetime.
    pub fn detach(mut self) -> u64 {
        self.armed = false;
        self.id
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shared.cancel(self.id);
        }
    }
}

/// Log-bucketed time-to-answer histogram (~6 % resolution: sixteen
/// linear sub-buckets per power-of-two of nanoseconds), with exact
/// count/mean/max.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

/// Bucket index of a nanosecond value: identity below 16, then sixteen
/// sub-buckets per octave keyed by the four bits after the leading one.
fn bucket_index(nanos: u64) -> usize {
    if nanos < 16 {
        return nanos as usize;
    }
    let exp = 63 - nanos.leading_zeros() as usize; // >= 4
    let sub = ((nanos >> (exp - 4)) & 0xF) as usize;
    16 * (exp - 4) + sub + 16
}

/// Upper bound (inclusive) of a bucket, the value percentiles report.
fn bucket_upper(index: usize) -> u64 {
    if index < 16 {
        return index as u64;
    }
    let exp = (index - 16) / 16 + 4;
    let sub = ((index - 16) % 16) as u64;
    (1u64 << exp) + (sub + 1) * (1u64 << (exp - 4)) - 1
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let idx = bucket_index(nanos);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_nanos / u128::from(self.count)) as u64)
    }

    /// Exact maximum latency recorded.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The `p`-quantile (`p` in `[0, 1]`), reported as its bucket's
    /// upper bound — within ~6 % of the exact order statistic. Zero when
    /// empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_nanos(bucket_upper(idx).min(self.max_nanos));
            }
        }
        self.max()
    }

    /// Median time-to-answer.
    pub fn p50(&self) -> Duration {
        self.percentile(0.50)
    }

    /// 90th-percentile time-to-answer.
    pub fn p90(&self) -> Duration {
        self.percentile(0.90)
    }

    /// 99th-percentile time-to-answer.
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }
}

/// Aggregate diagnostics of a service run: admission counters, the
/// scene-cache counters summed over workers (as in
/// [`BatchStats`](crate::BatchStats)), and the time-to-answer histogram.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Submissions admitted into the queue (excludes rejections).
    pub submitted: u64,
    /// Submissions that executed to an [`Outcome::Answered`].
    pub answered: u64,
    /// Submissions refused at the door ([`Admission::Reject`]).
    pub rejected: u64,
    /// Pending queries evicted by [`Admission::ShedOldest`].
    pub shed: u64,
    /// Pending queries cancelled by ticket drop.
    pub cancelled: u64,
    /// Queries answered on a warm (reused) scene, summed over workers.
    pub scene_reuses: usize,
    /// Scenes retired (region jump or budget), summed over workers.
    pub scene_resets: usize,
    /// Scenes retired by epoch validation, summed over workers.
    pub scene_invalidations: usize,
    /// Time-to-answer distribution of answered queries.
    pub latency: LatencyHistogram,
}

/// One pending submission.
#[derive(Debug)]
struct Pending {
    query: Query,
    sw: Stopwatch,
}

/// The service queue plus every counter that must move atomically with
/// it. One mutex (paired with one condvar for all wakeups: enqueue,
/// dequeue, resume, close) keeps the locking story trivially cycle-free.
#[derive(Debug)]
struct QueueState {
    /// Pending queries keyed `(claim key, ticket id)` — the live claim
    /// order. Under Hilbert scheduling the claim key is the batch
    /// engine's [`hilbert_key`]; under input order it is 0, so the
    /// B-tree degrades to a FIFO on ticket id.
    entries: BTreeMap<(u64, u64), Pending>,
    /// Ticket id → map key, for O(log n) cancellation/shedding; ordered
    /// so the *oldest* pending (smallest id) is `first_key_value`.
    index: BTreeMap<u64, (u64, u64)>,
    /// Next ticket id.
    next_id: u64,
    /// Elevator position of the Hilbert claim scan.
    cursor: u64,
    paused: bool,
    closed: bool,
    /// Completion sender (lives in the queue state so cancellation and
    /// shedding — which hold the queue lock anyway — can deliver).
    tx: mpsc::Sender<Completion>,
    stats: ServiceStats,
}

impl QueueState {
    /// Claims the next pending query in live order: the first entry at
    /// or after the elevator cursor, wrapping to the front. Under input
    /// order every claim key is 0 and this is plain FIFO.
    fn claim(&mut self) -> Option<(u64, Pending)> {
        let key = self
            .entries
            .range((self.cursor, 0)..)
            .next()
            .or_else(|| self.entries.iter().next())
            .map(|(&k, _)| k)?;
        self.cursor = key.0;
        let pending = self.entries.remove(&key)?;
        self.index.remove(&key.1);
        Some((key.1, pending))
    }

    /// Delivers a terminal completion for an unexecuted pending query.
    fn finish_unexecuted(&mut self, id: u64, pending: Pending, outcome: Outcome) {
        let latency = pending.sw.elapsed();
        let _ = self.tx.send(Completion {
            id,
            outcome,
            latency,
        });
    }
}

/// State shared by the service handle, its tickets and its workers.
#[derive(Debug)]
struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    config: ServiceConfig,
    /// Obstacle universe captured at service start: the fixed Hilbert
    /// key space late arrivals are rescheduled into.
    universe: Rect,
}

impl Shared {
    /// Cancels `id` if still pending (ticket drop). A miss means the
    /// query was already claimed, shed, or answered — not an error.
    fn cancel(&self, id: u64) {
        let mut q = self.queue.lock();
        if let Some(key) = q.index.remove(&id) {
            if let Some(pending) = q.entries.remove(&key) {
                q.stats.cancelled += 1;
                q.finish_unexecuted(id, pending, Outcome::Cancelled);
                // A freed slot may unblock Admission::Block submitters.
                self.cv.notify_all();
            }
        }
    }
}

/// The indexes the service owns for its lifetime, behind one lock so
/// edit batches commit atomically against every in-flight query.
#[derive(Debug)]
struct World {
    entities: EntityIndex,
    obstacles: ObstacleIndex,
}

/// Everything a finished [`QueryService::run`] hands back: the body's
/// return value, the final stats, and the (possibly edited) indexes.
#[derive(Debug)]
pub struct ServiceRun<R> {
    /// The body closure's return value.
    pub output: R,
    /// Final aggregate stats (scene counters summed at shutdown).
    pub stats: ServiceStats,
    /// The entity index, with every applied edit.
    pub entities: EntityIndex,
    /// The obstacle index, with every applied edit.
    pub obstacles: ObstacleIndex,
}

/// A live resident query service — the handle [`QueryService::run`]
/// passes to its body. Submit from any thread (the handle is `Sync`;
/// scoped submitter threads borrow it), receive completions, apply
/// edits, read stats.
#[derive(Debug)]
pub struct QueryService<'s> {
    shared: &'s Shared,
    world: &'s RwLock<World>,
    /// The single consumer end of the completion channel, lockable so
    /// any thread may drain (one at a time).
    rx: Mutex<mpsc::Receiver<Completion>>,
}

impl<'s> QueryService<'s> {
    /// Runs a resident service: takes ownership of the indexes, starts
    /// `config.workers` scoped worker threads, and calls `body` with the
    /// live service handle. When `body` returns the service closes:
    /// still-pending queries drain (they execute — a paused service is
    /// resumed for the drain), workers join, and the indexes are handed
    /// back in the [`ServiceRun`].
    ///
    /// Structured concurrency, deliberately: the pool lives exactly as
    /// long as the body, no detached threads, and the indexes come back
    /// out — so a process can run the service for its whole lifetime by
    /// making its main loop the body.
    pub fn run<R>(
        entities: EntityIndex,
        obstacles: ObstacleIndex,
        options: EngineOptions,
        config: ServiceConfig,
        body: impl FnOnce(&QueryService<'_>) -> R,
    ) -> ServiceRun<R> {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
            ..config
        };
        let universe = QueryEngine::new(&entities, &obstacles).universe();
        let (tx, rx) = mpsc::channel();
        let shared = Shared {
            queue: Mutex::new(QueueState {
                entries: BTreeMap::new(),
                index: BTreeMap::new(),
                next_id: 0,
                cursor: 0,
                paused: config.paused,
                closed: false,
                tx,
                stats: ServiceStats::default(),
            }),
            cv: Condvar::new(),
            config,
            universe,
        };
        let world = RwLock::new(World {
            entities,
            obstacles,
        });

        let (output, stats) = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..config.workers)
                .map(|_| scope.spawn(|| worker_loop(&shared, &world, options)))
                .collect();
            let service = QueryService {
                shared: &shared,
                world: &world,
                rx: Mutex::new(rx),
            };
            let output = service.close_after(body);
            let mut stats = {
                let mut q = shared.queue.lock();
                std::mem::take(&mut q.stats)
            };
            for worker in workers {
                let (reuses, resets, invalidations) =
                    worker.join().expect("service worker panicked");
                stats.scene_reuses += reuses;
                stats.scene_resets += resets;
                stats.scene_invalidations += invalidations;
            }
            (output, stats)
        });
        let World {
            entities,
            obstacles,
        } = world.into_inner();
        ServiceRun {
            output,
            stats,
            entities,
            obstacles,
        }
    }

    /// Runs `body`, then marks the queue closed (and un-paused, so the
    /// drain makes progress) and wakes everyone.
    fn close_after<R>(&self, body: impl FnOnce(&QueryService<'_>) -> R) -> R {
        let output = body(self);
        let mut q = self.shared.queue.lock();
        q.closed = true;
        q.paused = false;
        drop(q);
        self.shared.cv.notify_all();
        output
    }

    /// Submits one query. On admission returns a [`Ticket`] whose id
    /// future [`Completion`]s carry; the query's time-to-answer clock
    /// starts now. A full queue blocks, rejects, or sheds the oldest
    /// pending query per the configured [`Admission`].
    pub fn submit(&self, query: Query) -> Result<Ticket<'s>, SubmitError> {
        let depth = self.shared.config.queue_depth;
        let mut q = self.shared.queue.lock();
        if q.closed {
            return Err(SubmitError::Closed);
        }
        if q.entries.len() >= depth {
            match self.shared.config.admission {
                Admission::Block => {
                    while q.entries.len() >= depth && !q.closed {
                        q = self.shared.cv.wait(q);
                    }
                    if q.closed {
                        return Err(SubmitError::Closed);
                    }
                }
                Admission::Reject => {
                    q.stats.rejected += 1;
                    return Err(SubmitError::Rejected);
                }
                Admission::ShedOldest => {
                    if let Some((&victim, &vkey)) = q.index.first_key_value() {
                        q.index.remove(&victim);
                        if let Some(pending) = q.entries.remove(&vkey) {
                            q.stats.shed += 1;
                            q.finish_unexecuted(victim, pending, Outcome::Shed);
                        }
                    }
                }
            }
        }
        let id = q.next_id;
        q.next_id += 1;
        let key = match self.shared.config.schedule {
            Schedule::InputOrder => 0,
            Schedule::Hilbert => hilbert_key(&query, &self.shared.universe),
        };
        q.entries.insert(
            (key, id),
            Pending {
                query,
                sw: Stopwatch::start(),
            },
        );
        q.index.insert(id, (key, id));
        q.stats.submitted += 1;
        drop(q);
        self.shared.cv.notify_all();
        Ok(Ticket {
            id,
            shared: self.shared,
            armed: true,
        })
    }

    /// Receives the next completion, blocking until one arrives. Only
    /// call when completions are owed (submitted minus received, plus
    /// the cancellations/sheds those produce) — the service stays live
    /// for the whole body, so an over-call blocks until more work is
    /// submitted. Use [`QueryService::recv_timeout`] when the count is
    /// not known.
    pub fn recv(&self) -> Option<Completion> {
        self.rx.lock().recv().ok()
    }

    /// Receives the next completion, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Completion> {
        self.rx.lock().recv_timeout(timeout).ok()
    }

    /// Receives a completion only if one is already queued.
    pub fn try_recv(&self) -> Option<Completion> {
        self.rx.lock().try_recv().ok()
    }

    /// Applies one edit batch atomically against the service's indexes:
    /// takes the world write lock (waiting out in-flight queries), so
    /// every query observes either the pre- or post-batch state — never
    /// a torn middle. Workers' scene caches revalidate via the epoch
    /// machinery on their next claim.
    pub fn apply_updates(&self, edits: Vec<Update>) -> UpdateStats {
        let mut w = self.world.write();
        let World {
            entities,
            obstacles,
        } = &mut *w;
        QueryEngine::apply_updates(entities, obstacles, edits)
    }

    /// Un-pauses claiming (see [`ServiceConfig::paused`]).
    pub fn resume(&self) {
        self.shared.queue.lock().paused = false;
        self.shared.cv.notify_all();
    }

    /// Current pending (admitted, unclaimed) queue depth.
    pub fn pending(&self) -> usize {
        self.shared.queue.lock().entries.len()
    }

    /// Snapshot of the run's stats so far. Scene-cache counters are
    /// worker-owned and summed only at shutdown; the snapshot reports
    /// them as zero until then.
    pub fn stats(&self) -> ServiceStats {
        self.shared.queue.lock().stats.clone()
    }
}

/// One worker: claim → execute under the world read lock → stamp epochs
/// and latency → deliver. Returns its scene-cache counters for the final
/// stats sum.
fn worker_loop(
    shared: &Shared,
    world: &RwLock<World>,
    options: EngineOptions,
) -> (usize, usize, usize) {
    let mut cache = SceneCache::with_budget(options, shared.config.budget);
    loop {
        let claimed = {
            let mut q = shared.queue.lock();
            loop {
                if !q.paused {
                    if let Some(c) = q.claim() {
                        break Some(c);
                    }
                }
                if q.closed {
                    break None;
                }
                q = shared.cv.wait(q);
            }
        };
        let Some((id, pending)) = claimed else {
            return (cache.reuses(), cache.resets(), cache.invalidations());
        };
        // A dequeue frees a slot: wake Admission::Block submitters.
        shared.cv.notify_all();

        let w = world.read();
        let engine = QueryEngine::with_options(&w.entities, &w.obstacles, options);
        let answer = engine.execute_with(&pending.query, &mut cache);
        let entity_epoch = w.entities.epoch();
        let obstacle_epoch = w.obstacles.epoch();
        drop(w);

        let latency = pending.sw.elapsed();
        let mut q = shared.queue.lock();
        q.stats.answered += 1;
        q.stats.latency.record(latency);
        let _ = q.tx.send(Completion {
            id,
            outcome: Outcome::Answered {
                answer,
                entity_epoch,
                obstacle_epoch,
            },
            latency,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotone_and_exhaustive() {
        // Every nanosecond value maps to a bucket whose bounds contain it.
        for nanos in [0, 1, 15, 16, 17, 255, 1_000, 65_535, 1_000_000_000] {
            let idx = bucket_index(nanos);
            assert!(bucket_upper(idx) >= nanos, "upper({idx}) < {nanos}");
            if idx > 0 {
                assert!(
                    bucket_upper(idx - 1) < nanos,
                    "bucket not minimal for {nanos}"
                );
            }
        }
    }

    #[test]
    fn histogram_percentiles_bracket_known_samples() {
        let mut h = LatencyHistogram::default();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50().as_millis() as f64;
        let p99 = h.p99().as_millis() as f64;
        // ~6 % bucket resolution around the exact order statistics.
        assert!((47.0..=54.0).contains(&p50), "p50 = {p50}");
        assert!((93.0..=106.0).contains(&p99), "p99 = {p99}");
        assert!(h.p50() <= h.p90() && h.p90() <= h.p99());
        assert_eq!(h.max(), Duration::from_millis(100));
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.p99(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }
}
