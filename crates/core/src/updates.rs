//! First-class dataset updates.
//!
//! [`QueryEngine::apply_updates`] is the batch entry point for live map
//! edits (the production scenario: road closures and construction under
//! query traffic). It splits a heterogeneous edit list per index and
//! commits each side as **one** [`EntityIndex::apply_edits`] /
//! [`ObstacleIndex::apply_edits`] batch: one epoch bump and — on the
//! packed backend — one tree re-pack per index, instead of one per edit.
//!
//! Edits are applied deletes-first within each index (so a batch may
//! delete an id and insert a replacement polygon at a fresh id), and the
//! two indexes are independent: entity edits never invalidate cached
//! visibility scenes (scenes are built from obstacles only; waypoints are
//! re-added per query from live data), while obstacle edits advance the
//! obstacle epoch that [`LocalGraph::sync`](crate::LocalGraph::sync) and
//! [`SceneCache`](crate::SceneCache) validate against.

use crate::engine::{EntityIndex, ObstacleIndex, QueryEngine};
use obstacle_geom::{Point, Polygon};

/// One dataset edit, for [`QueryEngine::apply_updates`].
#[derive(Clone, Debug)]
pub enum Update {
    /// Insert an obstacle polygon (id assigned by the index).
    InsertObstacle(Polygon),
    /// Delete the obstacle with this id (a miss is counted, not an error).
    DeleteObstacle(u64),
    /// Insert an entity point (id assigned by the index).
    InsertEntity(Point),
    /// Delete the entity with this id (a miss is counted, not an error).
    DeleteEntity(u64),
}

/// What a batch of updates did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Ids assigned to inserted obstacles, in edit order.
    pub inserted_obstacles: Vec<u64>,
    /// Ids assigned to inserted entities, in edit order.
    pub inserted_entities: Vec<u64>,
    /// Live obstacles tombstoned by this batch.
    pub deleted_obstacles: usize,
    /// Live entities tombstoned by this batch.
    pub deleted_entities: usize,
    /// Requested deletes that matched no live id (already deleted or
    /// never existed).
    pub missed_deletes: usize,
    /// Obstacle epoch after the batch.
    pub obstacle_epoch: u64,
    /// Entity epoch after the batch.
    pub entity_epoch: u64,
}

impl QueryEngine<'_> {
    /// Applies a batch of edits to both indexes, one epoch bump per
    /// touched index.
    ///
    /// An associated function rather than a method: `QueryEngine` is a
    /// `Copy` bundle of shared borrows, so updating requires the caller
    /// to hold the indexes mutably (no engine — and no cached borrow of
    /// the trees — can exist across the edit, which is exactly the
    /// reader/writer discipline that keeps mid-query invalidation
    /// impossible).
    pub fn apply_updates(
        entities: &mut EntityIndex,
        obstacles: &mut ObstacleIndex,
        edits: Vec<Update>,
    ) -> UpdateStats {
        let mut poly_ins = Vec::new();
        let mut poly_del = Vec::new();
        let mut pt_ins = Vec::new();
        let mut pt_del = Vec::new();
        for edit in edits {
            match edit {
                Update::InsertObstacle(p) => poly_ins.push(p),
                Update::DeleteObstacle(id) => poly_del.push(id),
                Update::InsertEntity(p) => pt_ins.push(p),
                Update::DeleteEntity(id) => pt_del.push(id),
            }
        }
        let requested = poly_del.len() + pt_del.len();
        let (inserted_obstacles, deleted_obstacles) = obstacles.apply_edits(poly_ins, &poly_del);
        let (inserted_entities, deleted_entities) = entities.apply_edits(&pt_ins, &pt_del);
        UpdateStats {
            inserted_obstacles,
            inserted_entities,
            deleted_obstacles,
            deleted_entities,
            missed_deletes: requested - deleted_obstacles - deleted_entities,
            obstacle_epoch: obstacles.epoch(),
            entity_epoch: entities.epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obstacle_geom::Rect;
    use obstacle_rtree::RTreeConfig;

    #[test]
    fn mixed_batch_bumps_each_epoch_once() {
        let mut entities = EntityIndex::build(RTreeConfig::tiny(4), vec![Point::new(0.1, 0.1)]);
        let mut obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(0.4, 0.4, 0.5, 0.5))],
        );
        let stats = QueryEngine::apply_updates(
            &mut entities,
            &mut obstacles,
            vec![
                Update::DeleteObstacle(0),
                Update::InsertObstacle(Polygon::from_rect(Rect::from_coords(0.6, 0.6, 0.7, 0.7))),
                Update::InsertObstacle(Polygon::from_rect(Rect::from_coords(0.8, 0.8, 0.9, 0.9))),
                Update::InsertEntity(Point::new(0.2, 0.2)),
                Update::DeleteEntity(7),
            ],
        );
        assert_eq!(stats.inserted_obstacles, vec![1, 2]);
        assert_eq!(stats.inserted_entities, vec![1]);
        assert_eq!(stats.deleted_obstacles, 1);
        assert_eq!(stats.deleted_entities, 0);
        assert_eq!(stats.missed_deletes, 1, "entity 7 never existed");
        assert_eq!(stats.obstacle_epoch, 1, "3 obstacle edits, one epoch");
        assert_eq!(stats.entity_epoch, 1);
        assert_eq!(obstacles.len(), 2);
        assert_eq!(entities.len(), 2);
    }

    #[test]
    fn empty_and_one_sided_batches() {
        let mut entities = EntityIndex::build(RTreeConfig::tiny(4), Vec::new());
        let mut obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), Vec::new());
        let stats = QueryEngine::apply_updates(&mut entities, &mut obstacles, Vec::new());
        assert_eq!(stats, UpdateStats::default());

        let stats = QueryEngine::apply_updates(
            &mut entities,
            &mut obstacles,
            vec![Update::InsertEntity(Point::new(1.0, 1.0))],
        );
        assert_eq!(stats.entity_epoch, 1);
        assert_eq!(stats.obstacle_epoch, 0, "untouched index keeps its epoch");
    }
}
