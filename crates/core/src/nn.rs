//! Obstacle nearest-neighbour query (ONN — §4, Fig. 9) and its
//! incremental variant (iONN, per the §6 remark).

use crate::distance::{compute_obstructed_distance_pruned, LocalGraph};
use crate::engine::QueryEngine;
use crate::stats::{NearestResult, QueryStats};
use crate::QUERY_TAG;
use obstacle_geom::Point;
use obstacle_rtree::sync::Stopwatch;
use obstacle_rtree::{AnyTree, Nearest, OrdF64, TreeBackend};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

impl<'a> QueryEngine<'a> {
    /// The `k` entities with the smallest obstructed distance from `q`,
    /// ascending (fewer if the dataset is smaller than `k` or neighbours
    /// are unreachable).
    ///
    /// Implements ONN (Fig. 9): Euclidean neighbours are retrieved
    /// incrementally \[HS99\]; each candidate's obstructed distance is
    /// evaluated on a visibility graph grown on demand (Fig. 8) and
    /// *reused* across candidates via add/delete-entity; retrieval stops
    /// once the next Euclidean distance exceeds `d_Emax`, the obstructed
    /// distance of the current k-th neighbour (which only shrinks).
    pub fn nearest(&self, q: Point, k: usize) -> NearestResult {
        let mut graph = LocalGraph::new(self.options.builder);
        self.nearest_in(&mut graph, q, k)
    }

    /// [`QueryEngine::nearest`] over a caller-provided scene.
    ///
    /// The scene's absorbed obstacles and cached sweeps are reused and
    /// any the query absorbs stay behind for the next caller (the
    /// cross-query extension of the ONN candidate-to-candidate reuse that
    /// `reuse_graph` already does *within* one query). The query's
    /// waypoints are removed before returning; neighbours are identical
    /// to a fresh-scene run because extra resident obstacles are real
    /// obstacles and every Fig. 8 fixpoint still certifies its region.
    ///
    /// A reused graph is first synchronized with the obstacle-set epoch
    /// ([`LocalGraph::sync`], before any waypoint is added) — see
    /// [`QueryEngine::range_in`].
    pub fn nearest_in(&self, graph: &mut LocalGraph, q: Point, k: usize) -> NearestResult {
        if self.options.epoch_validation {
            graph.sync(
                self.obstacles,
                crate::batch::SceneCache::slack_for(&self.universe()),
            );
        }
        let t0 = Stopwatch::start();
        let entity_io = self.entities.tree().io_snapshot();
        let obstacle_io = self.obstacles.tree().io_snapshot();

        let mut result: Vec<(u64, f64)> = Vec::with_capacity(k + 1);
        let mut euclid_top_k: Vec<u64> = Vec::with_capacity(k);
        let mut candidates = 0usize;
        let mut distance_computations = 0usize;
        let mut peak_graph_nodes = 0usize;

        if k > 0 && !self.entities.is_empty() {
            let q_node = graph.add_waypoint(q, QUERY_TAG);
            // The fixed threshold of the no-shrink ablation: set once when
            // the k-th obstructed neighbour is first known.
            let mut fixed_threshold: Option<f64> = None;

            for (item, d_e) in self.entities.tree().nearest(q) {
                if euclid_top_k.len() < k {
                    euclid_top_k.push(item.id);
                }
                if result.len() == k {
                    let d_emax = if self.options.shrink_threshold {
                        result[k - 1].1
                    } else {
                        *fixed_threshold.get_or_insert(result[k - 1].1)
                    };
                    if d_e > d_emax {
                        break;
                    }
                }
                candidates += 1;
                distance_computations += 1;
                let p_pos = item.mbr.min;
                let d_o = if self.options.reuse_graph {
                    let p_node = graph.add_waypoint(p_pos, item.id);
                    let d = compute_obstructed_distance_pruned(
                        graph,
                        p_node,
                        q_node,
                        self.obstacles,
                        self.options.ellipse_pruning,
                    );
                    graph.remove_waypoint(p_node);
                    peak_graph_nodes = peak_graph_nodes.max(graph.scene.node_count());
                    d
                } else {
                    let mut fresh = LocalGraph::new(self.options.builder);
                    let qn = fresh.add_waypoint(q, QUERY_TAG);
                    let pn = fresh.add_waypoint(p_pos, item.id);
                    let d = compute_obstructed_distance_pruned(
                        &mut fresh,
                        pn,
                        qn,
                        self.obstacles,
                        self.options.ellipse_pruning,
                    );
                    peak_graph_nodes = peak_graph_nodes.max(fresh.scene.node_count());
                    d
                };
                if let Some(d_o) = d_o {
                    let at = result.partition_point(|&(_, d)| d <= d_o);
                    result.insert(at, (item.id, d_o));
                    result.truncate(k);
                }
            }
            graph.remove_waypoint(q_node);
        }

        let false_hits = euclid_top_k
            .iter()
            .filter(|id| !result.iter().any(|(rid, _)| rid == *id))
            .count();

        let entity_io = entity_io.finish();
        let obstacle_io = obstacle_io.finish();
        let stats = QueryStats {
            entity_reads: entity_io.reads,
            obstacle_reads: obstacle_io.reads,
            entity_fetches: entity_io.fetches(),
            obstacle_fetches: obstacle_io.fetches(),
            cpu: t0.elapsed(),
            candidates,
            results: result.len(),
            false_hits,
            distance_computations,
            peak_graph_nodes,
        };
        NearestResult {
            neighbors: result,
            stats,
        }
    }

    /// Incremental obstructed nearest neighbours: yields `(entity id,
    /// obstructed distance)` in ascending obstructed-distance order,
    /// without a predefined `k` (the iONN variant sketched in §6: a
    /// result can be emitted as soon as its obstructed distance is below
    /// the Euclidean distance of the current candidate, since later
    /// candidates can only be farther).
    pub fn nearest_incremental(&self, q: Point) -> IncrementalNearest<'a> {
        let mut graph = LocalGraph::new(self.options.builder);
        let q_node = graph.add_waypoint(q, QUERY_TAG);
        IncrementalNearest {
            engine: *self,
            euclid: self.entities.tree().nearest(q),
            graph,
            q_node,
            pending: BinaryHeap::new(),
            last_euclid: 0.0,
            exhausted: self.entities.is_empty(),
        }
    }
}

/// Iterator over obstructed nearest neighbours in ascending distance
/// order; see [`QueryEngine::nearest_incremental`].
pub struct IncrementalNearest<'a> {
    engine: QueryEngine<'a>,
    euclid: Nearest<'a, AnyTree>,
    graph: LocalGraph,
    q_node: obstacle_visibility::NodeId,
    /// Candidates whose obstructed distance is known but not yet safe to
    /// emit (min-heap by obstructed distance).
    pending: BinaryHeap<Reverse<(OrdF64, u64)>>,
    last_euclid: f64,
    exhausted: bool,
}

impl Iterator for IncrementalNearest<'_> {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<(u64, f64)> {
        loop {
            if let Some(&Reverse((OrdF64(d), id))) = self.pending.peek() {
                if self.exhausted || d <= self.last_euclid {
                    self.pending.pop();
                    return Some((id, d));
                }
            } else if self.exhausted {
                return None;
            }
            match self.euclid.next() {
                Some((item, d_e)) => {
                    self.last_euclid = d_e;
                    let p_node = self.graph.add_waypoint(item.mbr.min, item.id);
                    let d_o = compute_obstructed_distance_pruned(
                        &mut self.graph,
                        p_node,
                        self.q_node,
                        self.engine.obstacles,
                        self.engine.options.ellipse_pruning,
                    );
                    self.graph.remove_waypoint(p_node);
                    if let Some(d_o) = d_o {
                        self.pending.push(Reverse((OrdF64::new(d_o), item.id)));
                    }
                }
                None => self.exhausted = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineOptions, EntityIndex, ObstacleIndex};
    use obstacle_geom::{Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    /// The paper's Fig. 1 scenario: `a` is the Euclidean NN but `b` is the
    /// obstructed NN because a wall blocks the direct path to `a`.
    fn fig1_scene() -> (EntityIndex, ObstacleIndex) {
        let entities = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![
                Point::new(2.0, 0.0), // 0 = a: Euclidean NN, behind a wall
                Point::new(0.0, 2.2), // 1 = b: farther in Euclidean, unobstructed
            ],
        );
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(1.0, -2.0, 1.2, 2.0))],
        );
        (entities, obstacles)
    }

    #[test]
    fn obstructed_nn_differs_from_euclidean_nn() {
        let (entities, obstacles) = fig1_scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let q = Point::new(0.0, 0.0);
        let r = engine.nearest(q, 1);
        assert_eq!(r.neighbors.len(), 1);
        assert_eq!(r.neighbors[0].0, 1, "b must win under d_O");
        assert!((r.neighbors[0].1 - 2.2).abs() < 1e-12);
        assert_eq!(r.stats.false_hits, 1, "a is a false hit");
    }

    #[test]
    fn k2_returns_both_sorted_by_obstructed_distance() {
        let (entities, obstacles) = fig1_scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let r = engine.nearest(Point::new(0.0, 0.0), 2);
        assert_eq!(r.neighbors.len(), 2);
        assert_eq!(r.neighbors[0].0, 1);
        assert_eq!(r.neighbors[1].0, 0);
        let d_a = r.neighbors[1].1;
        let detour = Point::new(0.0, 0.0).dist(Point::new(1.0, 2.0))
            + 0.2
            + Point::new(1.2, 2.0).dist(Point::new(2.0, 0.0));
        assert!((d_a - detour).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_dataset() {
        let (entities, obstacles) = fig1_scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let r = engine.nearest(Point::new(0.0, 0.0), 10);
        assert_eq!(r.neighbors.len(), 2);
        assert_eq!(engine.nearest(Point::new(0.0, 0.0), 0).neighbors.len(), 0);
    }

    #[test]
    fn incremental_matches_batch() {
        let (entities, obstacles) = fig1_scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let q = Point::new(0.0, 0.0);
        let batch = engine.nearest(q, 2).neighbors;
        let inc: Vec<(u64, f64)> = engine.nearest_incremental(q).collect();
        assert_eq!(batch.len(), inc.len());
        for (b, i) in batch.iter().zip(inc.iter()) {
            assert_eq!(b.0, i.0);
            assert!((b.1 - i.1).abs() < 1e-12);
        }
    }

    #[test]
    fn ablations_agree_with_default() {
        let (entities, obstacles) = fig1_scene();
        let q = Point::new(0.0, 0.0);
        let default = QueryEngine::new(&entities, &obstacles).nearest(q, 2);
        for (shrink, reuse) in [(false, true), (true, false), (false, false)] {
            let opts = EngineOptions {
                shrink_threshold: shrink,
                reuse_graph: reuse,
                ..Default::default()
            };
            let r = QueryEngine::with_options(&entities, &obstacles, opts).nearest(q, 2);
            assert_eq!(r.neighbors.len(), default.neighbors.len());
            for (a, b) in r.neighbors.iter().zip(default.neighbors.iter()) {
                assert_eq!(a.0, b.0);
                assert!((a.1 - b.1).abs() < 1e-12);
            }
        }
    }
}
