//! Obstacle closest-pair queries (OCP — §6, Fig. 11; iOCP — Fig. 12).

use crate::distance::{compute_obstructed_distance_pruned, LocalGraph};
use crate::engine::{EngineOptions, EntityIndex, ObstacleIndex};
use crate::stats::{ClosestPairsResult, QueryStats};
use crate::QUERY_TAG;
use obstacle_geom::Point;
use obstacle_rtree::sync::Stopwatch;
use obstacle_rtree::{AnyTree, ClosestPairs, OrdF64, TreeBackend};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Obstructed distance of one point pair on a fresh local graph.
fn pair_distance(
    a: Point,
    b: Point,
    obstacles: &ObstacleIndex,
    options: &EngineOptions,
    peak_graph_nodes: &mut usize,
) -> Option<f64> {
    let mut g = LocalGraph::new(options.builder);
    let na = g.add_waypoint(a, 0);
    let nb = g.add_waypoint(b, QUERY_TAG);
    let d = compute_obstructed_distance_pruned(&mut g, na, nb, obstacles, options.ellipse_pruning);
    *peak_graph_nodes = (*peak_graph_nodes).max(g.scene.node_count());
    d
}

/// The `k` pairs `(s, t) ∈ S × T` with the smallest obstructed distances,
/// ascending.
///
/// Implements OCP (Fig. 11): Euclidean closest pairs are produced
/// incrementally \[CMTV00\]; each candidate pair's obstructed distance is
/// evaluated (Fig. 8) and the running top-k maintained; retrieval stops
/// once the next Euclidean pair distance exceeds the obstructed distance
/// of the current k-th pair.
pub fn closest_pairs(
    s: &EntityIndex,
    t: &EntityIndex,
    obstacles: &ObstacleIndex,
    k: usize,
    options: EngineOptions,
) -> ClosestPairsResult {
    let t0 = Stopwatch::start();
    let same_tree = std::ptr::eq(s, t);
    let s_io = s.tree().io_snapshot();
    let t_io = (!same_tree).then(|| t.tree().io_snapshot());
    let obstacle_io = obstacles.tree().io_snapshot();

    let mut result: Vec<(u64, u64, f64)> = Vec::with_capacity(k + 1);
    let mut euclid_top_k: Vec<(u64, u64)> = Vec::with_capacity(k);
    let mut candidates = 0usize;
    let mut distance_computations = 0usize;
    let mut peak_graph_nodes = 0usize;

    if k > 0 {
        for (si, ti, d_e) in ClosestPairs::new(s.tree(), t.tree()) {
            if euclid_top_k.len() < k {
                euclid_top_k.push((si.id, ti.id));
            }
            if result.len() == k && d_e > result[k - 1].2 {
                break;
            }
            candidates += 1;
            distance_computations += 1;
            let d_o = pair_distance(
                s.position(si.id),
                t.position(ti.id),
                obstacles,
                &options,
                &mut peak_graph_nodes,
            );
            if let Some(d_o) = d_o {
                let at = result.partition_point(|&(_, _, d)| d <= d_o);
                result.insert(at, (si.id, ti.id, d_o));
                result.truncate(k);
            }
        }
    }

    let false_hits = euclid_top_k
        .iter()
        .filter(|(a, b)| !result.iter().any(|(x, y, _)| x == a && y == b))
        .count();

    let mut entity_io = s_io.finish();
    if let Some(t_io) = t_io {
        let t_io = t_io.finish();
        entity_io.reads += t_io.reads;
        entity_io.buffer_hits += t_io.buffer_hits;
        entity_io.writes += t_io.writes;
    }
    let obstacle_io = obstacle_io.finish();
    let stats = QueryStats {
        entity_reads: entity_io.reads,
        obstacle_reads: obstacle_io.reads,
        entity_fetches: entity_io.fetches(),
        obstacle_fetches: obstacle_io.fetches(),
        cpu: t0.elapsed(),
        candidates,
        results: result.len(),
        false_hits,
        distance_computations,
        peak_graph_nodes,
    };
    ClosestPairsResult {
        pairs: result,
        stats,
    }
}

/// Incremental obstacle closest pairs (iOCP — Fig. 12): yields
/// `(s id, t id, obstructed distance)` in ascending obstructed-distance
/// order without a predefined `k`.
///
/// A computed pair is emitted as soon as its obstructed distance does not
/// exceed the Euclidean distance of the most recent candidate pair — no
/// later candidate can beat it (its obstructed distance is at least its
/// Euclidean distance, which is at least the current one).
pub fn incremental_closest_pairs<'a>(
    s: &'a EntityIndex,
    t: &'a EntityIndex,
    obstacles: &'a ObstacleIndex,
    options: EngineOptions,
) -> IncrementalClosestPairs<'a> {
    IncrementalClosestPairs {
        s,
        t,
        obstacles,
        options,
        euclid: ClosestPairs::new(s.tree(), t.tree()),
        pending: BinaryHeap::new(),
        last_euclid: 0.0,
        exhausted: s.is_empty() || t.is_empty(),
        peak_graph_nodes: 0,
    }
}

/// Iterator type of [`incremental_closest_pairs`].
pub struct IncrementalClosestPairs<'a> {
    s: &'a EntityIndex,
    t: &'a EntityIndex,
    obstacles: &'a ObstacleIndex,
    options: EngineOptions,
    euclid: ClosestPairs<'a, AnyTree, AnyTree>,
    pending: BinaryHeap<Reverse<(OrdF64, u64, u64)>>,
    last_euclid: f64,
    exhausted: bool,
    peak_graph_nodes: usize,
}

impl Iterator for IncrementalClosestPairs<'_> {
    type Item = (u64, u64, f64);

    fn next(&mut self) -> Option<(u64, u64, f64)> {
        loop {
            if let Some(&Reverse((OrdF64(d), a, b))) = self.pending.peek() {
                if self.exhausted || d <= self.last_euclid {
                    self.pending.pop();
                    return Some((a, b, d));
                }
            } else if self.exhausted {
                return None;
            }
            match self.euclid.next() {
                Some((si, ti, d_e)) => {
                    self.last_euclid = d_e;
                    if let Some(d_o) = pair_distance(
                        self.s.position(si.id),
                        self.t.position(ti.id),
                        self.obstacles,
                        &self.options,
                        &mut self.peak_graph_nodes,
                    ) {
                        self.pending.push(Reverse((OrdF64::new(d_o), si.id, ti.id)));
                    }
                }
                None => self.exhausted = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obstacle_geom::{Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn scene() -> (EntityIndex, EntityIndex, ObstacleIndex) {
        // Pair (0,0): Euclidean-closest but a wall forces a long detour.
        // Pair (1,1): slightly farther in Euclidean, unobstructed — the
        // true obstructed closest pair.
        let s = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![Point::new(0.0, 0.0), Point::new(0.0, 5.0)],
        );
        let t = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![Point::new(2.0, 0.0), Point::new(2.2, 5.0)],
        );
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(0.9, -2.0, 1.1, 2.0))],
        );
        (s, t, obstacles)
    }

    #[test]
    fn top_pair_accounts_for_obstruction() {
        let (s, t, o) = scene();
        let r = closest_pairs(&s, &t, &o, 1, EngineOptions::default());
        assert_eq!(r.pairs.len(), 1);
        assert_eq!((r.pairs[0].0, r.pairs[0].1), (1, 1));
        assert!((r.pairs[0].2 - 2.2).abs() < 1e-12);
        assert_eq!(r.stats.false_hits, 1);
    }

    #[test]
    fn k2_includes_the_detour_pair() {
        let (s, t, o) = scene();
        let r = closest_pairs(&s, &t, &o, 2, EngineOptions::default());
        assert_eq!(r.pairs.len(), 2);
        assert_eq!((r.pairs[0].0, r.pairs[0].1), (1, 1));
        assert_eq!((r.pairs[1].0, r.pairs[1].1), (0, 0));
        let detour = Point::new(0.0, 0.0).dist(Point::new(0.9, 2.0))
            + 0.2
            + Point::new(1.1, 2.0).dist(Point::new(2.0, 0.0));
        assert!((r.pairs[1].2 - detour).abs() < 1e-9);
        // Ascending obstructed order.
        assert!(r.pairs[0].2 <= r.pairs[1].2);
    }

    #[test]
    fn incremental_matches_batch_prefix() {
        let (s, t, o) = scene();
        let batch = closest_pairs(&s, &t, &o, 4, EngineOptions::default());
        let inc: Vec<(u64, u64, f64)> =
            incremental_closest_pairs(&s, &t, &o, EngineOptions::default())
                .take(batch.pairs.len())
                .collect();
        assert_eq!(inc.len(), batch.pairs.len());
        for (a, b) in inc.iter().zip(batch.pairs.iter()) {
            assert_eq!((a.0, a.1), (b.0, b.1));
            assert!((a.2 - b.2).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_enumerates_all_pairs_in_order() {
        let (s, t, o) = scene();
        let all: Vec<(u64, u64, f64)> =
            incremental_closest_pairs(&s, &t, &o, EngineOptions::default()).collect();
        assert_eq!(all.len(), 4); // |S| × |T|
        for w in all.windows(2) {
            assert!(w[0].2 <= w[1].2 + 1e-12);
        }
    }

    #[test]
    fn k_zero_and_empty_inputs() {
        let (s, t, o) = scene();
        assert!(closest_pairs(&s, &t, &o, 0, EngineOptions::default())
            .pairs
            .is_empty());
        let empty = EntityIndex::build(RTreeConfig::tiny(4), vec![]);
        let r = closest_pairs(&s, &empty, &o, 3, EngineOptions::default());
        assert!(r.pairs.is_empty());
        assert!(
            incremental_closest_pairs(&empty, &t, &o, EngineOptions::default())
                .next()
                .is_none()
        );
    }
}
