//! Indexed datasets and the query engine facade.

use obstacle_geom::{Point, Polygon, Rect};
use obstacle_rtree::{AnyTree, Item, RTreeConfig, TreeBackend};
use obstacle_visibility::EdgeBuilder;

/// An entity dataset (points of interest) with its tree index.
///
/// The storage backend (the paper's paged R*-tree or the packed static
/// tree) is chosen by `config.backend` at build time; every operator runs
/// on either.
#[derive(Debug)]
pub struct EntityIndex {
    tree: AnyTree,
    points: Vec<Point>,
}

impl EntityIndex {
    /// Indexes `points` by one-by-one R* insertion (the paper's setup).
    /// On the packed backend this is the same Hilbert pack as
    /// [`EntityIndex::bulk_load`] — a static structure has one build path.
    pub fn build(config: RTreeConfig, points: Vec<Point>) -> Self {
        let tree = AnyTree::build(
            config,
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| Item::point(p, i as u64)),
        );
        EntityIndex { tree, points }
    }

    /// Indexes `points` by bulk loading (paged: STR; packed: Hilbert
    /// pack; used by large-scale benchmarks).
    pub fn bulk_load(config: RTreeConfig, points: Vec<Point>) -> Self {
        let tree = AnyTree::bulk_load(
            config,
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| Item::point(p, i as u64))
                .collect(),
        );
        EntityIndex { tree, points }
    }

    /// The underlying tree index.
    pub fn tree(&self) -> &AnyTree {
        &self.tree
    }

    /// Position of entity `id`.
    pub fn position(&self, id: u64) -> Point {
        self.points[id as usize]
    }

    /// All entity positions (ids are indices).
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Inserts a new entity and returns its id. Updates are the reason
    /// the paper builds visibility graphs on-line instead of
    /// materialising them (§2.4) — the R-tree absorbs the insert and
    /// every subsequent query sees the new entity with no rebuild.
    /// On the packed backend the insert re-packs the tree (O(n log n) —
    /// see [`AnyTree::insert`]).
    pub fn insert(&mut self, p: Point) -> u64 {
        let id = self.points.len() as u64;
        self.points.push(p);
        self.tree.insert(Item::point(p, id));
        id
    }

    /// Deletes an entity by id. Returns whether it was present. The id
    /// slot is retired (never reused); `position` keeps answering for
    /// retired ids but no query will return them.
    pub fn delete(&mut self, id: u64) -> bool {
        match self.points.get(id as usize) {
            Some(&p) => self.tree.delete(Item::point(p, id)),
            None => false,
        }
    }
}

/// The obstacle dataset (simple polygons) with its tree index over MBRs.
#[derive(Debug)]
pub struct ObstacleIndex {
    tree: AnyTree,
    polygons: Vec<Polygon>,
}

impl ObstacleIndex {
    /// Indexes `polygons` by one-by-one R* insertion (packed backend:
    /// Hilbert pack, see [`EntityIndex::build`]).
    pub fn build(config: RTreeConfig, polygons: Vec<Polygon>) -> Self {
        let tree = AnyTree::build(
            config,
            polygons
                .iter()
                .enumerate()
                .map(|(i, p)| Item::new(p.bbox(), i as u64)),
        );
        ObstacleIndex { tree, polygons }
    }

    /// Indexes `polygons` by bulk loading (paged: STR; packed: Hilbert
    /// pack).
    pub fn bulk_load(config: RTreeConfig, polygons: Vec<Polygon>) -> Self {
        let tree = AnyTree::bulk_load(
            config,
            polygons
                .iter()
                .enumerate()
                .map(|(i, p)| Item::new(p.bbox(), i as u64))
                .collect(),
        );
        ObstacleIndex { tree, polygons }
    }

    /// The underlying tree index (indexes obstacle MBRs).
    pub fn tree(&self) -> &AnyTree {
        &self.tree
    }

    /// The polygon of obstacle `id`.
    pub fn polygon(&self, id: u64) -> &Polygon {
        &self.polygons[id as usize]
    }

    /// All obstacle polygons (ids are indices).
    pub fn polygons(&self) -> &[Polygon] {
        &self.polygons
    }

    /// Number of obstacles.
    pub fn len(&self) -> usize {
        self.polygons.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.polygons.is_empty()
    }

    /// A rectangle covering the whole obstacle dataset.
    pub fn universe(&self) -> Rect {
        if self.tree.is_empty() {
            Rect::from_coords(0.0, 0.0, 1.0, 1.0)
        } else {
            self.tree.root_mbr()
        }
    }

    /// Inserts a new obstacle and returns its id. Queries issued after
    /// the insert immediately respect the new obstacle — the paper's
    /// argument for on-line local visibility graphs (§2.4).
    pub fn insert(&mut self, polygon: Polygon) -> u64 {
        let id = self.polygons.len() as u64;
        self.tree.insert(Item::new(polygon.bbox(), id));
        self.polygons.push(polygon);
        id
    }

    /// Deletes an obstacle by id. Returns whether it was present. The id
    /// slot is retired (never reused).
    pub fn delete(&mut self, id: u64) -> bool {
        match self.polygons.get(id as usize) {
            Some(p) => self.tree.delete(Item::new(p.bbox(), id)),
            None => false,
        }
    }
}

/// Tunable algorithm knobs. The defaults follow the paper exactly; the
/// alternatives exist for the ablation benchmarks (DESIGN.md §6).
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Visibility-edge builder (paper: rotational plane sweep \[SS84\]).
    pub builder: EdgeBuilder,
    /// ONN: keep shrinking the Euclidean search threshold `d_Emax` as
    /// closer obstructed neighbours are found (paper: on).
    pub shrink_threshold: bool,
    /// ONN: reuse one visibility graph across candidates via
    /// add/delete-entity (paper: on). Off rebuilds per candidate.
    pub reuse_graph: bool,
    /// ODJ: process join seeds in Hilbert order (paper: on).
    pub hilbert_seed_order: bool,
    /// ODJ: pick the seed side as the dataset with fewer distinct
    /// candidates (paper: on). Off always seeds from `S`.
    pub seed_side_heuristic: bool,
    /// Obstructed-distance computation: search obstacles inside the
    /// ellipse with foci `p`, `q` instead of the paper's disk around `q`
    /// (paper: off). Strictly fewer obstacles qualify; results are
    /// identical (extension, see DESIGN.md §6).
    pub ellipse_pruning: bool,
    /// OR/ODJ: prune non-tangent edges from the local visibility graph
    /// before the Dijkstra expansion (the tangent visibility graph
    /// \[PV95\] noted in §2.3; paper: off). Results are identical —
    /// shortest waypoint-to-waypoint paths only turn at tangent vertices.
    pub tangent_filter: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            builder: EdgeBuilder::RotationalSweep,
            shrink_threshold: true,
            reuse_graph: true,
            hilbert_seed_order: true,
            seed_side_heuristic: true,
            ellipse_pruning: false,
            tangent_filter: false,
        }
    }
}

/// Facade bundling an entity dataset and the obstacle dataset for the
/// unary query types (range, k-NN and their incremental variants).
///
/// Binary queries (joins, closest pairs) take their two entity indexes
/// explicitly — see [`distance_join`](crate::distance_join) and
/// [`closest_pairs`](crate::closest_pairs).
#[derive(Clone, Copy, Debug)]
pub struct QueryEngine<'a> {
    /// The entity dataset `P`.
    pub entities: &'a EntityIndex,
    /// The obstacle dataset `O`.
    pub obstacles: &'a ObstacleIndex,
    /// Algorithm options.
    pub options: EngineOptions,
}

impl<'a> QueryEngine<'a> {
    /// Engine with paper-default options.
    pub fn new(entities: &'a EntityIndex, obstacles: &'a ObstacleIndex) -> Self {
        QueryEngine {
            entities,
            obstacles,
            options: EngineOptions::default(),
        }
    }

    /// Engine with custom options (ablations).
    pub fn with_options(
        entities: &'a EntityIndex,
        obstacles: &'a ObstacleIndex,
        options: EngineOptions,
    ) -> Self {
        QueryEngine {
            entities,
            obstacles,
            options,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_index_roundtrip() {
        let pts = vec![Point::new(0.1, 0.2), Point::new(0.9, 0.8)];
        let idx = EntityIndex::build(RTreeConfig::tiny(4), pts.clone());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.position(1), pts[1]);
        assert_eq!(idx.tree().len(), 2);
    }

    #[test]
    fn obstacle_index_roundtrip() {
        let polys = vec![
            Polygon::from_rect(Rect::from_coords(0.0, 0.0, 0.2, 0.1)),
            Polygon::from_rect(Rect::from_coords(0.5, 0.5, 0.6, 0.9)),
        ];
        let idx = ObstacleIndex::build(RTreeConfig::tiny(4), polys.clone());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.polygon(0), &polys[0]);
        assert_eq!(idx.universe(), Rect::from_coords(0.0, 0.0, 0.6, 0.9));
    }

    #[test]
    fn default_options_are_paper_faithful() {
        let o = EngineOptions::default();
        assert_eq!(o.builder, EdgeBuilder::RotationalSweep);
        assert!(o.shrink_threshold && o.reuse_graph);
        assert!(o.hilbert_seed_order && o.seed_side_heuristic);
    }
}
