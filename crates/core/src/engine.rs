//! Indexed datasets and the query engine facade.
//!
//! Both indexes are **dynamic**: `insert`/`delete`/[`EntityIndex::apply_edits`]
//! mutate the tree in place, retire id slots by tombstone (ids are never
//! reused), and advance a per-index **update epoch**. Every epoch window
//! records the union bounding box of its edits (the *dirty rect*), which
//! is what lets cached visibility scenes stay legal across updates: a
//! scene built at epoch `e` over region `R` remains valid iff no dirty
//! rect recorded after `e` intersects `R` (inflated by the scene-reuse
//! slack). See `LocalGraph::sync` in `distance.rs` and
//! `SceneCache::validate` in `batch.rs` for the consumers.

use obstacle_geom::{Point, Polygon, Rect};
use obstacle_rtree::{AnyTree, Item, RTreeConfig, TreeBackend};
use obstacle_visibility::EdgeBuilder;

/// Dirty-rect log entries kept per index before the oldest window is
/// merged. Merging unions old rects under the newest merged epoch — a
/// purely conservative compaction (it can only over-invalidate scenes
/// stamped inside the merged range, never under-invalidate).
const DIRTY_LOG_CAP: usize = 1024;

/// Shared bookkeeping of a dynamic index: the update epoch and the
/// per-epoch dirty-rect log (ascending by epoch).
#[derive(Debug, Default)]
struct EpochLog {
    epoch: u64,
    dirty: Vec<(u64, Rect)>,
}

impl EpochLog {
    /// Opens a new epoch window covering `dirty` and returns the new
    /// epoch number.
    fn commit(&mut self, dirty: Rect) -> u64 {
        self.epoch += 1;
        self.dirty.push((self.epoch, dirty));
        if self.dirty.len() > DIRTY_LOG_CAP {
            let half = self.dirty.len() / 2;
            let merged_epoch = self.dirty[half - 1].0;
            let merged = self.dirty[..half]
                .iter()
                .fold(Rect::empty(), |u, (_, r)| u.union(r));
            self.dirty.splice(..half, [(merged_epoch, merged)]);
        }
        self.epoch
    }

    /// Whether any edit recorded after epoch `since` touched `region`.
    fn intersects_since(&self, since: u64, region: &Rect) -> bool {
        self.dirty
            .iter()
            .rev()
            .take_while(|(e, _)| *e > since)
            .any(|(_, r)| r.intersects(region))
    }
}

/// An entity dataset (points of interest) with its tree index.
///
/// The storage backend (the paper's paged R*-tree or the packed static
/// tree) is chosen by `config.backend` at build time; every operator runs
/// on either.
#[derive(Debug)]
pub struct EntityIndex {
    tree: AnyTree,
    points: Vec<Point>,
    /// Tombstones: `live[id]` is false once `id` has been deleted. The
    /// point stays in `points` so `position` keeps answering for retired
    /// ids, but no public iterator or query ever returns them.
    live: Vec<bool>,
    live_count: usize,
    log: EpochLog,
}

impl EntityIndex {
    /// Indexes `points` by one-by-one R* insertion (the paper's setup).
    /// On the packed backend this is the same Hilbert pack as
    /// [`EntityIndex::bulk_load`] — a static structure has one build path.
    pub fn build(config: RTreeConfig, points: Vec<Point>) -> Self {
        let tree = AnyTree::build(
            config,
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| Item::point(p, i as u64)),
        );
        Self::fresh(tree, points)
    }

    /// Indexes `points` by bulk loading (paged: STR; packed: Hilbert
    /// pack; used by large-scale benchmarks).
    pub fn bulk_load(config: RTreeConfig, points: Vec<Point>) -> Self {
        let tree = AnyTree::bulk_load(
            config,
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| Item::point(p, i as u64))
                .collect(),
        );
        Self::fresh(tree, points)
    }

    fn fresh(tree: AnyTree, points: Vec<Point>) -> Self {
        let live = vec![true; points.len()];
        let live_count = points.len();
        EntityIndex {
            tree,
            points,
            live,
            live_count,
            log: EpochLog::default(),
        }
    }

    /// The underlying tree index.
    pub fn tree(&self) -> &AnyTree {
        &self.tree
    }

    /// Position of entity `id` (answers for retired ids too — deleted
    /// slots keep their last position).
    pub fn position(&self, id: u64) -> Point {
        self.points[id as usize]
    }

    /// Whether entity `id` exists and has not been deleted.
    pub fn is_live(&self, id: u64) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// All live entities as `(id, position)`, in id order. Deleted slots
    /// are skipped — this is the only sanctioned way to enumerate the
    /// dataset (a raw slice would resurrect tombstoned ids).
    pub fn live_points(&self) -> impl Iterator<Item = (u64, Point)> + '_ {
        self.points
            .iter()
            .enumerate()
            .filter(|(i, _)| self.live[*i])
            .map(|(i, &p)| (i as u64, p))
    }

    /// Number of live entities (deletes decrement this).
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether the dataset holds no live entities.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Bounding rectangle of the live entities, or `None` when empty.
    pub fn extent(&self) -> Option<Rect> {
        (!self.tree.is_empty()).then(|| self.tree.root_mbr())
    }

    /// Current update epoch (0 for a freshly built index; each committed
    /// edit batch advances it by exactly 1).
    pub fn epoch(&self) -> u64 {
        self.log.epoch
    }

    /// Whether any edit committed after epoch `since` touched `region`.
    pub fn dirty_intersects(&self, since: u64, region: &Rect) -> bool {
        self.log.intersects_since(since, region)
    }

    /// Inserts a new entity and returns its id. Updates are the reason
    /// the paper builds visibility graphs on-line instead of
    /// materialising them (§2.4) — the R-tree absorbs the insert and
    /// every subsequent query sees the new entity with no rebuild.
    /// On the packed backend a single insert re-packs the tree
    /// (O(n log n) — batch edits through [`EntityIndex::apply_edits`]).
    pub fn insert(&mut self, p: Point) -> u64 {
        let (ids, _) = self.apply_edits(&[p], &[]);
        ids[0]
    }

    /// Deletes an entity by id. Returns whether it was present and live.
    /// The id slot is retired (never reused); `position` keeps answering
    /// for retired ids but no query will return them.
    pub fn delete(&mut self, id: u64) -> bool {
        self.apply_edits(&[], &[id]).1 == 1
    }

    /// Applies a batch of edits in one epoch: tombstones every live id in
    /// `deletes`, then inserts all of `inserts` (fresh ids, returned in
    /// order). The tree absorbs the whole batch at once — one re-pack on
    /// the packed backend — and the epoch advances by exactly 1 when the
    /// batch changed anything, with the batch's union bbox as the dirty
    /// rect. Returns `(inserted ids, live deletes performed)`.
    pub fn apply_edits(&mut self, inserts: &[Point], deletes: &[u64]) -> (Vec<u64>, usize) {
        let mut dirty = Rect::empty();
        let mut del_items = Vec::new();
        for &id in deletes {
            let i = id as usize;
            if i < self.points.len() && self.live[i] {
                self.live[i] = false;
                self.live_count -= 1;
                let p = self.points[i];
                del_items.push(Item::point(p, id));
                dirty = dirty.union(&Rect::from_point(p));
            }
        }
        let mut ids = Vec::with_capacity(inserts.len());
        let mut ins_items = Vec::with_capacity(inserts.len());
        for &p in inserts {
            let id = self.points.len() as u64;
            self.points.push(p);
            self.live.push(true);
            self.live_count += 1;
            ids.push(id);
            ins_items.push(Item::point(p, id));
            dirty = dirty.union(&Rect::from_point(p));
        }
        let removed = del_items.len();
        if removed > 0 || !ins_items.is_empty() {
            self.tree.apply_edits(ins_items, &del_items);
            self.log.commit(dirty);
        }
        (ids, removed)
    }
}

/// The obstacle dataset (simple polygons) with its tree index over MBRs.
///
/// Dynamic like [`EntityIndex`]; obstacle edits additionally matter to
/// every cached visibility scene, which is why the epoch/dirty-rect log
/// exists (see the module docs).
#[derive(Debug)]
pub struct ObstacleIndex {
    tree: AnyTree,
    polygons: Vec<Polygon>,
    /// Tombstones — see [`EntityIndex`].
    live: Vec<bool>,
    live_count: usize,
    log: EpochLog,
}

impl ObstacleIndex {
    /// Indexes `polygons` by one-by-one R* insertion (packed backend:
    /// Hilbert pack, see [`EntityIndex::build`]).
    pub fn build(config: RTreeConfig, polygons: Vec<Polygon>) -> Self {
        let tree = AnyTree::build(
            config,
            polygons
                .iter()
                .enumerate()
                .map(|(i, p)| Item::new(p.bbox(), i as u64)),
        );
        Self::fresh(tree, polygons)
    }

    /// Indexes `polygons` by bulk loading (paged: STR; packed: Hilbert
    /// pack).
    pub fn bulk_load(config: RTreeConfig, polygons: Vec<Polygon>) -> Self {
        let tree = AnyTree::bulk_load(
            config,
            polygons
                .iter()
                .enumerate()
                .map(|(i, p)| Item::new(p.bbox(), i as u64))
                .collect(),
        );
        Self::fresh(tree, polygons)
    }

    fn fresh(tree: AnyTree, polygons: Vec<Polygon>) -> Self {
        let live = vec![true; polygons.len()];
        let live_count = polygons.len();
        ObstacleIndex {
            tree,
            polygons,
            live,
            live_count,
            log: EpochLog::default(),
        }
    }

    /// The underlying tree index (indexes obstacle MBRs).
    pub fn tree(&self) -> &AnyTree {
        &self.tree
    }

    /// The polygon of obstacle `id` (answers for retired ids too).
    pub fn polygon(&self, id: u64) -> &Polygon {
        &self.polygons[id as usize]
    }

    /// Whether obstacle `id` exists and has not been deleted.
    pub fn is_live(&self, id: u64) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// All live obstacles as `(id, polygon)`, in id order. Deleted slots
    /// are skipped — the only sanctioned enumeration of the dataset.
    pub fn live_polygons(&self) -> impl Iterator<Item = (u64, &Polygon)> + '_ {
        self.polygons
            .iter()
            .enumerate()
            .filter(|(i, _)| self.live[*i])
            .map(|(i, p)| (i as u64, p))
    }

    /// Number of live obstacles (deletes decrement this).
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether the dataset holds no live obstacles.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Bounding rectangle of the live obstacles, or `None` when the set
    /// is (or has become, via deletes) empty.
    pub fn extent(&self) -> Option<Rect> {
        (!self.tree.is_empty()).then(|| self.tree.root_mbr())
    }

    /// A rectangle covering the whole obstacle dataset, with a unit-square
    /// fallback when empty. Prefer [`QueryEngine::universe`], which falls
    /// back to the *entity* extent first — Hilbert scheduling over this
    /// unit square would clamp every real-coordinate query to one corner
    /// cell.
    pub fn universe(&self) -> Rect {
        self.extent()
            .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 1.0, 1.0))
    }

    /// Current update epoch (see [`EntityIndex::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.log.epoch
    }

    /// Whether any edit committed after epoch `since` touched `region`.
    /// This is the scene-invalidation predicate: a cached scene stamped
    /// `(since, region)` must be retired iff this returns true for its
    /// slack-inflated region.
    pub fn dirty_intersects(&self, since: u64, region: &Rect) -> bool {
        self.log.intersects_since(since, region)
    }

    /// Inserts a new obstacle and returns its id. Queries issued after
    /// the insert immediately respect the new obstacle — the paper's
    /// argument for on-line local visibility graphs (§2.4). On the packed
    /// backend a single insert re-packs the tree (batch edits through
    /// [`ObstacleIndex::apply_edits`]).
    pub fn insert(&mut self, polygon: Polygon) -> u64 {
        let (ids, _) = self.apply_edits(vec![polygon], &[]);
        ids[0]
    }

    /// Deletes an obstacle by id. Returns whether it was present and
    /// live. The id slot is retired (never reused).
    pub fn delete(&mut self, id: u64) -> bool {
        self.apply_edits(Vec::new(), &[id]).1 == 1
    }

    /// Applies a batch of edits in one epoch — the obstacle-side analogue
    /// of [`EntityIndex::apply_edits`]. Dirty rect: union of deleted and
    /// inserted polygon bboxes. Returns `(inserted ids, live deletes)`.
    pub fn apply_edits(&mut self, inserts: Vec<Polygon>, deletes: &[u64]) -> (Vec<u64>, usize) {
        let mut dirty = Rect::empty();
        let mut del_items = Vec::new();
        for &id in deletes {
            let i = id as usize;
            if i < self.polygons.len() && self.live[i] {
                self.live[i] = false;
                self.live_count -= 1;
                let bbox = self.polygons[i].bbox();
                del_items.push(Item::new(bbox, id));
                dirty = dirty.union(&bbox);
            }
        }
        let mut ids = Vec::with_capacity(inserts.len());
        let mut ins_items = Vec::with_capacity(inserts.len());
        for polygon in inserts {
            let id = self.polygons.len() as u64;
            let bbox = polygon.bbox();
            self.polygons.push(polygon);
            self.live.push(true);
            self.live_count += 1;
            ids.push(id);
            ins_items.push(Item::new(bbox, id));
            dirty = dirty.union(&bbox);
        }
        let removed = del_items.len();
        if removed > 0 || !ins_items.is_empty() {
            self.tree.apply_edits(ins_items, &del_items);
            self.log.commit(dirty);
        }
        (ids, removed)
    }
}

/// Tunable algorithm knobs. The defaults follow the paper exactly; the
/// alternatives exist for the ablation benchmarks (DESIGN.md §6).
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Visibility-edge builder (paper: rotational plane sweep \[SS84\]).
    pub builder: EdgeBuilder,
    /// ONN: keep shrinking the Euclidean search threshold `d_Emax` as
    /// closer obstructed neighbours are found (paper: on).
    pub shrink_threshold: bool,
    /// ONN: reuse one visibility graph across candidates via
    /// add/delete-entity (paper: on). Off rebuilds per candidate.
    pub reuse_graph: bool,
    /// ODJ: process join seeds in Hilbert order (paper: on).
    pub hilbert_seed_order: bool,
    /// ODJ: pick the seed side as the dataset with fewer distinct
    /// candidates (paper: on). Off always seeds from `S`.
    pub seed_side_heuristic: bool,
    /// Obstructed-distance computation: search obstacles inside the
    /// ellipse with foci `p`, `q` instead of the paper's disk around `q`
    /// (paper: off). Strictly fewer obstacles qualify; results are
    /// identical (extension, see DESIGN.md §6).
    pub ellipse_pruning: bool,
    /// OR/ODJ: prune non-tangent edges from the local visibility graph
    /// before the Dijkstra expansion (the tangent visibility graph
    /// \[PV95\] noted in §2.3; paper: off). Results are identical —
    /// shortest waypoint-to-waypoint paths only turn at tangent vertices.
    pub tangent_filter: bool,
    /// Validate cached scenes against the obstacle-set epoch before
    /// reuse, retiring any scene whose region a later edit's dirty rect
    /// intersects (on — required for correct answers under interleaved
    /// updates). Off exists only so tests and ablations can demonstrate
    /// the stale-scene failure mode.
    pub epoch_validation: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            builder: EdgeBuilder::RotationalSweep,
            shrink_threshold: true,
            reuse_graph: true,
            hilbert_seed_order: true,
            seed_side_heuristic: true,
            ellipse_pruning: false,
            tangent_filter: false,
            epoch_validation: true,
        }
    }
}

/// Facade bundling an entity dataset and the obstacle dataset for the
/// unary query types (range, k-NN and their incremental variants).
///
/// Binary queries (joins, closest pairs) take their two entity indexes
/// explicitly — see [`distance_join`](crate::distance_join) and
/// [`closest_pairs`](crate::closest_pairs).
#[derive(Clone, Copy, Debug)]
pub struct QueryEngine<'a> {
    /// The entity dataset `P`.
    pub entities: &'a EntityIndex,
    /// The obstacle dataset `O`.
    pub obstacles: &'a ObstacleIndex,
    /// Algorithm options.
    pub options: EngineOptions,
}

impl<'a> QueryEngine<'a> {
    /// Engine with paper-default options.
    pub fn new(entities: &'a EntityIndex, obstacles: &'a ObstacleIndex) -> Self {
        QueryEngine {
            entities,
            obstacles,
            options: EngineOptions::default(),
        }
    }

    /// Engine with custom options (ablations).
    pub fn with_options(
        entities: &'a EntityIndex,
        obstacles: &'a ObstacleIndex,
        options: EngineOptions,
    ) -> Self {
        QueryEngine {
            entities,
            obstacles,
            options,
        }
    }

    /// The working universe: obstacle extent, falling back to the entity
    /// extent, then to the unit square. Hilbert scheduling and the
    /// scene-reuse slack are computed over this rect — falling back to
    /// the unit square while queries carry real coordinates would clamp
    /// every Hilbert key to one corner cell.
    pub fn universe(&self) -> Rect {
        self.obstacles
            .extent()
            .or_else(|| self.entities.extent())
            .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 1.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_index_roundtrip() {
        let pts = vec![Point::new(0.1, 0.2), Point::new(0.9, 0.8)];
        let idx = EntityIndex::build(RTreeConfig::tiny(4), pts.clone());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.position(1), pts[1]);
        assert_eq!(idx.tree().len(), 2);
        assert_eq!(idx.epoch(), 0);
        assert_eq!(
            idx.live_points().collect::<Vec<_>>(),
            vec![(0, pts[0]), (1, pts[1])]
        );
    }

    #[test]
    fn obstacle_index_roundtrip() {
        let polys = vec![
            Polygon::from_rect(Rect::from_coords(0.0, 0.0, 0.2, 0.1)),
            Polygon::from_rect(Rect::from_coords(0.5, 0.5, 0.6, 0.9)),
        ];
        let idx = ObstacleIndex::build(RTreeConfig::tiny(4), polys.clone());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.polygon(0), &polys[0]);
        assert_eq!(idx.universe(), Rect::from_coords(0.0, 0.0, 0.6, 0.9));
        assert_eq!(idx.epoch(), 0);
    }

    #[test]
    fn default_options_are_paper_faithful() {
        let o = EngineOptions::default();
        assert_eq!(o.builder, EdgeBuilder::RotationalSweep);
        assert!(o.shrink_threshold && o.reuse_graph);
        assert!(o.hilbert_seed_order && o.seed_side_heuristic);
        assert!(o.epoch_validation, "epoch validation is on by default");
    }

    #[test]
    fn edits_advance_epoch_and_record_dirty_rects() {
        let polys = vec![Polygon::from_rect(Rect::from_coords(0.0, 0.0, 0.2, 0.1))];
        let mut idx = ObstacleIndex::build(RTreeConfig::tiny(4), polys);
        let far = Rect::from_coords(5.0, 5.0, 5.2, 5.2);
        let id = idx.insert(Polygon::from_rect(far));
        assert_eq!(idx.epoch(), 1);
        assert!(idx.dirty_intersects(0, &far));
        assert!(!idx.dirty_intersects(1, &far), "nothing after epoch 1");
        assert!(!idx.dirty_intersects(0, &Rect::from_coords(2.0, 2.0, 3.0, 3.0)));

        assert!(idx.delete(id));
        assert_eq!(idx.epoch(), 2);
        assert!(idx.dirty_intersects(1, &far), "delete dirties its bbox");
        assert!(!idx.delete(id), "double delete reports absence");
        assert_eq!(idx.epoch(), 2, "a no-op batch does not open an epoch");
    }

    #[test]
    fn batched_edits_commit_one_epoch() {
        let mut idx = EntityIndex::build(RTreeConfig::tiny(4), vec![Point::new(0.0, 0.0)]);
        let (ids, removed) = idx.apply_edits(&[Point::new(1.0, 1.0), Point::new(2.0, 2.0)], &[0]);
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(removed, 1);
        assert_eq!(idx.epoch(), 1, "one epoch for the whole batch");
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_live(0));
        assert!(idx.is_live(2));
        assert_eq!(
            idx.live_points().map(|(id, _)| id).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn dirty_log_compaction_stays_conservative() {
        let mut idx = EntityIndex::build(RTreeConfig::tiny(4), Vec::new());
        // Blow past the cap; each edit dirties its own location.
        for i in 0..(DIRTY_LOG_CAP + 200) {
            idx.insert(Point::new(i as f64, 0.0));
        }
        assert!(idx.log.dirty.len() <= DIRTY_LOG_CAP + 1);
        // Every early edit is still visible to a stale observer (merged,
        // not dropped).
        assert!(idx.dirty_intersects(0, &Rect::from_coords(-0.5, -0.5, 0.5, 0.5)));
        // A fully up-to-date observer sees nothing.
        let all = Rect::from_coords(-1.0, -1.0, 1e6, 1.0);
        assert!(!idx.dirty_intersects(idx.epoch(), &all));
    }
}
