//! Obstructed distance semi-join.
//!
//! §2.1 of the paper defines the distance semi-join: for every point
//! `s ∈ S`, report its nearest neighbour `t ∈ T`. The paper notes two
//! evaluation strategies: (i) one NN query per object of `S`, or (ii)
//! consuming closest pairs incrementally until every `s` has appeared.
//! Both are implemented here — under the obstructed metric — and verified
//! against each other; (ii) is usually superior when `S` is small
//! relative to the pair space, (i) when `S` is a small fraction of the
//! total pair count.

use crate::closest_pair::incremental_closest_pairs;
use crate::engine::{EngineOptions, EntityIndex, ObstacleIndex, QueryEngine};
use crate::stats::{JoinResult, QueryStats};
use obstacle_rtree::sync::Stopwatch;
use obstacle_rtree::TreeBackend;
use std::collections::HashMap;

/// Semi-join evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SemiJoinStrategy {
    /// One obstructed 1-NN query in `T` per object of `S`.
    PerObjectNn,
    /// Consume incremental closest pairs until every `s ∈ S` is matched.
    IncrementalClosestPairs,
}

/// For each `s ∈ S`, its obstructed nearest neighbour in `T`.
///
/// Returns `(s id, t id, obstructed distance)` triples sorted by `s` id;
/// objects of `S` that cannot reach any `t` (entities sealed inside
/// obstacles) are omitted.
pub fn semi_join(
    s: &EntityIndex,
    t: &EntityIndex,
    obstacles: &ObstacleIndex,
    strategy: SemiJoinStrategy,
    options: EngineOptions,
) -> JoinResult {
    let t0 = Stopwatch::start();
    let same_tree = std::ptr::eq(s, t);
    let s_io = s.tree().io_snapshot();
    let t_io = (!same_tree).then(|| t.tree().io_snapshot());
    let obstacle_io = obstacles.tree().io_snapshot();

    let mut pairs: Vec<(u64, u64, f64)> = Vec::with_capacity(s.len());
    let mut distance_computations = 0usize;

    match strategy {
        SemiJoinStrategy::PerObjectNn => {
            let engine = QueryEngine::with_options(t, obstacles, options);
            for (sid, pos) in s.live_points() {
                let r = engine.nearest(pos, 1);
                distance_computations += r.stats.distance_computations;
                if let Some(&(tid, d)) = r.neighbors.first() {
                    pairs.push((sid, tid, d));
                }
            }
        }
        SemiJoinStrategy::IncrementalClosestPairs => {
            let mut best: HashMap<u64, (u64, f64)> = HashMap::with_capacity(s.len());
            for (sid, tid, d) in incremental_closest_pairs(s, t, obstacles, options) {
                distance_computations += 1;
                // Pairs arrive in ascending obstructed distance, so the
                // first pair mentioning `sid` is its nearest neighbour.
                best.entry(sid).or_insert((tid, d));
                if best.len() == s.len() {
                    break;
                }
            }
            pairs.extend(best.into_iter().map(|(sid, (tid, d))| (sid, tid, d)));
        }
    }
    pairs.sort_by_key(|&(sid, _, _)| sid);

    let mut entity_io = s_io.finish();
    if let Some(t_io) = t_io {
        let t_io = t_io.finish();
        entity_io.reads += t_io.reads;
        entity_io.buffer_hits += t_io.buffer_hits;
        entity_io.writes += t_io.writes;
    }
    let obstacle_io = obstacle_io.finish();
    let stats = QueryStats {
        entity_reads: entity_io.reads,
        obstacle_reads: obstacle_io.reads,
        entity_fetches: entity_io.fetches(),
        obstacle_fetches: obstacle_io.fetches(),
        cpu: t0.elapsed(),
        candidates: s.len(),
        results: pairs.len(),
        false_hits: 0,
        distance_computations,
        peak_graph_nodes: 0,
    };
    JoinResult { pairs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obstacle_geom::{Point, Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn scene() -> (EntityIndex, EntityIndex, ObstacleIndex) {
        let s = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 3.0),
                Point::new(3.0, 1.5),
            ],
        );
        let t = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![Point::new(2.0, 0.0), Point::new(2.0, 3.0)],
        );
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(0.9, -1.0, 1.1, 1.0))],
        );
        (s, t, obstacles)
    }

    #[test]
    fn both_strategies_agree() {
        let (s, t, o) = scene();
        let a = semi_join(
            &s,
            &t,
            &o,
            SemiJoinStrategy::PerObjectNn,
            EngineOptions::default(),
        );
        let b = semi_join(
            &s,
            &t,
            &o,
            SemiJoinStrategy::IncrementalClosestPairs,
            EngineOptions::default(),
        );
        assert_eq!(a.pairs.len(), b.pairs.len());
        for (x, y) in a.pairs.iter().zip(b.pairs.iter()) {
            assert_eq!(x.0, y.0);
            assert!((x.2 - y.2).abs() < 1e-12, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn obstruction_changes_the_assigned_neighbour() {
        let (s, t, o) = scene();
        let r = semi_join(
            &s,
            &t,
            &o,
            SemiJoinStrategy::PerObjectNn,
            EngineOptions::default(),
        );
        // s0 at (0,0): Euclidean NN is t0 at distance 2, but the wall
        // forces a 2.9 detour; t1 at (2,3) costs √13 ≈ 3.61 — so t0 still
        // wins, but with the obstructed distance recorded.
        let s0 = &r.pairs[0];
        assert_eq!(s0.1, 0);
        assert!(s0.2 > 2.0 + 0.5, "detour distance, got {}", s0.2);
        // s1 at (0,3): unobstructed straight line to t1.
        let s1 = &r.pairs[1];
        assert_eq!(s1.1, 1);
        assert!((s1.2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn every_s_appears_once() {
        let (s, t, o) = scene();
        let r = semi_join(
            &s,
            &t,
            &o,
            SemiJoinStrategy::IncrementalClosestPairs,
            EngineOptions::default(),
        );
        let ids: Vec<u64> = r.pairs.iter().map(|(a, _, _)| *a).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn empty_s_or_t() {
        let (s, t, o) = scene();
        let empty = EntityIndex::build(RTreeConfig::tiny(4), vec![]);
        for strat in [
            SemiJoinStrategy::PerObjectNn,
            SemiJoinStrategy::IncrementalClosestPairs,
        ] {
            assert!(semi_join(&empty, &t, &o, strat, EngineOptions::default())
                .pairs
                .is_empty());
            assert!(semi_join(&s, &empty, &o, strat, EngineOptions::default())
                .pairs
                .is_empty());
        }
    }
}
