//! Concurrent batch query execution.
//!
//! The paper's experiments (§7) issue workloads of hundreds of queries,
//! and downstream consumers — obstructed clustering à la El-Zawawy &
//! El-Sharkawi, navigation services, the figure harness itself — are
//! nothing but large batches of range/NN/join probes against one shared
//! pair of R-trees. All query operators take `&self` and the R-trees are
//! [`Sync`] (atomic I/O counters, mutex-guarded LRU buffer), so a batch
//! parallelises embarrassingly: [`QueryEngine::run_batch`] fans a slice
//! of heterogeneous [`Query`]s out over a scoped worker pool.
//!
//! Design points:
//!
//! * **No external dependencies** — `std::thread::scope` workers pulling
//!   from a shared atomic cursor (self-balancing: a worker stuck on an
//!   expensive join simply claims fewer of the remaining queries).
//! * **Deterministic output** — every [`Answer`] lands at its query's
//!   input index, and each operator is a pure function of its inputs, so
//!   the *results* of `run_batch` are identical for every thread count
//!   (asserted by the root `consistency` suite). Per-query
//!   [`QueryStats`] are attributed through thread-local
//!   [`IoSnapshot`](obstacle_rtree::IoSnapshot) windows and never race;
//!   their buffer-hit/miss *split* still legitimately varies with
//!   interleaving, because all threads share one LRU buffer per tree
//!   (like concurrent clients of one database buffer pool).
//! * **Binary operators self-join** — a [`QueryEngine`] carries one
//!   entity dataset, so `DistanceJoin`/`SemiJoin`/`ClosestPairs` run
//!   `P × P`, the shape obstructed clustering workloads take. Batches
//!   over two distinct datasets can call [`distance_join`] directly from
//!   their own threads; everything here is reentrant.

use crate::closest_pair::closest_pairs;
use crate::engine::{EntityIndex, ObstacleIndex, QueryEngine};
use crate::join::distance_join;
use crate::path::shortest_obstructed_path;
use crate::semi_join::{semi_join, SemiJoinStrategy};
use crate::stats::{ClosestPairsResult, JoinResult, NearestResult, QueryStats, RangeResult};
use obstacle_geom::Point;
use obstacle_visibility::PathResult;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One query of a heterogeneous batch (see [`QueryEngine::run_batch`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Query {
    /// Obstacle range query: entities within obstructed distance `e` of `q`.
    Range {
        /// Query point.
        q: Point,
        /// Obstructed-distance radius.
        e: f64,
    },
    /// Obstacle k-nearest-neighbour query.
    Nearest {
        /// Query point.
        q: Point,
        /// Number of neighbours.
        k: usize,
    },
    /// Obstacle e-distance self-join over the engine's entity dataset.
    DistanceJoin {
        /// Obstructed-distance threshold.
        e: f64,
    },
    /// Obstructed distance semi-join of the entity dataset with itself.
    SemiJoin {
        /// Evaluation strategy (see [`SemiJoinStrategy`]).
        strategy: SemiJoinStrategy,
    },
    /// Obstacle k-closest-pairs over the engine's entity dataset.
    ClosestPairs {
        /// Number of pairs.
        k: usize,
    },
    /// Exact shortest obstructed path between two free points.
    Path {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
    },
}

/// The result of one batch [`Query`], at the same index in the output of
/// [`QueryEngine::run_batch`] as the query held in the input.
#[derive(Clone, Debug)]
pub enum Answer {
    /// Result of a [`Query::Range`].
    Range(RangeResult),
    /// Result of a [`Query::Nearest`].
    Nearest(NearestResult),
    /// Result of a [`Query::DistanceJoin`].
    DistanceJoin(JoinResult),
    /// Result of a [`Query::SemiJoin`].
    SemiJoin(JoinResult),
    /// Result of a [`Query::ClosestPairs`].
    ClosestPairs(ClosestPairsResult),
    /// Result of a [`Query::Path`] (`None` when unreachable).
    Path(Option<PathResult>),
}

impl Answer {
    /// The cost metrics of the answer, when the operator produces them
    /// (`Path` reports none).
    pub fn stats(&self) -> Option<&QueryStats> {
        match self {
            Answer::Range(r) => Some(&r.stats),
            Answer::Nearest(r) => Some(&r.stats),
            Answer::DistanceJoin(r) | Answer::SemiJoin(r) => Some(&r.stats),
            Answer::ClosestPairs(r) => Some(&r.stats),
            Answer::Path(_) => None,
        }
    }

    /// Number of result rows (hits, neighbours, pairs, or path corners).
    pub fn result_count(&self) -> usize {
        match self {
            Answer::Range(r) => r.hits.len(),
            Answer::Nearest(r) => r.neighbors.len(),
            Answer::DistanceJoin(r) | Answer::SemiJoin(r) => r.pairs.len(),
            Answer::ClosestPairs(r) => r.pairs.len(),
            Answer::Path(p) => p.as_ref().map_or(0, |p| p.points.len()),
        }
    }

    /// Whether two answers carry bit-identical *result payloads* (ids,
    /// distances, polylines). [`QueryStats`] are deliberately excluded:
    /// CPU time is never reproducible and the buffer-hit/miss split
    /// depends on how concurrent queries interleaved on the shared LRU
    /// buffer. This is the equality the determinism guarantee of
    /// [`QueryEngine::run_batch`] is stated in.
    pub fn same_results(&self, other: &Answer) -> bool {
        match (self, other) {
            (Answer::Range(a), Answer::Range(b)) => a.hits == b.hits,
            (Answer::Nearest(a), Answer::Nearest(b)) => a.neighbors == b.neighbors,
            (Answer::DistanceJoin(a), Answer::DistanceJoin(b)) => a.pairs == b.pairs,
            (Answer::SemiJoin(a), Answer::SemiJoin(b)) => a.pairs == b.pairs,
            (Answer::ClosestPairs(a), Answer::ClosestPairs(b)) => a.pairs == b.pairs,
            (Answer::Path(a), Answer::Path(b)) => match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => a.distance == b.distance && a.points == b.points,
                _ => false,
            },
            _ => false,
        }
    }
}

// The concurrency contract, checked at compile time: a `QueryEngine` (and
// everything it borrows) can be shared across the worker pool.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<QueryEngine<'static>>();
    assert_sync::<EntityIndex>();
    assert_sync::<ObstacleIndex>();
    assert_sync::<Query>();
};

impl QueryEngine<'_> {
    /// Executes one batch [`Query`] on this engine (the sequential unit
    /// [`QueryEngine::run_batch`] parallelises over).
    pub fn execute(&self, query: &Query) -> Answer {
        match *query {
            Query::Range { q, e } => Answer::Range(self.range(q, e)),
            Query::Nearest { q, k } => Answer::Nearest(self.nearest(q, k)),
            Query::DistanceJoin { e } => Answer::DistanceJoin(distance_join(
                self.entities,
                self.entities,
                self.obstacles,
                e,
                self.options,
            )),
            Query::SemiJoin { strategy } => Answer::SemiJoin(semi_join(
                self.entities,
                self.entities,
                self.obstacles,
                strategy,
                self.options,
            )),
            Query::ClosestPairs { k } => Answer::ClosestPairs(closest_pairs(
                self.entities,
                self.entities,
                self.obstacles,
                k,
                self.options,
            )),
            Query::Path { from, to } => Answer::Path(shortest_obstructed_path(
                from,
                to,
                self.obstacles,
                self.options.builder,
            )),
        }
    }

    /// Executes `queries` across `threads` workers and returns the
    /// answers **in input order** (`answers[i]` answers `queries[i]`).
    ///
    /// Workers are `std::thread::scope` threads claiming queries from a
    /// shared atomic cursor — the pool self-balances without any channel
    /// or queue structure, and heavy queries (joins) simply occupy one
    /// worker while the others drain the cheap ones. Results are
    /// guaranteed identical (in the sense of [`Answer::same_results`]) to
    /// running the same slice sequentially: every operator is a pure
    /// function of the shared indexes, which no query mutates.
    ///
    /// `threads` is clamped to `[1, queries.len()]`; `threads <= 1` runs
    /// inline on the calling thread with no pool at all.
    pub fn run_batch(&self, queries: &[Query], threads: usize) -> Vec<Answer> {
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            return queries.iter().map(|q| self.execute(q)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<Answer>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, Answer)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            mine.push((i, self.execute(&queries[i])));
                        }
                        mine
                    })
                })
                .collect();
            for worker in workers {
                for (i, answer) in worker.join().expect("batch worker panicked") {
                    slots[i] = Some(answer);
                }
            }
        });
        slots
            .into_iter()
            .map(|a| a.expect("the cursor visits every query exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obstacle_geom::{Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn scene() -> (EntityIndex, ObstacleIndex) {
        let entities = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![
                Point::new(2.0, 0.0),
                Point::new(0.0, 2.2),
                Point::new(-1.5, -0.5),
                Point::new(3.0, 2.0),
            ],
        );
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(1.0, -2.0, 1.2, 2.0))],
        );
        (entities, obstacles)
    }

    fn mixed_queries() -> Vec<Query> {
        vec![
            Query::Nearest {
                q: Point::new(0.0, 0.0),
                k: 2,
            },
            Query::Range {
                q: Point::new(0.0, 0.0),
                e: 2.5,
            },
            Query::DistanceJoin { e: 2.4 },
            Query::ClosestPairs { k: 3 },
            Query::SemiJoin {
                strategy: SemiJoinStrategy::PerObjectNn,
            },
            Query::Path {
                from: Point::new(0.0, 0.0),
                to: Point::new(2.0, 0.0),
            },
            Query::Nearest {
                q: Point::new(3.0, 3.0),
                k: 1,
            },
            Query::Path {
                from: Point::new(0.5, 1.1),
                to: Point::new(0.5, 1.1),
            },
        ]
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        let sequential: Vec<Answer> = queries.iter().map(|q| engine.execute(q)).collect();
        for threads in [1, 2, 3, 8] {
            let parallel = engine.run_batch(&queries, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (i, (p, s)) in parallel.iter().zip(sequential.iter()).enumerate() {
                assert!(
                    p.same_results(s),
                    "threads {threads}, query {i}: {p:?} vs {s:?}"
                );
            }
        }
    }

    #[test]
    fn answers_land_at_their_input_index() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        // Distinguishable k values: answer i must hold i+1 neighbours.
        let queries: Vec<Query> = (0..4)
            .map(|i| Query::Nearest {
                q: Point::new(0.0, 0.0),
                k: i + 1,
            })
            .collect();
        let answers = engine.run_batch(&queries, 4);
        for (i, a) in answers.iter().enumerate() {
            match a {
                Answer::Nearest(r) => assert_eq!(r.neighbors.len(), i + 1),
                other => panic!("unexpected answer {other:?}"),
            }
        }
    }

    #[test]
    fn per_query_stats_are_attributed_not_global() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries: Vec<Query> = (0..6)
            .map(|_| Query::Nearest {
                q: Point::new(0.0, 0.0),
                k: 2,
            })
            .collect();
        // Identical queries: each answer's logical fetch count must match
        // the sequential run's per-query count (global-counter diffing
        // under interleaving would lump several queries' reads together).
        let solo = engine.execute(&queries[0]);
        let solo_fetches =
            solo.stats().unwrap().entity_fetches + solo.stats().unwrap().obstacle_fetches;
        assert!(solo_fetches > 0, "scene too small to observe fetches");
        for a in engine.run_batch(&queries, 3) {
            let s = a.stats().unwrap();
            assert_eq!(s.entity_fetches + s.obstacle_fetches, solo_fetches);
        }
    }

    #[test]
    fn degenerate_batches() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        assert!(engine.run_batch(&[], 4).is_empty());
        let one = engine.run_batch(
            &[Query::Range {
                q: Point::new(0.0, 0.0),
                e: 1.0,
            }],
            16,
        );
        assert_eq!(one.len(), 1);
        // Zero threads clamps to one.
        assert_eq!(engine.run_batch(&mixed_queries(), 0).len(), 8);
    }
}
