//! Concurrent batch query execution.
//!
//! The paper's experiments (§7) issue workloads of hundreds of queries,
//! and downstream consumers — obstructed clustering à la El-Zawawy &
//! El-Sharkawi, navigation services, the figure harness itself — are
//! nothing but large batches of range/NN/join probes against one shared
//! pair of R-trees. All query operators take `&self` and the R-trees are
//! [`Sync`] (atomic I/O counters, mutex-guarded LRU buffer), so a batch
//! parallelises embarrassingly: [`QueryEngine::batch`] builds a
//! [`BatchRequest`] that fans a slice of heterogeneous [`Query`]s out
//! over a scoped worker pool.
//!
//! Design points:
//!
//! * **No external dependencies** — `std::thread::scope` workers pulling
//!   from a shared atomic cursor (self-balancing: a worker stuck on an
//!   expensive join simply claims fewer of the remaining queries).
//! * **Deterministic output** — every [`Answer`] lands at its query's
//!   input index, and each operator is a pure function of its inputs, so
//!   the *results* of a batch are identical for every thread count
//!   (asserted by the root `consistency` suite). Per-query
//!   [`QueryStats`] are attributed through thread-local
//!   [`IoSnapshot`](obstacle_rtree::IoSnapshot) windows and never race;
//!   their buffer-hit/miss *split* still legitimately varies with
//!   interleaving, because all threads share one LRU buffer per tree
//!   (like concurrent clients of one database buffer pool).
//! * **Binary operators self-join** — a [`QueryEngine`] carries one
//!   entity dataset, so `DistanceJoin`/`SemiJoin`/`ClosestPairs` run
//!   `P × P`, the shape obstructed clustering workloads take. Batches
//!   over two distinct datasets can call [`distance_join`] directly from
//!   their own threads; everything here is reentrant.

use crate::closest_pair::closest_pairs;
use crate::distance::LocalGraph;
use crate::engine::{EngineOptions, EntityIndex, ObstacleIndex, QueryEngine};
use crate::join::distance_join;
use crate::path::{shortest_obstructed_path, shortest_obstructed_path_in};
use crate::semi_join::{semi_join, SemiJoinStrategy};
use crate::stats::{ClosestPairsResult, JoinResult, NearestResult, QueryStats, RangeResult};
use obstacle_geom::{hilbert_index_unit, Point, Rect};
use obstacle_visibility::PathResult;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One query of a heterogeneous batch (see [`QueryEngine::batch`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Query {
    /// Obstacle range query: entities within obstructed distance `e` of `q`.
    Range {
        /// Query point.
        q: Point,
        /// Obstructed-distance radius.
        e: f64,
    },
    /// Obstacle k-nearest-neighbour query.
    Nearest {
        /// Query point.
        q: Point,
        /// Number of neighbours.
        k: usize,
    },
    /// Obstacle e-distance self-join over the engine's entity dataset.
    DistanceJoin {
        /// Obstructed-distance threshold.
        e: f64,
    },
    /// Obstructed distance semi-join of the entity dataset with itself.
    SemiJoin {
        /// Evaluation strategy (see [`SemiJoinStrategy`]).
        strategy: SemiJoinStrategy,
    },
    /// Obstacle k-closest-pairs over the engine's entity dataset.
    ClosestPairs {
        /// Number of pairs.
        k: usize,
    },
    /// Exact shortest obstructed path between two free points.
    Path {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
    },
}

/// The result of one batch [`Query`], at the same index in the output of
/// [`BatchRequest::collect`] as the query held in the input.
#[derive(Clone, Debug)]
pub enum Answer {
    /// Result of a [`Query::Range`].
    Range(RangeResult),
    /// Result of a [`Query::Nearest`].
    Nearest(NearestResult),
    /// Result of a [`Query::DistanceJoin`].
    DistanceJoin(JoinResult),
    /// Result of a [`Query::SemiJoin`].
    SemiJoin(JoinResult),
    /// Result of a [`Query::ClosestPairs`].
    ClosestPairs(ClosestPairsResult),
    /// Result of a [`Query::Path`] (`None` when unreachable).
    Path(Option<PathResult>),
}

impl Answer {
    /// The cost metrics of the answer, when the operator produces them
    /// (`Path` reports none).
    pub fn stats(&self) -> Option<&QueryStats> {
        match self {
            Answer::Range(r) => Some(&r.stats),
            Answer::Nearest(r) => Some(&r.stats),
            Answer::DistanceJoin(r) | Answer::SemiJoin(r) => Some(&r.stats),
            Answer::ClosestPairs(r) => Some(&r.stats),
            Answer::Path(_) => None,
        }
    }

    /// Number of result rows (hits, neighbours, pairs, or path corners).
    pub fn result_count(&self) -> usize {
        match self {
            Answer::Range(r) => r.hits.len(),
            Answer::Nearest(r) => r.neighbors.len(),
            Answer::DistanceJoin(r) | Answer::SemiJoin(r) => r.pairs.len(),
            Answer::ClosestPairs(r) => r.pairs.len(),
            Answer::Path(p) => p.as_ref().map_or(0, |p| p.points.len()),
        }
    }

    /// Whether two answers carry bit-identical *result payloads* (ids,
    /// distances, polylines). [`QueryStats`] are deliberately excluded:
    /// CPU time is never reproducible and the buffer-hit/miss split
    /// depends on how concurrent queries interleaved on the shared LRU
    /// buffer. This is the equality the determinism guarantee of
    /// [`BatchRequest::collect`] is stated in.
    pub fn same_results(&self, other: &Answer) -> bool {
        match (self, other) {
            (Answer::Range(a), Answer::Range(b)) => a.hits == b.hits,
            (Answer::Nearest(a), Answer::Nearest(b)) => a.neighbors == b.neighbors,
            (Answer::DistanceJoin(a), Answer::DistanceJoin(b)) => a.pairs == b.pairs,
            (Answer::SemiJoin(a), Answer::SemiJoin(b)) => a.pairs == b.pairs,
            (Answer::ClosestPairs(a), Answer::ClosestPairs(b)) => a.pairs == b.pairs,
            (Answer::Path(a), Answer::Path(b)) => match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => a.distance == b.distance && a.points == b.points,
                _ => false,
            },
            _ => false,
        }
    }
}

// The concurrency contract, checked at compile time: a `QueryEngine` (and
// everything it borrows) can be shared across the worker pool.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<QueryEngine<'static>>();
    assert_sync::<EntityIndex>();
    assert_sync::<ObstacleIndex>();
    assert_sync::<Query>();
};

/// Retirement budgets of a [`SceneCache`] scene: the classification
/// bookkeeping of `LazyScene::add_obstacle` and `add_waypoint` scales with
/// the resident scene, so an ever-growing cache would eventually cost more
/// than the sweeps it saves. The budgets only decide *when* a scene is
/// rebuilt — answers are identical under every setting (pinned by the
/// `scene_cache` suite).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SceneBudget {
    /// Obstacles a cached scene may absorb before it is retired.
    pub max_obstacles: usize,
    /// Waypoint-slot slack: the scene is retired once its node slots
    /// exceed `2 × live nodes + slot_slack` (waypoints are added and
    /// removed per query, so slots grow monotonically on a warm scene).
    pub slot_slack: usize,
}

impl Default for SceneBudget {
    fn default() -> Self {
        SceneBudget {
            max_obstacles: 4096,
            slot_slack: 512,
        }
    }
}

/// Execution-order policy of a batch (see [`BatchRequest::schedule`]).
///
/// Scheduling permutes only the order workers *claim* queries — answers
/// always land at their input index and are bit-identical to sequential
/// execution under every policy (the `schedule` suite pins this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Claim queries in input order (the PR 3 behaviour).
    #[default]
    InputOrder,
    /// Claim queries in ascending Hilbert order of each query's region
    /// (the locality trick ODJ applies to its join seeds, §5): every
    /// worker's [`SceneCache`] then sees maximally clustered consecutive
    /// regions instead of whatever order the batch arrived in.
    /// Dataset-wide operators (joins, closest pairs) carry no region and
    /// are scheduled first — they are also the heaviest, so fronting
    /// them helps the pool balance.
    Hilbert,
}

/// Delivery-order policy of a streaming batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Delivery {
    /// Yield `(input_index, answer)` pairs the moment workers finish
    /// them, in completion order (lowest latency to the first answer).
    #[default]
    AsCompleted,
    /// Re-order delivery to input order: pairs are yielded with strictly
    /// ascending indices, buffering out-of-order completions until their
    /// turn (what an ordered consumer — a result writer, a merge join —
    /// wants from a stream).
    InputOrder,
}

/// Knobs of a scheduled/streaming batch run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads (clamped to `[1, queries.len()]` at the terminal).
    pub threads: usize,
    /// Execution-order policy.
    pub schedule: Schedule,
    /// Delivery-order policy (streaming API only; collected variants
    /// always return answers at their input index).
    pub delivery: Delivery,
    /// Scene-retirement budgets of each worker's [`SceneCache`].
    pub budget: SceneBudget,
}

impl BatchOptions {
    /// Options with `threads` workers and every policy at its default.
    pub fn new(threads: usize) -> Self {
        BatchOptions {
            threads,
            ..BatchOptions::default()
        }
    }

    /// Same options with the given schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Same options with the given delivery policy.
    pub fn delivery(mut self, delivery: Delivery) -> Self {
        self.delivery = delivery;
        self
    }
}

/// Aggregate execution diagnostics of one batch run, summed over all
/// workers. Scene reuse counts are the observable the Hilbert schedule
/// exists to improve; they never affect answers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Worker threads the run actually used (after clamping).
    pub workers: usize,
    /// Queries answered on a warm (reused) scene, summed over workers —
    /// the aggregate [`SceneCache`] hit count.
    pub scene_reuses: usize,
    /// Scenes retired (region jump or budget exhaustion), summed.
    pub scene_resets: usize,
    /// Scenes retired by epoch validation — an obstacle edit after the
    /// scene's build epoch dirtied a rect intersecting its region —
    /// summed over workers. Distinct from [`BatchStats::scene_resets`]:
    /// those are reuse economics, these are correctness.
    pub scene_invalidations: usize,
}

/// Iterator over the answers of a streaming batch
/// ([`BatchRequest::stream`]): yields `(input_index, Answer)`
/// pairs as workers complete them, re-ordered to input order when the run
/// asked for [`Delivery::InputOrder`]. Dropping the stream early cancels
/// the remaining queries (workers stop at the next claim).
#[derive(Debug)]
pub struct BatchStream {
    rx: mpsc::Receiver<(usize, Answer)>,
    /// Answers not yet yielded (the stream ends after this many).
    remaining: usize,
    delivery: Delivery,
    /// Next input index to deliver (`Delivery::InputOrder`).
    next_index: usize,
    /// Re-order buffer of completed-but-not-yet-due answers.
    held: BTreeMap<usize, Answer>,
}

impl Iterator for BatchStream {
    type Item = (usize, Answer);

    fn next(&mut self) -> Option<(usize, Answer)> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            if self.delivery == Delivery::InputOrder {
                if let Some(a) = self.held.remove(&self.next_index) {
                    let i = self.next_index;
                    self.next_index += 1;
                    self.remaining -= 1;
                    return Some((i, a));
                }
            }
            // `recv` can only fail if a worker panicked mid-batch (every
            // sender hung up with answers still owed); ending the stream
            // lets the scope's `join` surface that panic.
            let (i, a) = self.rx.recv().ok()?;
            match self.delivery {
                Delivery::AsCompleted => {
                    self.remaining -= 1;
                    return Some((i, a));
                }
                Delivery::InputOrder => {
                    self.held.insert(i, a);
                }
            }
        }
    }
}

/// A reusable lazy scene shared by consecutive ONN/OR/path queries — the
/// batch-granularity counterpart of the reuse ONN already does across
/// *candidates* (§4) and the cross-query amortization of Wang's
/// shortest-paths-revisited line of work.
///
/// Each batch worker owns one cache: every query it executes first
/// asks [`SceneCache::scene_for`] for a scene positioned over the query's
/// region. Nearby queries (neighbouring range disks, path corridors,
/// clustered NN probes) then reuse absorbed obstacles and cached
/// visibility sweeps instead of rebuilding a private [`LocalGraph`] from
/// scratch; sweeps survive across queries because `LazyScene` revalidates
/// successor caches geometrically when the scene grows (the PR 2
/// machinery). A query far from everything the scene has served — or a
/// scene past its obstacle/slot budget — retires the scene and starts
/// fresh, so scattered workloads degrade to exactly the per-query cost
/// they had before.
///
/// Reuse never changes answers: resident obstacles are real obstacles of
/// the one shared dataset (a superset of any query's certified region
/// only blocks paths that are genuinely blocked), every operator still
/// absorbs what its own region demands, and exact ties resolve
/// positionally rather than by node numbering. The determinism suites
/// assert this at every thread count.
#[derive(Debug)]
pub struct SceneCache {
    options: EngineOptions,
    budget: SceneBudget,
    graph: LocalGraph,
    /// Union of the query regions served by the current scene
    /// (`Rect::empty()` when the scene is fresh).
    coverage: Rect,
    /// Queries that reused a warm scene / scenes retired (diagnostics).
    reuses: usize,
    resets: usize,
    /// Scenes retired by epoch validation (obsolete geometry, not
    /// economics — see [`SceneCache::validate`]).
    invalidations: usize,
}

impl SceneCache {
    /// An empty cache building scenes with the options' edge builder and
    /// default retirement budgets.
    pub fn new(options: EngineOptions) -> Self {
        SceneCache::with_budget(options, SceneBudget::default())
    }

    /// An empty cache with explicit retirement budgets (see
    /// [`SceneBudget`]; budgets affect only reuse economics, never
    /// answers).
    pub fn with_budget(options: EngineOptions, budget: SceneBudget) -> Self {
        SceneCache {
            options,
            budget,
            graph: LocalGraph::new(options.builder),
            coverage: Rect::empty(),
            reuses: 0,
            resets: 0,
            invalidations: 0,
        }
    }

    /// Queries answered on a warm (reused) scene so far.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Scenes retired (region jump or budget exhaustion) so far.
    pub fn resets(&self) -> usize {
        self.resets
    }

    /// Scenes retired by epoch validation so far (see
    /// [`SceneCache::validate`]).
    pub fn invalidations(&self) -> usize {
        self.invalidations
    }

    /// Validates the cached scene against the current obstacle set:
    /// retires it iff an edit committed after the scene's epoch stamp
    /// dirtied a rect intersecting the scene's certified region inflated
    /// by `slack` (see [`LocalGraph::sync`]). Edits elsewhere leave the
    /// scene warm — reuse stays legal because every resident obstacle
    /// intersects that region. Returns whether the scene was retired.
    /// [`QueryEngine::execute_with`] calls this before every query (the
    /// `epoch_validation` option gates it, for ablation only); callers
    /// driving the operators directly against a long-lived cache across
    /// updates get the same check through the operators' own sync.
    pub fn validate(&mut self, obstacles: &ObstacleIndex, slack: f64) -> bool {
        if self.graph.sync(obstacles, slack) {
            self.coverage = Rect::empty();
            self.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// The reuse distance for a dataset spanning `universe`: queries
    /// within a couple percent of the universe diagonal of the scene's
    /// coverage reuse it; farther jumps retire it. The one locality
    /// threshold shared by every cache user (batch workers, ODJ's
    /// seed loop).
    pub fn slack_for(universe: &Rect) -> f64 {
        0.02 * universe.min.dist(universe.max)
    }

    /// The cached scene, positioned for a query covering `region`; the
    /// scene is retired first unless it is fresh, within budget, and its
    /// coverage lies within `slack` of the region.
    pub fn scene_for(&mut self, region: Rect, slack: f64) -> &mut LocalGraph {
        if self.coverage.is_empty() {
            self.coverage = region;
            return &mut self.graph;
        }
        let near = self.coverage.mindist_rect(&region) <= slack;
        let slots = self.graph.scene.node_slots();
        let within_budget = self.graph.obstacle_count() <= self.budget.max_obstacles
            && slots <= 2 * self.graph.scene.node_count() + self.budget.slot_slack;
        if near && within_budget {
            self.reuses += 1;
            self.coverage = self.coverage.union(&region);
        } else {
            self.graph = LocalGraph::new(self.options.builder);
            self.coverage = region;
            self.resets += 1;
        }
        &mut self.graph
    }
}

impl<'a> QueryEngine<'a> {
    /// Executes one batch [`Query`] on this engine (the sequential unit
    /// the batch engine parallelises over).
    pub fn execute(&self, query: &Query) -> Answer {
        match *query {
            Query::Range { q, e } => Answer::Range(self.range(q, e)),
            Query::Nearest { q, k } => Answer::Nearest(self.nearest(q, k)),
            Query::DistanceJoin { e } => Answer::DistanceJoin(distance_join(
                self.entities,
                self.entities,
                self.obstacles,
                e,
                self.options,
            )),
            Query::SemiJoin { strategy } => Answer::SemiJoin(semi_join(
                self.entities,
                self.entities,
                self.obstacles,
                strategy,
                self.options,
            )),
            Query::ClosestPairs { k } => Answer::ClosestPairs(closest_pairs(
                self.entities,
                self.entities,
                self.obstacles,
                k,
                self.options,
            )),
            Query::Path { from, to } => Answer::Path(shortest_obstructed_path(
                from,
                to,
                self.obstacles,
                self.options.builder,
            )),
        }
    }

    /// Executes one batch [`Query`] through a [`SceneCache`]: the point
    /// operators (range, NN, path) run over the cache's reusable scene,
    /// everything else falls through to [`QueryEngine::execute`]. With
    /// the `reuse_graph` ablation off, the cache is bypassed entirely
    /// (every query pays a fresh scene, as before PR 4).
    pub fn execute_with(&self, query: &Query, cache: &mut SceneCache) -> Answer {
        if !self.options.reuse_graph {
            return self.execute(query);
        }
        let slack = SceneCache::slack_for(&self.universe());
        if self.options.epoch_validation {
            cache.validate(self.obstacles, slack);
        }
        match *query {
            Query::Range { q, e } => {
                let region = Rect::from_coords(q.x - e, q.y - e, q.x + e, q.y + e);
                Answer::Range(self.range_in(cache.scene_for(region, slack), q, e))
            }
            Query::Nearest { q, k } => {
                let region = Rect::from_point(q);
                Answer::Nearest(self.nearest_in(cache.scene_for(region, slack), q, k))
            }
            Query::Path { from, to } => Answer::Path(shortest_obstructed_path_in(
                cache.scene_for(Rect::new(from, to), slack),
                from,
                to,
                self.obstacles,
            )),
            _ => self.execute(query),
        }
    }

    /// The order workers claim queries under `schedule`: a permutation of
    /// `0..queries.len()` (input order, or ascending Hilbert index of
    /// each query's region over the obstacle universe, regionless
    /// dataset-wide operators first; ties keep input order, so the
    /// permutation is deterministic).
    pub fn schedule_order(&self, queries: &[Query], schedule: Schedule) -> Vec<usize> {
        let mut order: Vec<usize> = (0..queries.len()).collect();
        if schedule == Schedule::Hilbert {
            let universe = self.universe();
            let keys: Vec<u64> = queries.iter().map(|q| hilbert_key(q, &universe)).collect();
            order.sort_by_key(|&i| (keys[i], i));
        }
        order
    }

    /// Starts a [`BatchRequest`] over `queries` — the single entry point
    /// of the batch engine. Configure it with the builder knobs
    /// ([`BatchRequest::threads`], [`BatchRequest::schedule`],
    /// [`BatchRequest::delivery`], [`BatchRequest::budget`],
    /// [`BatchRequest::epoch_validation`]) and finish with a terminal:
    /// [`BatchRequest::collect`] for answers in input order,
    /// [`BatchRequest::stream`] for answers as they complete, or
    /// [`BatchRequest::each`] for a per-answer callback.
    pub fn batch<'q>(&self, queries: &'q [Query]) -> BatchRequest<'a, 'q> {
        BatchRequest {
            engine: *self,
            queries,
            options: BatchOptions::default(),
            epoch_validation: None,
        }
    }

    /// Deprecated alias for the default-configured batch: `queries`
    /// across `threads` workers, answers in input order.
    #[deprecated(note = "use `engine.batch(queries).threads(n).collect().0`")]
    pub fn run_batch(&self, queries: &[Query], threads: usize) -> Vec<Answer> {
        self.batch(queries).threads(threads).collect().0
    }

    /// Deprecated alias: `queries` under the full [`BatchOptions`],
    /// answers in input order plus the run's [`BatchStats`].
    #[deprecated(note = "use `engine.batch(queries).options(*options).collect()`")]
    pub fn run_batch_scheduled(
        &self,
        queries: &[Query],
        options: &BatchOptions,
    ) -> (Vec<Answer>, BatchStats) {
        self.batch(queries).options(*options).collect()
    }

    /// Deprecated alias: streaming batch delivering `(input_index,
    /// Answer)` pairs to `consumer` while workers run.
    #[deprecated(note = "use `engine.batch(queries).options(*options).stream(consumer)`")]
    pub fn run_batch_streaming<R>(
        &self,
        queries: &[Query],
        options: &BatchOptions,
        consumer: impl FnOnce(BatchStream) -> R,
    ) -> (R, BatchStats) {
        self.batch(queries).options(*options).stream(consumer)
    }

    /// Deprecated alias: per-answer callback batch.
    #[deprecated(note = "use `engine.batch(queries).options(*options).each(on_answer)`")]
    pub fn run_batch_with(
        &self,
        queries: &[Query],
        options: &BatchOptions,
        on_answer: impl FnMut(usize, Answer),
    ) -> BatchStats {
        self.batch(queries).options(*options).each(on_answer)
    }
}

/// A configured batch submission: one builder over every batch knob —
/// worker count, [`Schedule`], [`Delivery`], [`SceneBudget`], epoch
/// validation — with three terminals. Built by [`QueryEngine::batch`];
/// the legacy `run_batch*` entry points and the resident
/// [`QueryService`](crate::service::QueryService) are thin layers over
/// this one request path.
///
/// The request is `Copy` (it borrows the engine's indexes and the query
/// slice), so a configured request can be re-run or forked freely.
#[derive(Clone, Copy, Debug)]
pub struct BatchRequest<'a, 'q> {
    engine: QueryEngine<'a>,
    queries: &'q [Query],
    options: BatchOptions,
    /// `Some` overrides the engine's `epoch_validation` option for this
    /// request only.
    epoch_validation: Option<bool>,
}

impl<'a> BatchRequest<'a, '_> {
    /// Worker threads (clamped to `[1, queries.len()]` at the terminal;
    /// one thread runs inline on the calling thread with no pool at all,
    /// one batch-wide scene cache, still in scheduled order).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Execution-order policy (see [`Schedule`]).
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.options.schedule = schedule;
        self
    }

    /// Delivery-order policy of [`BatchRequest::stream`] /
    /// [`BatchRequest::each`] (collected answers are always in input
    /// order).
    pub fn delivery(mut self, delivery: Delivery) -> Self {
        self.options.delivery = delivery;
        self
    }

    /// Scene-retirement budgets of each worker's [`SceneCache`].
    pub fn budget(mut self, budget: SceneBudget) -> Self {
        self.options.budget = budget;
        self
    }

    /// Overrides the engine's `epoch_validation` option for this request
    /// (scene caches re-checked against obstacle edits before every
    /// query; on by default, off only for ablation).
    pub fn epoch_validation(mut self, validate: bool) -> Self {
        self.epoch_validation = Some(validate);
        self
    }

    /// Replaces every [`BatchOptions`] knob at once (the bridge from the
    /// options-struct era; individual builders are preferred).
    pub fn options(mut self, options: BatchOptions) -> Self {
        self.options = options;
        self
    }

    /// The engine this request executes on, with the per-request epoch
    /// override applied.
    fn resolved(&self) -> QueryEngine<'a> {
        let mut engine = self.engine;
        if let Some(validate) = self.epoch_validation {
            engine.options.epoch_validation = validate;
        }
        engine
    }

    /// Executes the request and returns the answers **in input order**
    /// (`answers[i]` answers `queries[i]`) plus the run's [`BatchStats`].
    ///
    /// Workers are `std::thread::scope` threads claiming queries from a
    /// shared atomic cursor over the scheduled permutation — the pool
    /// self-balances without any queue structure, and heavy queries
    /// (joins) simply occupy one worker while the others drain the cheap
    /// ones. Each worker owns a [`SceneCache`], so consecutive point
    /// queries it claims reuse one lazy scene instead of rebuilding from
    /// scratch; [`Schedule::Hilbert`] maximises how often that happens.
    /// Results are guaranteed identical (in the sense of
    /// [`Answer::same_results`]) to running the same slice sequentially,
    /// under every schedule and thread count: every operator is a pure
    /// function of the shared indexes, which no query mutates, and scene
    /// reuse never changes answers (see [`SceneCache`]).
    pub fn collect(self) -> (Vec<Answer>, BatchStats) {
        let engine = self.resolved();
        let queries = self.queries;
        let threads = self.options.threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            let order = engine.schedule_order(queries, self.options.schedule);
            let mut cache = SceneCache::with_budget(engine.options, self.options.budget);
            let mut slots: Vec<Option<Answer>> = Vec::new();
            slots.resize_with(queries.len(), || None);
            for &i in &order {
                slots[i] = Some(engine.execute_with(&queries[i], &mut cache));
            }
            let stats = BatchStats {
                workers: 1,
                scene_reuses: cache.reuses(),
                scene_resets: cache.resets(),
                scene_invalidations: cache.invalidations(),
            };
            let answers = slots
                .into_iter()
                .map(|a| a.expect("the schedule visits every query exactly once"))
                .collect();
            return (answers, stats);
        }

        let mut slots: Vec<Option<Answer>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        let stats = self.each(|i, answer| {
            slots[i] = Some(answer);
        });
        let answers = slots
            .into_iter()
            .map(|a| a.expect("the stream delivers every query exactly once"))
            .collect();
        (answers, stats)
    }

    /// Executes the request, handing `consumer` a [`BatchStream`] that
    /// yields `(input_index, Answer)` pairs *while the workers are still
    /// running*, so the first answers are consumable long before the
    /// batch finishes (the navigation-service shape: results land as
    /// they are computed).
    ///
    /// The stream lives inside the worker scope — structured concurrency
    /// with no `'static` requirement on the engine — which is why the
    /// consumer is a closure rather than a returned iterator. Returns the
    /// consumer's result plus the run's [`BatchStats`] (available only
    /// after all workers finished, i.e. after the consumer returns or
    /// drops the stream). Dropping the stream early cancels the
    /// remaining queries: workers stop at their next claim.
    ///
    /// Answers are bit-identical to sequential execution under every
    /// schedule, delivery policy and thread count; with
    /// [`Delivery::InputOrder`] the yielded indices are exactly `0, 1,
    /// 2, …` (a re-order buffer holds early completions).
    pub fn stream<R>(self, consumer: impl FnOnce(BatchStream) -> R) -> (R, BatchStats) {
        let engine = self.resolved();
        let queries = self.queries;
        let options = self.options;
        let threads = options.threads.clamp(1, queries.len().max(1));
        let order = engine.schedule_order(queries, options.schedule);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Answer)>();
        let mut stats = BatchStats {
            workers: threads,
            ..BatchStats::default()
        };
        let result = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let order = &order;
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut cache = SceneCache::with_budget(engine.options, options.budget);
                        loop {
                            let slot = cursor.fetch_add(1, Ordering::Relaxed);
                            if slot >= order.len() {
                                break;
                            }
                            let i = order[slot];
                            let answer = engine.execute_with(&queries[i], &mut cache);
                            // A closed channel means the consumer dropped
                            // the stream: cancel the rest of the batch.
                            if tx.send((i, answer)).is_err() {
                                break;
                            }
                        }
                        (cache.reuses(), cache.resets(), cache.invalidations())
                    })
                })
                .collect();
            // The workers hold their own senders; dropping ours lets the
            // stream observe end-of-batch through channel closure too.
            drop(tx);
            let stream = BatchStream {
                rx,
                remaining: queries.len(),
                delivery: options.delivery,
                next_index: 0,
                held: BTreeMap::new(),
            };
            let result = consumer(stream);
            for worker in workers {
                let (reuses, resets, invalidations) = worker.join().expect("batch worker panicked");
                stats.scene_reuses += reuses;
                stats.scene_resets += resets;
                stats.scene_invalidations += invalidations;
            }
            result
        });
        (result, stats)
    }

    /// Executes the request, invoking `on_answer(input_index, answer)` on
    /// the calling thread for every query as workers complete them
    /// (ordered per [`BatchRequest::delivery`]), and returns the run's
    /// [`BatchStats`].
    pub fn each(self, mut on_answer: impl FnMut(usize, Answer)) -> BatchStats {
        let ((), stats) = self.stream(|stream| {
            for (i, answer) in stream {
                on_answer(i, answer);
            }
        });
        stats
    }
}

/// Hilbert scheduling key of one query: the Hilbert index of its region's
/// representative point over the obstacle universe, offset by one so
/// regionless dataset-wide operators sort first (they see the whole
/// dataset anyway, and fronting the heaviest queries helps the pool
/// balance). Shared with the service queue, whose live claim order is
/// the same key space.
pub(crate) fn hilbert_key(query: &Query, universe: &Rect) -> u64 {
    let p = match *query {
        Query::Range { q, .. } | Query::Nearest { q, .. } => q,
        Query::Path { from, to } => Point::new(0.5 * (from.x + to.x), 0.5 * (from.y + to.y)),
        Query::DistanceJoin { .. } | Query::SemiJoin { .. } | Query::ClosestPairs { .. } => {
            return 0
        }
    };
    1 + hilbert_index_unit(p, universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obstacle_geom::{Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn scene() -> (EntityIndex, ObstacleIndex) {
        let entities = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![
                Point::new(2.0, 0.0),
                Point::new(0.0, 2.2),
                Point::new(-1.5, -0.5),
                Point::new(3.0, 2.0),
            ],
        );
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(1.0, -2.0, 1.2, 2.0))],
        );
        (entities, obstacles)
    }

    fn mixed_queries() -> Vec<Query> {
        vec![
            Query::Nearest {
                q: Point::new(0.0, 0.0),
                k: 2,
            },
            Query::Range {
                q: Point::new(0.0, 0.0),
                e: 2.5,
            },
            Query::DistanceJoin { e: 2.4 },
            Query::ClosestPairs { k: 3 },
            Query::SemiJoin {
                strategy: SemiJoinStrategy::PerObjectNn,
            },
            Query::Path {
                from: Point::new(0.0, 0.0),
                to: Point::new(2.0, 0.0),
            },
            Query::Nearest {
                q: Point::new(3.0, 3.0),
                k: 1,
            },
            Query::Path {
                from: Point::new(0.5, 1.1),
                to: Point::new(0.5, 1.1),
            },
        ]
    }

    #[test]
    fn batch_matches_sequential_execution() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        let sequential: Vec<Answer> = queries.iter().map(|q| engine.execute(q)).collect();
        for threads in [1, 2, 3, 8] {
            let parallel = engine.batch(&queries).threads(threads).collect().0;
            assert_eq!(parallel.len(), sequential.len());
            for (i, (p, s)) in parallel.iter().zip(sequential.iter()).enumerate() {
                assert!(
                    p.same_results(s),
                    "threads {threads}, query {i}: {p:?} vs {s:?}"
                );
            }
        }
    }

    #[test]
    fn answers_land_at_their_input_index() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        // Distinguishable k values: answer i must hold i+1 neighbours.
        let queries: Vec<Query> = (0..4)
            .map(|i| Query::Nearest {
                q: Point::new(0.0, 0.0),
                k: i + 1,
            })
            .collect();
        let answers = engine.batch(&queries).threads(4).collect().0;
        for (i, a) in answers.iter().enumerate() {
            match a {
                Answer::Nearest(r) => assert_eq!(r.neighbors.len(), i + 1),
                other => panic!("unexpected answer {other:?}"),
            }
        }
    }

    #[test]
    fn per_query_stats_are_attributed_not_global() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries: Vec<Query> = (0..6)
            .map(|_| Query::Nearest {
                q: Point::new(0.0, 0.0),
                k: 2,
            })
            .collect();
        // Identical queries: each answer's logical fetch count must stay
        // within the solo run's per-query count (global-counter diffing
        // under interleaving would lump several queries' reads together
        // and overshoot). Scene reuse may legitimately *reduce* obstacle
        // fetches for later queries of a worker — never inflate them.
        let solo = engine.execute(&queries[0]);
        let solo_fetches =
            solo.stats().unwrap().entity_fetches + solo.stats().unwrap().obstacle_fetches;
        assert!(solo_fetches > 0, "scene too small to observe fetches");
        for a in engine.batch(&queries).threads(3).collect().0 {
            let s = a.stats().unwrap();
            let fetches = s.entity_fetches + s.obstacle_fetches;
            assert!(
                fetches > 0 && fetches <= solo_fetches,
                "per-query window {fetches} vs solo {solo_fetches}"
            );
        }
    }

    #[test]
    fn scene_cache_reuses_and_matches_fresh_execution() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        let mut cache = SceneCache::new(engine.options);
        for q in &queries {
            let cached = engine.execute_with(q, &mut cache);
            let fresh = engine.execute(q);
            assert!(
                cached.same_results(&fresh),
                "scene reuse changed results: {cached:?} vs {fresh:?}"
            );
        }
        assert!(
            cache.reuses() > 0,
            "the clustered workload must reuse the scene at least once"
        );
    }

    #[test]
    fn scene_cache_tie_breaking_is_scene_independent() {
        // A perfectly symmetric wall: the two shortest paths around it
        // have *exactly* equal length, so the chosen polyline is decided
        // purely by tie-breaking — which must not depend on how many
        // obstacles/waypoints earlier queries left in the cached scene.
        let entities = EntityIndex::build(RTreeConfig::tiny(4), vec![Point::new(9.0, 0.0)]);
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![
                Polygon::from_rect(Rect::from_coords(1.0, -2.0, 1.2, 2.0)),
                Polygon::from_rect(Rect::from_coords(4.0, -3.0, 4.4, 3.0)),
            ],
        );
        let engine = QueryEngine::new(&entities, &obstacles);
        let tie = Query::Path {
            from: Point::new(0.0, 0.0),
            to: Point::new(2.0, 0.0),
        };
        // Warm the cache with queries that absorb both obstacles (in a
        // different order than the tie query would) before the tie query.
        let warmers = [
            Query::Path {
                from: Point::new(3.5, 0.0),
                to: Point::new(5.0, 0.0),
            },
            Query::Nearest {
                q: Point::new(2.0, 0.0),
                k: 1,
            },
        ];
        let fresh = engine.execute(&tie);
        let mut cache = SceneCache::new(engine.options);
        for w in &warmers {
            let _ = engine.execute_with(w, &mut cache);
        }
        let cached = engine.execute_with(&tie, &mut cache);
        assert!(
            cached.same_results(&fresh),
            "exact tie resolved differently on a warm scene: {cached:?} vs {fresh:?}"
        );
    }

    #[test]
    fn scene_cache_resets_on_region_jump_and_budget() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let mut cache = SceneCache::new(engine.options);
        // Universe is small; jump far beyond 2 % slack to force a retire.
        let a = Query::Nearest {
            q: Point::new(0.0, 0.0),
            k: 1,
        };
        let b = Query::Nearest {
            q: Point::new(1e6, 1e6),
            k: 1,
        };
        let _ = engine.execute_with(&a, &mut cache);
        let _ = engine.execute_with(&b, &mut cache);
        assert_eq!(cache.resets(), 1, "distant query must retire the scene");
        assert_eq!(cache.reuses(), 0);
    }

    #[test]
    fn degenerate_batches() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        assert!(engine.batch(&[]).threads(4).collect().0.is_empty());
        let one = engine
            .batch(&[Query::Range {
                q: Point::new(0.0, 0.0),
                e: 1.0,
            }])
            .threads(16)
            .collect()
            .0;
        assert_eq!(one.len(), 1);
        // Zero threads clamps to one.
        assert_eq!(
            engine.batch(&mixed_queries()).threads(0).collect().0.len(),
            8
        );
    }

    #[test]
    fn schedule_order_is_a_deterministic_permutation() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        for schedule in [Schedule::InputOrder, Schedule::Hilbert] {
            let order = engine.schedule_order(&queries, schedule);
            assert_eq!(order, engine.schedule_order(&queries, schedule));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..queries.len()).collect::<Vec<_>>());
        }
        assert_eq!(
            engine.schedule_order(&queries, Schedule::InputOrder),
            (0..queries.len()).collect::<Vec<_>>()
        );
        // Regionless dataset-wide operators come first under Hilbert.
        let hilbert = engine.schedule_order(&queries, Schedule::Hilbert);
        let heavy: Vec<usize> = queries
            .iter()
            .enumerate()
            .filter(|(_, q)| {
                matches!(
                    q,
                    Query::DistanceJoin { .. }
                        | Query::SemiJoin { .. }
                        | Query::ClosestPairs { .. }
                )
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hilbert[..heavy.len()], heavy[..]);
    }

    #[test]
    fn streaming_yields_every_answer_with_matching_results() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        let sequential: Vec<Answer> = queries.iter().map(|q| engine.execute(q)).collect();
        for threads in [1usize, 3] {
            for schedule in [Schedule::InputOrder, Schedule::Hilbert] {
                let request = engine.batch(&queries).threads(threads).schedule(schedule);
                let (pairs, stats) =
                    request.stream(|stream| stream.collect::<Vec<(usize, Answer)>>());
                assert_eq!(pairs.len(), queries.len());
                assert_eq!(stats.workers, threads.clamp(1, queries.len()));
                let mut seen = vec![false; queries.len()];
                for (i, a) in &pairs {
                    assert!(!seen[*i], "index {i} delivered twice");
                    seen[*i] = true;
                    assert!(
                        a.same_results(&sequential[*i]),
                        "threads {threads}, {schedule:?}, query {i}"
                    );
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn in_order_delivery_yields_strictly_ascending_indices() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        // Hilbert schedule *executes* out of input order, so in-order
        // delivery genuinely exercises the re-order buffer.
        let (indices, _) = engine
            .batch(&queries)
            .threads(4)
            .schedule(Schedule::Hilbert)
            .delivery(Delivery::InputOrder)
            .stream(|stream| stream.map(|(i, _)| i).collect::<Vec<usize>>());
        assert_eq!(indices, (0..queries.len()).collect::<Vec<_>>());
    }

    #[test]
    fn dropping_the_stream_early_cancels_without_hanging() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries: Vec<Query> = (0..32)
            .map(|i| Query::Nearest {
                q: Point::new(0.1 * i as f64, 0.0),
                k: 1,
            })
            .collect();
        let (first, stats) = engine
            .batch(&queries)
            .threads(2)
            .stream(|mut stream| stream.next());
        let (i, a) = first.expect("at least one answer lands");
        assert!(a.same_results(&engine.execute(&queries[i])));
        assert!(stats.workers == 2);
    }

    #[test]
    fn each_delivers_in_input_order_when_asked() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        let sequential: Vec<Answer> = queries.iter().map(|q| engine.execute(q)).collect();
        let mut delivered = Vec::new();
        let stats = engine
            .batch(&queries)
            .threads(3)
            .delivery(Delivery::InputOrder)
            .each(|i, a| delivered.push((i, a)));
        assert_eq!(delivered.len(), queries.len());
        for (pos, (i, a)) in delivered.iter().enumerate() {
            assert_eq!(pos, *i);
            assert!(a.same_results(&sequential[*i]));
        }
        assert!(stats.scene_reuses + stats.scene_resets <= queries.len());
    }

    #[test]
    fn scheduled_batches_report_scene_stats() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        let (answers, stats) = engine
            .batch(&queries)
            .threads(1)
            .schedule(Schedule::Hilbert)
            .collect();
        let sequential: Vec<Answer> = queries.iter().map(|q| engine.execute(q)).collect();
        for (p, s) in answers.iter().zip(sequential.iter()) {
            assert!(p.same_results(s));
        }
        assert_eq!(stats.workers, 1);
        assert!(
            stats.scene_reuses > 0,
            "the tiny clustered workload must warm the scene"
        );
    }
    /// The four legacy entry points must stay behaviourally identical to
    /// the [`BatchRequest`] path they now wrap.
    #[test]
    #[allow(deprecated)]
    fn legacy_entry_points_match_batch_request() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        let options = BatchOptions::new(3)
            .schedule(Schedule::Hilbert)
            .delivery(Delivery::InputOrder);

        let (new_answers, _) = engine.batch(&queries).options(options).collect();
        for (legacy, new) in engine.run_batch(&queries, 3).iter().zip(new_answers.iter()) {
            assert!(legacy.same_results(new));
        }
        let (scheduled, _) = engine.run_batch_scheduled(&queries, &options);
        for (legacy, new) in scheduled.iter().zip(new_answers.iter()) {
            assert!(legacy.same_results(new));
        }
        let (streamed, _) = engine.run_batch_streaming(&queries, &options, |stream| {
            stream.collect::<Vec<(usize, Answer)>>()
        });
        assert_eq!(streamed.len(), queries.len());
        let mut called = 0;
        engine.run_batch_with(&queries, &options, |_, _| called += 1);
        assert_eq!(called, queries.len());
    }

    /// The per-request epoch toggle overrides the engine option without
    /// changing answers on a static (un-edited) dataset.
    #[test]
    fn epoch_validation_toggle_preserves_answers() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let queries = mixed_queries();
        let (on, _) = engine.batch(&queries).epoch_validation(true).collect();
        let (off, _) = engine.batch(&queries).epoch_validation(false).collect();
        for (a, b) in on.iter().zip(off.iter()) {
            assert!(a.same_results(b));
        }
    }
}
