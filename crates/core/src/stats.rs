//! Per-query cost accounting (the paper's experimental metrics).

use std::time::Duration;

/// Cost metrics of one query, matching §7 of the paper:
///
/// * `entity_reads` / `obstacle_reads` — R-tree page accesses (LRU buffer
///   misses), split by the tree they hit (the paper's I/O charts always
///   separate "data R-tree" from "obstacle R-tree"; for joins the entity
///   number sums both entity trees);
/// * `cpu` — wall-clock computation time;
/// * `candidates` vs `results` — Euclidean candidate count vs final
///   result count; `false_hits` — candidates eliminated by the obstructed
///   metric (for kNN: Euclidean top-k not in the obstructed top-k).
///
/// # Storage backends
///
/// The IO counters are attributed through the same `IoSnapshot` windows
/// on either tree backend, but they *mean* different things. On the
/// paged R*-tree, `*_fetches` are logical page fetches and `*_reads`
/// the subset that missed the LRU buffer — the paper's metric. The
/// packed backend has no pages and no buffer: there `*_fetches` counts
/// **node visits** (the structural analogue, comparable across
/// backends for the same query) and `*_reads` is honestly zero rather
/// than a misleading simulated-disk number. Compare `*_reads` only
/// between runs on the same backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// Page accesses on the entity R-tree(s) that missed the LRU buffer
    /// (always 0 on the packed backend — it performs no page IO).
    pub entity_reads: u64,
    /// Page accesses on the obstacle R-tree that missed the LRU buffer
    /// (always 0 on the packed backend).
    pub obstacle_reads: u64,
    /// Logical page fetches on the entity R-tree(s) (hits + misses). The
    /// figure harness reports this metric: the paper's per-query access
    /// counts match logical fetches, with the 10 % LRU buffer absorbing
    /// repeated accesses (tracked by the `*_reads` miss counters). On
    /// the packed backend: node visits.
    pub entity_fetches: u64,
    /// Logical page fetches on the obstacle R-tree (hits + misses; node
    /// visits on the packed backend).
    pub obstacle_fetches: u64,
    /// CPU (wall-clock) time spent processing the query.
    pub cpu: Duration,
    /// Euclidean candidates examined.
    pub candidates: usize,
    /// Final results returned.
    pub results: usize,
    /// Candidates dismissed by the obstructed distance.
    pub false_hits: usize,
    /// Invocations of the obstructed-distance computation.
    pub distance_computations: usize,
    /// Largest visibility scene observed (live nodes), a proxy for the
    /// paper's O(n² log n) graph-construction cost discussion. With a
    /// fresh scene per query this is the query's own local graph; when a
    /// query runs over a reused scene (`SceneCache` — batch workers,
    /// ODJ seeds), it reports the whole *resident* scene, obstacles
    /// absorbed by earlier queries included — compare this metric only
    /// across runs with the same reuse setting.
    pub peak_graph_nodes: usize,
}

impl QueryStats {
    /// The paper's false-hit ratio: false hits per result (Figs. 15, 18).
    /// Zero when the result set is empty.
    pub fn false_hit_ratio(&self) -> f64 {
        if self.results == 0 {
            0.0
        } else {
            self.false_hits as f64 / self.results as f64
        }
    }

    /// Accumulates another query's stats (for workload averaging).
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.entity_reads += other.entity_reads;
        self.obstacle_reads += other.obstacle_reads;
        self.entity_fetches += other.entity_fetches;
        self.obstacle_fetches += other.obstacle_fetches;
        self.cpu += other.cpu;
        self.candidates += other.candidates;
        self.results += other.results;
        self.false_hits += other.false_hits;
        self.distance_computations += other.distance_computations;
        self.peak_graph_nodes = self.peak_graph_nodes.max(other.peak_graph_nodes);
    }
}

/// Result of an obstacle range query: `(entity id, obstructed distance)`
/// in ascending distance order.
#[derive(Clone, Debug)]
pub struct RangeResult {
    /// Qualifying entities with their obstructed distances.
    pub hits: Vec<(u64, f64)>,
    /// Cost metrics.
    pub stats: QueryStats,
}

/// Result of an obstacle k-NN query: `(entity id, obstructed distance)`
/// in ascending distance order (at most `k` entries).
#[derive(Clone, Debug)]
pub struct NearestResult {
    /// The obstructed nearest neighbours.
    pub neighbors: Vec<(u64, f64)>,
    /// Cost metrics.
    pub stats: QueryStats,
}

/// Result of an obstacle e-distance join: `(s id, t id, obstructed
/// distance)` pairs.
#[derive(Clone, Debug)]
pub struct JoinResult {
    /// Qualifying pairs.
    pub pairs: Vec<(u64, u64, f64)>,
    /// Cost metrics (`entity_reads` sums both entity trees).
    pub stats: QueryStats,
}

/// Result of an obstacle closest-pairs query: the `k` pairs with minimal
/// obstructed distance, ascending.
#[derive(Clone, Debug)]
pub struct ClosestPairsResult {
    /// The closest pairs.
    pub pairs: Vec<(u64, u64, f64)>,
    /// Cost metrics.
    pub stats: QueryStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_hit_ratio_handles_empty_results() {
        let s = QueryStats::default();
        assert_eq!(s.false_hit_ratio(), 0.0);
        let s = QueryStats {
            false_hits: 3,
            results: 12,
            ..Default::default()
        };
        assert!((s.false_hit_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_and_maxes() {
        let mut a = QueryStats {
            entity_reads: 1,
            obstacle_reads: 2,
            entity_fetches: 4,
            obstacle_fetches: 6,
            cpu: Duration::from_millis(5),
            candidates: 10,
            results: 8,
            false_hits: 2,
            distance_computations: 4,
            peak_graph_nodes: 30,
        };
        let b = QueryStats {
            entity_reads: 3,
            obstacle_reads: 1,
            entity_fetches: 5,
            obstacle_fetches: 2,
            cpu: Duration::from_millis(7),
            candidates: 5,
            results: 5,
            false_hits: 0,
            distance_computations: 2,
            peak_graph_nodes: 50,
        };
        a.accumulate(&b);
        assert_eq!(a.entity_reads, 4);
        assert_eq!(a.entity_fetches, 9);
        assert_eq!(a.obstacle_fetches, 8);
        assert_eq!(a.obstacle_reads, 3);
        assert_eq!(a.cpu, Duration::from_millis(12));
        assert_eq!(a.candidates, 15);
        assert_eq!(a.peak_graph_nodes, 50);
    }
}
