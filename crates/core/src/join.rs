//! Obstacle e-distance join (ODJ — §5, Fig. 10).

use crate::batch::SceneCache;
use crate::distance::compute_obstructed_range;
use crate::engine::{EngineOptions, EntityIndex, ObstacleIndex};
use crate::stats::{JoinResult, QueryStats};
use crate::QUERY_TAG;
use obstacle_geom::{hilbert_index_unit, Rect};
use obstacle_rtree::sync::Stopwatch;
use obstacle_rtree::TreeBackend;
use obstacle_visibility::{NodeId, NodeKind};
use std::collections::HashMap;

/// All pairs `(s, t) ∈ S × T` with obstructed distance at most `e`.
///
/// Implements ODJ (Fig. 10) on the lazy scene (the engine ONN and OR
/// already use — no materialized visibility graph remains in this crate):
///
/// 1. an Euclidean e-distance join over the two R-trees \[BKS93\]
///    produces candidate pairs (a superset, by the lower bound);
/// 2. the dataset contributing fewer **distinct** points to the candidate
///    pairs becomes the *seed* side — one obstacle range expansion per
///    distinct seed answers all of that seed's pairs (instead of one per
///    pair);
/// 3. seeds are processed in **Hilbert order**, so consecutive obstacle
///    R-tree range queries touch nearby pages and hit the LRU buffer —
///    and, since PR 4, consecutive seeds reuse one cached lazy scene
///    ([`SceneCache`]), amortizing obstacle absorption and visibility
///    sweeps exactly as the Hilbert order intends;
/// 4. per seed, false hits are eliminated exactly like an obstacle range
///    query (one bounded lazy Dijkstra expansion at radius `e` via
///    [`compute_obstructed_range`], sweeping only nodes it settles).
///
/// The `tangent_filter` ablation is a no-op here (as for OR): the lazy
/// engine never materializes the non-tangent edges the filter would
/// remove, and results are identical either way per that option's
/// contract.
pub fn distance_join(
    s: &EntityIndex,
    t: &EntityIndex,
    obstacles: &ObstacleIndex,
    e: f64,
    options: EngineOptions,
) -> JoinResult {
    let t0 = Stopwatch::start();
    let same_tree = std::ptr::eq(s, t);
    let s_io = s.tree().io_snapshot();
    let t_io = (!same_tree).then(|| t.tree().io_snapshot());
    let obstacle_io = obstacles.tree().io_snapshot();

    // Step 1: Euclidean candidates.
    let candidate_pairs = obstacle_rtree::distance_join(s.tree(), t.tree(), e);
    let candidates = candidate_pairs.len();

    // Step 2: choose the seed side.
    let mut s_partners: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut t_distinct: HashMap<u64, u32> = HashMap::new();
    for (si, ti) in &candidate_pairs {
        s_partners.entry(si.id).or_default().push(ti.id);
        *t_distinct.entry(ti.id).or_default() += 1;
    }
    let seed_from_s = !options.seed_side_heuristic || s_partners.len() <= t_distinct.len();
    let groups: HashMap<u64, Vec<u64>> = if seed_from_s {
        s_partners
    } else {
        let mut g: HashMap<u64, Vec<u64>> = HashMap::new();
        for (si, ti) in &candidate_pairs {
            g.entry(ti.id).or_default().push(si.id);
        }
        g
    };
    let (seed_set, partner_set) = if seed_from_s { (s, t) } else { (t, s) };

    // Step 3: Hilbert-order the seeds for obstacle-buffer locality.
    // Falling back to the entity extent (then the unit square) keeps the
    // Hilbert order meaningful when the obstacle set is empty or has been
    // emptied by deletes — an empty tree must not collapse every seed key
    // to the unit-square clamp.
    let universe = obstacles
        .extent()
        .or_else(|| match (s.extent(), t.extent()) {
            (Some(a), Some(b)) => Some(a.union(&b)),
            (a, b) => a.or(b),
        })
        .unwrap_or_else(|| Rect::from_coords(0.0, 0.0, 1.0, 1.0));
    let mut seeds: Vec<u64> = groups.keys().copied().collect();
    if options.hilbert_seed_order {
        seeds.sort_by_key(|id| hilbert_index_unit(seed_set.position(*id), &universe));
    } else {
        seeds.sort_unstable();
    }

    // Step 4: per-seed obstacle-range elimination over one cached lazy
    // scene. Hilbert-adjacent seeds have overlapping disks, so the cache
    // almost always keeps its scene warm; a jump to a far-away seed (or
    // budget exhaustion) retires it. The `reuse_graph` ablation disables
    // the cross-seed reuse (every seed pays a fresh scene), mirroring
    // its contract for ONN candidates and `execute_with`.
    let mut pairs = Vec::new();
    let mut peak_graph_nodes = 0usize;
    let mut distance_computations = 0usize;
    let mut cache = SceneCache::new(options);
    let slack = SceneCache::slack_for(&universe);
    let mut fresh;
    for seed in seeds {
        let q_pos = seed_set.position(seed);
        let partners = &groups[&seed];
        let region = Rect::from_coords(q_pos.x - e, q_pos.y - e, q_pos.x + e, q_pos.y + e);
        let graph = if options.reuse_graph {
            cache.scene_for(region, slack)
        } else {
            fresh = crate::distance::LocalGraph::new(options.builder);
            &mut fresh
        };
        let q_node = graph.add_waypoint(q_pos, QUERY_TAG);
        let targets: Vec<NodeId> = partners
            .iter()
            .map(|&pid| graph.add_waypoint(partner_set.position(pid), pid))
            .collect();
        distance_computations += 1;
        for (node, d) in compute_obstructed_range(graph, q_node, &targets, obstacles, e) {
            if node == q_node {
                continue;
            }
            if let NodeKind::Waypoint { tag } = graph.scene.kind(node) {
                if seed_from_s {
                    pairs.push((seed, tag, d));
                } else {
                    pairs.push((tag, seed, d));
                }
            }
        }
        peak_graph_nodes = peak_graph_nodes.max(graph.scene.node_count());
        for t in targets {
            graph.remove_waypoint(t);
        }
        graph.remove_waypoint(q_node);
    }

    let mut entity_io = s_io.finish();
    if let Some(t_io) = t_io {
        let t_io = t_io.finish();
        entity_io.reads += t_io.reads;
        entity_io.buffer_hits += t_io.buffer_hits;
        entity_io.writes += t_io.writes;
    }
    let obstacle_io = obstacle_io.finish();
    let stats = QueryStats {
        entity_reads: entity_io.reads,
        obstacle_reads: obstacle_io.reads,
        entity_fetches: entity_io.fetches(),
        obstacle_fetches: obstacle_io.fetches(),
        cpu: t0.elapsed(),
        candidates,
        results: pairs.len(),
        false_hits: candidates - pairs.len(),
        distance_computations,
        peak_graph_nodes,
    };
    JoinResult { pairs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obstacle_geom::{Point, Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn scene() -> (EntityIndex, EntityIndex, ObstacleIndex) {
        // S points on the west, T points on the east, wall between some.
        let s = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![Point::new(0.0, 0.0), Point::new(0.0, 3.0)],
        );
        let t = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![Point::new(2.0, 0.0), Point::new(2.0, 3.0)],
        );
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            // Wall between (0,0) and (2,0) only.
            vec![Polygon::from_rect(Rect::from_coords(0.9, -1.0, 1.1, 1.0))],
        );
        (s, t, obstacles)
    }

    #[test]
    fn join_eliminates_blocked_pairs() {
        let (s, t, o) = scene();
        // Euclidean pairs within 2.0: (0,0)↔(2,0) and (0,1)↔(2,1) at 2.0.
        // The wall stretches pair (0,0): d_O ≈ 2.9 — a false hit.
        let r = distance_join(&s, &t, &o, 2.0, EngineOptions::default());
        let mut ids: Vec<(u64, u64)> = r.pairs.iter().map(|(a, b, _)| (*a, *b)).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![(1, 1)]);
        assert_eq!(r.stats.candidates, 2);
        assert_eq!(r.stats.false_hits, 1);
    }

    #[test]
    fn wider_range_admits_the_detour() {
        let (s, t, o) = scene();
        let r = distance_join(&s, &t, &o, 3.0, EngineOptions::default());
        let mut ids: Vec<(u64, u64)> = r.pairs.iter().map(|(a, b, _)| (*a, *b)).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![(0, 0), (1, 1)]);
        let d00 = r
            .pairs
            .iter()
            .find(|(a, b, _)| (*a, *b) == (0, 0))
            .unwrap()
            .2;
        let detour = Point::new(0.0, 0.0).dist(Point::new(0.9, 1.0))
            + 0.2
            + Point::new(1.1, 1.0).dist(Point::new(2.0, 0.0));
        assert!((d00 - detour).abs() < 1e-9);
    }

    #[test]
    fn seed_side_and_hilbert_options_do_not_change_results() {
        let (s, t, o) = scene();
        let base = distance_join(&s, &t, &o, 3.0, EngineOptions::default());
        for (hilbert, heuristic) in [(false, true), (true, false), (false, false)] {
            let opts = EngineOptions {
                hilbert_seed_order: hilbert,
                seed_side_heuristic: heuristic,
                ..Default::default()
            };
            let r = distance_join(&s, &t, &o, 3.0, opts);
            let mut a: Vec<(u64, u64)> = base.pairs.iter().map(|(x, y, _)| (*x, *y)).collect();
            let mut b: Vec<(u64, u64)> = r.pairs.iter().map(|(x, y, _)| (*x, *y)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_inputs_yield_empty_join() {
        let (s, _, o) = scene();
        let empty = EntityIndex::build(RTreeConfig::tiny(4), vec![]);
        let r = distance_join(&s, &empty, &o, 5.0, EngineOptions::default());
        assert!(r.pairs.is_empty());
        assert_eq!(r.stats.candidates, 0);
    }
}
