//! Obstructed distance computation (Fig. 8 of the paper).

use crate::engine::ObstacleIndex;
use obstacle_geom::Point;
use obstacle_visibility::{dijkstra_distance, EdgeBuilder, NodeId, VisibilityGraph};
use std::collections::HashSet;

/// A local visibility graph plus the set of obstacle ids it contains.
///
/// Wraps [`VisibilityGraph`] with O(1) membership tests so the iterative
/// range-expansion of [`compute_obstructed_distance`] can detect its
/// fixpoint ("no new obstacles in the last range") cheaply.
#[derive(Debug, Default)]
pub struct LocalGraph {
    /// The underlying visibility graph.
    pub graph: VisibilityGraph,
    present: HashSet<u64>,
}

impl LocalGraph {
    /// Creates an empty local graph.
    pub fn new(builder: EdgeBuilder) -> Self {
        LocalGraph {
            graph: VisibilityGraph::new(builder),
            present: HashSet::new(),
        }
    }

    /// Number of obstacles currently in the graph.
    pub fn obstacle_count(&self) -> usize {
        self.present.len()
    }

    /// Ensures every obstacle within Euclidean distance `radius` of
    /// `center` is part of the graph (a range query on the obstacle
    /// R-tree followed by `add_obstacle` for the newcomers). Returns the
    /// number of obstacles added.
    pub fn ensure_obstacles_within(
        &mut self,
        obstacles: &ObstacleIndex,
        center: Point,
        radius: f64,
    ) -> usize {
        self.absorb(obstacles, obstacles.tree().range_circle(center, radius))
    }

    /// Ensures every obstacle intersecting the ellipse with foci `f1`,
    /// `f2` and major-axis length `d` (the locus `|x−f1| + |x−f2| ≤ d`)
    /// is part of the graph. Strictly tighter than the circle of radius
    /// `d` around either focus — every path from `f1` to `f2` of length
    /// ≤ `d` stays inside this ellipse, so it is a valid (and smaller)
    /// search region for the Fig. 8 fixpoint. Returns the number of
    /// obstacles added.
    pub fn ensure_obstacles_within_ellipse(
        &mut self,
        obstacles: &ObstacleIndex,
        f1: Point,
        f2: Point,
        d: f64,
    ) -> usize {
        let items = obstacles
            .tree()
            .range_by_bound(|r| r.mindist_point(f1) + r.mindist_point(f2), d);
        self.absorb(obstacles, items)
    }

    fn absorb(&mut self, obstacles: &ObstacleIndex, items: Vec<obstacle_rtree::Item>) -> usize {
        let mut added = 0;
        for item in items {
            if self.present.insert(item.id) {
                self.graph
                    .add_obstacle(obstacles.polygon(item.id).clone(), item.id);
                added += 1;
            }
        }
        added
    }

    /// Adds a waypoint (entity or query point); see
    /// [`VisibilityGraph::add_waypoint`].
    pub fn add_waypoint(&mut self, pos: Point, tag: u64) -> NodeId {
        self.graph.add_waypoint(pos, tag)
    }

    /// Removes a waypoint; see [`VisibilityGraph::remove_waypoint`].
    pub fn remove_waypoint(&mut self, id: NodeId) {
        self.graph.remove_waypoint(id)
    }
}

/// Computes the exact obstructed distance `d_O(p, q)` (Fig. 8).
///
/// `graph` must already contain the waypoints `p` and `q`; any obstacles
/// already present are reused. The algorithm:
///
/// 1. ensure the obstacles within the Euclidean distance `d_E(p, q)` of
///    `q` are present (the initial graph of Fig. 7);
/// 2. compute a provisional shortest path; obstacles outside the range
///    may still obstruct it, so
/// 3. re-range with the provisional distance and repeat until a range
///    adds no new obstacle — the provisional distance is then exact,
///    because any path of length ≤ `d` stays inside the disk of radius
///    `d` around `q`, and every obstacle intersecting that disk is in the
///    graph.
///
/// If `p` is unreachable in the current graph (possible while the graph
/// is still missing remote obstacles whose vertices are needed as
/// detour corners), the search radius doubles until either a path
/// appears or the whole dataset is covered; `None` then means truly
/// unreachable (e.g. a point strictly inside an obstacle).
pub fn compute_obstructed_distance(
    graph: &mut LocalGraph,
    p: NodeId,
    q: NodeId,
    obstacles: &ObstacleIndex,
) -> Option<f64> {
    compute_obstructed_distance_pruned(graph, p, q, obstacles, false)
}

/// [`compute_obstructed_distance`] with a choice of search region.
///
/// With `ellipse = false` the search regions are the paper's disks around
/// `q` (Fig. 8). With `ellipse = true` they are the strictly tighter
/// ellipses with foci `p` and `q` and major axis equal to the provisional
/// distance — any path of length ≤ `d` from `p` to `q` lies inside that
/// ellipse, so the fixpoint argument is unchanged while fewer obstacles
/// qualify (see the `ellipse_pruning` ablation).
pub fn compute_obstructed_distance_pruned(
    graph: &mut LocalGraph,
    p: NodeId,
    q: NodeId,
    obstacles: &ObstacleIndex,
    ellipse: bool,
) -> Option<f64> {
    let p_pos = graph.graph.position(p);
    let q_pos = graph.graph.position(q);
    let euclid = p_pos.dist(q_pos);
    if euclid == 0.0 {
        return Some(0.0);
    }

    // Radius beyond which no obstacle exists: dataset fully covered.
    let cover_radius = if obstacles.is_empty() {
        0.0
    } else {
        obstacles.universe().maxdist_point(q_pos)
    };
    let ensure = |graph: &mut LocalGraph, d: f64| {
        if ellipse {
            graph.ensure_obstacles_within_ellipse(obstacles, p_pos, q_pos, d)
        } else {
            graph.ensure_obstacles_within(obstacles, q_pos, d)
        }
    };

    let mut radius = euclid;
    ensure(graph, radius);
    loop {
        match dijkstra_distance(&graph.graph, p, q) {
            Some(d) => {
                // Termination test: does the current search region hold
                // any obstacle the graph lacks?
                let added = ensure(graph, d);
                radius = radius.max(d);
                if added == 0 {
                    return Some(d);
                }
                // New obstacles may lengthen the path; iterate (d can only
                // grow, so this terminates once the region stops growing).
            }
            None => {
                if radius >= 2.0 * cover_radius {
                    return None; // the full dataset cannot connect them
                }
                radius = (radius * 2.0).min(2.0 * cover_radius).max(1e-12);
                ensure(graph, radius);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ObstacleIndex;
    use crate::QUERY_TAG;
    use obstacle_geom::{Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::from_rect(Rect::from_coords(x0, y0, x1, y1))
    }

    fn dist_through(obstacles: Vec<Polygon>, a: Point, b: Point) -> Option<f64> {
        let idx = ObstacleIndex::build(RTreeConfig::tiny(8), obstacles);
        let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
        let pa = g.add_waypoint(a, 0);
        let pb = g.add_waypoint(b, QUERY_TAG);
        compute_obstructed_distance(&mut g, pa, pb, &idx)
    }

    #[test]
    fn no_obstacles_gives_euclidean() {
        let d = dist_through(vec![], Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(d, Some(5.0));
    }

    #[test]
    fn detour_around_one_square() {
        let d = dist_through(
            vec![square(1.0, -1.0, 2.0, 1.0)],
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
        )
        .unwrap();
        let expect = 2.0 * 2.0f64.sqrt() + 1.0;
        assert!((d - expect).abs() < 1e-9);
    }

    #[test]
    fn far_obstacle_discovered_by_second_range() {
        // The initial range (the Euclidean disk around q through p) does
        // not include the big wall that blocks the direct path near p;
        // the iterative re-ranging must find it.
        //
        // q at origin, p at (2, 0); a tall wall crosses the segment at
        // x ∈ (1.4, 1.6) but extends far in y so the detour is long.
        let wall = square(1.4, -5.0, 1.6, 5.0);
        let d = dist_through(vec![wall], Point::new(2.0, 0.0), Point::new(0.0, 0.0)).unwrap();
        // Detour via (1.4, 5) / (1.6, 5) corners (or the -5 twins).
        let via_top = Point::new(0.0, 0.0).dist(Point::new(1.4, 5.0))
            + 0.2
            + Point::new(1.6, 5.0).dist(Point::new(2.0, 0.0));
        assert!((d - via_top).abs() < 1e-9, "{d} vs {via_top}");
        assert!(d > 2.0); // strictly longer than Euclidean
    }

    #[test]
    fn chain_of_walls_requires_multiple_iterations() {
        // Each detour reveals the next wall: forces ≥ 2 expansion rounds.
        let walls = vec![
            square(1.0, -2.0, 1.2, 2.0),
            square(2.0, -3.0, 2.2, 3.0),
            square(3.0, -4.5, 3.2, 4.5),
        ];
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let d = dist_through(walls.clone(), a, b).unwrap();
        // Verify against the full (global) graph distance.
        let (full, wps) = obstacle_visibility::VisibilityGraph::build(
            EdgeBuilder::Naive,
            walls.into_iter().enumerate().map(|(i, p)| (p, i as u64)),
            [(a, 0), (b, 1)],
        );
        let expect = obstacle_visibility::dijkstra_distance(&full, wps[0], wps[1]).unwrap();
        assert!((d - expect).abs() < 1e-9, "{d} vs {expect}");
    }

    #[test]
    fn unreachable_inside_obstacle() {
        let d = dist_through(
            vec![square(0.0, 0.0, 1.0, 1.0)],
            Point::new(0.5, 0.5), // strictly inside
            Point::new(2.0, 2.0),
        );
        assert_eq!(d, None);
    }

    #[test]
    fn distance_is_at_least_euclidean_and_zero_on_self() {
        let obs = vec![square(0.2, 0.2, 0.4, 0.3), square(0.6, 0.5, 0.7, 0.9)];
        let a = Point::new(0.1, 0.1);
        let b = Point::new(0.9, 0.9);
        let d = dist_through(obs.clone(), a, b).unwrap();
        assert!(d >= a.dist(b) - 1e-12);
        assert_eq!(dist_through(obs, a, a), Some(0.0));
    }

    #[test]
    fn graph_reuse_across_computations() {
        let idx = ObstacleIndex::build(
            RTreeConfig::tiny(8),
            vec![square(1.0, -1.0, 2.0, 1.0), square(4.0, -1.0, 5.0, 1.0)],
        );
        let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
        let q = g.add_waypoint(Point::new(0.0, 0.0), QUERY_TAG);

        let p1 = g.add_waypoint(Point::new(3.0, 0.0), 1);
        let d1 = compute_obstructed_distance(&mut g, p1, q, &idx).unwrap();
        g.remove_waypoint(p1);
        let obstacles_after_first = g.obstacle_count();

        let p2 = g.add_waypoint(Point::new(3.0, 0.0), 2);
        let d2 = compute_obstructed_distance(&mut g, p2, q, &idx).unwrap();
        g.remove_waypoint(p2);

        assert!((d1 - d2).abs() < 1e-12, "reuse must not change results");
        assert_eq!(
            g.obstacle_count(),
            obstacles_after_first,
            "second identical computation adds no obstacles"
        );
        assert!(g.graph.validate(true).is_ok());
    }
}
