//! Obstructed distance computation (Fig. 8 of the paper), driven by lazy
//! A\* instead of a materialized local visibility graph.
//!
//! The paper's Fig. 8 grows a local visibility graph until a fixpoint:
//! any path of length ≤ `d` stays inside a known region, so once every
//! obstacle intersecting that region is in the graph, the provisional
//! distance is exact. The seed implementation materialized every
//! visibility edge of that local graph, which made long paths
//! superlinearly expensive — each absorbed obstacle re-checked all
//! existing edges and swept from all of its vertices, even though the
//! eventual shortest path only touches a thin corridor.
//!
//! This module keeps the same fixpoint argument but runs it over a
//! [`LazyScene`]: obstacles are *registered* (classification bookkeeping
//! only) and visibility is computed on demand, one rotational sweep per
//! node that A\* actually settles. The search region is either the
//! paper's disk around `q` or the strictly tighter ellipse
//! `|x−p| + |x−q| ≤ d` (both certify the same fixpoint; see
//! [`compute_obstructed_distance_pruned`]).

use crate::engine::ObstacleIndex;
use obstacle_geom::{Point, Rect};
use obstacle_rtree::TreeBackend;
use obstacle_visibility::{EdgeBuilder, LazyScene, NodeId, PathResult};
use std::collections::HashSet;

/// A lazy visibility scene plus the set of obstacle ids it contains.
///
/// Wraps [`LazyScene`] with O(1) membership tests so the iterative
/// range-expansion of [`compute_obstructed_distance`] can detect its
/// fixpoint ("no new obstacles in the last range") cheaply. The scene —
/// absorbed obstacles, their classifications, and all cached visibility
/// sweeps — is reusable across consecutive distance computations (the
/// ONN algorithm's add/delete-entity reuse, §4).
///
/// # Validity under obstacle updates
///
/// The graph stamps the obstacle-set **epoch** it is synchronized with
/// and the union **region** its absorption drivers certified. Obstacle
/// *inserts* are absorbed naturally (every driver re-ranges the live
/// tree), but a *deleted* obstacle resident in the scene would keep
/// blocking paths — so before reuse, [`LocalGraph::sync`] retires the
/// scene iff some edit committed after its stamp has a dirty rect
/// intersecting its (slack-inflated) region. Every resident obstacle
/// intersects the stamped region (the drivers absorb only obstacles
/// whose MBR bound fits the certified disk), so a non-intersecting edit
/// provably cannot involve a resident obstacle and reuse stays legal.
#[derive(Debug)]
pub struct LocalGraph {
    /// The underlying lazy scene.
    pub scene: LazyScene,
    present: HashSet<u64>,
    /// Obstacle-set epoch this graph is synchronized with.
    epoch: u64,
    /// Union of the regions certified by absorption drivers (empty until
    /// the first absorption).
    region: Rect,
}

impl LocalGraph {
    /// Creates an empty local scene.
    pub fn new(builder: EdgeBuilder) -> Self {
        LocalGraph {
            scene: LazyScene::new(builder),
            present: HashSet::new(),
            epoch: 0,
            region: Rect::empty(),
        }
    }

    /// Number of obstacles currently in the scene.
    pub fn obstacle_count(&self) -> usize {
        self.present.len()
    }

    /// The obstacle-set epoch this graph was last synchronized with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Union region certified by the absorption drivers so far (empty
    /// rect for a fresh or just-reset graph).
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Whether reusing this graph against the current `obstacles` would
    /// be unsound: some edit after the stamped epoch dirtied a rect
    /// intersecting the stamped region inflated by `slack` (the same
    /// slack the scene-reuse cache coalesces regions with).
    pub fn is_stale(&self, obstacles: &ObstacleIndex, slack: f64) -> bool {
        obstacles.epoch() > self.epoch
            && !self.region.is_empty()
            && obstacles.dirty_intersects(self.epoch, &self.region.expanded(slack))
    }

    /// Synchronizes the graph with the current obstacle set: resets it if
    /// [`LocalGraph::is_stale`], then advances the epoch stamp. Returns
    /// whether a reset happened (the scene was retired by invalidation).
    /// Callers reusing a graph across queries must sync before adding
    /// waypoints — a reset invalidates outstanding [`NodeId`]s.
    pub fn sync(&mut self, obstacles: &ObstacleIndex, slack: f64) -> bool {
        let stale = self.is_stale(obstacles, slack);
        if stale {
            self.reset();
        }
        self.epoch = obstacles.epoch();
        stale
    }

    /// Discards all scene state (obstacles, waypoints, cached sweeps,
    /// certified region), keeping only the edge builder.
    pub fn reset(&mut self) {
        self.scene = LazyScene::new(self.scene.builder());
        self.present.clear();
        self.region = Rect::empty();
    }

    /// Extends the certified region (called by the absorption drivers
    /// with a rect covering every obstacle their range could absorb).
    fn note_region(&mut self, r: Rect) {
        self.region = self.region.union(&r);
    }

    /// Registers every not-yet-present obstacle of `items` with the
    /// scene; returns how many were new. The search regions themselves
    /// (disk or ellipse MBR bounds) live in
    /// [`compute_obstructed_path_pruned`], the only absorption driver.
    fn absorb(
        &mut self,
        obstacles: &ObstacleIndex,
        items: impl IntoIterator<Item = obstacle_rtree::Item>,
    ) -> usize {
        let mut added = 0;
        for item in items {
            if self.present.insert(item.id) {
                self.scene
                    .add_obstacle(obstacles.polygon(item.id).clone(), item.id);
                added += 1;
            }
        }
        added
    }

    /// Adds a waypoint (entity or query point); see
    /// [`LazyScene::add_waypoint`].
    pub fn add_waypoint(&mut self, pos: Point, tag: u64) -> NodeId {
        self.scene.add_waypoint(pos, tag)
    }

    /// Removes a waypoint; see [`LazyScene::remove_waypoint`].
    pub fn remove_waypoint(&mut self, id: NodeId) {
        self.scene.remove_waypoint(id)
    }
}

/// Computes the exact obstructed distance `d_O(p, q)` (Fig. 8).
///
/// `graph` must already contain the waypoints `p` and `q`; any obstacles
/// (and cached visibility) already present are reused. Uses the paper's
/// disk-shaped search regions; see [`compute_obstructed_distance_pruned`]
/// for the algorithm and the region choice.
pub fn compute_obstructed_distance(
    graph: &mut LocalGraph,
    p: NodeId,
    q: NodeId,
    obstacles: &ObstacleIndex,
) -> Option<f64> {
    compute_obstructed_distance_pruned(graph, p, q, obstacles, false)
}

/// [`compute_obstructed_distance`] with a choice of search region.
///
/// With `ellipse = false` the search regions are the paper's disks around
/// `q` (Fig. 8). With `ellipse = true` they are the strictly tighter
/// ellipses with foci `p` and `q` and major axis equal to the provisional
/// distance — any path of length ≤ `d` from `p` to `q` lies inside that
/// ellipse, so the fixpoint argument is unchanged while fewer obstacles
/// qualify (see the `ellipse_pruning` ablation).
pub fn compute_obstructed_distance_pruned(
    graph: &mut LocalGraph,
    p: NodeId,
    q: NodeId,
    obstacles: &ObstacleIndex,
    ellipse: bool,
) -> Option<f64> {
    compute_obstructed_path_pruned(graph, p, q, obstacles, ellipse).map(|path| path.distance)
}

/// Computes the exact shortest obstructed *path* from `p` to `q` using
/// the ellipse search region (the tighter of the two valid regions;
/// results are identical either way).
pub fn compute_obstructed_path(
    graph: &mut LocalGraph,
    p: NodeId,
    q: NodeId,
    obstacles: &ObstacleIndex,
) -> Option<PathResult> {
    compute_obstructed_path_pruned(graph, p, q, obstacles, true)
}

/// The lazy A\* engine behind every obstructed distance and path:
///
/// 1. absorb the obstacles whose MBR bound lies within the initial
///    region (`d = d_E(p, q)` — any obstacle touching the straight
///    segment qualifies, as do all obstacles containing or touching an
///    endpoint);
/// 2. run A\* on the lazy scene (one visibility sweep per settled node,
///    reusing sweeps cached by earlier iterations or earlier queries);
/// 3. the provisional distance `d` is exact for the *current* scene but
///    obstacles outside it may still obstruct: re-range with `d` and
///    repeat until a range adds no obstacle the scene lacks. Because any
///    path of length ≤ `d` stays inside the region of size `d`, the
///    fixpoint distance is exact.
///
/// Each absorption round invalidates cached sweeps (the scene changed),
/// so the loop *prefetches* a slightly larger region than it certifies —
/// regions grow geometrically past the observed detour overhead, keeping
/// the number of cache-cold A\* reruns logarithmic rather than linear in
/// the number of obstacles the path must weave around. Prefetched
/// obstacles are only absorbed on rounds that also absorb a certifying
/// obstacle, so a converged query leaves the scene untouched (important
/// for ONN's scene reuse across candidates).
///
/// If A\* fails on the current scene, `None` is returned immediately:
/// by \[LW79\], the visibility graph over a scene connects two free
/// points exactly when the scene's free space does, and absorbing more
/// obstacles only removes free space — so unreachability over a partial
/// scene is definitive (in particular, an endpoint strictly inside an
/// absorbed obstacle). There is no radius-doubling rescue phase; the
/// seed implementation needed one only because its materialized graph
/// could be legitimately disconnected mid-growth.
pub fn compute_obstructed_path_pruned(
    graph: &mut LocalGraph,
    p: NodeId,
    q: NodeId,
    obstacles: &ObstacleIndex,
    ellipse: bool,
) -> Option<PathResult> {
    // A sweep's A* expansion is unbounded and re-enters the buffer pool:
    // entering one while holding a shard lock is a deadlock waiting for
    // contention. Debug builds enforce that invariant here.
    obstacle_rtree::sync::assert_unlocked("LazyScene sweep (obstructed path)");
    let p_pos = graph.scene.position(p);
    let q_pos = graph.scene.position(q);
    let euclid = p_pos.dist(q_pos);
    if euclid == 0.0 {
        return Some(PathResult {
            distance: 0.0,
            points: vec![p_pos, q_pos],
        });
    }

    // MBR lower bound on `|x−p| + |x−q|` (ellipse) or `|x−q|` (disk) over
    // an obstacle's rectangle: the R-tree absorption predicate. A bound
    // ≤ d is necessary for the obstacle to intersect the region of
    // size d, so absorbing every such obstacle certifies the region.
    let bound = |r: &Rect| {
        if ellipse {
            r.mindist_point(p_pos) + r.mindist_point(q_pos)
        } else {
            r.mindist_point(q_pos)
        }
    };
    // Prefetch margin beyond the certified region, seeded at a couple of
    // typical obstacle diameters — the detour overhead a dense scene
    // imposes — and doubled (or raised to the observed overhead)
    // whenever certification fails, so the region overshoots the true
    // distance after one or two rounds in practice and O(log) rounds in
    // the worst case. Absorbing a modestly larger region is cheap (pure
    // classification bookkeeping, no edges); a cache-cold A* rerun is
    // not.
    let universe = obstacles.universe();
    let typical_diag = (universe.area() / obstacles.len().max(1) as f64).sqrt();
    let mut prefetch = (2.0 * typical_diag).max(1e-3 * euclid);
    // Every absorbed obstacle has MBR bound ≤ t, hence `mindist(MBR, q)
    // ≤ t` in both region modes (the ellipse bound dominates the disk
    // bound) — so the disk around `q` of radius t, boxed, certifies the
    // round for epoch validation.
    graph.note_region(Rect::from_point(q_pos).expanded(euclid + prefetch));
    graph.absorb(
        obstacles,
        obstacles
            .tree()
            .range_by_bound(&bound, euclid + prefetch)
            .into_iter()
            .map(|(item, _)| item),
    );
    loop {
        let path = graph.scene.astar(p, q)?;
        let d = path.distance;
        debug_assert!(d >= euclid - 1e-9 * euclid);

        // `range_by_bound` returns each item's bound score, computed once
        // during the tree descent — the certification test below reuses it
        // instead of re-evaluating the closure per obstacle.
        let fresh: Vec<(obstacle_rtree::Item, f64)> = obstacles
            .tree()
            .range_by_bound(&bound, d + prefetch)
            .into_iter()
            .filter(|(item, _)| !graph.present.contains(&item.id))
            .collect();
        if fresh.iter().all(|&(_, b)| b > d) {
            // Every obstacle inside the certified region of size `d` is
            // already in the scene: `d` is exact. The prefetched
            // leftovers (bound in (d, d+prefetch]) are deliberately not
            // absorbed — the scene stays cache-warm for the next query.
            return Some(path);
        }
        graph.note_region(Rect::from_point(q_pos).expanded(d + prefetch));
        graph.absorb(obstacles, fresh.into_iter().map(|(item, _)| item));
        prefetch = (d - euclid).max(prefetch * 2.0);
    }
}

/// All nodes within obstructed distance `e` of `q` over the lazy scene —
/// the engine of the OR range query (Fig. 5), with visibility computed on
/// demand instead of materializing the local graph.
///
/// Unlike the point-to-point fixpoint of
/// [`compute_obstructed_path_pruned`], the certified region is known up
/// front: any path of length ≤ `e` from `q` stays inside the disk of
/// radius `e`, so a single R-tree range absorbs every obstacle that can
/// influence the result, and one bounded Dijkstra expansion settles nodes
/// in ascending obstructed distance, sweeping only from nodes it actually
/// pops (see [`LazyScene::bounded_expansion`]). `targets` are the
/// candidate entity waypoints; settled targets are reported with their
/// distances (ascending), unreachable or out-of-range ones are omitted.
pub fn compute_obstructed_range(
    graph: &mut LocalGraph,
    q: NodeId,
    targets: &[NodeId],
    obstacles: &ObstacleIndex,
    e: f64,
) -> Vec<(NodeId, f64)> {
    obstacle_rtree::sync::assert_unlocked("LazyScene sweep (obstructed range)");
    let q_pos = graph.scene.position(q);
    let items = obstacles.tree().range_circle(q_pos, e);
    graph.note_region(Rect::from_point(q_pos).expanded(e));
    graph.absorb(obstacles, items);
    graph.scene.bounded_expansion(q, e, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ObstacleIndex;
    use crate::QUERY_TAG;
    use obstacle_geom::{Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::from_rect(Rect::from_coords(x0, y0, x1, y1))
    }

    fn dist_through(obstacles: Vec<Polygon>, a: Point, b: Point) -> Option<f64> {
        let idx = ObstacleIndex::build(RTreeConfig::tiny(8), obstacles);
        let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
        let pa = g.add_waypoint(a, 0);
        let pb = g.add_waypoint(b, QUERY_TAG);
        compute_obstructed_distance(&mut g, pa, pb, &idx)
    }

    #[test]
    fn no_obstacles_gives_euclidean() {
        let d = dist_through(vec![], Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(d, Some(5.0));
    }

    #[test]
    fn detour_around_one_square() {
        let d = dist_through(
            vec![square(1.0, -1.0, 2.0, 1.0)],
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
        )
        .unwrap();
        let expect = 2.0 * 2.0f64.sqrt() + 1.0;
        assert!((d - expect).abs() < 1e-9);
    }

    #[test]
    fn far_obstacle_discovered_by_second_range() {
        // The initial range (of size the Euclidean distance) does not
        // include the big wall that blocks the direct path near p; the
        // iterative re-ranging must find it.
        //
        // q at origin, p at (2, 0); a tall wall crosses the segment at
        // x ∈ (1.4, 1.6) but extends far in y so the detour is long.
        let wall = square(1.4, -5.0, 1.6, 5.0);
        let d = dist_through(vec![wall], Point::new(2.0, 0.0), Point::new(0.0, 0.0)).unwrap();
        // Detour via (1.4, 5) / (1.6, 5) corners (or the -5 twins).
        let via_top = Point::new(0.0, 0.0).dist(Point::new(1.4, 5.0))
            + 0.2
            + Point::new(1.6, 5.0).dist(Point::new(2.0, 0.0));
        assert!((d - via_top).abs() < 1e-9, "{d} vs {via_top}");
        assert!(d > 2.0); // strictly longer than Euclidean
    }

    #[test]
    fn chain_of_walls_requires_multiple_iterations() {
        // Each detour reveals the next wall: forces ≥ 2 expansion rounds.
        let walls = vec![
            square(1.0, -2.0, 1.2, 2.0),
            square(2.0, -3.0, 2.2, 3.0),
            square(3.0, -4.5, 3.2, 4.5),
        ];
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let d = dist_through(walls.clone(), a, b).unwrap();
        // Verify against the full (global) graph distance.
        let (full, wps) = obstacle_visibility::VisibilityGraph::build(
            EdgeBuilder::Naive,
            walls.into_iter().enumerate().map(|(i, p)| (p, i as u64)),
            [(a, 0), (b, 1)],
        );
        let expect = obstacle_visibility::dijkstra_distance(&full, wps[0], wps[1]).unwrap();
        assert!((d - expect).abs() < 1e-9, "{d} vs {expect}");
    }

    #[test]
    fn unreachable_inside_obstacle() {
        let d = dist_through(
            vec![square(0.0, 0.0, 1.0, 1.0)],
            Point::new(0.5, 0.5), // strictly inside
            Point::new(2.0, 2.0),
        );
        assert_eq!(d, None);
    }

    #[test]
    fn unreachable_target_inside_far_obstacle() {
        // The obstacle containing the *target* is absorbed by the very
        // first range (its MBR contains a focus), so the failure is
        // detected without any rescue phase.
        let d = dist_through(
            vec![square(10.0, 10.0, 11.0, 11.0)],
            Point::new(0.0, 0.0),
            Point::new(10.5, 10.5),
        );
        assert_eq!(d, None);
    }

    #[test]
    fn distance_is_at_least_euclidean_and_zero_on_self() {
        let obs = vec![square(0.2, 0.2, 0.4, 0.3), square(0.6, 0.5, 0.7, 0.9)];
        let a = Point::new(0.1, 0.1);
        let b = Point::new(0.9, 0.9);
        let d = dist_through(obs.clone(), a, b).unwrap();
        assert!(d >= a.dist(b) - 1e-12);
        assert_eq!(dist_through(obs, a, a), Some(0.0));
    }

    #[test]
    fn ellipse_and_disk_regions_agree() {
        let walls = vec![
            square(0.3, 0.1, 0.35, 0.9),
            square(0.6, -0.4, 0.65, 0.5),
            square(0.1, -0.2, 0.9, -0.1),
        ];
        let idx = ObstacleIndex::build(RTreeConfig::tiny(8), walls);
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.3);
        let mut results = Vec::new();
        for ellipse in [false, true] {
            let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
            let pa = g.add_waypoint(a, 0);
            let pb = g.add_waypoint(b, QUERY_TAG);
            results
                .push(compute_obstructed_distance_pruned(&mut g, pa, pb, &idx, ellipse).unwrap());
        }
        assert!(
            (results[0] - results[1]).abs() < 1e-12,
            "disk {} vs ellipse {}",
            results[0],
            results[1]
        );
    }

    #[test]
    fn graph_reuse_across_computations() {
        let idx = ObstacleIndex::build(
            RTreeConfig::tiny(8),
            vec![square(1.0, -1.0, 2.0, 1.0), square(4.0, -1.0, 5.0, 1.0)],
        );
        let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
        let q = g.add_waypoint(Point::new(0.0, 0.0), QUERY_TAG);

        let p1 = g.add_waypoint(Point::new(3.0, 0.0), 1);
        let d1 = compute_obstructed_distance(&mut g, p1, q, &idx).unwrap();
        g.remove_waypoint(p1);
        let obstacles_after_first = g.obstacle_count();
        let sweeps_after_first = g.scene.sweep_count();

        let p2 = g.add_waypoint(Point::new(3.0, 0.0), 2);
        let d2 = compute_obstructed_distance(&mut g, p2, q, &idx).unwrap();
        g.remove_waypoint(p2);

        assert!((d1 - d2).abs() < 1e-12, "reuse must not change results");
        assert_eq!(
            g.obstacle_count(),
            obstacles_after_first,
            "second identical computation adds no obstacles"
        );
        assert!(
            g.scene.sweep_count() <= sweeps_after_first + 2,
            "cached sweeps must be reused: {} then {}",
            sweeps_after_first,
            g.scene.sweep_count()
        );
        assert!(g.scene.validate(true).is_ok());
    }
}
