//! Obstacle range query (OR — §3, Fig. 5).

use crate::distance::{compute_obstructed_range, LocalGraph};
use crate::engine::QueryEngine;
use crate::stats::{QueryStats, RangeResult};
use crate::QUERY_TAG;
use obstacle_geom::Point;
use obstacle_rtree::sync::Stopwatch;
use obstacle_rtree::TreeBackend;
use obstacle_visibility::{NodeId, NodeKind};

impl QueryEngine<'_> {
    /// All entities within **obstructed** distance `e` of `q`, with their
    /// obstructed distances, in ascending distance order.
    ///
    /// Implements the OR algorithm of Fig. 5 over the lazy scene (the
    /// same engine ONN already uses, instead of the seed's materialized
    /// local visibility graph):
    ///
    /// 1. Euclidean range queries retrieve the candidate entities `P'`
    ///    and the relevant obstacles `O'` (by the Euclidean lower bound,
    ///    no entity or obstacle outside the disk can participate);
    /// 2. the obstacles are *registered* with a lazy scene (no edges);
    /// 3. one multi-target Dijkstra expansion from `q`, pruned at radius
    ///    `e`, settles nodes in ascending obstructed distance, computing
    ///    visibility only at the nodes it actually pops
    ///    ([`compute_obstructed_range`]); settled entities are reported,
    ///    the rest of `P'` are false hits.
    ///
    /// The `tangent_filter` ablation is a no-op here: the lazy engine
    /// never materializes the non-tangent edges the filter would remove
    /// (results are identical either way, per the option's contract).
    pub fn range(&self, q: Point, e: f64) -> RangeResult {
        let mut graph = LocalGraph::new(self.options.builder);
        self.range_in(&mut graph, q, e)
    }

    /// [`QueryEngine::range`] over a caller-provided scene.
    ///
    /// Obstacles (and cached sweeps) already present in `graph` are
    /// reused; obstacles the query's disk needs are absorbed and stay for
    /// the next caller — the cross-query amortization of
    /// [`SceneCache`](crate::SceneCache). The query's waypoints are
    /// removed again before returning, and the hits are identical to a
    /// fresh-scene [`QueryEngine::range`]: extra resident obstacles are
    /// real obstacles of the same dataset, and any path of length ≤ `e`
    /// is certified by the disk absorption alone.
    ///
    /// A reused graph is first synchronized with the obstacle-set epoch
    /// ([`LocalGraph::sync`], before any waypoint is added): if an edit
    /// since its last sync dirtied a rect intersecting its region, the
    /// scene is retired, so answers always reflect the live obstacle set
    /// (the `epoch_validation` option disables this for ablation only).
    pub fn range_in(&self, graph: &mut LocalGraph, q: Point, e: f64) -> RangeResult {
        if self.options.epoch_validation {
            graph.sync(
                self.obstacles,
                crate::batch::SceneCache::slack_for(&self.universe()),
            );
        }
        let t0 = Stopwatch::start();
        let entity_io = self.entities.tree().io_snapshot();
        let obstacle_io = self.obstacles.tree().io_snapshot();

        // Step 1: candidate entities by the Euclidean lower bound.
        let candidates = self.entities.tree().range_circle(q, e);

        let mut hits = Vec::new();
        let mut peak_graph_nodes = 0;
        if !candidates.is_empty() {
            // Steps 2-3: lazy multi-target expansion from q at radius e.
            let q_node = graph.add_waypoint(q, QUERY_TAG);
            let targets: Vec<NodeId> = candidates
                .iter()
                .map(|item| graph.add_waypoint(item.mbr.min, item.id))
                .collect();
            for (node, d) in compute_obstructed_range(graph, q_node, &targets, self.obstacles, e) {
                if node == q_node {
                    continue;
                }
                if let NodeKind::Waypoint { tag } = graph.scene.kind(node) {
                    hits.push((tag, d));
                }
            }
            peak_graph_nodes = graph.scene.node_count();
            for t in targets {
                graph.remove_waypoint(t);
            }
            graph.remove_waypoint(q_node);
        }

        let entity_io = entity_io.finish();
        let obstacle_io = obstacle_io.finish();
        let stats = QueryStats {
            entity_reads: entity_io.reads,
            obstacle_reads: obstacle_io.reads,
            entity_fetches: entity_io.fetches(),
            obstacle_fetches: obstacle_io.fetches(),
            cpu: t0.elapsed(),
            candidates: candidates.len(),
            results: hits.len(),
            false_hits: candidates.len() - hits.len(),
            distance_computations: 1,
            peak_graph_nodes,
        };
        RangeResult { hits, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EntityIndex, ObstacleIndex};
    use obstacle_geom::{Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn scene() -> (EntityIndex, ObstacleIndex) {
        // A wall between q and the east entities.
        //
        //   q=(0,0)   wall x∈[1,1.2], y∈[-1,1]   a=(2,0)  b=(1.5,2)  c=(-1,0)
        let entities = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![
                Point::new(2.0, 0.0),  // 0: behind the wall
                Point::new(1.5, 2.0),  // 1: above the wall
                Point::new(-1.0, 0.0), // 2: free line of sight
            ],
        );
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(1.0, -1.0, 1.2, 1.0))],
        );
        (entities, obstacles)
    }

    #[test]
    fn wall_pushes_entity_out_of_range() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let q = Point::new(0.0, 0.0);

        // Euclidean distance to entity 0 is 2.0, but the obstructed path
        // must round a wall corner: d_O = |q→(1,1)| + |(1,1)→(1.2,1)| +
        // |(1.2,1)→(2,0)| ≈ 2.897. A range of 2.2 keeps it out.
        let r = engine.range(q, 2.2);
        let ids: Vec<u64> = r.hits.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![2]); // only the unobstructed west entity
        assert_eq!(r.stats.candidates, 2); // entities 0 and 2
        assert_eq!(r.stats.false_hits, 1); // entity 0 eliminated
        assert!((r.stats.false_hit_ratio() - 1.0).abs() < 1e-12);

        // A range of 3.0 admits it (and entity 1 at Euclidean 2.5).
        let r = engine.range(q, 3.0);
        let ids: Vec<u64> = r.hits.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 3);
        // Ascending obstructed distance: c (1.0) first.
        assert_eq!(r.hits[0].0, 2);
        for w in r.hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn exact_distance_of_detour() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let r = engine.range(Point::new(0.0, 0.0), 3.0);
        let d0 = r.hits.iter().find(|(id, _)| *id == 0).unwrap().1;
        let expect = Point::new(0.0, 0.0).dist(Point::new(1.0, 1.0))
            + 0.2
            + Point::new(1.2, 1.0).dist(Point::new(2.0, 0.0));
        assert!((d0 - expect).abs() < 1e-9, "{d0} vs {expect}");
    }

    #[test]
    fn empty_range_yields_nothing() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let r = engine.range(Point::new(10.0, 10.0), 0.5);
        assert!(r.hits.is_empty());
        assert_eq!(r.stats.candidates, 0);
        assert_eq!(r.stats.false_hits, 0);
    }

    #[test]
    fn distances_respect_euclidean_lower_bound() {
        let (entities, obstacles) = scene();
        let engine = QueryEngine::new(&entities, &obstacles);
        let q = Point::new(0.3, 0.4);
        let r = engine.range(q, 5.0);
        for (id, d) in &r.hits {
            let euclid = entities.position(*id).dist(q);
            assert!(*d >= euclid - 1e-12);
            assert!(*d <= 5.0 + 1e-12);
        }
        assert_eq!(r.hits.len(), 3);
    }
}
