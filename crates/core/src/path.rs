//! Obstructed shortest *paths* (not just distances).
//!
//! The paper's algorithms only need distances, but applications
//! (navigation, the pedestrian of Fig. 1) want the actual route. This
//! module exposes exact shortest obstructed paths using the same
//! iterative local-graph construction as [`compute_obstructed_distance`]
//! (Fig. 8), so the returned polyline is provably optimal.

use crate::distance::{compute_obstructed_distance, LocalGraph};
use crate::engine::{ObstacleIndex, QueryEngine};
use crate::QUERY_TAG;
use obstacle_geom::Point;
use obstacle_visibility::{shortest_path, EdgeBuilder, PathResult};

/// Exact shortest obstructed path between two free points, or `None` when
/// unreachable (a point strictly inside an obstacle).
///
/// The local visibility graph is grown until the distance fixpoint of
/// Fig. 8 certifies optimality; the polyline is then reconstructed on the
/// final graph.
pub fn shortest_obstructed_path(
    a: Point,
    b: Point,
    obstacles: &ObstacleIndex,
    builder: EdgeBuilder,
) -> Option<PathResult> {
    let mut g = LocalGraph::new(builder);
    let na = g.add_waypoint(a, 0);
    let nb = g.add_waypoint(b, QUERY_TAG);
    compute_obstructed_distance(&mut g, na, nb, obstacles)?;
    shortest_path(&g.graph, na, nb)
}

impl QueryEngine<'_> {
    /// The `k` obstructed nearest neighbours of `q` together with their
    /// shortest paths (ascending by distance).
    pub fn nearest_with_paths(&self, q: Point, k: usize) -> Vec<(u64, PathResult)> {
        self.nearest(q, k)
            .neighbors
            .into_iter()
            .filter_map(|(id, d)| {
                let path = shortest_obstructed_path(
                    q,
                    self.entities.position(id),
                    self.obstacles,
                    self.options.builder,
                )?;
                debug_assert!((path.distance - d).abs() < 1e-9);
                Some((id, path))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EntityIndex;
    use obstacle_geom::{Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn wall_scene() -> ObstacleIndex {
        ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(1.0, -1.0, 1.2, 1.0))],
        )
    }

    #[test]
    fn path_length_equals_distance_and_corners_are_obstacle_vertices() {
        let obstacles = wall_scene();
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        let p = shortest_obstructed_path(a, b, &obstacles, EdgeBuilder::RotationalSweep).unwrap();
        let seg_sum: f64 = p.points.windows(2).map(|w| w[0].dist(w[1])).sum();
        assert!((seg_sum - p.distance).abs() < 1e-9);
        assert_eq!(p.points.first(), Some(&a));
        assert_eq!(p.points.last(), Some(&b));
        // Interior waypoints are wall corners.
        for w in &p.points[1..p.points.len() - 1] {
            assert!(
                [
                    Point::new(1.0, 1.0),
                    Point::new(1.2, 1.0),
                    Point::new(1.0, -1.0),
                    Point::new(1.2, -1.0)
                ]
                .contains(w),
                "unexpected corner {w}"
            );
        }
    }

    #[test]
    fn straight_path_when_unobstructed() {
        let obstacles = wall_scene();
        let a = Point::new(0.0, 2.0);
        let b = Point::new(2.0, 2.0);
        let p = shortest_obstructed_path(a, b, &obstacles, EdgeBuilder::RotationalSweep).unwrap();
        assert_eq!(p.points.len(), 2);
        assert!((p.distance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_yields_none() {
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(0.0, 0.0, 1.0, 1.0))],
        );
        assert!(shortest_obstructed_path(
            Point::new(-1.0, 0.5),
            Point::new(0.5, 0.5),
            &obstacles,
            EdgeBuilder::RotationalSweep
        )
        .is_none());
    }

    #[test]
    fn nearest_with_paths_is_consistent() {
        let obstacles = wall_scene();
        let entities = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![Point::new(2.0, 0.0), Point::new(0.0, 0.5)],
        );
        let engine = QueryEngine::new(&entities, &obstacles);
        let with_paths = engine.nearest_with_paths(Point::new(0.0, 0.0), 2);
        let plain = engine.nearest(Point::new(0.0, 0.0), 2);
        assert_eq!(with_paths.len(), plain.neighbors.len());
        for ((id_a, path), (id_b, d)) in with_paths.iter().zip(plain.neighbors.iter()) {
            assert_eq!(id_a, id_b);
            assert!((path.distance - d).abs() < 1e-9);
        }
    }
}
