//! Obstructed shortest *paths* (not just distances).
//!
//! The paper's algorithms only need distances, but applications
//! (navigation, the pedestrian of Fig. 1) want the actual route. This
//! module exposes exact shortest obstructed paths via the lazy A\*
//! engine of [`compute_obstructed_path`] — the same iterative region
//! growth as Fig. 8, but exploring the visibility graph on demand, so
//! city-scale corner-to-corner routes stay tractable (see the
//! `path_scaling` bench).

use crate::distance::{compute_obstructed_path, LocalGraph};
use crate::engine::{ObstacleIndex, QueryEngine};
use crate::QUERY_TAG;
use obstacle_geom::Point;
use obstacle_visibility::{EdgeBuilder, PathResult};

/// Relative-tolerance comparison (1e-9) for cross-checking a path length
/// against an independently computed distance. Long paths sum thousands
/// of edge weights, so the comparison must scale with the magnitude — an
/// absolute 1e-9 trips on legitimate rounding once paths span enough
/// corners (the regression is pinned by `long_path_tolerance_is_relative`).
/// Exported so the oracle/property test suites and examples pin the same
/// tolerance the engine asserts internally.
pub fn close_rel(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Exact shortest obstructed path between two free points, or `None` when
/// unreachable (a point strictly inside an obstacle).
///
/// The lazy scene is grown until the distance fixpoint of Fig. 8
/// certifies optimality (using the tighter ellipse region); the polyline
/// comes straight out of the final A\* search.
pub fn shortest_obstructed_path(
    a: Point,
    b: Point,
    obstacles: &ObstacleIndex,
    builder: EdgeBuilder,
) -> Option<PathResult> {
    let mut g = LocalGraph::new(builder);
    shortest_obstructed_path_in(&mut g, a, b, obstacles)
}

/// [`shortest_obstructed_path`] over a caller-provided scene: absorbed
/// obstacles and cached sweeps are reused, what the query absorbs stays
/// for the next caller, and the endpoint waypoints are removed again
/// before returning (see [`SceneCache`](crate::SceneCache)). The path is
/// identical to a fresh-scene run — exact ties between equal-length
/// shortest paths resolve positionally, not by scene numbering.
///
/// The reused scene is synchronized with the obstacle-set epoch first
/// ([`LocalGraph::sync`], before the endpoint waypoints are added):
/// unlike the engine operators there is no [`EngineOptions`] knob here,
/// so validation is unconditional — a free-function caller has no
/// ablation switch and must never see a stale path.
///
/// [`EngineOptions`]: crate::EngineOptions
pub fn shortest_obstructed_path_in(
    g: &mut LocalGraph,
    a: Point,
    b: Point,
    obstacles: &ObstacleIndex,
) -> Option<PathResult> {
    g.sync(
        obstacles,
        crate::batch::SceneCache::slack_for(&obstacles.universe()),
    );
    let na = g.add_waypoint(a, 0);
    let nb = g.add_waypoint(b, QUERY_TAG);
    let path = compute_obstructed_path(g, na, nb, obstacles);
    g.remove_waypoint(na);
    g.remove_waypoint(nb);
    path
}

impl QueryEngine<'_> {
    /// The `k` obstructed nearest neighbours of `q` together with their
    /// shortest paths (ascending by distance).
    pub fn nearest_with_paths(&self, q: Point, k: usize) -> Vec<(u64, PathResult)> {
        self.nearest(q, k)
            .neighbors
            .into_iter()
            .filter_map(|(id, d)| {
                let path = shortest_obstructed_path(
                    q,
                    self.entities.position(id),
                    self.obstacles,
                    self.options.builder,
                )?;
                debug_assert!(
                    close_rel(path.distance, d),
                    "path length {} vs distance {}",
                    path.distance,
                    d
                );
                Some((id, path))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EntityIndex;
    use obstacle_geom::{Polygon, Rect};
    use obstacle_rtree::RTreeConfig;

    fn wall_scene() -> ObstacleIndex {
        ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(1.0, -1.0, 1.2, 1.0))],
        )
    }

    #[test]
    fn path_length_equals_distance_and_corners_are_obstacle_vertices() {
        let obstacles = wall_scene();
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        let p = shortest_obstructed_path(a, b, &obstacles, EdgeBuilder::RotationalSweep).unwrap();
        let seg_sum: f64 = p.points.windows(2).map(|w| w[0].dist(w[1])).sum();
        assert!((seg_sum - p.distance).abs() < 1e-9);
        assert_eq!(p.points.first(), Some(&a));
        assert_eq!(p.points.last(), Some(&b));
        // Interior waypoints are wall corners.
        for w in &p.points[1..p.points.len() - 1] {
            assert!(
                [
                    Point::new(1.0, 1.0),
                    Point::new(1.2, 1.0),
                    Point::new(1.0, -1.0),
                    Point::new(1.2, -1.0)
                ]
                .contains(w),
                "unexpected corner {w}"
            );
        }
    }

    #[test]
    fn straight_path_when_unobstructed() {
        let obstacles = wall_scene();
        let a = Point::new(0.0, 2.0);
        let b = Point::new(2.0, 2.0);
        let p = shortest_obstructed_path(a, b, &obstacles, EdgeBuilder::RotationalSweep).unwrap();
        assert_eq!(p.points.len(), 2);
        assert!((p.distance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_yields_none() {
        let obstacles = ObstacleIndex::build(
            RTreeConfig::tiny(4),
            vec![Polygon::from_rect(Rect::from_coords(0.0, 0.0, 1.0, 1.0))],
        );
        assert!(shortest_obstructed_path(
            Point::new(-1.0, 0.5),
            Point::new(0.5, 0.5),
            &obstacles,
            EdgeBuilder::RotationalSweep
        )
        .is_none());
    }

    #[test]
    fn nearest_with_paths_is_consistent() {
        let obstacles = wall_scene();
        let entities = EntityIndex::build(
            RTreeConfig::tiny(4),
            vec![Point::new(2.0, 0.0), Point::new(0.0, 0.5)],
        );
        let engine = QueryEngine::new(&entities, &obstacles);
        let with_paths = engine.nearest_with_paths(Point::new(0.0, 0.0), 2);
        let plain = engine.nearest(Point::new(0.0, 0.0), 2);
        assert_eq!(with_paths.len(), plain.neighbors.len());
        for ((id_a, path), (id_b, d)) in with_paths.iter().zip(plain.neighbors.iter()) {
            assert_eq!(id_a, id_b);
            assert!(close_rel(path.distance, *d));
        }
    }

    #[test]
    fn long_path_tolerance_is_relative() {
        // A staircase of thin walls far from the origin: the shortest
        // path threads hundreds of corners at coordinates around 1e5, so
        // its length accumulates rounding well beyond an absolute 1e-9
        // while staying far inside the relative tolerance. The seed's
        // absolute `(path.distance - d).abs() < 1e-9` assertion tripped
        // on exactly this shape.
        let base = 1.0e5;
        let mut walls = Vec::new();
        for i in 0..120 {
            let x = base + 7.0 * i as f64;
            let (lo, hi) = if i % 2 == 0 {
                (base - 900.0, base + 3.0)
            } else {
                (base - 3.0, base + 900.0)
            };
            walls.push(Polygon::from_rect(Rect::from_coords(x, lo, x + 2.0, hi)));
        }
        let obstacles = ObstacleIndex::build(RTreeConfig::tiny(16), walls);
        let a = Point::new(base - 50.0, base);
        let b = Point::new(base + 7.0 * 120.0 + 50.0, base);

        let path = shortest_obstructed_path(a, b, &obstacles, EdgeBuilder::RotationalSweep)
            .expect("staircase is traversable");
        let seg_sum: f64 = path.points.windows(2).map(|w| w[0].dist(w[1])).sum();
        assert!(path.points.len() > 100, "path must thread the staircase");
        assert!(
            close_rel(seg_sum, path.distance),
            "polyline length {seg_sum} vs reported {})",
            path.distance
        );

        // Distance recomputed independently (disk regions, fresh scene)
        // agrees relatively; an absolute 1e-9 comparison would be far too
        // strict at this magnitude if the two engines associate the
        // additions differently.
        let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
        let na = g.add_waypoint(a, 0);
        let nb = g.add_waypoint(b, QUERY_TAG);
        let d = crate::distance::compute_obstructed_distance(&mut g, na, nb, &obstacles).unwrap();
        assert!(
            close_rel(path.distance, d),
            "lazy path {} vs distance {d}",
            path.distance
        );
    }
}
