//! Brute-force reference implementations.
//!
//! Ground truth for the integration tests and the correctness gates of
//! the benchmark harness: every query is answered by building **one
//! global visibility graph** over the complete obstacle dataset (naive
//! edge construction) and running plain Dijkstra — no R-trees, no
//! Euclidean pruning, no local graphs. Costs are O(n²·m) per distance,
//! so keep datasets small.

use obstacle_geom::{Point, Polygon};
use obstacle_visibility::{dijkstra_distance, EdgeBuilder, NodeId, VisibilityGraph};

/// Brute-force oracle over a fixed obstacle set.
pub struct BruteForce {
    obstacles: Vec<Polygon>,
}

impl BruteForce {
    /// Creates an oracle for the given obstacles.
    pub fn new(obstacles: Vec<Polygon>) -> Self {
        BruteForce { obstacles }
    }

    /// Exact obstructed distance between two points (`None` if
    /// unreachable, e.g. a point strictly inside an obstacle).
    pub fn obstructed_distance(&self, a: Point, b: Point) -> Option<f64> {
        let (graph, wps) = self.graph_with(&[a, b]);
        dijkstra_distance(&graph, wps[0], wps[1])
    }

    /// Obstructed range query: ids (indices into `entities`) and
    /// distances of all entities within obstructed distance `e` of `q`,
    /// ascending.
    pub fn range(&self, entities: &[Point], q: Point, e: f64) -> Vec<(u64, f64)> {
        let mut pts = vec![q];
        pts.extend_from_slice(entities);
        let (graph, wps) = self.graph_with(&pts);
        let mut out: Vec<(u64, f64)> = entities
            .iter()
            .enumerate()
            .filter_map(|(i, _)| {
                dijkstra_distance(&graph, wps[0], wps[i + 1])
                    .filter(|d| *d <= e)
                    .map(|d| (i as u64, d))
            })
            .collect();
        out.sort_by(|a, b| obstacle_geom::total_cmp(a.1, b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Obstructed k-nearest neighbours of `q`, ascending.
    pub fn nearest(&self, entities: &[Point], q: Point, k: usize) -> Vec<(u64, f64)> {
        let mut all = self.range(entities, q, f64::INFINITY);
        all.truncate(k);
        all
    }

    /// Obstructed e-distance join between `s` and `t` (ids are indices).
    pub fn join(&self, s: &[Point], t: &[Point], e: f64) -> Vec<(u64, u64, f64)> {
        let mut out = Vec::new();
        for (i, &a) in s.iter().enumerate() {
            for (j, &b) in t.iter().enumerate() {
                if a.dist(b) <= e {
                    if let Some(d) = self.obstructed_distance(a, b) {
                        if d <= e {
                            out.push((i as u64, j as u64, d));
                        }
                    }
                }
            }
        }
        out.sort_by(|x, y| obstacle_geom::total_cmp(x.2, y.2));
        out
    }

    /// The `k` obstructed-closest pairs between `s` and `t`, ascending.
    pub fn closest_pairs(&self, s: &[Point], t: &[Point], k: usize) -> Vec<(u64, u64, f64)> {
        let mut out = Vec::new();
        for (i, &a) in s.iter().enumerate() {
            for (j, &b) in t.iter().enumerate() {
                if let Some(d) = self.obstructed_distance(a, b) {
                    out.push((i as u64, j as u64, d));
                }
            }
        }
        out.sort_by(|x, y| obstacle_geom::total_cmp(x.2, y.2));
        out.truncate(k);
        out
    }

    fn graph_with(&self, points: &[Point]) -> (VisibilityGraph, Vec<NodeId>) {
        VisibilityGraph::build(
            EdgeBuilder::Naive,
            self.obstacles
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i as u64)),
            points.iter().enumerate().map(|(i, &p)| (p, i as u64)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obstacle_geom::Rect;

    #[test]
    fn oracle_detour_matches_hand_computation() {
        let oracle = BruteForce::new(vec![Polygon::from_rect(Rect::from_coords(
            1.0, -1.0, 2.0, 1.0,
        ))]);
        let d = oracle
            .obstructed_distance(Point::new(0.0, 0.0), Point::new(3.0, 0.0))
            .unwrap();
        assert!((d - (2.0 * 2.0f64.sqrt() + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn oracle_range_and_nearest_are_consistent() {
        let oracle = BruteForce::new(vec![Polygon::from_rect(Rect::from_coords(
            0.4, 0.0, 0.6, 0.8,
        ))]);
        let entities = vec![
            Point::new(0.2, 0.4),
            Point::new(0.8, 0.4),
            Point::new(0.5, 0.9),
        ];
        let q = Point::new(0.0, 0.4);
        let nn = oracle.nearest(&entities, q, 3);
        assert_eq!(nn.len(), 3);
        let within = oracle.range(&entities, q, nn[1].1);
        assert_eq!(within.len(), 2);
        assert_eq!(within[0].0, nn[0].0);
    }
}
