//! PR 7 oracle suite: interleaved updates and queries.
//!
//! Interleaves insert/delete edit batches with all six operators (and
//! the concurrent batch engine) and requires answers **bit-identical**
//! to an engine freshly built from the live datasets after every edit
//! batch — on both storage backends, at 1 and 4 worker threads, under
//! both schedules, and through one scene cache that survives every edit.
//! Also pins the PR 7 fixes individually: the would-have-been-stale
//! scene repro (which fails with `epoch_validation: false`), exact
//! retire/reuse counts, the universe fallback for emptied obstacle sets,
//! no id resurrection, and one re-pack per batch on the packed backend.
//!
//! Fresh-built indexes assign ids `0..n` in live order, so fresh answers
//! are remapped to original ids before comparison; distances compare by
//! `f64::to_bits` (no epsilon) after the canonical sorting the
//! backend-equivalence suite already uses.

use obstacle_core::{
    Answer, BatchOptions, EngineOptions, EntityIndex, ObstacleIndex, Query, QueryEngine,
    SceneCache, Schedule, SemiJoinStrategy, Update,
};
use obstacle_datagen::{sample_entities, City, CityConfig};
use obstacle_geom::{hilbert_index_unit, Point, Polygon, Rect};
use obstacle_rtree::{Backend, RTreeConfig};

fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
    Polygon::from_rect(Rect::from_coords(x0, y0, x1, y1))
}

/// Indexes freshly bulk-built from the live contents of edited indexes,
/// plus the id map: fresh entity `i` is original entity `map[i]`.
fn fresh_world(
    entities: &EntityIndex,
    obstacles: &ObstacleIndex,
    config: RTreeConfig,
) -> (EntityIndex, ObstacleIndex, Vec<u64>) {
    let (map, pts): (Vec<u64>, Vec<Point>) = entities.live_points().unzip();
    let polys: Vec<Polygon> = obstacles.live_polygons().map(|(_, p)| p.clone()).collect();
    (
        EntityIndex::build(config, pts),
        ObstacleIndex::build(config, polys),
        map,
    )
}

/// Canonical payload of an answer: rows of `(id, id, distance bits)`
/// sorted, entity ids remapped through `map` when given (for answers
/// from a fresh-built engine). Paths have no ids and canonicalise to
/// their exact polyline bits.
fn canon(a: &Answer, map: Option<&[u64]>) -> Vec<(u64, u64, u64)> {
    let m = |id: u64| map.map_or(id, |map| map[id as usize]);
    let mut rows = match a {
        Answer::Range(r) => r
            .hits
            .iter()
            .map(|&(id, d)| (m(id), 0, d.to_bits()))
            .collect(),
        Answer::Nearest(r) => r
            .neighbors
            .iter()
            .map(|&(id, d)| (m(id), 0, d.to_bits()))
            .collect(),
        Answer::DistanceJoin(r) | Answer::SemiJoin(r) => r
            .pairs
            .iter()
            .map(|&(a, b, d)| (m(a), m(b), d.to_bits()))
            .collect(),
        Answer::ClosestPairs(r) => r
            .pairs
            .iter()
            .map(|&(a, b, d)| (m(a), m(b), d.to_bits()))
            .collect(),
        Answer::Path(None) => vec![(u64::MAX, u64::MAX, 0)],
        Answer::Path(Some(p)) => {
            let mut v = vec![(0, 0, p.distance.to_bits())];
            v.extend(
                p.points
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (i as u64 + 1, c.x.to_bits(), c.y.to_bits())),
            );
            return v; // polyline order is part of the answer: no sort
        }
    };
    rows.sort_unstable();
    rows
}

fn nearest_id(a: &Answer) -> u64 {
    match a {
        Answer::Nearest(r) => r.neighbors[0].0,
        _ => panic!("expected a Nearest answer"),
    }
}

/// Three rounds of mixed edits, each followed by the full operator mix
/// compared against a fresh-built engine: sequentially through one
/// long-lived [`SceneCache`], then via the batch engine at 1 and 4
/// workers under both schedules. Returns the canonical payloads so the
/// caller can also compare the two backends against each other.
fn run_interleaved(backend: Backend) -> Vec<Vec<Vec<(u64, u64, u64)>>> {
    let config = RTreeConfig::tiny(8).with_backend(backend);
    let city = City::generate(CityConfig::new(32, 9));
    let pts = sample_entities(&city, 24, 1);
    let extra = sample_entities(&city, 4, 2);
    let mut entities = EntityIndex::build(config, pts);
    let mut obstacles = ObstacleIndex::build(config, city.obstacles.clone());
    let mut cache = SceneCache::new(EngineOptions::default());

    let queries = [
        Query::Nearest {
            q: Point::new(0.2, 0.3),
            k: 5,
        },
        Query::Range {
            q: Point::new(0.6, 0.5),
            e: 0.2,
        },
        Query::Nearest {
            q: Point::new(0.8, 0.75),
            k: 3,
        },
        Query::Range {
            q: Point::new(0.35, 0.7),
            e: 0.15,
        },
        Query::Path {
            from: Point::new(0.05, 0.05),
            to: Point::new(0.95, 0.9),
        },
        Query::SemiJoin {
            strategy: SemiJoinStrategy::PerObjectNn,
        },
        // Self-join closest pairs: the 24 closest pairs of 24 live
        // entities are exactly the zero-distance self-pairs, one per live
        // id — a deterministic set (any k < n would truncate inside the
        // zero-distance tie, where the pick is id-numbering dependent and
        // legitimately differs from a freshly numbered engine). Every
        // round deletes one entity and inserts one, so the live count
        // stays 24 — and a resurrected id would change this answer.
        Query::ClosestPairs { k: 24 },
        Query::DistanceJoin { e: 0.1 },
    ];

    // Polygons retired by earlier rounds; re-inserting one of these is
    // guaranteed disjoint from every live obstacle (the city's polygons
    // are mutually disjoint), so the dataset stays a valid obstacle set.
    let mut retired: Vec<Polygon> = Vec::new();
    let mut per_round = Vec::new();
    for round in 0..3 {
        let live_obs: Vec<u64> = obstacles.live_polygons().map(|(id, _)| id).collect();
        let live_ent: Vec<u64> = entities.live_points().map(|(id, _)| id).collect();
        let dead = [live_obs[round * 3], live_obs[round * 3 + 4]];
        retired.extend(dead.iter().map(|&id| obstacles.polygon(id).clone()));
        let mut edits = vec![
            Update::DeleteObstacle(dead[0]),
            Update::DeleteObstacle(dead[1]),
            Update::DeleteEntity(live_ent[round * 4]),
            Update::InsertEntity(extra[round]),
        ];
        if round > 0 {
            edits.push(Update::InsertObstacle(retired.remove(0)));
        }
        let stats = QueryEngine::apply_updates(&mut entities, &mut obstacles, edits);
        assert_eq!(stats.missed_deletes, 0, "round {round}");

        let (f_ent, f_obs, map) = fresh_world(&entities, &obstacles, config);
        let engine = QueryEngine::new(&entities, &obstacles);
        let oracle = QueryEngine::new(&f_ent, &f_obs);
        let expected: Vec<_> = queries
            .iter()
            .map(|q| canon(&oracle.execute(q), Some(&map)))
            .collect();

        // Sequential, through the scene cache that has seen every edit.
        let mut round_payload = Vec::new();
        for (q, want) in queries.iter().zip(&expected) {
            let got = canon(&engine.execute_with(q, &mut cache), None);
            assert_eq!(&got, want, "cached sequential, round {round}, {q:?}");
            round_payload.push(got);
        }

        // The batch engine, all thread/schedule combinations.
        for threads in [1, 4] {
            for schedule in [Schedule::InputOrder, Schedule::Hilbert] {
                let opts = BatchOptions::new(threads).schedule(schedule);
                let (answers, _) = engine.batch(&queries).options(opts).collect();
                for ((a, want), q) in answers.iter().zip(&expected).zip(&queries) {
                    assert_eq!(
                        &canon(a, None),
                        want,
                        "{threads} thread(s), {schedule:?}, round {round}, {q:?}"
                    );
                }
            }
        }
        per_round.push(round_payload);
    }
    per_round
}

#[test]
fn interleaved_edits_match_fresh_engine_paged() {
    run_interleaved(Backend::Paged);
}

#[test]
fn interleaved_edits_match_fresh_engine_packed_and_backends_agree() {
    let packed = run_interleaved(Backend::Packed);
    let paged = run_interleaved(Backend::Paged);
    assert_eq!(paged, packed, "backends must agree after every edit batch");
}

/// The PR 7 bug, reproduced: without epoch validation a warm scene keeps
/// serving a deleted wall, so the nearest neighbour stays rerouted long
/// after the obstacle is gone. The same sequence through a validating
/// engine retires the scene (exactly once) and answers from live data.
#[test]
fn stale_scene_repro_fails_without_epoch_validation() {
    let config = RTreeConfig::tiny(4);
    let pts = vec![Point::new(2.0, 0.0), Point::new(0.0, 2.2)];
    let wall = square(1.0, -2.0, 1.2, 2.0);
    let q = Query::Nearest {
        q: Point::new(0.0, 0.0),
        k: 1,
    };

    for validation in [false, true] {
        let opts = EngineOptions {
            epoch_validation: validation,
            ..Default::default()
        };
        let mut entities = EntityIndex::build(config, pts.clone());
        let mut obstacles = ObstacleIndex::build(config, vec![wall.clone()]);
        let mut cache = SceneCache::new(opts);
        {
            let engine = QueryEngine::with_options(&entities, &obstacles, opts);
            let warm = engine.execute_with(&q, &mut cache);
            assert_eq!(nearest_id(&warm), 1, "the wall reroutes the NN");
        }
        QueryEngine::apply_updates(
            &mut entities,
            &mut obstacles,
            vec![Update::DeleteObstacle(0)],
        );
        let engine = QueryEngine::with_options(&entities, &obstacles, opts);
        let after = engine.execute_with(&q, &mut cache);
        if validation {
            assert_eq!(nearest_id(&after), 0, "scene retired, live answer");
            assert_eq!(cache.invalidations(), 1, "exactly one retirement");
        } else {
            // The stale failure mode this PR fixes: the resident wall is
            // gone from the dataset but still blocks the cached scene.
            assert_eq!(nearest_id(&after), 1, "ablation serves the stale NN");
            assert_eq!(cache.invalidations(), 0);
        }
    }
}

/// Scenes are retired **only** when an edit's dirty rect intersects the
/// scene's slack-inflated certified region: a far-away edit bumps the
/// epoch but leaves the scene warm (and its answer identical); an edit
/// inside the region retires it. Counts are asserted exactly.
#[test]
fn scenes_retire_only_when_dirty_rect_hits_their_region() {
    let config = RTreeConfig::tiny(8);
    let mut entities = EntityIndex::build(config, vec![Point::new(7.0, 5.0), Point::new(5.0, 8.0)]);
    // A long wall east of q plus a 10×10 grid of blocks far from the
    // query corner. The grid matters: the absorption driver prefetches
    // ~2·sqrt(universe area / obstacle count) beyond the certified
    // region, so a near-empty 100×100 universe would legitimately note a
    // region covering most of the map (and the far edit below would then
    // *correctly* retire the scene). A realistic density keeps the noted
    // region local to q.
    let mut polys = vec![square(6.0, 2.0, 6.2, 8.0)]; // id 0
    for i in 0..10 {
        for j in 0..10 {
            let (x, y) = (20.0 + 8.0 * i as f64, 20.0 + 8.0 * j as f64);
            polys.push(square(x, y, x + 1.0, y + 1.0));
        }
    }
    let mut obstacles = ObstacleIndex::build(config, polys);
    let q = Query::Nearest {
        q: Point::new(5.0, 5.0),
        k: 1,
    };
    let mut cache = SceneCache::new(EngineOptions::default());

    let warm = {
        let engine = QueryEngine::new(&entities, &obstacles);
        engine.execute_with(&q, &mut cache)
    };
    assert_eq!(nearest_id(&warm), 1, "the wall makes the detour longer");
    assert_eq!((cache.invalidations(), cache.reuses()), (0, 0));

    // Far edit: dirty rect around (80, 80), ~100 units from the scene's
    // region — epoch advances, scene stays warm, answer is unchanged.
    QueryEngine::apply_updates(
        &mut entities,
        &mut obstacles,
        vec![Update::InsertObstacle(square(80.0, 80.0, 81.0, 81.0))],
    );
    let reused = {
        let engine = QueryEngine::new(&entities, &obstacles);
        engine.execute_with(&q, &mut cache)
    };
    assert_eq!((cache.invalidations(), cache.reuses()), (0, 1));
    assert_eq!(canon(&reused, None), canon(&warm, None));

    // Near edit: deleting the wall dirties a rect inside the region —
    // the scene is retired and the answer changes to the live dataset's.
    QueryEngine::apply_updates(
        &mut entities,
        &mut obstacles,
        vec![Update::DeleteObstacle(0)],
    );
    let retired = {
        let engine = QueryEngine::new(&entities, &obstacles);
        engine.execute_with(&q, &mut cache)
    };
    assert_eq!(nearest_id(&retired), 0, "wall gone: direct 2.0 wins");
    assert_eq!((cache.invalidations(), cache.reuses()), (1, 1));
    assert_eq!(cache.resets(), 0, "economics never retired anything here");
}

/// The satellite-1 regression: with an empty (or emptied-by-deletes)
/// obstacle set the engine universe falls back to the entity extent, so
/// Hilbert scheduling still orders queries by locality instead of
/// clamping every key to one unit-square corner (which degenerates the
/// schedule to input order).
#[test]
fn emptied_obstacle_universe_falls_back_to_entity_extent() {
    let config = RTreeConfig::tiny(4);
    // Entities far outside the unit square, listed in a scrambled order.
    let pts = vec![
        Point::new(1009.0, 1009.0),
        Point::new(1000.0, 1000.0),
        Point::new(1009.0, 1000.0),
        Point::new(1004.0, 1004.0),
        Point::new(1000.0, 1009.0),
    ];
    let mut entities = EntityIndex::build(config, pts.clone());
    let mut obstacles = ObstacleIndex::build(config, vec![square(1003.0, 1003.0, 1003.5, 1003.5)]);
    QueryEngine::apply_updates(
        &mut entities,
        &mut obstacles,
        vec![Update::DeleteObstacle(0)],
    );
    assert!(obstacles.is_empty());
    assert_eq!(obstacles.extent(), None, "emptied tree has no extent");

    let engine = QueryEngine::new(&entities, &obstacles);
    let extent = entities.extent().unwrap();
    assert_eq!(engine.universe(), extent);

    let queries: Vec<Query> = pts.iter().map(|&p| Query::Nearest { q: p, k: 1 }).collect();
    let order = engine.schedule_order(&queries, Schedule::Hilbert);
    let mut expect: Vec<usize> = (0..pts.len()).collect();
    expect.sort_by_key(|&i| (hilbert_index_unit(pts[i], &extent), i));
    assert_eq!(order, expect, "Hilbert keys over the entity extent");
    assert_ne!(
        order,
        (0..pts.len()).collect::<Vec<usize>>(),
        "order must not degenerate to input order (all keys clamped)"
    );

    // No data at all: the documented unit-square last resort.
    let no_ent = EntityIndex::build(config, vec![]);
    let empty_engine = QueryEngine::new(&no_ent, &obstacles);
    assert_eq!(
        empty_engine.universe(),
        Rect::from_coords(0.0, 0.0, 1.0, 1.0)
    );
}

/// Deleted ids must never resurface through any public read path, and
/// fresh inserts must get fresh ids (no tombstone reuse).
#[test]
fn deleted_ids_never_resurface() {
    let config = RTreeConfig::tiny(4);
    let mut entities = EntityIndex::build(config, vec![Point::new(2.0, 0.0), Point::new(0.0, 2.2)]);
    let mut obstacles = ObstacleIndex::build(config, vec![square(1.0, -2.0, 1.2, 2.0)]);
    let q = Point::new(0.0, 0.0);
    assert_eq!(
        QueryEngine::new(&entities, &obstacles)
            .nearest(q, 1)
            .neighbors[0]
            .0,
        1
    );

    let stats = QueryEngine::apply_updates(
        &mut entities,
        &mut obstacles,
        vec![Update::DeleteObstacle(0), Update::DeleteEntity(1)],
    );
    assert_eq!((stats.deleted_obstacles, stats.deleted_entities), (1, 1));

    // Index read paths: live iterators, liveness, len.
    assert!(obstacles.live_polygons().next().is_none());
    assert!(!obstacles.is_live(0));
    assert_eq!(obstacles.len(), 0);
    assert!(entities.live_points().all(|(id, _)| id != 1));
    assert!(!entities.is_live(1));
    assert_eq!(entities.len(), 1);
    // Positions of retired ids still answer (old query results stay
    // interpretable), without implying liveness.
    assert_eq!(entities.position(1), Point::new(0.0, 2.2));

    // Query paths: the wall no longer reroutes, entity 1 never returned.
    let engine = QueryEngine::new(&entities, &obstacles);
    let nn = engine.nearest(q, 10);
    assert_eq!(nn.neighbors, vec![(0, 2.0)], "direct Euclidean line");
    assert!(engine.range(q, 100.0).hits.iter().all(|&(id, _)| id != 1));
    let sj = obstacle_core::semi_join(
        &entities,
        &entities,
        &obstacles,
        SemiJoinStrategy::PerObjectNn,
        EngineOptions::default(),
    );
    assert!(sj.pairs.iter().all(|&(s, t, _)| s != 1 && t != 1));

    // Fresh inserts get fresh ids; re-deleting a tombstone is a miss.
    assert_eq!(entities.insert(Point::new(5.0, 5.0)), 2);
    assert_eq!(obstacles.insert(square(8.0, 8.0, 9.0, 9.0)), 1);
    assert!(!entities.delete(1), "double delete reports absence");
    let stats = QueryEngine::apply_updates(
        &mut entities,
        &mut obstacles,
        vec![Update::DeleteObstacle(0)],
    );
    assert_eq!(stats.missed_deletes, 1);
}

/// The satellite-3 contract at engine level: one [`QueryEngine::apply_updates`]
/// batch re-packs each touched packed tree exactly once, however many
/// edits it carries — while the same edits one call at a time pay one
/// re-pack each. No-op batches (empty, or all deletes missing) must not
/// re-pack or advance epochs at all.
#[test]
fn packed_backend_repacks_once_per_update_batch() {
    let config = RTreeConfig::tiny(8).with_backend(Backend::Packed);
    let pts: Vec<Point> = (0..6).map(|i| Point::new(i as f64, 0.5)).collect();
    let polys: Vec<Polygon> = (0..4)
        .map(|i| square(2.0 * i as f64, 2.0, 2.0 * i as f64 + 1.0, 3.0))
        .collect();
    let mut entities = EntityIndex::build(config, pts);
    let mut obstacles = ObstacleIndex::build(config, polys);
    let egen = |e: &EntityIndex| e.tree().as_packed().unwrap().generation();
    let ogen = |o: &ObstacleIndex| o.tree().as_packed().unwrap().generation();
    assert_eq!((egen(&entities), ogen(&obstacles)), (0, 0));

    QueryEngine::apply_updates(
        &mut entities,
        &mut obstacles,
        vec![
            Update::DeleteEntity(0),
            Update::InsertEntity(Point::new(7.0, 0.5)),
            Update::InsertEntity(Point::new(8.0, 0.5)),
            Update::DeleteObstacle(1),
            Update::InsertObstacle(square(10.0, 2.0, 11.0, 3.0)),
        ],
    );
    assert_eq!(
        (egen(&entities), ogen(&obstacles)),
        (1, 1),
        "five edits, one re-pack per touched tree"
    );

    QueryEngine::apply_updates(
        &mut entities,
        &mut obstacles,
        vec![Update::DeleteObstacle(0)],
    );
    assert_eq!(
        (egen(&entities), ogen(&obstacles)),
        (1, 2),
        "untouched tree must not re-pack"
    );

    // No-op batches: empty, and a delete that matches nothing.
    QueryEngine::apply_updates(&mut entities, &mut obstacles, Vec::new());
    let stats = QueryEngine::apply_updates(
        &mut entities,
        &mut obstacles,
        vec![Update::DeleteEntity(0), Update::DeleteObstacle(99)],
    );
    assert_eq!(stats.missed_deletes, 2);
    assert_eq!((egen(&entities), ogen(&obstacles)), (1, 2));
    assert_eq!((entities.epoch(), obstacles.epoch()), (1, 2));

    // The per-call path the batch API exists to avoid: one re-pack each.
    entities.insert(Point::new(9.0, 0.5));
    entities.insert(Point::new(10.0, 0.5));
    entities.delete(1);
    assert_eq!(egen(&entities), 4, "three calls, three re-packs");
}
