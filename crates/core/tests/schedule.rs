//! Hilbert-schedule property suite: spatially-aware scheduling permutes
//! only *execution order* — answers and per-query `IoSnapshot`
//! attribution are invariant — and on a clustered workload it recovers
//! the locality the input order scattered (the aggregate `SceneCache`
//! hit count under `Hilbert` is at least the `InputOrder` count).

use obstacle_core::{Answer, BatchOptions, Query, QueryEngine, Schedule, SemiJoinStrategy};
use obstacle_core::{EntityIndex, ObstacleIndex};
use obstacle_datagen::{
    clustered_batch_workload, sample_entities, BatchMix, BatchQuery, City, CityConfig, ClusterSpec,
};
use obstacle_rtree::{RTreeConfig, TreeBackend};

fn world() -> (EntityIndex, ObstacleIndex, City) {
    // Kept deliberately small: debug-mode obstructed queries get steep
    // with city density, and the scheduling properties under test are
    // about *order*, not dataset scale (the bench trajectory measures
    // the big clustered city in release mode).
    let city = City::generate(CityConfig::new(64, 0x5C3D));
    let entities = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(&city, 48, 0x5C3E));
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
    (entities, obstacles, city)
}

/// The datagen→core query mapping (duplicated from the bench crate so
/// this suite stays a core-only dependency).
fn to_query(spec: &BatchQuery) -> Query {
    match *spec {
        BatchQuery::Range { q, e } => Query::Range { q, e },
        BatchQuery::Nearest { q, k } => Query::Nearest { q, k },
        BatchQuery::DistanceJoin { e } => Query::DistanceJoin { e },
        BatchQuery::SemiJoin => Query::SemiJoin {
            strategy: SemiJoinStrategy::PerObjectNn,
        },
        BatchQuery::ClosestPairs { k } => Query::ClosestPairs { k },
        BatchQuery::Path { from, to } => Query::Path { from, to },
    }
}

fn clustered_queries(city: &City, count: usize, seed: u64) -> Vec<Query> {
    clustered_batch_workload(
        city,
        count,
        seed,
        BatchMix::point_queries(),
        ClusterSpec {
            clusters: 6,
            spread: 0.004,
        },
    )
    .iter()
    .map(to_query)
    // The paper grid draws k up to 256 — a full-dataset obstructed scan
    // per query, which swamps a debug-mode suite without changing what
    // scheduling is being tested on. Cap it.
    .map(|q| match q {
        Query::Nearest { q, k } => Query::Nearest { q, k: k.min(6) },
        other => other,
    })
    .collect()
}

#[test]
fn scheduling_permutes_only_execution_order_never_answers() {
    let (entities, obstacles, city) = world();
    let engine = QueryEngine::new(&entities, &obstacles);
    let queries = clustered_queries(&city, 36, 0x5C3F);
    let sequential: Vec<Answer> = queries.iter().map(|q| engine.execute(q)).collect();
    assert!(sequential.iter().any(|a| a.result_count() > 0));

    for threads in [1usize, 4] {
        for schedule in [Schedule::InputOrder, Schedule::Hilbert] {
            let options = BatchOptions::new(threads).schedule(schedule);
            let (answers, stats) = engine.batch(&queries).options(options).collect();
            assert_eq!(stats.workers, threads);
            for (i, (p, s)) in answers.iter().zip(sequential.iter()).enumerate() {
                assert!(
                    p.same_results(s),
                    "query {i} diverged at {threads} threads under {schedule:?}"
                );
            }
        }
    }
}

#[test]
fn scheduling_preserves_per_query_io_attribution() {
    // Each stats-bearing query's page accesses land in its own
    // thread-local attribution window regardless of execution order, so
    // the per-answer windows must sum to the tree-global deltas exactly
    // under both schedules. (Path queries carry no stats; exclude them.)
    let (entities, obstacles, city) = world();
    let engine = QueryEngine::new(&entities, &obstacles);
    let queries: Vec<Query> = clustered_queries(&city, 36, 0x5C40)
        .into_iter()
        .filter(|q| !matches!(q, Query::Path { .. }))
        .collect();

    for schedule in [Schedule::InputOrder, Schedule::Hilbert] {
        for threads in [4usize] {
            entities.tree().reset_io_stats();
            obstacles.tree().reset_io_stats();
            let options = BatchOptions::new(threads).schedule(schedule);
            let (answers, _) = engine.batch(&queries).options(options).collect();
            let (mut entity_fetches, mut obstacle_fetches) = (0u64, 0u64);
            for a in &answers {
                let s = a.stats().expect("point-query workload carries stats");
                entity_fetches += s.entity_fetches;
                obstacle_fetches += s.obstacle_fetches;
            }
            assert_eq!(
                entity_fetches,
                entities.tree().io_stats().fetches(),
                "{schedule:?} at {threads} threads: entity windows vs global"
            );
            assert_eq!(
                obstacle_fetches,
                obstacles.tree().io_stats().fetches(),
                "{schedule:?} at {threads} threads: obstacle windows vs global"
            );
        }
    }
}

#[test]
fn hilbert_recovers_the_locality_input_order_scattered() {
    // The clustered workload cycles its hotspots round-robin, so input
    // order hops clusters on almost every claim and the scene cache
    // keeps retiring; Hilbert order re-groups each hotspot's queries
    // into consecutive claims. The aggregate SceneCache hit count under
    // Hilbert must therefore be at least the InputOrder count — and
    // strictly better sequentially, where one worker sees every jump.
    let (entities, obstacles, city) = world();
    let engine = QueryEngine::new(&entities, &obstacles);
    let queries = clustered_queries(&city, 48, 0x5C41);

    let mut hilbert_at_one = 0usize;
    for threads in [1usize, 2] {
        let (a_input, s_input) = engine
            .batch(&queries)
            .options(BatchOptions::new(threads).schedule(Schedule::InputOrder))
            .collect();
        let (a_hilbert, s_hilbert) = engine
            .batch(&queries)
            .options(BatchOptions::new(threads).schedule(Schedule::Hilbert))
            .collect();
        for (i, (p, s)) in a_hilbert.iter().zip(a_input.iter()).enumerate() {
            assert!(p.same_results(s), "query {i} at {threads} threads");
        }
        assert!(
            s_hilbert.scene_reuses >= s_input.scene_reuses,
            "{threads} threads: Hilbert reuses {} < InputOrder reuses {}",
            s_hilbert.scene_reuses,
            s_input.scene_reuses
        );
        if threads == 1 {
            hilbert_at_one = s_hilbert.scene_reuses;
            assert!(
                s_hilbert.scene_reuses > s_input.scene_reuses,
                "sequential Hilbert must strictly beat input order on a \
                 round-robin-scattered clustered workload ({} vs {})",
                s_hilbert.scene_reuses,
                s_input.scene_reuses
            );
        }
    }
    assert!(hilbert_at_one > 0, "clustered workload must warm the cache");
}
