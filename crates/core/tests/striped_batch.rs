//! Batch determinism and I/O-accounting exactness with the PR 4
//! concurrency machinery fully enabled: lock-striped buffer pools on both
//! R-trees and per-worker cross-query scene caches in `run_batch`.

use obstacle_core::{Answer, EntityIndex, ObstacleIndex, Query, QueryEngine};
use obstacle_datagen::{query_workload, sample_entities, City, CityConfig};
use obstacle_rtree::{RTreeConfig, TreeBackend};

fn striped_world(shards: usize) -> (EntityIndex, ObstacleIndex, City) {
    let city = City::generate(CityConfig::new(160, 0x5744));
    let entities = EntityIndex::build(
        RTreeConfig::tiny(8).striped(shards),
        sample_entities(&city, 96, 0x5745),
    );
    let obstacles =
        ObstacleIndex::build(RTreeConfig::tiny(8).striped(shards), city.obstacles.clone());
    (entities, obstacles, city)
}

fn point_queries(city: &City) -> Vec<Query> {
    let mut queries = Vec::new();
    for (i, q) in query_workload(city, 24, 0x5746).into_iter().enumerate() {
        match i % 3 {
            0 => queries.push(Query::Range {
                q,
                e: 0.05 + 0.01 * (i % 7) as f64,
            }),
            1 => queries.push(Query::Nearest { q, k: 1 + i % 5 }),
            _ => {}
        }
    }
    for pair in query_workload(city, 8, 0x5747).chunks(2) {
        if let [a, b] = pair {
            queries.push(Query::Path { from: *a, to: *b });
        }
    }
    queries
}

#[test]
fn striped_buffers_and_scene_reuse_are_result_identical_at_every_thread_count() {
    let (entities, obstacles, city) = striped_world(8);
    let engine = QueryEngine::new(&entities, &obstacles);
    let queries = point_queries(&city);

    // Reference: plain sequential execution, fresh scene per query, on
    // the same striped trees (the buffer is pure accounting) …
    let sequential: Vec<Answer> = queries.iter().map(|q| engine.execute(q)).collect();
    assert!(sequential.iter().any(|a| a.result_count() > 0));

    // … and on single-shard trees (the pre-PR 4 configuration).
    let (e1, o1, _) = striped_world(1);
    let single = QueryEngine::new(&e1, &o1);
    for (i, (a, b)) in queries
        .iter()
        .map(|q| single.execute(q))
        .zip(sequential.iter())
        .enumerate()
    {
        assert!(
            a.same_results(b),
            "query {i}: single-shard vs striped diverged"
        );
    }

    for threads in [1usize, 2, 4, 8] {
        let (parallel, _) = engine.batch(&queries).threads(threads).collect();
        for (i, (p, s)) in parallel.iter().zip(sequential.iter()).enumerate() {
            assert!(
                p.same_results(s),
                "query {i} diverged at {threads} threads: {p:?} vs {s:?}"
            );
        }
    }
}

#[test]
fn per_query_io_windows_cover_the_global_aggregate_exactly() {
    // Every page access of a stats-bearing query happens inside its
    // thread-local attribution window, so summing the per-answer windows
    // must reproduce the tree-global deltas exactly — lost updates in
    // either the shard counters or the recorder windows would break the
    // equality. (Path queries carry no stats and are excluded.)
    let (entities, obstacles, city) = striped_world(4);
    let engine = QueryEngine::new(&entities, &obstacles);
    let queries: Vec<Query> = point_queries(&city)
        .into_iter()
        .filter(|q| !matches!(q, Query::Path { .. }))
        .collect();

    for threads in [2usize, 8] {
        entities.tree().reset_io_stats();
        obstacles.tree().reset_io_stats();
        let (answers, _) = engine.batch(&queries).threads(threads).collect();
        let (mut entity_fetches, mut obstacle_fetches) = (0u64, 0u64);
        for a in &answers {
            let s = a.stats().expect("workload carries stats");
            entity_fetches += s.entity_fetches;
            obstacle_fetches += s.obstacle_fetches;
        }
        let eg = entities.tree().io_stats();
        let og = obstacles.tree().io_stats();
        assert_eq!(
            entity_fetches,
            eg.fetches(),
            "{threads} threads: entity windows vs global"
        );
        assert_eq!(
            obstacle_fetches,
            og.fetches(),
            "{threads} threads: obstacle windows vs global"
        );
    }
}
