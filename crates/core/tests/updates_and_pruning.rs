//! Dynamic dataset updates and the ellipse-pruning extension.

use obstacle_core::{
    compute_obstructed_distance_pruned, BruteForce, EngineOptions, EntityIndex, LocalGraph,
    ObstacleIndex, QueryEngine,
};
use obstacle_datagen::{sample_entities, City, CityConfig};
use obstacle_geom::{Point, Polygon, Rect};
use obstacle_rtree::{RTreeConfig, TreeBackend};
use obstacle_visibility::EdgeBuilder;

fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
    Polygon::from_rect(Rect::from_coords(x0, y0, x1, y1))
}

// ---------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------

#[test]
fn inserting_an_obstacle_changes_subsequent_queries() {
    let mut obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), vec![]);
    let entities = EntityIndex::build(
        RTreeConfig::tiny(4),
        vec![Point::new(2.0, 0.0), Point::new(0.0, 2.2)],
    );
    let q = Point::new(0.0, 0.0);
    {
        let engine = QueryEngine::new(&entities, &obstacles);
        assert_eq!(engine.nearest(q, 1).neighbors[0].0, 0, "no wall yet");
    }
    let wall = obstacles.insert(square(1.0, -2.0, 1.2, 2.0));
    {
        let engine = QueryEngine::new(&entities, &obstacles);
        assert_eq!(
            engine.nearest(q, 1).neighbors[0].0,
            1,
            "the wall reroutes the NN"
        );
    }
    assert!(obstacles.delete(wall));
    {
        let engine = QueryEngine::new(&entities, &obstacles);
        assert_eq!(engine.nearest(q, 1).neighbors[0].0, 0, "wall removed");
    }
    assert!(!obstacles.delete(wall), "double delete reports absence");
}

#[test]
fn entity_updates_are_visible_to_queries() {
    let mut entities = EntityIndex::build(RTreeConfig::tiny(4), vec![Point::new(0.9, 0.9)]);
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), vec![square(0.4, 0.4, 0.6, 0.6)]);
    let q = Point::new(0.1, 0.1);
    {
        let engine = QueryEngine::new(&entities, &obstacles);
        assert_eq!(engine.nearest(q, 1).neighbors[0].0, 0);
    }
    let near = entities.insert(Point::new(0.2, 0.2));
    {
        let engine = QueryEngine::new(&entities, &obstacles);
        let r = engine.nearest(q, 2);
        assert_eq!(r.neighbors[0].0, near);
        assert_eq!(r.neighbors.len(), 2);
    }
    assert!(entities.delete(near));
    {
        let engine = QueryEngine::new(&entities, &obstacles);
        let r = engine.nearest(q, 2);
        assert_eq!(r.neighbors.len(), 1);
        assert_eq!(r.neighbors[0].0, 0);
    }
}

#[test]
fn updates_match_rebuilt_indexes_on_random_city() {
    let city = City::generate(CityConfig::new(30, 9));
    let pts = sample_entities(&city, 40, 1);
    // Build with the first 30 points, then insert the remaining 10.
    let mut updated = EntityIndex::build(RTreeConfig::tiny(8), pts[..30].to_vec());
    for &p in &pts[30..] {
        updated.insert(p);
    }
    // Delete every 5th of the original 30.
    let mut live: Vec<Point> = Vec::new();
    for (i, &p) in pts.iter().enumerate() {
        if i < 30 && i % 5 == 0 {
            assert!(updated.delete(i as u64));
        } else {
            live.push(p);
        }
    }
    updated.tree().reset_buffer();

    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
    let oracle = BruteForce::new(city.obstacles.clone());
    let engine = QueryEngine::new(&updated, &obstacles);
    let q = Point::new(0.5, 0.5);
    let got = engine.nearest(q, 10);
    let expect = oracle.nearest(&live, q, 10);
    assert_eq!(got.neighbors.len(), expect.len());
    for (g, x) in got.neighbors.iter().zip(expect.iter()) {
        assert!((g.1 - x.1).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Ellipse pruning
// ---------------------------------------------------------------------

fn distance_with(
    ellipse: bool,
    obstacles: &ObstacleIndex,
    a: Point,
    b: Point,
) -> (Option<f64>, usize) {
    let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
    let na = g.add_waypoint(a, 0);
    let nb = g.add_waypoint(b, u64::MAX);
    let d = compute_obstructed_distance_pruned(&mut g, na, nb, obstacles, ellipse);
    (d, g.obstacle_count())
}

#[test]
fn ellipse_pruning_preserves_distances_and_shrinks_graphs() {
    let city = City::generate(CityConfig::new(120, 13));
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
    let pts = sample_entities(&city, 14, 2);
    let mut ellipse_never_bigger = true;
    let mut strictly_smaller_at_least_once = false;
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            let (d_circle, n_circle) = distance_with(false, &obstacles, pts[i], pts[j]);
            let (d_ellipse, n_ellipse) = distance_with(true, &obstacles, pts[i], pts[j]);
            match (d_circle, d_ellipse) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{i},{j}: {a} vs {b}"),
                (x, y) => assert_eq!(x.is_some(), y.is_some()),
            }
            ellipse_never_bigger &= n_ellipse <= n_circle;
            strictly_smaller_at_least_once |= n_ellipse < n_circle;
        }
    }
    assert!(ellipse_never_bigger, "the ellipse is a subset of the disk");
    assert!(
        strictly_smaller_at_least_once,
        "pruning should pay off somewhere on a 120-obstacle city"
    );
}

#[test]
fn engine_results_identical_under_ellipse_pruning() {
    let city = City::generate(CityConfig::new(50, 17));
    let pts = sample_entities(&city, 60, 3);
    let entities = EntityIndex::build(RTreeConfig::tiny(8), pts);
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
    let plain = QueryEngine::new(&entities, &obstacles);
    let pruned = QueryEngine::with_options(
        &entities,
        &obstacles,
        EngineOptions {
            ellipse_pruning: true,
            ..Default::default()
        },
    );
    for q in sample_entities(&city, 4, 4) {
        let a = plain.nearest(q, 8).neighbors;
        let b = pruned.nearest(q, 8).neighbors;
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.1 - y.1).abs() < 1e-9);
        }
    }
}

#[test]
fn tangent_filter_preserves_range_and_join_results() {
    use obstacle_core::distance_join;
    let city = City::generate(CityConfig::new(60, 23));
    let pts = sample_entities(&city, 80, 5);
    let entities = EntityIndex::build(RTreeConfig::tiny(8), pts);
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
    let tangent = EngineOptions {
        tangent_filter: true,
        ..Default::default()
    };
    let plain_engine = QueryEngine::new(&entities, &obstacles);
    let tangent_engine = QueryEngine::with_options(&entities, &obstacles, tangent);
    for q in sample_entities(&city, 5, 6) {
        for e in [0.08, 0.2] {
            let a = plain_engine.range(q, e).hits;
            let b = tangent_engine.range(q, e).hits;
            assert_eq!(a.len(), b.len(), "q {q} e {e}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.0, y.0);
                assert!((x.1 - y.1).abs() < 1e-9);
            }
        }
    }
    // Join with and without the filter.
    let t_pts = sample_entities(&city, 30, 7);
    let t = EntityIndex::build(RTreeConfig::tiny(8), t_pts);
    let a = distance_join(&entities, &t, &obstacles, 0.1, EngineOptions::default());
    let b = distance_join(&entities, &t, &obstacles, 0.1, tangent);
    let mut x: Vec<(u64, u64)> = a.pairs.iter().map(|(s, t, _)| (*s, *t)).collect();
    let mut y: Vec<(u64, u64)> = b.pairs.iter().map(|(s, t, _)| (*s, *t)).collect();
    x.sort_unstable();
    y.sort_unstable();
    assert_eq!(x, y);
}

#[test]
fn unreachable_handled_identically_with_ellipse() {
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), vec![square(0.0, 0.0, 1.0, 1.0)]);
    let inside = Point::new(0.5, 0.5);
    let outside = Point::new(2.0, 2.0);
    assert_eq!(distance_with(false, &obstacles, inside, outside).0, None);
    assert_eq!(distance_with(true, &obstacles, inside, outside).0, None);
}
