//! Property-based end-to-end tests: random cities, random parameters,
//! every operator against the brute-force oracle. Runs on the in-tree
//! deterministic harness ([`obstacle_geom::check`]).

use obstacle_core::{
    closest_pairs, distance_join, BruteForce, EngineOptions, EntityIndex, ObstacleIndex,
    QueryEngine,
};
use obstacle_datagen::{sample_entities, City, CityConfig, ObstacleShape};
use obstacle_geom::check;
use obstacle_geom::Point;
use obstacle_rtree::RTreeConfig;

const TOL: f64 = 1e-9;
const CASES: u32 = 10;

fn build_world(
    obstacle_count: usize,
    entity_count: usize,
    seed: u64,
    convex: bool,
) -> (Vec<Point>, EntityIndex, ObstacleIndex, BruteForce) {
    let city = City::generate(CityConfig {
        shape: if convex {
            ObstacleShape::ConvexPolygon { max_vertices: 6 }
        } else {
            ObstacleShape::StreetRect
        },
        ..CityConfig::new(obstacle_count, seed)
    });
    let pts = sample_entities(&city, entity_count, seed + 1);
    (
        pts.clone(),
        EntityIndex::build(RTreeConfig::tiny(6), pts),
        ObstacleIndex::build(RTreeConfig::tiny(6), city.obstacles.clone()),
        BruteForce::new(city.obstacles),
    )
}

#[test]
fn random_range_queries_match_oracle() {
    check::cases(CASES, |g| {
        let seed = g.u64(0, 500);
        let obstacle_count = g.usize(5, 25);
        let entity_count = g.usize(5, 30);
        let q = Point::new(g.f64(0.05, 0.95), g.f64(0.05, 0.95));
        let e = g.f64(0.02, 0.4);
        let convex = g.bool();
        let (pts, entities, obstacles, oracle) =
            build_world(obstacle_count, entity_count, seed, convex);
        let engine = QueryEngine::new(&entities, &obstacles);
        let got = engine.range(q, e);
        let expect = oracle.range(&pts, q, e);
        assert_eq!(
            got.hits.len(),
            expect.len(),
            "q {} e {}: {:?} vs {:?}",
            q,
            e,
            got.hits,
            expect
        );
        for (got_hit, expect_hit) in got.hits.iter().zip(expect.iter()) {
            assert!((got_hit.1 - expect_hit.1).abs() < TOL);
        }
    });
}

#[test]
fn random_nn_queries_match_oracle() {
    check::cases(CASES, |g| {
        let seed = g.u64(500, 1000);
        let obstacle_count = g.usize(5, 25);
        let entity_count = g.usize(5, 30);
        let q = Point::new(g.f64(0.05, 0.95), g.f64(0.05, 0.95));
        let k = g.usize(1, 8);
        let convex = g.bool();
        let (pts, entities, obstacles, oracle) =
            build_world(obstacle_count, entity_count, seed, convex);
        let engine = QueryEngine::new(&entities, &obstacles);
        let got = engine.nearest(q, k);
        let expect = oracle.nearest(&pts, q, k);
        assert_eq!(got.neighbors.len(), expect.len());
        for (got_nn, expect_nn) in got.neighbors.iter().zip(expect.iter()) {
            assert!(
                (got_nn.1 - expect_nn.1).abs() < TOL,
                "q {} k {}: {:?} vs {:?}",
                q,
                k,
                got.neighbors,
                expect
            );
        }
    });
}

#[test]
fn random_joins_match_oracle() {
    check::cases(CASES, |g| {
        let seed = g.u64(1000, 1500);
        let obstacle_count = g.usize(5, 20);
        let s_count = g.usize(4, 15);
        let t_count = g.usize(4, 15);
        let e = g.f64(0.02, 0.25);
        let city = City::generate(CityConfig::new(obstacle_count, seed));
        let s_pts = sample_entities(&city, s_count, seed + 10);
        let t_pts = sample_entities(&city, t_count, seed + 20);
        let s = EntityIndex::build(RTreeConfig::tiny(6), s_pts.clone());
        let t = EntityIndex::build(RTreeConfig::tiny(6), t_pts.clone());
        let o = ObstacleIndex::build(RTreeConfig::tiny(6), city.obstacles.clone());
        let oracle = BruteForce::new(city.obstacles);
        let got = distance_join(&s, &t, &o, e, EngineOptions::default());
        let expect = oracle.join(&s_pts, &t_pts, e);
        let mut got_ids: Vec<(u64, u64)> = got.pairs.iter().map(|(a, b, _)| (*a, *b)).collect();
        let mut expect_ids: Vec<(u64, u64)> = expect.iter().map(|(a, b, _)| (*a, *b)).collect();
        got_ids.sort_unstable();
        expect_ids.sort_unstable();
        assert_eq!(got_ids, expect_ids);
    });
}

#[test]
fn random_closest_pairs_match_oracle() {
    check::cases(CASES, |g| {
        let seed = g.u64(1500, 2000);
        let obstacle_count = g.usize(5, 18);
        let s_count = g.usize(3, 10);
        let t_count = g.usize(3, 10);
        let k = g.usize(1, 6);
        let city = City::generate(CityConfig::new(obstacle_count, seed));
        let s_pts = sample_entities(&city, s_count, seed + 10);
        let t_pts = sample_entities(&city, t_count, seed + 20);
        let s = EntityIndex::build(RTreeConfig::tiny(6), s_pts.clone());
        let t = EntityIndex::build(RTreeConfig::tiny(6), t_pts.clone());
        let o = ObstacleIndex::build(RTreeConfig::tiny(6), city.obstacles.clone());
        let oracle = BruteForce::new(city.obstacles);
        let got = closest_pairs(&s, &t, &o, k, EngineOptions::default());
        let expect = oracle.closest_pairs(&s_pts, &t_pts, k);
        assert_eq!(got.pairs.len(), expect.len());
        for (got_pair, expect_pair) in got.pairs.iter().zip(expect.iter()) {
            assert!(
                (got_pair.2 - expect_pair.2).abs() < TOL,
                "k {}: {:?} vs {:?}",
                k,
                got.pairs,
                expect
            );
        }
    });
}
