//! Property-based end-to-end tests: random cities, random parameters,
//! every operator against the brute-force oracle.

use obstacle_core::{
    closest_pairs, distance_join, BruteForce, EngineOptions, EntityIndex, ObstacleIndex,
    QueryEngine,
};
use obstacle_datagen::{sample_entities, City, CityConfig, ObstacleShape};
use obstacle_geom::Point;
use obstacle_rtree::RTreeConfig;
use proptest::prelude::*;

const TOL: f64 = 1e-9;

fn build_world(
    obstacle_count: usize,
    entity_count: usize,
    seed: u64,
    convex: bool,
) -> (Vec<Point>, EntityIndex, ObstacleIndex, BruteForce) {
    let city = City::generate(CityConfig {
        shape: if convex {
            ObstacleShape::ConvexPolygon { max_vertices: 6 }
        } else {
            ObstacleShape::StreetRect
        },
        ..CityConfig::new(obstacle_count, seed)
    });
    let pts = sample_entities(&city, entity_count, seed + 1);
    (
        pts.clone(),
        EntityIndex::build(RTreeConfig::tiny(6), pts),
        ObstacleIndex::build(RTreeConfig::tiny(6), city.obstacles.clone()),
        BruteForce::new(city.obstacles),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_range_queries_match_oracle(
        seed in 0u64..500,
        obstacle_count in 5usize..25,
        entity_count in 5usize..30,
        qx in 0.05f64..0.95,
        qy in 0.05f64..0.95,
        e in 0.02f64..0.4,
        convex in any::<bool>(),
    ) {
        let (pts, entities, obstacles, oracle) =
            build_world(obstacle_count, entity_count, seed, convex);
        let engine = QueryEngine::new(&entities, &obstacles);
        let q = Point::new(qx, qy);
        let got = engine.range(q, e);
        let expect = oracle.range(&pts, q, e);
        prop_assert_eq!(got.hits.len(), expect.len(),
            "q {} e {}: {:?} vs {:?}", q, e, got.hits, expect);
        for (g, x) in got.hits.iter().zip(expect.iter()) {
            prop_assert!((g.1 - x.1).abs() < TOL);
        }
    }

    #[test]
    fn random_nn_queries_match_oracle(
        seed in 500u64..1000,
        obstacle_count in 5usize..25,
        entity_count in 5usize..30,
        qx in 0.05f64..0.95,
        qy in 0.05f64..0.95,
        k in 1usize..8,
        convex in any::<bool>(),
    ) {
        let (pts, entities, obstacles, oracle) =
            build_world(obstacle_count, entity_count, seed, convex);
        let engine = QueryEngine::new(&entities, &obstacles);
        let q = Point::new(qx, qy);
        let got = engine.nearest(q, k);
        let expect = oracle.nearest(&pts, q, k);
        prop_assert_eq!(got.neighbors.len(), expect.len());
        for (g, x) in got.neighbors.iter().zip(expect.iter()) {
            prop_assert!((g.1 - x.1).abs() < TOL,
                "q {} k {}: {:?} vs {:?}", q, k, got.neighbors, expect);
        }
    }

    #[test]
    fn random_joins_match_oracle(
        seed in 1000u64..1500,
        obstacle_count in 5usize..20,
        s_count in 4usize..15,
        t_count in 4usize..15,
        e in 0.02f64..0.25,
    ) {
        let city = City::generate(CityConfig::new(obstacle_count, seed));
        let s_pts = sample_entities(&city, s_count, seed + 10);
        let t_pts = sample_entities(&city, t_count, seed + 20);
        let s = EntityIndex::build(RTreeConfig::tiny(6), s_pts.clone());
        let t = EntityIndex::build(RTreeConfig::tiny(6), t_pts.clone());
        let o = ObstacleIndex::build(RTreeConfig::tiny(6), city.obstacles.clone());
        let oracle = BruteForce::new(city.obstacles);
        let got = distance_join(&s, &t, &o, e, EngineOptions::default());
        let expect = oracle.join(&s_pts, &t_pts, e);
        let mut g: Vec<(u64, u64)> = got.pairs.iter().map(|(a, b, _)| (*a, *b)).collect();
        let mut x: Vec<(u64, u64)> = expect.iter().map(|(a, b, _)| (*a, *b)).collect();
        g.sort_unstable();
        x.sort_unstable();
        prop_assert_eq!(g, x);
    }

    #[test]
    fn random_closest_pairs_match_oracle(
        seed in 1500u64..2000,
        obstacle_count in 5usize..18,
        s_count in 3usize..10,
        t_count in 3usize..10,
        k in 1usize..6,
    ) {
        let city = City::generate(CityConfig::new(obstacle_count, seed));
        let s_pts = sample_entities(&city, s_count, seed + 10);
        let t_pts = sample_entities(&city, t_count, seed + 20);
        let s = EntityIndex::build(RTreeConfig::tiny(6), s_pts.clone());
        let t = EntityIndex::build(RTreeConfig::tiny(6), t_pts.clone());
        let o = ObstacleIndex::build(RTreeConfig::tiny(6), city.obstacles.clone());
        let oracle = BruteForce::new(city.obstacles);
        let got = closest_pairs(&s, &t, &o, k, EngineOptions::default());
        let expect = oracle.closest_pairs(&s_pts, &t_pts, k);
        prop_assert_eq!(got.pairs.len(), expect.len());
        for (g, x) in got.pairs.iter().zip(expect.iter()) {
            prop_assert!((g.2 - x.2).abs() < TOL,
                "k {}: {:?} vs {:?}", k, got.pairs, expect);
        }
    }
}
