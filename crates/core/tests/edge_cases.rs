//! Edge cases and degenerate inputs for the query processors.

use obstacle_core::{
    closest_pairs, distance_join, EngineOptions, EntityIndex, ObstacleIndex, QueryEngine,
};
use obstacle_geom::{Point, Polygon, Rect};
use obstacle_rtree::RTreeConfig;

fn no_obstacles() -> ObstacleIndex {
    ObstacleIndex::build(RTreeConfig::tiny(4), vec![])
}

fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
    Polygon::from_rect(Rect::from_coords(x0, y0, x1, y1))
}

#[test]
fn without_obstacles_everything_is_euclidean() {
    let pts = vec![
        Point::new(0.1, 0.1),
        Point::new(0.9, 0.9),
        Point::new(0.5, 0.2),
        Point::new(0.3, 0.7),
    ];
    let entities = EntityIndex::build(RTreeConfig::tiny(4), pts.clone());
    let obstacles = no_obstacles();
    let engine = QueryEngine::new(&entities, &obstacles);
    let q = Point::new(0.4, 0.4);

    let nn = engine.nearest(q, 4);
    let mut expect: Vec<(u64, f64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p.dist(q)))
        .collect();
    expect.sort_by(|a, b| obstacle_geom::total_cmp(a.1, b.1));
    for (g, x) in nn.neighbors.iter().zip(expect.iter()) {
        assert!((g.1 - x.1).abs() < 1e-12);
    }
    assert_eq!(nn.stats.false_hits, 0, "no obstacles ⇒ no false hits");

    let r = engine.range(q, 0.35);
    for (id, d) in &r.hits {
        assert!((entities.position(*id).dist(q) - d).abs() < 1e-12);
    }
}

#[test]
fn empty_entity_dataset() {
    let entities = EntityIndex::build(RTreeConfig::tiny(4), vec![]);
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), vec![square(0.4, 0.4, 0.6, 0.6)]);
    let engine = QueryEngine::new(&entities, &obstacles);
    let q = Point::new(0.1, 0.1);
    assert!(engine.nearest(q, 5).neighbors.is_empty());
    assert!(engine.range(q, 1.0).hits.is_empty());
    assert!(engine.nearest_incremental(q).next().is_none());
}

#[test]
fn zero_range_and_zero_k() {
    let pts = vec![Point::new(0.2, 0.2), Point::new(0.8, 0.8)];
    let entities = EntityIndex::build(RTreeConfig::tiny(4), pts);
    let obstacles = no_obstacles();
    let engine = QueryEngine::new(&entities, &obstacles);
    assert!(engine.nearest(Point::new(0.5, 0.5), 0).neighbors.is_empty());
    // Zero range still reports entities at the exact query position.
    let on_entity = engine.range(Point::new(0.2, 0.2), 0.0);
    assert_eq!(on_entity.hits.len(), 1);
    assert_eq!(on_entity.hits[0], (0, 0.0));
    let off_entity = engine.range(Point::new(0.5, 0.5), 0.0);
    assert!(off_entity.hits.is_empty());
}

#[test]
fn query_point_coincides_with_entity() {
    let pts = vec![Point::new(0.5, 0.5), Point::new(0.6, 0.5)];
    let entities = EntityIndex::build(RTreeConfig::tiny(4), pts);
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), vec![square(0.52, 0.4, 0.58, 0.6)]);
    let engine = QueryEngine::new(&entities, &obstacles);
    let nn = engine.nearest(Point::new(0.5, 0.5), 2);
    assert_eq!(nn.neighbors[0], (0, 0.0));
    // The second entity is behind the small wall: detour required.
    assert!(nn.neighbors[1].1 > 0.1 - 1e-9);
}

#[test]
fn duplicate_entities_all_reported() {
    let p = Point::new(0.3, 0.3);
    let pts = vec![p; 5];
    let entities = EntityIndex::build(RTreeConfig::tiny(4), pts);
    let obstacles = no_obstacles();
    let engine = QueryEngine::new(&entities, &obstacles);
    let r = engine.range(Point::new(0.3, 0.3), 0.1);
    assert_eq!(r.hits.len(), 5);
    let nn = engine.nearest(Point::new(0.0, 0.0), 5);
    assert_eq!(nn.neighbors.len(), 5);
    let d = nn.neighbors[0].1;
    assert!(nn.neighbors.iter().all(|(_, x)| (x - d).abs() < 1e-12));
}

#[test]
fn join_with_itself_and_binary_symmetric_stats() {
    let pts = vec![
        Point::new(0.1, 0.1),
        Point::new(0.2, 0.1),
        Point::new(0.9, 0.9),
    ];
    let s = EntityIndex::build(RTreeConfig::tiny(4), pts);
    let obstacles = no_obstacles();
    let r = distance_join(&s, &s, &obstacles, 0.15, EngineOptions::default());
    // Pairs: all self pairs (3) plus (0,1) and (1,0).
    assert_eq!(r.pairs.len(), 5);
    assert_eq!(r.stats.false_hits, 0);
}

#[test]
fn closest_pairs_with_k_exceeding_pair_count() {
    let s = EntityIndex::build(RTreeConfig::tiny(4), vec![Point::new(0.1, 0.1)]);
    let t = EntityIndex::build(
        RTreeConfig::tiny(4),
        vec![Point::new(0.2, 0.2), Point::new(0.3, 0.3)],
    );
    let obstacles = no_obstacles();
    let r = closest_pairs(&s, &t, &obstacles, 10, EngineOptions::default());
    assert_eq!(r.pairs.len(), 2);
    assert!(r.pairs[0].2 <= r.pairs[1].2);
}

#[test]
fn entity_wedged_between_touching_obstacles() {
    // Two obstacles touching at a point; an entity exactly at the touch
    // point is reachable (boundaries are walkable).
    let a = square(0.2, 0.2, 0.5, 0.5);
    let b = square(0.5, 0.5, 0.8, 0.8);
    let pts = vec![Point::new(0.5, 0.5)];
    let entities = EntityIndex::build(RTreeConfig::tiny(4), pts);
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(4), vec![a, b]);
    let engine = QueryEngine::new(&entities, &obstacles);
    let nn = engine.nearest(Point::new(0.1, 0.5), 1);
    assert_eq!(nn.neighbors.len(), 1);
    assert!(nn.neighbors[0].1.is_finite());
}

#[test]
fn very_large_k_on_obstructed_scene_is_complete() {
    let pts: Vec<Point> = (0..30)
        .map(|i| Point::new(0.03 * i as f64 + 0.05, ((i * 7) % 13) as f64 / 13.0))
        .collect();
    let entities = EntityIndex::build(RTreeConfig::tiny(4), pts.clone());
    let obstacles = ObstacleIndex::build(
        RTreeConfig::tiny(4),
        vec![square(0.3, 0.3, 0.45, 0.7), square(0.6, 0.1, 0.7, 0.5)],
    );
    let engine = QueryEngine::new(&entities, &obstacles);
    let nn = engine.nearest(Point::new(0.5, 0.5), 30);
    // Entities that fall strictly inside an obstacle are unreachable and
    // must be skipped; every other entity must be reported.
    let reachable = pts
        .iter()
        .filter(|p| {
            obstacles
                .live_polygons()
                .all(|(_, poly)| poly.locate(**p) != obstacle_geom::PointLocation::Inside)
        })
        .count();
    assert!(reachable < 30, "test scene should trap a few entities");
    assert_eq!(nn.neighbors.len(), reachable);
    for w in nn.neighbors.windows(2) {
        assert!(w[0].1 <= w[1].1 + 1e-12);
    }
}
