//! `SceneCache` budget and boundary edge cases: retirement budgets and
//! the universe-slack reuse threshold only decide *when* a scene is
//! rebuilt — answers match fresh-scene execution under every setting.

use obstacle_core::{
    BatchOptions, EngineOptions, EntityIndex, ObstacleIndex, Query, QueryEngine, SceneBudget,
    SceneCache,
};
use obstacle_datagen::{sample_entities, City, CityConfig};
use obstacle_geom::{Point, Rect};
use obstacle_rtree::RTreeConfig;

fn world() -> (EntityIndex, ObstacleIndex, City) {
    let city = City::generate(CityConfig::new(80, 0xCAC4E));
    let entities = EntityIndex::build(RTreeConfig::tiny(8), sample_entities(&city, 48, 0xCAC4F));
    let obstacles = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
    (entities, obstacles, city)
}

fn probe_queries(city: &City) -> Vec<Query> {
    // Clustered NN/range probes that would reuse the scene under default
    // budgets (all within a hair of each other).
    let c = city.universe.center();
    (0..8)
        .map(|i| {
            let p = Point::new(c.x + 1e-4 * i as f64, c.y);
            if i % 2 == 0 {
                Query::Nearest { q: p, k: 2 }
            } else {
                Query::Range { q: p, e: 0.03 }
            }
        })
        .collect()
}

/// Runs `queries` through one cache and asserts every answer matches
/// fresh-scene execution; returns the cache for budget assertions.
fn run_through_cache(
    engine: &QueryEngine<'_>,
    queries: &[Query],
    budget: SceneBudget,
) -> SceneCache {
    let mut cache = SceneCache::with_budget(engine.options, budget);
    for (i, q) in queries.iter().enumerate() {
        let cached = engine.execute_with(q, &mut cache);
        let fresh = engine.execute(q);
        assert!(
            cached.same_results(&fresh),
            "budget {budget:?}: query {i} diverged from fresh execution"
        );
    }
    cache
}

#[test]
fn zero_slot_budget_retires_aggressively_but_never_changes_answers() {
    let (entities, obstacles, city) = world();
    let engine = QueryEngine::new(&entities, &obstacles);
    let queries = probe_queries(&city);

    let default_cache = run_through_cache(&engine, &queries, SceneBudget::default());
    let strict = SceneBudget {
        slot_slack: 0,
        ..SceneBudget::default()
    };
    let strict_cache = run_through_cache(&engine, &queries, strict);
    // The strict budget can only retire more often, never less.
    assert!(strict_cache.resets() >= default_cache.resets());
    assert!(strict_cache.reuses() <= default_cache.reuses());
}

#[test]
fn zero_slot_budget_retires_a_scene_that_only_held_waypoints() {
    // Probes in an obstacle-free corner absorb nothing: the scene's node
    // slots are pure waypoint churn, so a zero slot slack retires it on
    // every subsequent query.
    let entities = EntityIndex::build(
        RTreeConfig::tiny(4),
        vec![Point::new(0.5, 0.0), Point::new(1.0, 0.5)],
    );
    let obstacles = ObstacleIndex::build(
        RTreeConfig::tiny(4),
        vec![obstacle_geom::Polygon::from_rect(Rect::from_coords(
            90.0, 90.0, 91.0, 91.0,
        ))],
    );
    let engine = QueryEngine::new(&entities, &obstacles);
    let queries: Vec<Query> = (0..4)
        .map(|i| Query::Nearest {
            q: Point::new(0.01 * i as f64, 0.0),
            k: 1,
        })
        .collect();
    let cache = run_through_cache(
        &engine,
        &queries,
        SceneBudget {
            slot_slack: 0,
            ..SceneBudget::default()
        },
    );
    assert_eq!(cache.reuses(), 0, "zero slack must forbid waypoint churn");
    assert_eq!(cache.resets(), queries.len() - 1);
}

#[test]
fn obstacle_budget_smaller_than_one_scene_rebuilds_every_query() {
    let (entities, obstacles, city) = world();
    let engine = QueryEngine::new(&entities, &obstacles);
    let queries = probe_queries(&city);

    // A budget of zero obstacles is smaller than any scene that absorbed
    // anything: the moment a query pulls one obstacle in, the next
    // `scene_for` retires the scene. Answers must not move.
    let cache = run_through_cache(
        &engine,
        &queries,
        SceneBudget {
            max_obstacles: 0,
            ..SceneBudget::default()
        },
    );
    // The central probes absorb obstacles (the city is dense), so the
    // cache must have been retired at least once — and the default
    // budget's reuse economics are gone.
    assert!(
        cache.resets() > 0,
        "absorbing any obstacle must blow a zero obstacle budget"
    );
}

#[test]
fn reuse_boundary_is_inclusive_at_exactly_the_slack_distance() {
    let mut cache = SceneCache::new(EngineOptions::default());
    let slack = 0.5;
    let r1 = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
    cache.scene_for(r1, slack);
    assert_eq!(
        (cache.reuses(), cache.resets()),
        (0, 0),
        "first scene is fresh"
    );

    // mindist(coverage, r2) == slack exactly (clean binary floats).
    let r2 = Rect::from_coords(1.5, 0.0, 2.0, 1.0);
    cache.scene_for(r2, slack);
    assert_eq!(
        (cache.reuses(), cache.resets()),
        (1, 0),
        "a region exactly at the slack boundary must reuse the scene"
    );

    // One ulp-scale step beyond the boundary retires it. Coverage is now
    // the union [0,2]×[0,1].
    let r3 = Rect::from_coords(2.5 + 1e-9, 0.0, 3.0, 1.0);
    cache.scene_for(r3, slack);
    assert_eq!(
        (cache.reuses(), cache.resets()),
        (1, 1),
        "a region beyond the slack boundary must retire the scene"
    );
}

#[test]
fn slack_for_is_two_percent_of_the_universe_diagonal() {
    let u = Rect::from_coords(0.0, 0.0, 3.0, 4.0);
    assert!((SceneCache::slack_for(&u) - 0.02 * 5.0).abs() < 1e-12);
}

#[test]
fn region_jump_mid_batch_retires_the_cache_and_answers_hold() {
    let (entities, obstacles, city) = world();
    let engine = QueryEngine::new(&entities, &obstacles);
    let u = city.universe;
    // Two tight clusters in opposite corners, far beyond the 2 % slack,
    // visited A A A B B B by input order: the jump must retire the scene
    // exactly once and both clusters must still reuse internally.
    let corner = |cx: f64, cy: f64, i: usize| {
        Point::new(
            u.min.x + cx * u.width() + 1e-4 * i as f64,
            u.min.y + cy * u.height(),
        )
    };
    let mut queries = Vec::new();
    for i in 0..3 {
        queries.push(Query::Nearest {
            q: corner(0.05, 0.05, i),
            k: 2,
        });
    }
    for i in 0..3 {
        queries.push(Query::Nearest {
            q: corner(0.95, 0.95, i),
            k: 2,
        });
    }

    let sequential: Vec<_> = queries.iter().map(|q| engine.execute(q)).collect();
    let mut streamed = vec![None; queries.len()];
    let stats = engine
        .batch(&queries)
        .options(BatchOptions::new(1))
        .each(|i, a| {
            streamed[i] = Some(a);
        });
    for (i, (s, f)) in streamed.iter().zip(sequential.iter()).enumerate() {
        assert!(
            s.as_ref().expect("delivered").same_results(f),
            "query {i} diverged across the region jump"
        );
    }
    assert_eq!(stats.scene_resets, 1, "exactly the A→B jump retires");
    assert_eq!(stats.scene_reuses, 4, "both clusters reuse internally");
}
