//! Backend-equivalence oracle suite: every operator must answer
//! **bit-identically** on the paged R*-tree and the packed static tree.
//!
//! The packed backend visits leaves in Hilbert order while the paged
//! tree follows its R* topology, so candidate *orders* differ — but all
//! six operators are pure functions of the candidate *sets*, and the
//! obstructed distances they refine are sums over the same visibility
//! edges. Answers are therefore compared after canonical sorting, with
//! distances compared by `f64::to_bits` (no epsilon): any backend
//! divergence, however small, fails the suite.
//!
//! Covered, per the PR 6 acceptance bar:
//! * OR (range), ONN + iONN (nearest, incremental), ODJ (e-distance
//!   join), distance semi-join (both strategies), OCP + iOCP (closest
//!   pairs, incremental), and obstructed shortest paths;
//! * the concurrent batch engine at 1/2/4/8 worker threads under both
//!   schedules, every run compared to the paged sequential loop;
//! * a packed tree surviving a persist → decode → query round-trip.

use obstacle_core::{
    closest_pairs, distance_join, incremental_closest_pairs, semi_join, shortest_obstructed_path,
    Answer, BatchOptions, EngineOptions, EntityIndex, ObstacleIndex, Query, QueryEngine, Schedule,
    SemiJoinStrategy,
};
use obstacle_datagen::{batch_workload, sample_entities, BatchMix, BatchQuery, City, CityConfig};
use obstacle_geom::Point;
use obstacle_rtree::{AnyTree, Backend, Item, RTreeConfig, TreeBackend};
use obstacle_visibility::EdgeBuilder;

/// One city scene indexed twice — identical data, different storage.
struct Worlds {
    paged_entities: EntityIndex,
    paged_obstacles: ObstacleIndex,
    packed_entities: EntityIndex,
    packed_obstacles: ObstacleIndex,
    city: City,
}

fn worlds(seed: u64) -> Worlds {
    // Small enough for debug-mode obstructed refinement, dense enough
    // that every operator meets real detours (cf. the schedule suite).
    let city = City::generate(CityConfig::new(64, seed));
    let points = sample_entities(&city, 48, seed ^ 0xE11);
    let paged = RTreeConfig::tiny(8);
    let packed = RTreeConfig::tiny(8).with_backend(Backend::Packed);
    Worlds {
        paged_entities: EntityIndex::build(paged, points.clone()),
        paged_obstacles: ObstacleIndex::build(paged, city.obstacles.clone()),
        packed_entities: EntityIndex::build(packed, points),
        packed_obstacles: ObstacleIndex::build(packed, city.obstacles.clone()),
        city,
    }
}

/// Canonical form of a scored id list: sorted by (distance bits, id),
/// distances collapsed to their exact bit patterns.
fn canon(rows: &[(u64, f64)]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = rows.iter().map(|&(id, d)| (d.to_bits(), id)).collect();
    v.sort_unstable();
    v.into_iter().map(|(bits, id)| (id, bits)).collect()
}

/// Canonical form of scored id pairs.
fn canon_pairs(rows: &[(u64, u64, f64)]) -> Vec<(u64, u64, u64)> {
    let mut v: Vec<(u64, u64, u64)> = rows.iter().map(|&(a, b, d)| (d.to_bits(), a, b)).collect();
    v.sort_unstable();
    v.into_iter().map(|(bits, a, b)| (a, b, bits)).collect()
}

#[test]
fn range_nearest_and_paths_answer_identically() {
    let w = worlds(0xBE01);
    let paged = QueryEngine::new(&w.paged_entities, &w.paged_obstacles);
    let packed = QueryEngine::new(&w.packed_entities, &w.packed_obstacles);

    let probes = [
        Point::new(0.2, 0.3),
        Point::new(0.51, 0.49),
        Point::new(0.85, 0.12),
    ];
    for q in probes {
        // OR at two radii (the second large enough to absorb detours).
        for e in [0.08, 0.3] {
            let a = paged.range(q, e);
            let b = packed.range(q, e);
            assert_eq!(canon(&a.hits), canon(&b.hits), "range({q}, {e})");
        }
        // ONN.
        for k in [1usize, 4] {
            let a = paged.nearest(q, k);
            let b = packed.nearest(q, k);
            assert_eq!(
                canon(&a.neighbors),
                canon(&b.neighbors),
                "nearest({q}, {k})"
            );
        }
        // iONN prefix.
        let a: Vec<(u64, f64)> = paged.nearest_incremental(q).take(6).collect();
        let b: Vec<(u64, f64)> = packed.nearest_incremental(q).take(6).collect();
        assert_eq!(canon(&a), canon(&b), "nearest_incremental({q})");
    }

    // Obstructed shortest paths: distance and the polyline itself.
    let (from, to) = (Point::new(0.02, 0.03), Point::new(0.97, 0.95));
    let a = shortest_obstructed_path(from, to, &w.paged_obstacles, EdgeBuilder::RotationalSweep)
        .expect("corners connected");
    let b = shortest_obstructed_path(from, to, &w.packed_obstacles, EdgeBuilder::RotationalSweep)
        .expect("corners connected");
    assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "path distance");
    assert_eq!(a.points, b.points, "path polyline");
}

#[test]
fn joins_and_closest_pairs_answer_identically() {
    let w = worlds(0xBE02);
    let t_points = sample_entities(&w.city, 40, 0xBE03);
    let paged_t = EntityIndex::build(RTreeConfig::tiny(8), t_points.clone());
    let packed_t = EntityIndex::build(RTreeConfig::tiny(8).with_backend(Backend::Packed), t_points);
    let opts = EngineOptions::default;

    // ODJ.
    for e in [0.02, 0.06] {
        let a = distance_join(&w.paged_entities, &paged_t, &w.paged_obstacles, e, opts());
        let b = distance_join(
            &w.packed_entities,
            &packed_t,
            &w.packed_obstacles,
            e,
            opts(),
        );
        assert_eq!(canon_pairs(&a.pairs), canon_pairs(&b.pairs), "join e = {e}");
    }

    // Semi-join, both strategies (strategy equivalence is its own suite;
    // here each strategy is pinned across backends).
    for strategy in [
        SemiJoinStrategy::PerObjectNn,
        SemiJoinStrategy::IncrementalClosestPairs,
    ] {
        let a = semi_join(
            &w.paged_entities,
            &paged_t,
            &w.paged_obstacles,
            strategy,
            opts(),
        );
        let b = semi_join(
            &w.packed_entities,
            &packed_t,
            &w.packed_obstacles,
            strategy,
            opts(),
        );
        assert_eq!(
            canon_pairs(&a.pairs),
            canon_pairs(&b.pairs),
            "semi-join {strategy:?}"
        );
    }

    // OCP and iOCP.
    let a = closest_pairs(&w.paged_entities, &paged_t, &w.paged_obstacles, 5, opts());
    let b = closest_pairs(
        &w.packed_entities,
        &packed_t,
        &w.packed_obstacles,
        5,
        opts(),
    );
    assert_eq!(
        canon_pairs(&a.pairs),
        canon_pairs(&b.pairs),
        "closest pairs"
    );

    let a: Vec<(u64, u64, f64)> =
        incremental_closest_pairs(&w.paged_entities, &paged_t, &w.paged_obstacles, opts())
            .take(5)
            .collect();
    let b: Vec<(u64, u64, f64)> =
        incremental_closest_pairs(&w.packed_entities, &packed_t, &w.packed_obstacles, opts())
            .take(5)
            .collect();
    assert_eq!(
        canon_pairs(&a),
        canon_pairs(&b),
        "incremental closest pairs"
    );
}

/// The datagen→core query mapping (duplicated from the bench crate so
/// this suite stays a core-only dependency).
fn to_query(spec: &BatchQuery) -> Query {
    match *spec {
        BatchQuery::Range { q, e } => Query::Range { q, e },
        BatchQuery::Nearest { q, k } => Query::Nearest { q, k: k.min(5) },
        BatchQuery::DistanceJoin { e } => Query::DistanceJoin { e },
        BatchQuery::SemiJoin => Query::SemiJoin {
            strategy: SemiJoinStrategy::PerObjectNn,
        },
        BatchQuery::ClosestPairs { k } => Query::ClosestPairs { k: k.min(5) },
        BatchQuery::Path { from, to } => Query::Path { from, to },
    }
}

#[test]
fn batch_engine_is_backend_invariant_at_every_thread_count() {
    let w = worlds(0xBE04);
    let queries: Vec<Query> = batch_workload(&w.city, 16, 0xBE05, BatchMix::point_queries())
        .iter()
        .map(to_query)
        .collect();

    let paged = QueryEngine::new(&w.paged_entities, &w.paged_obstacles);
    let packed = QueryEngine::new(&w.packed_entities, &w.packed_obstacles);
    // Oracle: the paged sequential loop.
    let oracle: Vec<Answer> = queries.iter().map(|q| paged.execute(q)).collect();
    assert!(oracle.iter().any(|a| a.result_count() > 0));

    for (name, engine) in [("paged", &paged), ("packed", &packed)] {
        for threads in [1usize, 2, 4, 8] {
            for schedule in [Schedule::InputOrder, Schedule::Hilbert] {
                let options = BatchOptions::new(threads).schedule(schedule);
                let (answers, _) = engine.batch(&queries).options(options).collect();
                for (i, (a, o)) in answers.iter().zip(oracle.iter()).enumerate() {
                    assert!(
                        a.same_results(o),
                        "query {i} diverged on {name} at {threads} threads under {schedule:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn packed_tree_survives_persist_decode_query_round_trip() {
    let city = City::generate(CityConfig::new(96, 0xBE06));
    let items: Vec<Item> = sample_entities(&city, 64, 0xBE07)
        .iter()
        .enumerate()
        .map(|(i, &p)| Item::point(p, i as u64))
        .collect();
    let config = RTreeConfig::tiny(8).with_backend(Backend::Packed);
    let packed = AnyTree::build(config, items.clone());
    let paged = AnyTree::build(RTreeConfig::tiny(8), items);

    let bytes = packed.to_bytes();
    let decoded = AnyTree::from_bytes(&bytes).expect("valid packed image");
    assert_eq!(decoded.backend(), Backend::Packed);
    assert_eq!(decoded.len(), packed.len());

    let q = Point::new(0.42, 0.58);
    let window = obstacle_geom::Rect::from_coords(0.2, 0.1, 0.7, 0.8);
    for tree in [&decoded, &paged] {
        // Range by window, disk, and scored bound — then nearest.
        let mut a: Vec<u64> = packed.range_rect(&window).iter().map(|i| i.id).collect();
        let mut b: Vec<u64> = tree.range_rect(&window).iter().map(|i| i.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "range_rect");

        let a: Vec<(u64, f64)> = packed
            .range_circle(q, 0.25)
            .iter()
            .map(|i| (i.id, i.mbr.mindist_point(q)))
            .collect();
        let b: Vec<(u64, f64)> = tree
            .range_circle(q, 0.25)
            .iter()
            .map(|i| (i.id, i.mbr.mindist_point(q)))
            .collect();
        assert_eq!(canon(&a), canon(&b), "range_circle");

        let a: Vec<(u64, f64)> = packed
            .range_by_bound(&|r| r.mindist_point(q), 0.2)
            .iter()
            .map(|&(i, s)| (i.id, s))
            .collect();
        let b: Vec<(u64, f64)> = tree
            .range_by_bound(&|r| r.mindist_point(q), 0.2)
            .iter()
            .map(|&(i, s)| (i.id, s))
            .collect();
        assert_eq!(canon(&a), canon(&b), "range_by_bound");

        let a: Vec<(u64, f64)> = packed
            .k_nearest(q, 9)
            .iter()
            .map(|&(i, d)| (i.id, d))
            .collect();
        let b: Vec<(u64, f64)> = tree
            .k_nearest(q, 9)
            .iter()
            .map(|&(i, d)| (i.id, d))
            .collect();
        assert_eq!(canon(&a), canon(&b), "k_nearest");
    }

    // A re-serialized decoded tree is byte-identical (stable format).
    assert_eq!(&*decoded.to_bytes(), &*bytes);
}
