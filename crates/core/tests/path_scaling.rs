//! Wall-clock regression gate for long obstructed shortest paths.
//!
//! The seed implementation took ~21 s for a corner-to-corner path at
//! |O| = 2000 (and effectively forever at 16384) because the Fig. 8
//! fixpoint materialized the entire local visibility graph. The lazy A*
//! engine does the same query in well under a second in release mode;
//! this test pins a generous budget so the superlinear behaviour cannot
//! silently return.
//!
//! Wall-clock assertions are meaningless in debug builds, so the test is
//! `#[ignore]`d by default and run in release mode by `ci.sh`:
//!
//! ```sh
//! cargo test --release -p obstacle-core --test path_scaling -- --ignored
//! ```

use obstacle_core::{shortest_obstructed_path, ObstacleIndex};
use obstacle_datagen::{City, CityConfig};
use obstacle_geom::Point;
use obstacle_rtree::sync::Stopwatch;
use obstacle_rtree::RTreeConfig;
use obstacle_visibility::EdgeBuilder;
use std::time::Duration;

#[test]
#[ignore = "wall-clock gate; run in release mode via ci.sh"]
fn corner_to_corner_2000_obstacles_under_two_seconds() {
    let city = City::generate(CityConfig::new(2000, 0xC17));
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::paper(), city.obstacles.clone());
    let a = Point::new(0.01, 0.01);
    let b = Point::new(0.99, 0.99);

    let t0 = Stopwatch::start();
    let path = shortest_obstructed_path(a, b, &obstacles, EdgeBuilder::RotationalSweep)
        .expect("corners of the unit square are connected");
    let elapsed = t0.elapsed();

    // Sanity: the route is real and near-diagonal.
    let euclid = a.dist(b);
    assert!(path.distance >= euclid);
    assert!(
        path.distance < euclid * 1.2,
        "implausible detour: {} vs Euclidean {euclid}",
        path.distance
    );
    // Generous budget: the lazy engine runs this in ~0.3 s; the seed's
    // materialized fixpoint took ~21 s.
    assert!(
        elapsed < Duration::from_secs(2),
        "corner-to-corner at |O| = 2000 took {elapsed:.2?} (budget 2 s): \
         the superlinear path construction is back"
    );
}
