//! End-to-end correctness: every query operator must agree exactly with
//! the brute-force oracle (global naive visibility graph + Dijkstra) on
//! generated cities.

use obstacle_core::{
    closest_pairs, distance_join, incremental_closest_pairs, BruteForce, EngineOptions,
    EntityIndex, ObstacleIndex, QueryEngine,
};
use obstacle_datagen::{query_workload, sample_entities, City, CityConfig};
use obstacle_rtree::{RTreeConfig, TreeBackend};

const TOL: f64 = 1e-9;

struct World {
    entities: EntityIndex,
    obstacles: ObstacleIndex,
    oracle: BruteForce,
    entity_points: Vec<obstacle_geom::Point>,
    queries: Vec<obstacle_geom::Point>,
}

fn world(obstacle_count: usize, entity_count: usize, seed: u64) -> World {
    let city = City::generate(CityConfig::new(obstacle_count, seed));
    let entity_points = sample_entities(&city, entity_count, seed + 1);
    let queries = query_workload(&city, 6, seed + 2);
    World {
        entities: EntityIndex::build(RTreeConfig::tiny(8), entity_points.clone()),
        obstacles: ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone()),
        oracle: BruteForce::new(city.obstacles),
        entity_points,
        queries,
    }
}

#[test]
fn range_matches_oracle() {
    for seed in [1u64, 2, 3] {
        let w = world(25, 40, seed);
        let engine = QueryEngine::new(&w.entities, &w.obstacles);
        for &q in &w.queries {
            for e in [0.05, 0.15, 0.4] {
                let got = engine.range(q, e);
                let expect = w.oracle.range(&w.entity_points, q, e);
                assert_eq!(
                    got.hits.len(),
                    expect.len(),
                    "seed {seed} q {q} e {e}: {:?} vs {:?}",
                    got.hits,
                    expect
                );
                for (g, x) in got.hits.iter().zip(expect.iter()) {
                    assert_eq!(g.0, x.0, "seed {seed} q {q} e {e}");
                    assert!((g.1 - x.1).abs() < TOL);
                }
            }
        }
    }
}

/// The lazy multi-target range engine against the seed's materialized
/// formulation (Fig. 5 verbatim: build the full local visibility graph
/// over `q ∪ P' ∪ O'`, then one bounded Dijkstra expansion) on city
/// scenes — both rectangle and convex-polygon obstacles, several radii.
#[test]
fn lazy_range_matches_materialized_local_graph() {
    use obstacle_datagen::ObstacleShape;
    use obstacle_visibility::{bounded_expansion, EdgeBuilder, NodeKind, VisibilityGraph};

    for (shape, seed) in [
        (ObstacleShape::StreetRect, 0xA1u64),
        (ObstacleShape::ConvexPolygon { max_vertices: 7 }, 0xA2),
    ] {
        let city = City::generate(CityConfig {
            obstacle_count: 80,
            seed,
            shape,
            ..CityConfig::default()
        });
        let entity_points = sample_entities(&city, 120, seed + 1);
        let entities = EntityIndex::bulk_load(RTreeConfig::tiny(8), entity_points.clone());
        let obstacles = ObstacleIndex::bulk_load(RTreeConfig::tiny(8), city.obstacles.clone());
        let engine = QueryEngine::new(&entities, &obstacles);
        for q in query_workload(&city, 4, seed + 2) {
            for e in [0.08, 0.2, 0.5] {
                let lazy = engine.range(q, e);

                // Materialized reference, exactly as the seed computed it.
                let cand = entities.tree().range_circle(q, e);
                let relevant = obstacles.tree().range_circle(q, e);
                let mut expect: Vec<(u64, f64)> = Vec::new();
                if !cand.is_empty() {
                    let (graph, waypoints) = VisibilityGraph::build(
                        EdgeBuilder::Naive,
                        relevant
                            .iter()
                            .map(|item| (obstacles.polygon(item.id).clone(), item.id)),
                        std::iter::once((q, u64::MAX))
                            .chain(cand.iter().map(|item| (item.mbr.min, item.id))),
                    );
                    for (node, d) in bounded_expansion(&graph, waypoints[0], e) {
                        if node == waypoints[0] {
                            continue;
                        }
                        if let NodeKind::Waypoint { tag } = graph.kind(node) {
                            expect.push((tag, d));
                        }
                    }
                }

                assert_eq!(
                    lazy.hits.len(),
                    expect.len(),
                    "seed {seed:#x} q {q} e {e}: {:?} vs {:?}",
                    lazy.hits,
                    expect
                );
                for (g, x) in lazy.hits.iter().zip(expect.iter()) {
                    assert_eq!(g.0, x.0, "seed {seed:#x} q {q} e {e}");
                    assert!((g.1 - x.1).abs() < TOL, "{} vs {}", g.1, x.1);
                }
            }
        }
    }
}

#[test]
fn nearest_matches_oracle() {
    for seed in [4u64, 5] {
        let w = world(25, 40, seed);
        let engine = QueryEngine::new(&w.entities, &w.obstacles);
        for &q in &w.queries {
            for k in [1usize, 4, 9] {
                let got = engine.nearest(q, k);
                let expect = w.oracle.nearest(&w.entity_points, q, k);
                assert_eq!(got.neighbors.len(), expect.len());
                for (g, x) in got.neighbors.iter().zip(expect.iter()) {
                    // Ties can permute ids; distances must match exactly.
                    assert!(
                        (g.1 - x.1).abs() < TOL,
                        "seed {seed} q {q} k {k}: {:?} vs {:?}",
                        got.neighbors,
                        expect
                    );
                }
            }
        }
    }
}

#[test]
fn incremental_nearest_matches_batch() {
    let w = world(20, 30, 6);
    let engine = QueryEngine::new(&w.entities, &w.obstacles);
    for &q in &w.queries[..3] {
        let batch = engine.nearest(q, 12).neighbors;
        let inc: Vec<(u64, f64)> = engine.nearest_incremental(q).take(12).collect();
        assert_eq!(batch.len(), inc.len());
        for (b, i) in batch.iter().zip(inc.iter()) {
            assert!((b.1 - i.1).abs() < TOL);
        }
    }
}

#[test]
fn join_matches_oracle() {
    for seed in [7u64, 8] {
        let city = City::generate(CityConfig::new(20, seed));
        let s_pts = sample_entities(&city, 25, seed + 10);
        let t_pts = sample_entities(&city, 18, seed + 20);
        let s = EntityIndex::build(RTreeConfig::tiny(8), s_pts.clone());
        let t = EntityIndex::build(RTreeConfig::tiny(8), t_pts.clone());
        let o = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
        let oracle = BruteForce::new(city.obstacles);
        for e in [0.05, 0.2] {
            let got = distance_join(&s, &t, &o, e, EngineOptions::default());
            let expect = oracle.join(&s_pts, &t_pts, e);
            let mut g: Vec<(u64, u64)> = got.pairs.iter().map(|(a, b, _)| (*a, *b)).collect();
            let mut x: Vec<(u64, u64)> = expect.iter().map(|(a, b, _)| (*a, *b)).collect();
            g.sort_unstable();
            x.sort_unstable();
            assert_eq!(g, x, "seed {seed} e {e}");
            // Distances agree pair-by-pair.
            for (a, b, d) in &got.pairs {
                let xd = expect
                    .iter()
                    .find(|(i, j, _)| i == a && j == b)
                    .map(|(_, _, d)| *d)
                    .unwrap();
                assert!((d - xd).abs() < TOL);
            }
        }
    }
}

#[test]
fn closest_pairs_match_oracle() {
    for seed in [9u64, 10] {
        let city = City::generate(CityConfig::new(18, seed));
        let s_pts = sample_entities(&city, 15, seed + 10);
        let t_pts = sample_entities(&city, 12, seed + 20);
        let s = EntityIndex::build(RTreeConfig::tiny(8), s_pts.clone());
        let t = EntityIndex::build(RTreeConfig::tiny(8), t_pts.clone());
        let o = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
        let oracle = BruteForce::new(city.obstacles);
        for k in [1usize, 5, 16] {
            let got = closest_pairs(&s, &t, &o, k, EngineOptions::default());
            let expect = oracle.closest_pairs(&s_pts, &t_pts, k);
            assert_eq!(got.pairs.len(), expect.len());
            for (g, x) in got.pairs.iter().zip(expect.iter()) {
                assert!(
                    (g.2 - x.2).abs() < TOL,
                    "seed {seed} k {k}: {:?} vs {:?}",
                    got.pairs,
                    expect
                );
            }
        }
    }
}

#[test]
fn incremental_closest_pairs_match_batch() {
    let city = City::generate(CityConfig::new(15, 11));
    let s_pts = sample_entities(&city, 10, 30);
    let t_pts = sample_entities(&city, 8, 40);
    let s = EntityIndex::build(RTreeConfig::tiny(8), s_pts);
    let t = EntityIndex::build(RTreeConfig::tiny(8), t_pts);
    let o = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles);
    let batch = closest_pairs(&s, &t, &o, 20, EngineOptions::default());
    let inc: Vec<(u64, u64, f64)> = incremental_closest_pairs(&s, &t, &o, EngineOptions::default())
        .take(20)
        .collect();
    assert_eq!(batch.pairs.len(), inc.len());
    for (b, i) in batch.pairs.iter().zip(inc.iter()) {
        assert!((b.2 - i.2).abs() < TOL);
    }
}

#[test]
fn polygonal_obstacles_match_oracle() {
    // Convex-polygon obstacles exercise the general (non-rectangle) code
    // paths end to end.
    use obstacle_datagen::{CityConfig as CC, ObstacleShape};
    for seed in [13u64, 14] {
        let city = City::generate(CC {
            shape: ObstacleShape::ConvexPolygon { max_vertices: 8 },
            ..CC::new(25, seed)
        });
        let pts = sample_entities(&city, 35, seed + 1);
        let entities = EntityIndex::build(RTreeConfig::tiny(8), pts.clone());
        let obstacles = ObstacleIndex::build(RTreeConfig::tiny(8), city.obstacles.clone());
        let oracle = BruteForce::new(city.obstacles.clone());
        let engine = QueryEngine::new(&entities, &obstacles);
        for &q in &query_workload(&city, 4, seed + 2) {
            let got = engine.nearest(q, 6);
            let expect = oracle.nearest(&pts, q, 6);
            assert_eq!(got.neighbors.len(), expect.len());
            for (g, x) in got.neighbors.iter().zip(expect.iter()) {
                assert!(
                    (g.1 - x.1).abs() < TOL,
                    "seed {seed} q {q}: {:?} vs {:?}",
                    got.neighbors,
                    expect
                );
            }
            let r = engine.range(q, 0.2);
            let er = oracle.range(&pts, q, 0.2);
            assert_eq!(r.hits.len(), er.len());
        }
    }
}

#[test]
fn every_ablation_produces_identical_results() {
    use obstacle_visibility::EdgeBuilder;
    let w = world(22, 30, 12);
    let q = w.queries[0];
    let reference = QueryEngine::new(&w.entities, &w.obstacles).nearest(q, 8);
    let all_options = [
        EngineOptions {
            builder: EdgeBuilder::Naive,
            ..Default::default()
        },
        EngineOptions {
            shrink_threshold: false,
            ..Default::default()
        },
        EngineOptions {
            reuse_graph: false,
            ..Default::default()
        },
        EngineOptions {
            ellipse_pruning: true,
            ..Default::default()
        },
        EngineOptions {
            tangent_filter: true,
            ..Default::default()
        },
        EngineOptions {
            builder: EdgeBuilder::Naive,
            shrink_threshold: false,
            reuse_graph: false,
            hilbert_seed_order: false,
            seed_side_heuristic: false,
            ellipse_pruning: true,
            tangent_filter: true,
            epoch_validation: true,
        },
    ];
    for opts in all_options {
        let r = QueryEngine::with_options(&w.entities, &w.obstacles, opts).nearest(q, 8);
        assert_eq!(r.neighbors.len(), reference.neighbors.len());
        for (a, b) in r.neighbors.iter().zip(reference.neighbors.iter()) {
            assert!((a.1 - b.1).abs() < TOL, "{opts:?}");
        }
    }
}
