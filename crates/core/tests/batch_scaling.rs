//! Wall-clock smoke gate for the concurrent batch engine.
//!
//! An 8-thread `run_batch` over a mixed point-query workload must beat
//! the 1-thread run by ≥ 2× on the benchmark city — *when the hardware
//! can express it*. CI containers are frequently pinned to a single core
//! (`available_parallelism() == 1`); there the speedup assertion is
//! physically unsatisfiable, so the gate degrades to what is still
//! checkable: results stay identical at every thread count and the pool
//! adds no pathological overhead. The measured numbers are printed either
//! way so logs stay interpretable.
//!
//! Wall-clock assertions are meaningless in debug builds, so the test is
//! `#[ignore]`d by default and run in release mode by `ci.sh`:
//!
//! ```sh
//! cargo test --release -p obstacle-core --test batch_scaling -- --ignored --nocapture
//! ```

use obstacle_core::{EntityIndex, ObstacleIndex, Query, QueryEngine};
use obstacle_datagen::{query_workload, sample_entities, City, CityConfig};
use obstacle_rtree::sync::Stopwatch;
use obstacle_rtree::RTreeConfig;

#[test]
#[ignore = "wall-clock gate; run in release mode via ci.sh"]
fn eight_thread_batch_beats_one_thread() {
    let city = City::generate(CityConfig::new(2048, 0xC17));
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::paper(), city.obstacles.clone());
    let entities =
        EntityIndex::bulk_load(RTreeConfig::paper(), sample_entities(&city, 1024, 0xC18));
    let engine = QueryEngine::new(&entities, &obstacles);

    let side = city.universe.width().max(city.universe.height());
    let mut queries = Vec::new();
    for (i, q) in query_workload(&city, 48, 0xC19).into_iter().enumerate() {
        queries.push(match i % 3 {
            0 => Query::Range {
                q,
                e: 0.002 * side * (1.0 + (i % 5) as f64),
            },
            1 => Query::Nearest { q, k: 4 + i % 13 },
            _ => Query::Path {
                from: q,
                to: obstacle_geom::Point::new(
                    (q.x + 0.03 * side).min(city.universe.max.x),
                    (q.y + 0.02 * side).min(city.universe.max.y),
                ),
            },
        });
    }

    // Warm-up (buffers), then measure.
    let _ = engine.batch(&queries[..8]).threads(1).collect();
    let t0 = Stopwatch::start();
    let (sequential, _) = engine.batch(&queries).threads(1).collect();
    let one = t0.elapsed();
    let t0 = Stopwatch::start();
    let (parallel, _) = engine.batch(&queries).threads(8).collect();
    let eight = t0.elapsed();

    // Always: determinism across thread counts.
    for (i, (p, s)) in parallel.iter().zip(sequential.iter()).enumerate() {
        assert!(p.same_results(s), "query {i} diverged at 8 threads");
    }

    let speedup = one.as_secs_f64() / eight.as_secs_f64();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "batch gate: 1 thread {one:.2?}, 8 threads {eight:.2?} \
         (speedup {speedup:.2}x on {cores} core(s))"
    );

    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "8-thread batch must beat 1-thread by ≥2x on {cores} cores, got {speedup:.2}x"
        );
    } else if cores >= 2 {
        assert!(
            speedup >= 1.3,
            "8-thread batch must beat 1-thread by ≥1.3x on {cores} cores, got {speedup:.2}x"
        );
    } else {
        // Single core: no parallelism to measure; the pool must still not
        // cost more than scheduling noise.
        println!("batch gate: single core — speedup assertion skipped");
        assert!(
            speedup >= 0.5,
            "8-thread batch pathologically slower than sequential: {speedup:.2}x"
        );
    }
}
