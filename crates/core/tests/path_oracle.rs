//! Oracle equivalence for the lazy A* path engine.
//!
//! On seeded random city scenes, every distance and polyline produced by
//! the lazy engine (`compute_obstructed_path_pruned`, both search-region
//! shapes, both edge builders) must match a brute-force Dijkstra over the
//! **full** visibility graph of the complete obstacle set — including
//! unreachable endpoints (strictly inside an obstacle) and endpoints on
//! obstacle boundaries.

use obstacle_core::{
    close_rel, compute_obstructed_path_pruned, shortest_obstructed_path, LocalGraph, ObstacleIndex,
};
use obstacle_datagen::{City, CityConfig, ObstacleShape};
use obstacle_geom::rng::{Rng, SeedableRng, SmallRng};
use obstacle_geom::Point;
use obstacle_rtree::RTreeConfig;
use obstacle_visibility::{dijkstra_distance, shortest_path, EdgeBuilder, VisibilityGraph};

const QUERY_TAG: u64 = u64::MAX;

/// Query pair kinds exercised against every scene: interior (unreachable)
/// points, boundary points sampled by arc length on **any** edge —
/// slanted included — obstacle corners, and free points.
///
/// `boundary_point` guarantees its result is never strictly interior
/// (breakpoints snap to exact vertices; slanted-edge lerps that rounding
/// pushed an ulp inside are clamped back across the edge line), so the
/// exact-predicate classification and `blocks_segment` agree on every
/// sampled endpoint and slanted boundaries are safe to exercise here.
fn query_pairs(city: &City, rng: &mut SmallRng, count: usize) -> Vec<(Point, Point)> {
    let u = city.universe;
    let pick_free = |rng: &mut SmallRng| {
        Point::new(
            u.min.x + rng.gen::<f64>() * u.width(),
            u.min.y + rng.gen::<f64>() * u.height(),
        )
    };
    let mut pairs = Vec::new();
    for k in 0..count {
        let a = match k % 4 {
            // Point strictly inside an obstacle: unreachable from
            // outside (convex hulls may not contain their bbox centre;
            // then it is just another free point, equally valid).
            0 => {
                let poly = &city.obstacles[k % city.obstacles.len()];
                poly.bbox().center()
            }
            // Point on the walkable boundary, sampled by arc length over
            // the whole perimeter — axis-parallel and slanted edges alike.
            1 => {
                let poly = &city.obstacles[(k * 7) % city.obstacles.len()];
                poly.boundary_point(rng.gen::<f64>())
            }
            // An obstacle corner itself.
            2 => {
                let poly = &city.obstacles[(k * 13) % city.obstacles.len()];
                poly.vertices()[k % poly.len()]
            }
            _ => pick_free(rng),
        };
        let b = pick_free(rng);
        pairs.push((a, b));
    }
    pairs
}

fn check_scene(shape: ObstacleShape, scene_seed: u64, obstacles: usize, queries: usize) {
    let city = City::generate(CityConfig {
        obstacle_count: obstacles,
        seed: scene_seed,
        shape,
        ..CityConfig::default()
    });
    let index = ObstacleIndex::bulk_load(RTreeConfig::tiny(16), city.obstacles.clone());
    // One full-scene visibility graph per query pair would be O(n²) per
    // pair; instead build it once with no waypoints and re-derive per
    // pair via the (cheaper) dynamic add/remove path.
    let (mut full, _) = VisibilityGraph::build(
        EdgeBuilder::Naive,
        city.obstacles
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64)),
        std::iter::empty::<(Point, u64)>(),
    );

    let mut rng = SmallRng::seed_from_u64(scene_seed ^ 0x9E3779B97F4A7C15);
    for (qi, (a, b)) in query_pairs(&city, &mut rng, queries)
        .into_iter()
        .enumerate()
    {
        let na = full.add_waypoint(a, 0);
        let nb = full.add_waypoint(b, 1);
        let oracle = shortest_path(&full, na, nb);
        let oracle_d = dijkstra_distance(&full, na, nb);
        assert_eq!(
            oracle.as_ref().map(|p| p.distance),
            oracle_d,
            "oracle self-consistency, query {qi}"
        );

        for builder in [EdgeBuilder::RotationalSweep, EdgeBuilder::Naive] {
            for ellipse in [true, false] {
                let mut g = LocalGraph::new(builder);
                let pa = g.add_waypoint(a, 0);
                let pb = g.add_waypoint(b, QUERY_TAG);
                let lazy = compute_obstructed_path_pruned(&mut g, pa, pb, &index, ellipse);
                match (&oracle, &lazy) {
                    (None, None) => {}
                    (Some(o), Some(l)) => {
                        assert!(
                            close_rel(o.distance, l.distance),
                            "distance mismatch on query {qi} ({builder:?}, ellipse={ellipse}): \
                             oracle {} vs lazy {}",
                            o.distance,
                            l.distance
                        );
                        let poly_len: f64 = l.points.windows(2).map(|w| w[0].dist(w[1])).sum();
                        assert!(
                            close_rel(poly_len, l.distance),
                            "polyline length {poly_len} vs distance {} on query {qi}",
                            l.distance
                        );
                        assert_eq!(l.points.first(), Some(&a), "query {qi} start");
                        assert_eq!(l.points.last(), Some(&b), "query {qi} end");
                    }
                    (o, l) => panic!(
                        "reachability mismatch on query {qi} ({builder:?}, ellipse={ellipse}): \
                         oracle {:?} vs lazy {:?}",
                        o.as_ref().map(|p| p.distance),
                        l.as_ref().map(|p| p.distance)
                    ),
                }
            }
        }
        full.remove_waypoint(na);
        full.remove_waypoint(nb);
    }
}

#[test]
fn street_city_matches_full_graph_dijkstra() {
    check_scene(ObstacleShape::StreetRect, 0xC17, 120, 16);
}

#[test]
fn street_city_second_seed() {
    check_scene(ObstacleShape::StreetRect, 0xBEEF, 100, 12);
}

#[test]
fn convex_polygon_city_matches_full_graph_dijkstra() {
    check_scene(
        ObstacleShape::ConvexPolygon { max_vertices: 7 },
        0xFEED,
        100,
        14,
    );
}

#[test]
fn engine_reuse_across_queries_stays_exact() {
    // One LocalGraph reused for many pairs (the ONN pattern): cached
    // sweeps revalidated across absorption batches must stay exact.
    let city = City::generate(CityConfig {
        obstacle_count: 120,
        seed: 0xAB,
        ..CityConfig::default()
    });
    let index = ObstacleIndex::bulk_load(RTreeConfig::tiny(16), city.obstacles.clone());
    let (mut full, _) = VisibilityGraph::build(
        EdgeBuilder::Naive,
        city.obstacles
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64)),
        std::iter::empty::<(Point, u64)>(),
    );
    let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
    let q = Point::new(0.31, 0.47);
    let nq = g.add_waypoint(q, QUERY_TAG);

    let mut rng = SmallRng::seed_from_u64(0xAB12);
    for _ in 0..16 {
        let p = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
        let np = g.add_waypoint(p, 1);
        let lazy = compute_obstructed_path_pruned(&mut g, np, nq, &index, true);
        g.remove_waypoint(np);

        let fa = full.add_waypoint(p, 0);
        let fb = full.add_waypoint(q, 1);
        let oracle = dijkstra_distance(&full, fa, fb);
        full.remove_waypoint(fa);
        full.remove_waypoint(fb);

        match (oracle, lazy) {
            (None, None) => {}
            (Some(o), Some(l)) => assert!(
                close_rel(o, l.distance),
                "reused engine diverged: oracle {o} vs lazy {}",
                l.distance
            ),
            (o, l) => panic!(
                "reachability mismatch under reuse: {o:?} vs {:?}",
                l.map(|p| p.distance)
            ),
        }
    }
    assert!(g.scene.validate(false).is_ok());
}

#[test]
fn public_path_api_agrees_with_oracle() {
    let city = City::generate(CityConfig {
        obstacle_count: 120,
        seed: 0x51,
        ..CityConfig::default()
    });
    let index = ObstacleIndex::bulk_load(RTreeConfig::tiny(16), city.obstacles.clone());
    let brute = obstacle_core::BruteForce::new(city.obstacles.clone());
    let mut rng = SmallRng::seed_from_u64(0x5151);
    for _ in 0..12 {
        let a = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
        let b = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
        let lazy = shortest_obstructed_path(a, b, &index, EdgeBuilder::RotationalSweep);
        let oracle = brute.obstructed_distance(a, b);
        match (oracle, lazy) {
            (None, None) => {}
            (Some(o), Some(l)) => assert!(close_rel(o, l.distance), "{o} vs {}", l.distance),
            (o, l) => panic!("mismatch: {o:?} vs {:?}", l.map(|p| p.distance)),
        }
    }
}
