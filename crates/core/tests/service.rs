//! PR 9 service suite: the resident [`QueryService`] under concurrent
//! load, edits, and admission pressure.
//!
//! * **Soak**: concurrent submitter threads racing edit batches
//!   (`apply_updates`) on both storage backends; every answered
//!   completion is replayed through a sequential `execute` against a
//!   fresh-built engine at the index state identified by the
//!   completion's epoch pair, and must be **bit-identical**
//!   ([`Answer::same_results`]). Ids align because the replay applies
//!   the exact same edit sequence to identically-built indexes.
//! * **Admission**: a paused service with a full queue produces *exact*
//!   Reject / ShedOldest counts, deterministically.
//! * **Cancellation**: dropping a ticket cancels a pending query and
//!   delivers exactly one `Cancelled` completion.
//! * **Claim order**: a paused-then-resumed single-worker service
//!   answers in the batch engine's Hilbert schedule order — the live
//!   queue and the static scheduler share one key space.

use obstacle_core::{
    Admission, Answer, EngineOptions, EntityIndex, ObstacleIndex, Outcome, Query, QueryEngine,
    QueryService, Schedule, ServiceConfig, ServiceStats, SubmitError, Update,
};
use obstacle_datagen::{sample_entities, City, CityConfig};
use obstacle_geom::Point;
use obstacle_rtree::sync::Mutex;
use obstacle_rtree::{Backend, RTreeConfig};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

fn config(backend: Backend) -> RTreeConfig {
    RTreeConfig::tiny(8).with_backend(backend)
}

/// Identically rebuildable world: the service copy and every replay copy
/// are built from these exact inputs, so ids and epochs align.
fn world_inputs() -> (Vec<Point>, Vec<obstacle_geom::Polygon>) {
    let city = City::generate(CityConfig::new(32, 9));
    let pts = sample_entities(&city, 24, 1);
    (pts, city.obstacles)
}

fn build_world(backend: Backend) -> (EntityIndex, ObstacleIndex) {
    let (pts, polys) = world_inputs();
    (
        EntityIndex::build(config(backend), pts),
        ObstacleIndex::build(config(backend), polys),
    )
}

/// One deterministic edit batch against the current live state: retire
/// and re-open the first live obstacle, churn the first live entity
/// (re-inserting a duplicate of a surviving entity, so the new point is
/// guaranteed outside every obstacle). Touches both indexes, so each
/// batch bumps both epochs — every index state has a unique epoch pair.
fn plan_edit_batch(entities: &EntityIndex, obstacles: &ObstacleIndex) -> Vec<Update> {
    let (oid, poly) = obstacles
        .live_polygons()
        .next()
        .map(|(id, p)| (id, p.clone()))
        .expect("soak world keeps obstacles live");
    let (eid, _) = entities.live_points().next().expect("entities live");
    let (_, dup) = entities.live_points().last().expect("entities live");
    vec![
        Update::DeleteObstacle(oid),
        Update::InsertObstacle(poly),
        Update::DeleteEntity(eid),
        Update::InsertEntity(dup),
    ]
}

/// Deterministic per-submitter query stream: NN / range / path probes
/// scattered over the unit city.
fn submitter_queries(t: usize) -> Vec<Query> {
    (0..12)
        .map(|j| {
            let x = 0.08 + 0.075 * ((j + 4 * t) % 11) as f64;
            let y = 0.12 + 0.065 * ((j * 5 + t) % 12) as f64;
            match j % 3 {
                0 => Query::Nearest {
                    q: Point::new(x, y),
                    k: 3,
                },
                1 => Query::Range {
                    q: Point::new(x, y),
                    e: 0.15,
                },
                _ => Query::Path {
                    from: Point::new(x, y),
                    to: Point::new(1.0 - x, 1.0 - y),
                },
            }
        })
        .collect()
}

/// The soak body: returns `(id → query, completions, stats)` out of the
/// service run for replay verification.
fn soak(backend: Backend) {
    let (entities, obstacles) = build_world(backend);

    // Plan the edit batches against a planning copy of the world, so the
    // batches are fixed data the replay can re-apply verbatim.
    let (mut plan_e, mut plan_o) = build_world(backend);
    let mut batches: Vec<Vec<Update>> = Vec::new();
    for _ in 0..3 {
        let batch = plan_edit_batch(&plan_e, &plan_o);
        QueryEngine::apply_updates(&mut plan_e, &mut plan_o, batch.clone());
        batches.push(batch);
    }

    let cfg = ServiceConfig::default()
        .workers(2)
        .queue_depth(64)
        .schedule(Schedule::Hilbert);
    let run = QueryService::run(entities, obstacles, EngineOptions::default(), cfg, |svc| {
        let ids: Mutex<HashMap<u64, Query>> = Mutex::new(HashMap::new());
        std::thread::scope(|s| {
            for t in 0..2usize {
                let ids = &ids;
                let svc = &*svc;
                s.spawn(move || {
                    for (j, q) in submitter_queries(t).into_iter().enumerate() {
                        let ticket = svc.submit(q).expect("open service admits");
                        ids.lock().insert(ticket.detach(), q);
                        if j % 3 == t {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                });
            }
            // Edit batches race the submitters from the body thread.
            for batch in &batches {
                std::thread::sleep(Duration::from_millis(2));
                let stats = svc.apply_updates(batch.clone());
                assert_eq!(stats.missed_deletes, 0, "planned deletes must land");
            }
        });
        let ids = ids.into_inner();
        let mut completions = Vec::new();
        for _ in 0..ids.len() {
            completions.push(svc.recv().expect("every submission completes"));
        }
        (ids, completions)
    });

    let (ids, completions) = run.output;
    assert_eq!(ids.len(), 24);
    let stats: &ServiceStats = &run.stats;
    assert_eq!(stats.submitted, 24);
    assert_eq!(stats.answered, 24);
    assert_eq!(stats.rejected + stats.shed + stats.cancelled, 0);
    assert_eq!(stats.latency.count(), 24);
    assert!(stats.latency.p50() <= stats.latency.p99());

    // Group answered completions by the epoch pair their execution saw.
    let mut by_state: BTreeMap<(u64, u64), Vec<(u64, Answer)>> = BTreeMap::new();
    for c in completions {
        match c.outcome {
            Outcome::Answered {
                answer,
                entity_epoch,
                obstacle_epoch,
            } => by_state
                .entry((entity_epoch, obstacle_epoch))
                .or_default()
                .push((c.id, answer)),
            other => panic!("soak run produced non-answer outcome {other:?}"),
        }
    }

    // Replay: rebuild the same initial world, re-apply the same batches,
    // and execute each completion's query sequentially at its state.
    let (mut re, mut ro) = build_world(backend);
    let mut verified = 0usize;
    for k in 0..=batches.len() {
        if let Some(group) = by_state.get(&(re.epoch(), ro.epoch())) {
            let engine = QueryEngine::new(&re, &ro);
            for (id, answer) in group {
                let fresh = engine.execute(&ids[id]);
                assert!(
                    answer.same_results(&fresh),
                    "{backend:?} ticket {id} at state {k}: service answer \
                     diverges from sequential replay"
                );
                verified += 1;
            }
        }
        if k < batches.len() {
            QueryEngine::apply_updates(&mut re, &mut ro, batches[k].clone());
        }
    }
    assert_eq!(
        verified,
        24,
        "{backend:?}: every completion must replay at a known epoch state \
         (states seen: {:?})",
        by_state.keys().collect::<Vec<_>>()
    );

    // The handed-back indexes carry all three edit batches.
    assert_eq!(run.entities.epoch(), re.epoch());
    assert_eq!(run.obstacles.epoch(), ro.epoch());
}

#[test]
fn soak_answers_replay_bit_identical_paged() {
    soak(Backend::Paged);
}

#[test]
fn soak_answers_replay_bit_identical_packed() {
    soak(Backend::Packed);
}

#[test]
fn reject_admission_counts_exactly() {
    let (entities, obstacles) = build_world(Backend::Paged);
    let cfg = ServiceConfig::default()
        .workers(1)
        .queue_depth(3)
        .admission(Admission::Reject)
        .schedule(Schedule::InputOrder)
        .paused(true);
    let run = QueryService::run(entities, obstacles, EngineOptions::default(), cfg, |svc| {
        let queries = submitter_queries(0);
        let mut rejected = 0;
        let mut admitted = Vec::new();
        for q in queries.into_iter().take(5) {
            match svc.submit(q) {
                Ok(t) => admitted.push(t.detach()),
                Err(SubmitError::Rejected) => rejected += 1,
                Err(e) => panic!("unexpected submit error {e}"),
            }
        }
        // Paused workers claim nothing: the queue is exactly full.
        assert_eq!(rejected, 2);
        assert_eq!(admitted, vec![0, 1, 2]);
        assert_eq!(svc.pending(), 3);
        assert_eq!(svc.stats().rejected, 2);
        svc.resume();
        for _ in 0..3 {
            let c = svc.recv().expect("resumed worker answers");
            assert!(c.outcome.answer().is_some());
            assert!(admitted.contains(&c.id));
        }
    });
    assert_eq!(run.stats.submitted, 3);
    assert_eq!(run.stats.answered, 3);
    assert_eq!(run.stats.rejected, 2);
    assert_eq!(run.stats.shed, 0);
}

#[test]
fn shed_oldest_evicts_exactly_the_oldest() {
    let (entities, obstacles) = build_world(Backend::Packed);
    let cfg = ServiceConfig::default()
        .workers(1)
        .queue_depth(3)
        .admission(Admission::ShedOldest)
        .schedule(Schedule::InputOrder)
        .paused(true);
    let run = QueryService::run(entities, obstacles, EngineOptions::default(), cfg, |svc| {
        for q in submitter_queries(1).into_iter().take(5) {
            let t = svc.submit(q).expect("shedding admission always admits");
            t.detach();
        }
        // Submissions 3 and 4 each evicted the then-oldest: ids 0, 1.
        let shed_a = svc.recv().expect("shed completion is immediate");
        let shed_b = svc.recv().expect("shed completion is immediate");
        assert!(matches!(shed_a.outcome, Outcome::Shed));
        assert!(matches!(shed_b.outcome, Outcome::Shed));
        assert_eq!((shed_a.id, shed_b.id), (0, 1));
        assert_eq!(svc.pending(), 3);
        svc.resume();
        let mut answered: Vec<u64> = (0..3)
            .map(|_| {
                let c = svc.recv().expect("resumed worker answers");
                assert!(c.outcome.answer().is_some());
                c.id
            })
            .collect();
        answered.sort_unstable();
        assert_eq!(answered, vec![2, 3, 4]);
    });
    assert_eq!(run.stats.submitted, 5);
    assert_eq!(run.stats.shed, 2);
    assert_eq!(run.stats.answered, 3);
    assert_eq!(run.stats.rejected, 0);
}

#[test]
fn dropping_a_ticket_cancels_its_pending_query() {
    let (entities, obstacles) = build_world(Backend::Paged);
    let cfg = ServiceConfig::default()
        .workers(1)
        .queue_depth(8)
        .paused(true);
    let run = QueryService::run(entities, obstacles, EngineOptions::default(), cfg, |svc| {
        let queries = submitter_queries(0);
        let keep_a = svc.submit(queries[0]).expect("admits").detach();
        let cancel_me = svc.submit(queries[1]).expect("admits");
        let cancelled_id = cancel_me.id();
        let keep_b = svc.submit(queries[2]).expect("admits").detach();
        drop(cancel_me);
        let c = svc.recv().expect("cancellation completes immediately");
        assert!(matches!(c.outcome, Outcome::Cancelled));
        assert_eq!(c.id, cancelled_id);
        assert_eq!(svc.pending(), 2);
        svc.resume();
        let mut answered: Vec<u64> = (0..2)
            .map(|_| svc.recv().expect("resumed worker answers").id)
            .collect();
        answered.sort_unstable();
        assert_eq!(answered, vec![keep_a, keep_b]);
    });
    assert_eq!(run.stats.cancelled, 1);
    assert_eq!(run.stats.answered, 2);
    assert_eq!(run.stats.submitted, 3);
}

#[test]
fn paused_queue_drains_in_hilbert_claim_order() {
    let (entities, obstacles) = build_world(Backend::Paged);
    // The static scheduler over a twin world gives the expected order.
    let (twin_e, twin_o) = build_world(Backend::Paged);
    let queries = submitter_queries(0);
    let expected = QueryEngine::new(&twin_e, &twin_o).schedule_order(&queries, Schedule::Hilbert);

    let cfg = ServiceConfig::default()
        .workers(1)
        .queue_depth(64)
        .schedule(Schedule::Hilbert)
        .paused(true);
    let run = QueryService::run(entities, obstacles, EngineOptions::default(), cfg, |svc| {
        for q in &queries {
            svc.submit(*q).expect("admits").detach();
        }
        svc.resume();
        // Ticket ids are submit order, i.e. indices into `queries`:
        // the single worker's completion order is its claim order.
        (0..queries.len())
            .map(|_| svc.recv().expect("drains").id as usize)
            .collect::<Vec<_>>()
    });
    assert_eq!(run.output, expected);
}
