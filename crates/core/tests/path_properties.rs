//! Property tests for the lazy A* path engine, on the deterministic
//! [`obstacle_geom::check`] harness:
//!
//! * every interior waypoint of an optimal path is an obstacle vertex
//!   (Lozano-Pérez/Wesley: shortest obstacle-avoiding paths only turn at
//!   obstacle corners);
//! * path length is symmetric in `(a, b)`;
//! * every obstacle whose *removal* changes the distance intersects the
//!   ellipse `|x−a| + |x−b| ≤ d` with `d` the returned distance — the
//!   region the engine prunes with, so this validates the pruning
//!   predicate itself.

use obstacle_core::{close_rel, shortest_obstructed_path, ObstacleIndex};
use obstacle_geom::{check, Point, Polygon, Rect};
use obstacle_rtree::RTreeConfig;
use obstacle_visibility::EdgeBuilder;

/// A random scene of disjoint-ish axis-parallel rectangles plus two free
/// endpoints (rejection keeps the endpoints out of every obstacle).
fn random_scene(g: &mut check::Gen) -> (Vec<Polygon>, Point, Point) {
    let n = g.usize(3, 14);
    let mut rects: Vec<Rect> = Vec::new();
    while rects.len() < n {
        let x = g.f64(0.0, 0.9);
        let y = g.f64(0.0, 0.9);
        let w = g.f64(0.01, 0.25);
        let h = g.f64(0.01, 0.25);
        rects.push(Rect::from_coords(x, y, (x + w).min(1.0), (y + h).min(1.0)));
    }
    let free = |g: &mut check::Gen, rects: &[Rect]| loop {
        let p = Point::new(g.f64(-0.1, 1.1), g.f64(-0.1, 1.1));
        if rects.iter().all(|r| !r.contains_point(p)) {
            return p;
        }
    };
    let a = free(g, &rects);
    let b = free(g, &rects);
    let polys = rects.into_iter().map(Polygon::from_rect).collect();
    (polys, a, b)
}

#[test]
fn interior_waypoints_are_obstacle_vertices() {
    check::cases(48, |g| {
        let (polys, a, b) = random_scene(g);
        let index = ObstacleIndex::build(RTreeConfig::tiny(8), polys.clone());
        let Some(path) = shortest_obstructed_path(a, b, &index, EdgeBuilder::RotationalSweep)
        else {
            return; // sealed by overlapping rectangles: nothing to check
        };
        for w in &path.points[1..path.points.len() - 1] {
            assert!(
                polys.iter().any(|p| p.vertices().contains(w)),
                "case {}: interior waypoint {w} is not an obstacle vertex",
                g.case
            );
        }
        let seg_sum: f64 = path.points.windows(2).map(|s| s[0].dist(s[1])).sum();
        assert!(
            close_rel(seg_sum, path.distance),
            "case {}: polyline {seg_sum} vs distance {}",
            g.case,
            path.distance
        );
        assert!(
            path.distance >= a.dist(b) - 1e-12,
            "case {}: obstructed below Euclidean",
            g.case
        );
    });
}

#[test]
fn distance_is_symmetric() {
    check::cases(48, |g| {
        let (polys, a, b) = random_scene(g);
        let index = ObstacleIndex::build(RTreeConfig::tiny(8), polys);
        let fwd = shortest_obstructed_path(a, b, &index, EdgeBuilder::RotationalSweep);
        let rev = shortest_obstructed_path(b, a, &index, EdgeBuilder::RotationalSweep);
        match (fwd, rev) {
            (None, None) => {}
            (Some(f), Some(r)) => {
                assert!(
                    close_rel(f.distance, r.distance),
                    "case {}: d(a,b) = {} but d(b,a) = {}",
                    g.case,
                    f.distance,
                    r.distance
                );
                // The reversed polyline is an equally short route.
                let rev_pts: Vec<Point> = r.points.iter().rev().copied().collect();
                assert_eq!(rev_pts.first(), Some(&a), "case {}", g.case);
                assert_eq!(rev_pts.last(), Some(&b), "case {}", g.case);
            }
            (f, r) => panic!(
                "case {}: asymmetric reachability {:?} vs {:?}",
                g.case,
                f.map(|p| p.distance),
                r.map(|p| p.distance)
            ),
        }
    });
}

#[test]
fn influential_obstacles_intersect_the_pruning_ellipse() {
    check::cases(24, |g| {
        let (polys, a, b) = random_scene(g);
        let index = ObstacleIndex::build(RTreeConfig::tiny(8), polys.clone());
        let Some(full) = shortest_obstructed_path(a, b, &index, EdgeBuilder::RotationalSweep)
        else {
            return;
        };
        let d = full.distance;
        for skip in 0..polys.len() {
            let rest: Vec<Polygon> = polys
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, p)| p.clone())
                .collect();
            let sub_index = ObstacleIndex::build(RTreeConfig::tiny(8), rest);
            let sub = shortest_obstructed_path(a, b, &sub_index, EdgeBuilder::RotationalSweep)
                .expect("removing an obstacle cannot disconnect");
            // Removal can only shorten.
            assert!(
                sub.distance <= d + 1e-9 * d.max(1.0),
                "case {}: removing obstacle {skip} lengthened the path",
                g.case
            );
            if !close_rel(sub.distance, d) {
                // The obstacle influenced the distance, so it must
                // intersect the search ellipse the engine prunes with:
                // its MBR bound |x−a| + |x−b| is at most d.
                let r = polys[skip].bbox();
                let bound = r.mindist_point(a) + r.mindist_point(b);
                assert!(
                    bound <= d + 1e-9 * d.max(1.0),
                    "case {}: influential obstacle {skip} outside the ellipse \
                     (bound {bound} vs d {d})",
                    g.case
                );
            }
        }
    });
}
