//! NaN-safe total ordering for floats.
//!
//! The paper's Fig. 8 correctness argument assumes distance bounds are
//! *totally ordered*: every comparison in the fixpoint loop, every
//! priority-queue pop, and every plane-sweep status sort must agree on a
//! single consistent order or the pruning invariants silently break. The
//! historical idiom `a.partial_cmp(&b).unwrap()` only delivers that when
//! no NaN ever reaches a comparator — and panics (mid-query, mid-batch)
//! the first time one does.
//!
//! This module is the one sanctioned way to compare floats in the
//! workspace. The `nan-ordering` lint pass (`crates/lint`) forbids
//! `.partial_cmp(..)` everywhere else.
//!
//! # NaN policy
//!
//! [`total_cmp`] delegates to [`f64::total_cmp`] (IEEE 754
//! `totalOrder`): `-NaN < -inf < … < -0.0 < +0.0 < … < +inf < +NaN`.
//! A NaN produced by a degenerate geometry therefore sorts
//! deterministically to one end instead of aborting the whole query.
//! Callers that must *reject* NaN (e.g. tree keys) still use
//! `debug_assert!(x.is_finite())` at the construction boundary; the
//! comparator itself never panics.

use std::cmp::Ordering;

/// Total order on `f64`, never panics. See the module docs for the NaN
/// policy. This is the comparator every sort / heap / status structure
/// in the workspace goes through.
#[inline]
pub fn total_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Sort a slice by an `f64` key under [`total_cmp`] (stable).
///
/// Replaces the `v.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap())`
/// idiom: same order for finite keys, deterministic (not panicking) when
/// a key is NaN.
#[inline]
pub fn sort_by_f64_key<T, F: FnMut(&T) -> f64>(v: &mut [T], mut key: F) {
    v.sort_by(|a, b| total_cmp(key(a), key(b)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cmp_agrees_with_partial_cmp_on_finite_inputs() {
        let xs = [-3.5, -1.0, -0.0, 0.0, 0.25, 1.0, 1e300, f64::INFINITY];
        for &a in &xs {
            for &b in &xs {
                if a == b && a.is_sign_positive() != b.is_sign_positive() {
                    // -0.0 vs +0.0: totalOrder distinguishes, PartialOrd
                    // does not. Any consistent answer is fine; just make
                    // sure it is antisymmetric.
                    assert_eq!(total_cmp(a, b), total_cmp(b, a).reverse());
                    continue;
                }
                assert_eq!(total_cmp(a, b), a.partial_cmp(&b).unwrap());
            }
        }
    }

    #[test]
    fn nan_inputs_do_not_panic_and_sort_to_the_ends() {
        let mut v = [1.0, f64::NAN, -2.0, -f64::NAN, 0.0, f64::INFINITY];
        v.sort_by(|a, b| total_cmp(*a, *b));
        assert!(v[0].is_nan() && v[0].is_sign_negative());
        assert!(v[5].is_nan() && v[5].is_sign_positive());
        assert_eq!(&v[1..5], &[-2.0, 0.0, 1.0, f64::INFINITY]);
    }

    #[test]
    fn total_cmp_is_a_total_order() {
        // Reflexive / antisymmetric / transitive over a NaN-laced set.
        let xs = [f64::NAN, -f64::NAN, -1.0, 0.0, 2.0, f64::NEG_INFINITY];
        for &a in &xs {
            assert_eq!(total_cmp(a, a), Ordering::Equal);
            for &b in &xs {
                assert_eq!(total_cmp(a, b), total_cmp(b, a).reverse());
                for &c in &xs {
                    if total_cmp(a, b) == Ordering::Less && total_cmp(b, c) == Ordering::Less {
                        assert_eq!(total_cmp(a, c), Ordering::Less);
                    }
                }
            }
        }
    }

    #[test]
    fn keyed_sort_handles_nan_keys() {
        let mut pts = vec![(0u32, 2.0), (1, f64::NAN), (2, -1.0), (3, 0.5)];
        sort_by_f64_key(&mut pts, |p| p.1);
        let ids: Vec<u32> = pts.iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![2, 3, 0, 1]); // NaN key sorts last, no panic
    }

    #[test]
    fn keyed_sort_is_stable() {
        let mut pts = vec![(0u32, 1.0), (1, 1.0), (2, 0.0), (3, 1.0)];
        sort_by_f64_key(&mut pts, |p| p.1);
        let ids: Vec<u32> = pts.iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![2, 0, 1, 3]);
    }
}
