//! Simple polygons — the obstacle type of the paper.
//!
//! An obstacle is a simple polygon whose **open interior** is impassable;
//! its boundary is walkable (the paper's entities may lie on obstacle
//! boundaries and shortest paths slide along obstacle edges). The central
//! operation is [`Polygon::blocks_segment`]: does a sight line pass through
//! the interior?

use crate::segment::intersection_params;
use crate::{orient2d, proper_crossing, Orientation, Point, Rect, Segment, EPS};

/// How a point sits on a polygon boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryAttachment {
    /// The point coincides with vertex `i`.
    Vertex(usize),
    /// The point lies strictly inside edge `i` (from vertex `i` to
    /// vertex `i + 1`).
    Edge(usize),
}

/// Location of a point relative to a polygon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointLocation {
    /// Strictly inside the polygon.
    Inside,
    /// Exactly on the polygon boundary.
    Boundary,
    /// Strictly outside the polygon.
    Outside,
}

/// Why a vertex list was rejected by [`Polygon::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices.
    TooFewVertices,
    /// A vertex coordinate was NaN or infinite.
    NonFiniteVertex,
    /// Two consecutive vertices coincide.
    DuplicateVertex,
    /// The polygon has zero area.
    ZeroArea,
    /// Two adjacent edges double back on each other (a spike).
    Spike,
    /// Two non-adjacent edges intersect: the boundary is self-crossing.
    SelfIntersection,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            PolygonError::TooFewVertices => "polygon needs at least 3 vertices",
            PolygonError::NonFiniteVertex => "polygon vertex is NaN or infinite",
            PolygonError::DuplicateVertex => "consecutive polygon vertices coincide",
            PolygonError::ZeroArea => "polygon has zero area",
            PolygonError::Spike => "adjacent polygon edges double back (spike)",
            PolygonError::SelfIntersection => "polygon boundary self-intersects",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for PolygonError {}

/// A simple polygon, stored with counter-clockwise vertex order.
///
/// Construction validates simplicity (no self-intersections, no spikes, no
/// duplicate consecutive vertices, non-zero area) and normalises the vertex
/// order to counter-clockwise, so all downstream code can rely on both.
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    verts: Vec<Point>,
    bbox: Rect,
}

impl Polygon {
    /// Builds a polygon from a vertex loop (implicitly closed), validating
    /// simplicity and normalising to counter-clockwise order.
    pub fn new(mut verts: Vec<Point>) -> Result<Polygon, PolygonError> {
        if verts.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        if verts.iter().any(|v| !v.is_finite()) {
            return Err(PolygonError::NonFiniteVertex);
        }
        let n = verts.len();
        for i in 0..n {
            if verts[i] == verts[(i + 1) % n] {
                return Err(PolygonError::DuplicateVertex);
            }
        }
        let area = signed_area(&verts);
        if area == 0.0 {
            return Err(PolygonError::ZeroArea);
        }
        if area < 0.0 {
            verts.reverse();
        }
        // Spikes: adjacent edges must not double back.
        for i in 0..n {
            let a = verts[i];
            let b = verts[(i + 1) % n];
            let c = verts[(i + 2) % n];
            if orient2d(a, b, c) == Orientation::Collinear && (a - b).dot(c - b) > 0.0 {
                return Err(PolygonError::Spike);
            }
        }
        // Self-intersection: non-adjacent edges must be disjoint.
        for i in 0..n {
            let ei = Segment::new(verts[i], verts[(i + 1) % n]);
            for j in (i + 1)..n {
                let adjacent = j == i + 1 || (i == 0 && j == n - 1);
                if adjacent {
                    continue;
                }
                let ej = Segment::new(verts[j], verts[(j + 1) % n]);
                if crate::segments_intersect(ei, ej) {
                    return Err(PolygonError::SelfIntersection);
                }
            }
        }
        let bbox = verts
            .iter()
            .fold(Rect::empty(), |acc, &v| acc.union(&Rect::from_point(v)));
        Ok(Polygon { verts, bbox })
    }

    /// The axis-aligned rectangle `r` as a polygon (the paper's obstacle
    /// dataset consists of street MBRs, i.e. rectangles).
    pub fn from_rect(r: Rect) -> Polygon {
        Polygon::new(r.corners().to_vec()).expect("a non-degenerate rect is a valid polygon")
    }

    /// The vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.verts
    }

    /// Number of vertices (equals the number of edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Always false: a valid polygon has at least three vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cached bounding rectangle.
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// The `i`-th edge, from vertex `i` to vertex `i + 1` (mod n).
    #[inline]
    pub fn edge(&self, i: usize) -> Segment {
        Segment::new(self.verts[i], self.verts[(i + 1) % self.verts.len()])
    }

    /// Iterator over all boundary edges.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        (0..self.verts.len()).map(move |i| self.edge(i))
    }

    /// Unsigned area.
    pub fn area(&self) -> f64 {
        signed_area(&self.verts).abs()
    }

    /// Total boundary length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.len()).sum()
    }

    /// Whether every vertex is convex (no reflex corners).
    pub fn is_convex(&self) -> bool {
        let n = self.verts.len();
        (0..n).all(|i| {
            orient2d(
                self.verts[i],
                self.verts[(i + 1) % n],
                self.verts[(i + 2) % n],
            ) != Orientation::Clockwise
        })
    }

    /// Classifies `p` as inside, on the boundary of, or outside the
    /// polygon. Exact: boundary detection and crossing decisions use the
    /// robust orientation predicate.
    pub fn locate(&self, p: Point) -> PointLocation {
        if !self.bbox.contains_point(p) {
            return PointLocation::Outside;
        }
        let n = self.verts.len();
        // Exact boundary test first.
        for i in 0..n {
            if self.edge(i).contains(p) {
                return PointLocation::Boundary;
            }
        }
        // Ray casting towards +x with exact sidedness decisions. The strict
        // `> p.y` on both endpoints makes vertex crossings count exactly
        // once, and horizontal edges are skipped entirely.
        let mut inside = false;
        for i in 0..n {
            let a = self.verts[i];
            let b = self.verts[(i + 1) % n];
            if (a.y > p.y) != (b.y > p.y) {
                // Edge straddles the horizontal line through p. It crosses
                // the ray iff p is strictly left of the edge directed
                // upwards (p cannot be *on* the edge: handled above).
                let (lo, hi) = if a.y < b.y { (a, b) } else { (b, a) };
                if orient2d(lo, hi, p) == Orientation::CounterClockwise {
                    inside = !inside;
                }
            }
        }
        if inside {
            PointLocation::Inside
        } else {
            PointLocation::Outside
        }
    }

    /// Whether `p` lies strictly inside the polygon.
    #[inline]
    pub fn contains_interior(&self, p: Point) -> bool {
        self.locate(p) == PointLocation::Inside
    }

    /// Whether the segment `s` passes through the **open interior** of the
    /// polygon — the exact "sight line blocked by this obstacle" test.
    ///
    /// Grazing configurations do *not* block: touching a vertex, running
    /// along an edge, or having an endpoint on the boundary are all free as
    /// long as no open sub-interval of the segment lies inside. The test is
    /// exact up to the classification of interval midpoints, which are kept
    /// away from the boundary by an `EPS` guard (points within `EPS` of the
    /// boundary are treated as boundary, never as interior).
    pub fn blocks_segment(&self, s: Segment) -> bool {
        let seg_box = Rect::new(s.a, s.b);
        if !self.bbox.intersects(&seg_box) {
            return false;
        }
        if s.is_degenerate() {
            return self.contains_interior(s.a);
        }
        // 1. A proper crossing with any edge implies interior passage.
        for e in self.edges() {
            if proper_crossing(s, e) {
                return true;
            }
        }
        // 2. Otherwise the segment may still traverse the interior through
        //    vertices or collinear contacts. Cut it at every boundary
        //    contact and classify the midpoint of each piece.
        let mut cuts: Vec<f64> = vec![0.0, 1.0];
        for e in self.edges() {
            for &t in intersection_params(s, e).as_slice() {
                cuts.push(t);
            }
        }
        cuts.sort_by(|x, y| crate::total_cmp(*x, *y));
        cuts.dedup_by(|a, b| (*a - *b).abs() <= EPS);
        for w in cuts.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 - t0 <= EPS {
                continue;
            }
            let mid = s.at((t0 + t1) * 0.5);
            if self.locate(mid) == PointLocation::Inside && !self.near_boundary(mid, EPS) {
                return true;
            }
        }
        false
    }

    /// Whether `p` lies within distance `tol` of the polygon boundary.
    fn near_boundary(&self, p: Point, tol: f64) -> bool {
        self.edges().any(|e| e.dist_to_point(p) <= tol)
    }

    /// Whether a segment leaving vertex `i` towards `t` immediately enters
    /// the polygon interior (the "interior cone" test used by the
    /// plane-sweep visibility builder: a sight line ending or starting at
    /// an obstacle corner is blocked when it points into the wedge of
    /// interior directions at that corner).
    pub fn enters_interior_at_vertex(&self, i: usize, t: Point) -> bool {
        let n = self.verts.len();
        let v = self.verts[i];
        let u = self.verts[(i + n - 1) % n]; // previous vertex
        let w = self.verts[(i + 1) % n]; // next vertex
        if t == v {
            return false;
        }
        // With a = w - v (outgoing edge), b = u - v (incoming edge
        // reversed) and d = t - v, the interior cone spans counter-
        // clockwise from a to b. All sign tests reduce to orient2d calls.
        let cross_ab = orient2d(v, w, u); // sign of a × b
        let cross_ad = orient2d(v, w, t); // sign of a × d
        let cross_db = orient2d(v, t, u); // sign of d × b
        match cross_ab {
            // Convex corner: strict containment in the (< 180°) cone.
            Orientation::CounterClockwise => {
                cross_ad == Orientation::CounterClockwise
                    && cross_db == Orientation::CounterClockwise
            }
            // Reflex corner: complement of the closed exterior cone
            // (which spans CCW from b to a and is < 180°).
            Orientation::Clockwise => {
                let cross_bd = orient2d(v, u, t); // sign of b × d
                let cross_da = orient2d(v, t, w); // sign of d × a
                !(cross_bd != Orientation::Clockwise && cross_da != Orientation::Clockwise)
            }
            // Straight (180°) corner: interior is strictly left of a.
            Orientation::Collinear => cross_ad == Orientation::CounterClockwise,
        }
    }

    /// Where (if anywhere) `p` sits on the polygon boundary: at a vertex,
    /// or strictly inside an edge.
    pub fn boundary_attachment(&self, p: Point) -> Option<BoundaryAttachment> {
        if !self.bbox.contains_point(p) {
            return None;
        }
        for (i, &v) in self.verts.iter().enumerate() {
            if v == p {
                return Some(BoundaryAttachment::Vertex(i));
            }
        }
        for i in 0..self.verts.len() {
            if self.edge(i).contains(p) {
                return Some(BoundaryAttachment::Edge(i));
            }
        }
        None
    }

    /// Whether a segment leaving the boundary point `p` towards `t`
    /// immediately enters the polygon interior. `attachment` must describe
    /// where `p` sits on the boundary (see [`Polygon::boundary_attachment`]).
    ///
    /// For a point strictly inside edge `i`, the interior is the open
    /// half-plane to the left of the (counter-clockwise) edge, so the test
    /// is a single exact orientation; directions along the edge line do
    /// not enter (the continuation is resolved at the next vertex).
    pub fn enters_interior_at_boundary(&self, attachment: BoundaryAttachment, t: Point) -> bool {
        match attachment {
            BoundaryAttachment::Vertex(i) => self.enters_interior_at_vertex(i, t),
            BoundaryAttachment::Edge(i) => {
                let e = self.edge(i);
                orient2d(e.a, e.b, t) == Orientation::CounterClockwise
            }
        }
    }

    /// Point on the boundary at arc-length fraction `t ∈ [0, 1)` measured
    /// counter-clockwise from vertex 0 (used to sample entities that lie on
    /// obstacle boundaries, as in the paper's datasets).
    ///
    /// The returned point is never strictly inside the polygon. On an
    /// axis-parallel edge the lerp keeps the shared coordinate exact, so
    /// the point is exactly on the boundary; on a slanted edge the closest
    /// representable point to the true boundary point can land an ulp on
    /// the *interior* side of the edge line, where the exact orientation
    /// predicate classifies it as [`PointLocation::Inside`] while the
    /// `EPS`-guarded [`Polygon::blocks_segment`] still treats sight lines
    /// from it as free — an inconsistency no caller can reconcile. Such a
    /// point is nudged ulp-by-ulp along the outward normal until the
    /// predicate no longer sees it as interior. Arc-length parameters
    /// landing within one rounding step of an edge endpoint snap to the
    /// exact vertex (the seed returned `lerp(a, b, 1.0)`, which is not
    /// `b` in floating point).
    pub fn boundary_point(&self, t: f64) -> Point {
        let total = self.perimeter();
        let mut target = (t.rem_euclid(1.0)) * total;
        let n = self.verts.len();
        for i in 0..n {
            let e = self.edge(i);
            let l = e.len();
            if target <= l {
                // Snap breakpoints to exact vertices: a parameter this
                // close to an endpoint cannot produce a mid-edge point
                // distinguishable from the vertex, and the vertex is the
                // only exactly-on-boundary representative nearby.
                let snap = l * 1e-12;
                if target <= snap || l == 0.0 {
                    return e.a;
                }
                if l - target <= snap {
                    return e.b;
                }
                return self.clamp_onto_boundary(i, e.at(target / l));
            }
            target -= l;
        }
        self.verts[0]
    }

    /// Pushes a point that rounding left strictly inside the polygon back
    /// across edge `i`'s line, one ulp per coordinate along the outward
    /// normal, so the exact predicates classify it as boundary/outside.
    /// The input is within an ulp or two of the edge, so a couple of steps
    /// always suffice; the vertex fallback is unreachable in practice but
    /// keeps the "never interior" contract unconditional.
    fn clamp_onto_boundary(&self, i: usize, mut p: Point) -> Point {
        let nrm = self.outward_normal(i);
        let step = |x: f64, dir: f64| {
            if dir > 0.0 {
                x.next_up()
            } else if dir < 0.0 {
                x.next_down()
            } else {
                x
            }
        };
        for _ in 0..8 {
            if self.locate(p) != PointLocation::Inside {
                return p;
            }
            p = Point::new(step(p.x, nrm.x), step(p.y, nrm.y));
        }
        self.edge(i).a
    }

    /// Outward unit normal of edge `i` (counter-clockwise polygon: the
    /// outward normal of edge `(a, b)` is `(b − a)` rotated −90°).
    pub fn outward_normal(&self, i: usize) -> Point {
        let e = self.edge(i);
        let d = e.b - e.a;
        let n = d.norm();
        if n == 0.0 {
            return Point::new(0.0, 0.0);
        }
        Point::new(d.y / n, -d.x / n)
    }

    /// Point on the boundary at fraction `t`, displaced outward by `off`.
    /// Used by the data generator to place entities "on" obstacle walls
    /// while staying numerically strictly outside every obstacle interior.
    pub fn boundary_point_displaced(&self, t: f64, off: f64) -> Point {
        let total = self.perimeter();
        let mut target = (t.rem_euclid(1.0)) * total;
        let n = self.verts.len();
        for i in 0..n {
            let e = self.edge(i);
            let l = e.len();
            if target <= l {
                let p = e.at(if l == 0.0 { 0.0 } else { target / l });
                let nrm = self.outward_normal(i);
                return p + nrm * off;
            }
            target -= l;
        }
        self.verts[0]
    }
}

/// Shoelace signed area: positive for counter-clockwise vertex order.
fn signed_area(verts: &[Point]) -> f64 {
    let n = verts.len();
    let mut acc = 0.0;
    for i in 0..n {
        let a = verts[i];
        let b = verts[(i + 1) % n];
        acc += a.cross(b);
    }
    acc * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn unit_square() -> Polygon {
        Polygon::from_rect(Rect::from_coords(0.0, 0.0, 1.0, 1.0))
    }

    fn l_shape() -> Polygon {
        // Concave hexagon:
        //   (0,0) (2,0) (2,1) (1,1) (1,2) (0,2)
        Polygon::new(vec![
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 2.0),
            p(0.0, 2.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_normalises_to_ccw() {
        let cw = Polygon::new(vec![p(0.0, 0.0), p(0.0, 1.0), p(1.0, 1.0), p(1.0, 0.0)]).unwrap();
        assert!(signed_area(cw.vertices()) > 0.0);
        assert_eq!(cw.area(), 1.0);
    }

    #[test]
    fn construction_rejects_bad_input() {
        assert_eq!(
            Polygon::new(vec![p(0.0, 0.0), p(1.0, 0.0)]).unwrap_err(),
            PolygonError::TooFewVertices
        );
        assert_eq!(
            Polygon::new(vec![p(0.0, 0.0), p(0.0, 0.0), p(1.0, 1.0)]).unwrap_err(),
            PolygonError::DuplicateVertex
        );
        assert_eq!(
            Polygon::new(vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)]).unwrap_err(),
            PolygonError::ZeroArea
        );
        // Symmetric bow-tie: net signed area is zero, caught as such.
        assert_eq!(
            Polygon::new(vec![p(0.0, 0.0), p(1.0, 1.0), p(1.0, 0.0), p(0.0, 1.0)]).unwrap_err(),
            PolygonError::ZeroArea
        );
        // Asymmetric bow-tie: non-zero area but self-crossing boundary.
        assert_eq!(
            Polygon::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(1.0, 2.0), p(3.0, 2.0)]).unwrap_err(),
            PolygonError::SelfIntersection
        );
        // Spike: the boundary goes out to (2,0) and immediately back.
        assert_eq!(
            Polygon::new(vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 0.0), p(1.0, 1.0)]).unwrap_err(),
            PolygonError::Spike
        );
        assert_eq!(
            Polygon::new(vec![p(0.0, 0.0), p(f64::NAN, 0.0), p(1.0, 1.0)]).unwrap_err(),
            PolygonError::NonFiniteVertex
        );
    }

    #[test]
    fn locate_square() {
        let s = unit_square();
        assert_eq!(s.locate(p(0.5, 0.5)), PointLocation::Inside);
        assert_eq!(s.locate(p(0.0, 0.5)), PointLocation::Boundary);
        assert_eq!(s.locate(p(0.0, 0.0)), PointLocation::Boundary);
        assert_eq!(s.locate(p(1.5, 0.5)), PointLocation::Outside);
        assert_eq!(s.locate(p(0.5, -0.1)), PointLocation::Outside);
    }

    #[test]
    fn locate_concave() {
        let l = l_shape();
        assert_eq!(l.locate(p(0.5, 0.5)), PointLocation::Inside);
        assert_eq!(l.locate(p(1.5, 0.5)), PointLocation::Inside);
        assert_eq!(l.locate(p(0.5, 1.5)), PointLocation::Inside);
        assert_eq!(l.locate(p(1.5, 1.5)), PointLocation::Outside); // the notch
        assert_eq!(l.locate(p(1.0, 1.0)), PointLocation::Boundary); // reflex corner
        assert_eq!(l.locate(p(1.0, 1.5)), PointLocation::Boundary);
    }

    #[test]
    fn ray_cast_through_vertex_counts_once() {
        // p is horizontally aligned with vertices of the polygon — the
        // classic ray-casting failure mode.
        let tri = Polygon::new(vec![p(0.0, 0.0), p(2.0, 1.0), p(0.0, 2.0)]).unwrap();
        assert_eq!(tri.locate(p(0.5, 1.0)), PointLocation::Inside);
        assert_eq!(tri.locate(p(-0.5, 1.0)), PointLocation::Outside);
        assert_eq!(tri.locate(p(3.0, 1.0)), PointLocation::Outside);
    }

    #[test]
    fn blocks_segment_proper_crossing() {
        let s = unit_square();
        assert!(s.blocks_segment(Segment::new(p(-1.0, 0.5), p(2.0, 0.5))));
        assert!(s.blocks_segment(Segment::new(p(0.5, -1.0), p(0.5, 2.0))));
    }

    #[test]
    fn blocks_segment_fully_inside() {
        let s = unit_square();
        assert!(s.blocks_segment(Segment::new(p(0.2, 0.2), p(0.8, 0.8))));
    }

    #[test]
    fn blocks_segment_diagonal_through_corners() {
        // Corner-to-corner diagonal touches no edge properly yet passes
        // through the interior — the case naive proper-crossing tests miss.
        let s = unit_square();
        assert!(s.blocks_segment(Segment::new(p(0.0, 0.0), p(1.0, 1.0))));
        assert!(s.blocks_segment(Segment::new(p(-1.0, -1.0), p(2.0, 2.0))));
    }

    #[test]
    fn grazing_does_not_block() {
        let s = unit_square();
        // Along an edge.
        assert!(!s.blocks_segment(Segment::new(p(-1.0, 0.0), p(2.0, 0.0))));
        // Touching a corner from outside.
        assert!(!s.blocks_segment(Segment::new(p(-1.0, 1.0), p(1.0, -1.0)))); // through (0,0)
                                                                              // Endpoint on boundary, rest outside.
        assert!(!s.blocks_segment(Segment::new(p(1.0, 0.5), p(2.0, 0.5))));
        // Entirely outside.
        assert!(!s.blocks_segment(Segment::new(p(2.0, 2.0), p(3.0, 3.0))));
    }

    #[test]
    fn blocks_segment_concave_notch_is_free() {
        let l = l_shape();
        // A segment through the notch (outside the L) is not blocked.
        assert!(!l.blocks_segment(Segment::new(p(1.2, 2.0), p(2.0, 1.2))));
        // A segment cutting the inner corner is blocked.
        assert!(l.blocks_segment(Segment::new(p(0.5, 1.8), p(1.8, 0.5))));
    }

    #[test]
    fn enters_interior_at_vertex_square() {
        let s = unit_square(); // CCW: (0,0) (1,0) (1,1) (0,1)
                               // From corner (0,0): the interior is the quadrant up-right.
        assert!(s.enters_interior_at_vertex(0, p(0.5, 0.5)));
        assert!(!s.enters_interior_at_vertex(0, p(-0.5, -0.5)));
        assert!(!s.enters_interior_at_vertex(0, p(1.0, 0.0))); // along edge
        assert!(!s.enters_interior_at_vertex(0, p(0.0, 1.0))); // along edge
        assert!(!s.enters_interior_at_vertex(0, p(-1.0, 0.5)));
    }

    #[test]
    fn enters_interior_at_reflex_vertex() {
        let l = l_shape(); // reflex corner at (1,1), index 3
        assert_eq!(l.vertices()[3], p(1.0, 1.0));
        // Into the notch (outside).
        assert!(!l.enters_interior_at_vertex(3, p(1.5, 1.5)));
        // Down-left into the body (inside).
        assert!(l.enters_interior_at_vertex(3, p(0.5, 0.5)));
        // Straight down: along the boundary? (1,1)->(1,0)... edge from
        // (2,1)->(1,1) is incoming, outgoing edge is (1,1)->(1,2). Straight
        // down enters the interior (x slightly less than 1 is inside).
        assert!(l.enters_interior_at_vertex(3, p(1.0, 0.5)));
        // Straight right grazes the incoming edge: boundary, not interior.
        assert!(!l.enters_interior_at_vertex(3, p(1.8, 1.0)));
    }

    #[test]
    fn perimeter_and_boundary_point() {
        let s = unit_square();
        assert_eq!(s.perimeter(), 4.0);
        assert_eq!(s.boundary_point(0.0), p(0.0, 0.0));
        assert_eq!(s.boundary_point(0.25), p(1.0, 0.0));
        assert_eq!(s.boundary_point(0.5), p(1.0, 1.0));
        assert_eq!(s.boundary_point(0.125), p(0.5, 0.0));
    }

    #[test]
    fn boundary_point_on_slanted_edges_is_never_interior() {
        // Regression: the seed lerped slanted-edge samples to the closest
        // representable point, which lands an ulp *inside* the polygon for
        // a large fraction of parameters — where the exact point-location
        // predicate and the EPS-guarded blocks_segment disagree. Awkward
        // (non-dyadic) coordinates make the rounding bite.
        let polys = [
            Polygon::new(vec![p(0.1, 0.2), p(0.73, 0.41), p(0.35, 0.91)]).unwrap(),
            Polygon::new(vec![
                p(0.123456789, 0.987654321),
                p(std::f64::consts::FRAC_1_SQRT_2, 0.3333333333333333),
                p(0.9, 0.55),
                p(std::f64::consts::SQRT_2 - 1.0, 0.8660254037844386),
            ])
            .unwrap(),
            l_shape(),
        ];
        for (pi, poly) in polys.iter().enumerate() {
            for i in 0..500 {
                let t = i as f64 / 500.0;
                let q = poly.boundary_point(t);
                assert_ne!(
                    poly.locate(q),
                    PointLocation::Inside,
                    "polygon {pi}, t = {t}: boundary_point landed strictly inside"
                );
                // Still within a hair of the true boundary.
                let d = poly
                    .edges()
                    .map(|e| e.dist_to_point(q))
                    .fold(f64::MAX, f64::min);
                assert!(d <= 1e-12, "polygon {pi}, t = {t}: {d} off the boundary");
            }
        }
    }

    #[test]
    fn boundary_point_snaps_breakpoints_to_exact_vertices() {
        let polys = vec![
            Polygon::new(vec![p(0.1, 0.2), p(0.73, 0.41), p(0.35, 0.91)]).unwrap(),
            l_shape(),
        ];
        for poly in &polys {
            let total = poly.perimeter();
            let mut acc = 0.0;
            for i in 0..poly.len() {
                let q = poly.boundary_point(acc / total);
                assert_eq!(
                    q,
                    poly.vertices()[i],
                    "breakpoint {i} must be the exact vertex"
                );
                acc += poly.edge(i).len();
            }
        }
    }

    #[test]
    fn boundary_point_displaced_is_outside() {
        let s = unit_square();
        for i in 0..40 {
            let t = i as f64 / 40.0;
            let q = s.boundary_point_displaced(t, 1e-9);
            assert_ne!(s.locate(q), PointLocation::Inside, "t = {t}");
        }
    }

    #[test]
    fn convexity() {
        assert!(unit_square().is_convex());
        assert!(!l_shape().is_convex());
    }

    #[test]
    fn edges_count_matches_vertices() {
        let l = l_shape();
        assert_eq!(l.edges().count(), 6);
        assert_eq!(l.len(), 6);
    }
}
