//! Line segments and intersection tests.

use crate::{orient2d, Orientation, Point};

/// A closed line segment between two endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Whether the segment is degenerate (both endpoints equal).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// Whether `p` lies on the closed segment. `p` is assumed collinear
    /// with the segment; for arbitrary points use [`Segment::contains`].
    #[inline]
    pub fn contains_collinear(&self, p: Point) -> bool {
        p.x >= self.a.x.min(self.b.x)
            && p.x <= self.a.x.max(self.b.x)
            && p.y >= self.a.y.min(self.b.y)
            && p.y <= self.a.y.max(self.b.y)
    }

    /// Whether `p` lies on the closed segment (exact test).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        orient2d(self.a, self.b, p) == Orientation::Collinear && self.contains_collinear(p)
    }

    /// Whether `p` lies in the open interior of the segment (on the
    /// segment, but not at either endpoint).
    #[inline]
    pub fn interior_contains(&self, p: Point) -> bool {
        self.contains(p) && p != self.a && p != self.b
    }

    /// Parameter `t ∈ [0, 1]` of the closest point on the segment to `p`.
    pub fn closest_param(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.dot(d);
        if len_sq == 0.0 {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// Point on the segment at parameter `t ∈ [0, 1]`.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Distance from `p` to the closest point of the segment.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.at(self.closest_param(p)).dist(p)
    }
}

/// Distance from point `p` to segment `s` (free-function convenience).
#[inline]
pub fn segment_point_distance(s: Segment, p: Point) -> f64 {
    s.dist_to_point(p)
}

/// Whether segments `s` and `t` intersect *properly*: their open interiors
/// cross in exactly one point. Touching at an endpoint, overlapping
/// collinearly, or sharing an endpoint are all **not** proper crossings.
///
/// This is the blocking test at the heart of visibility computation: a
/// sight line that properly crosses an obstacle edge necessarily passes
/// through the obstacle interior.
pub fn proper_crossing(s: Segment, t: Segment) -> bool {
    let o1 = orient2d(s.a, s.b, t.a);
    let o2 = orient2d(s.a, s.b, t.b);
    let o3 = orient2d(t.a, t.b, s.a);
    let o4 = orient2d(t.a, t.b, s.b);
    o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
        && o1 != o2
        && o3 != o4
}

/// Whether the closed segments `s` and `t` share at least one point
/// (proper crossings, endpoint touches and collinear overlaps all count).
pub fn segments_intersect(s: Segment, t: Segment) -> bool {
    if proper_crossing(s, t) {
        return true;
    }
    // Any non-proper intersection involves an endpoint of one segment lying
    // on the other (this also covers collinear overlaps).
    let o1 = orient2d(s.a, s.b, t.a);
    let o2 = orient2d(s.a, s.b, t.b);
    let o3 = orient2d(t.a, t.b, s.a);
    let o4 = orient2d(t.a, t.b, s.b);
    (o1 == Orientation::Collinear && s.contains_collinear(t.a))
        || (o2 == Orientation::Collinear && s.contains_collinear(t.b))
        || (o3 == Orientation::Collinear && t.contains_collinear(s.a))
        || (o4 == Orientation::Collinear && t.contains_collinear(s.b))
}

/// Intersection parameter(s) of segment `s` with segment `t`, expressed as
/// parameters along `s` (`0` at `s.a`, `1` at `s.b`).
///
/// * A proper or touching crossing yields one parameter.
/// * A collinear overlap yields the two parameters bounding the shared
///   sub-segment.
/// * Disjoint segments yield none.
///
/// Parameters are computed in floating point; they are used to cut a sight
/// line into sub-intervals whose midpoints are then classified by exact
/// point-in-polygon tests, so small parameter errors are harmless.
pub fn intersection_params(s: Segment, t: Segment) -> SmallParams {
    let mut out = SmallParams::default();
    let d1 = s.b - s.a;
    let d2 = t.b - t.a;
    let denom = d1.cross(d2);

    let o_ta = orient2d(s.a, s.b, t.a);
    let o_tb = orient2d(s.a, s.b, t.b);

    if o_ta == Orientation::Collinear && o_tb == Orientation::Collinear {
        // Collinear: project t's endpoints onto s.
        let len_sq = d1.dot(d1);
        if len_sq == 0.0 {
            return out;
        }
        let ta = (t.a - s.a).dot(d1) / len_sq;
        let tb = (t.b - s.a).dot(d1) / len_sq;
        let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
        let lo = lo.max(0.0);
        let hi = hi.min(1.0);
        if lo <= hi {
            out.push(lo);
            if hi > lo {
                out.push(hi);
            }
        }
        return out;
    }

    if !segments_intersect(s, t) {
        return out;
    }
    if denom != 0.0 {
        let u = (t.a - s.a).cross(d2) / denom;
        out.push(u.clamp(0.0, 1.0));
    } else {
        // Parallel but touching at an endpoint.
        if t.contains(s.a) {
            out.push(0.0);
        }
        if t.contains(s.b) {
            out.push(1.0);
        }
        if s.contains(t.a) {
            out.push(s.closest_param(t.a));
        }
        if s.contains(t.b) {
            out.push(s.closest_param(t.b));
        }
    }
    out
}

/// Tiny fixed-capacity container for intersection parameters (at most two
/// distinct values can ever be produced per segment pair).
#[derive(Clone, Copy, Debug, Default)]
pub struct SmallParams {
    buf: [f64; 4],
    len: usize,
}

impl SmallParams {
    fn push(&mut self, v: f64) {
        if self.len < self.buf.len() {
            self.buf[self.len] = v;
            self.len += 1;
        }
    }

    /// The collected parameters.
    pub fn as_slice(&self) -> &[f64] {
        &self.buf[..self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing_detects_an_x() {
        let s = seg(0.0, 0.0, 1.0, 1.0);
        let t = seg(0.0, 1.0, 1.0, 0.0);
        assert!(proper_crossing(s, t));
        assert!(segments_intersect(s, t));
    }

    #[test]
    fn endpoint_touch_is_not_proper() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(1.0, 0.0, 2.0, 1.0); // shares endpoint (1,0)
        assert!(!proper_crossing(s, t));
        assert!(segments_intersect(s, t));
    }

    #[test]
    fn t_junction_is_not_proper_but_intersects() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let t = seg(1.0, 0.0, 1.0, 1.0); // touches interior of s at (1,0)
        assert!(!proper_crossing(s, t));
        assert!(segments_intersect(s, t));
    }

    #[test]
    fn collinear_overlap_intersects() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let t = seg(1.0, 0.0, 3.0, 0.0);
        assert!(!proper_crossing(s, t));
        assert!(segments_intersect(s, t));
        let params = intersection_params(s, t);
        assert_eq!(params.as_slice(), &[0.5, 1.0]);
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!segments_intersect(s, t));
        assert!(intersection_params(s, t).as_slice().is_empty());
    }

    #[test]
    fn parallel_non_collinear_does_not_intersect() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!segments_intersect(s, t));
    }

    #[test]
    fn fully_disjoint() {
        let s = seg(0.0, 0.0, 1.0, 1.0);
        let t = seg(5.0, 5.0, 6.0, 7.0);
        assert!(!segments_intersect(s, t));
        assert!(!proper_crossing(s, t));
    }

    #[test]
    fn crossing_param_is_correct() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let t = seg(0.5, -1.0, 0.5, 1.0);
        let params = intersection_params(s, t);
        assert_eq!(params.as_slice(), &[0.25]);
    }

    #[test]
    fn point_distance() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(s.dist_to_point(Point::new(1.0, 1.0)), 1.0);
        assert_eq!(s.dist_to_point(Point::new(3.0, 0.0)), 1.0);
        assert_eq!(s.dist_to_point(Point::new(1.0, 0.0)), 0.0);
    }

    #[test]
    fn contains_and_interior() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        assert!(s.contains(Point::new(1.0, 1.0)));
        assert!(s.contains(Point::new(0.0, 0.0)));
        assert!(s.interior_contains(Point::new(1.0, 1.0)));
        assert!(!s.interior_contains(Point::new(0.0, 0.0)));
        assert!(!s.contains(Point::new(1.0, 1.0001)));
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert_eq!(s.len(), 0.0);
        assert_eq!(s.closest_param(Point::new(5.0, 5.0)), 0.0);
    }
}
