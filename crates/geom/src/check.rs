//! A minimal deterministic property-test harness.
//!
//! The seed repository used `proptest`, which is unavailable in this
//! offline workspace. This module replaces the subset the test suites
//! relied on: run a property over many pseudo-random cases, with inputs
//! drawn from explicit ranges. Unlike `proptest` there is no shrinking —
//! instead every run is **fully deterministic** (case `k` of a given
//! [`cases`] call site always sees the same inputs, on every machine), so
//! a failure message naming the case number is already a minimal
//! reproduction recipe. Distinct call sites draw from distinct streams
//! (the seed is salted with the caller's source location), so two
//! properties with the same draw pattern still explore different inputs.
//!
//! ```
//! use obstacle_geom::check;
//!
//! check::cases(64, |g| {
//!     let x = g.f64(-100.0, 100.0);
//!     assert!(x.abs() <= 100.0);
//! });
//! ```

use crate::rng::{Rng, SeedableRng, SmallRng};

/// Default number of cases per property, matching `proptest`'s default.
pub const DEFAULT_CASES: u32 = 256;

/// Per-case input generator handed to each property invocation.
pub struct Gen {
    rng: SmallRng,
    /// Zero-based index of the current case (for failure messages).
    pub case: u32,
}

impl Gen {
    fn for_case(site_salt: u64, case: u32) -> Gen {
        // The constant keeps harness streams unrelated to dataset seeds;
        // the site salt keeps same-shaped properties on distinct streams.
        Gen {
            rng: SmallRng::seed_from_u64(0x0B5E_55ED_C45E_0000 ^ site_salt ^ case as u64),
            case,
        }
    }

    /// Uniform `f64` in the half-open interval `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty f64 range [{lo}, {hi})");
        // lo + r*(hi-lo) can round exactly onto hi for r near 1; clamp to
        // keep the documented exclusive upper bound.
        (lo + self.rng.gen::<f64>() * (hi - lo)).min(hi.next_down())
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range_u64(lo, hi)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.gen_range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `u32` in the closed interval `[lo, hi]`.
    pub fn u32_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.gen_range_u64(lo as u64, hi as u64 + 1) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.gen()
    }

    /// A vector with uniformly chosen length in `[min_len, max_len)`,
    /// each element drawn by `element`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut element: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(min_len, max_len);
        (0..n).map(|_| element(self)).collect()
    }
}

/// Runs `property` over `n` deterministic cases.
///
/// Inputs are a pure function of `(call site, case index)`: re-running a
/// failing test reproduces the identical failure (no random retries),
/// while different properties — even ones drawing identically shaped
/// inputs — explore different streams.
///
/// A panic inside the property is annotated on stderr with the failing
/// case index, then propagated so the test still fails normally.
#[track_caller]
pub fn cases<F: FnMut(&mut Gen)>(n: u32, mut property: F) {
    let site = std::panic::Location::caller();
    // FNV-1a over file:line:column — stable across runs of one source
    // tree, which is the determinism contract the harness promises.
    let mut salt: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in site
        .file()
        .bytes()
        .chain(site.line().to_le_bytes())
        .chain(site.column().to_le_bytes())
    {
        salt ^= byte as u64;
        salt = salt.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..n {
        let mut g = Gen::for_case(salt, case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut g)));
        if let Err(panic) = outcome {
            eprintln!("property failed at deterministic case {case} of {n}");
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared call site: every invocation draws the same stream.
    fn draw_ten() -> Vec<(u32, u64, f64)> {
        let mut out = Vec::new();
        cases(10, |g| out.push((g.case, g.u64(0, 1000), g.f64(0.0, 1.0))));
        out
    }

    #[test]
    fn cases_are_deterministic_per_call_site() {
        let first = draw_ten();
        let second = draw_ten();
        assert_eq!(first, second);
        assert_eq!(first.len(), 10);
    }

    #[test]
    fn distinct_call_sites_draw_distinct_streams() {
        // Same draw pattern as draw_ten, different source location: the
        // two streams must not collapse onto one another.
        let mut here = Vec::new();
        cases(10, |g| here.push((g.case, g.u64(0, 1000), g.f64(0.0, 1.0))));
        let there = draw_ten();
        assert_ne!(here, there);
    }

    #[test]
    fn ranges_are_respected() {
        cases(100, |g| {
            assert!((3..7).contains(&g.usize(3, 7)));
            assert!((1..=10).contains(&g.u32_inclusive(1, 10)));
            let v = g.vec(2, 6, |g| g.f64(-1.0, 1.0));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        cases(5, |g| assert!(g.case < 3, "boom"));
    }
}
