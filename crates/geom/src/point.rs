//! 2-D points with `f64` coordinates.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or free vector) in the plane.
///
/// The type doubles as a vector: subtraction of two points yields the
/// displacement vector between them, and `cross`/`dot` operate on such
/// displacement vectors.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// 2-D cross product (z-component of the 3-D cross product) of `self`
    /// and `other` interpreted as vectors.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Dot product of `self` and `other` interpreted as vectors.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean norm of `self` interpreted as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(*self).sqrt()
    }

    /// Midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns true when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison (by `x`, then `y`); a total order for
    /// all points (NaN coordinates sort deterministically under
    /// [`crate::total_cmp`]), used to canonicalise polygon vertex orders
    /// in tests.
    #[inline]
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        crate::total_cmp(self.x, other.x).then(crate::total_cmp(self.y, other.y))
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(b.dist(a), 5.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn dist_sq_matches_dist() {
        let a = Point::new(-3.0, 0.5);
        let b = Point::new(2.0, -1.5);
        assert!((a.dist_sq(b).sqrt() - a.dist(b)).abs() < 1e-15);
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        let e1 = Point::new(1.0, 0.0);
        let e2 = Point::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0); // counter-clockwise
        assert!(e2.cross(e1) < 0.0); // clockwise
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!((b - a).norm(), (13.0f64).sqrt());
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        use std::cmp::Ordering;
        let a = Point::new(0.0, 5.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 6.0);
        assert_eq!(a.lex_cmp(&b), Ordering::Less);
        assert_eq!(a.lex_cmp(&c), Ordering::Less);
        assert_eq!(a.lex_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn lex_cmp_with_nan_coordinates_is_total_not_panicking() {
        use std::cmp::Ordering;
        let nan = Point::new(f64::NAN, 0.0);
        let a = Point::new(1.0, 1.0);
        // NaN sorts to the positive end under totalOrder; the historical
        // `partial_cmp(..).unwrap()` comparator aborted here.
        assert_eq!(nan.lex_cmp(&nan), Ordering::Equal);
        assert_eq!(a.lex_cmp(&nan), Ordering::Less);
        assert_eq!(nan.lex_cmp(&a), Ordering::Greater);
    }
}
