//! Convex hulls (Andrew's monotone chain).
//!
//! Used by the data generator to produce arbitrary convex polygon
//! obstacles (the paper's algorithms support any simple polygon; the
//! experiments use rectangles, so polygon obstacles exercise the general
//! path).

use crate::{orient2d, Orientation, Point};

/// Convex hull of a point set, as a counter-clockwise vertex loop without
/// collinear intermediate points. Returns fewer than three points when
/// the input is degenerate (empty, a single point, or all collinear —
/// callers that need a polygon must check).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.lex_cmp(b));
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // the first point is repeated at the end
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PointLocation, Polygon};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5),
            p(0.25, 0.75),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        // CCW and a valid convex polygon.
        let poly = Polygon::new(hull).unwrap();
        assert!(poly.is_convex());
        assert_eq!(poly.area(), 1.0);
    }

    #[test]
    fn collinear_input_degenerates() {
        let pts = vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)];
        assert!(convex_hull(&pts).len() < 3);
        assert_eq!(convex_hull(&[]).len(), 0);
        assert_eq!(convex_hull(&[p(1.0, 1.0)]).len(), 1);
        assert_eq!(convex_hull(&[p(1.0, 1.0), p(1.0, 1.0)]).len(), 1);
    }

    #[test]
    fn collinear_edge_points_are_dropped() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(1.0, 1.0)];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 3); // (1,0) is interior to the bottom edge
    }

    #[test]
    fn hull_contains_all_inputs() {
        // Deterministic pseudo-random check.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..40).map(|_| p(next(), next())).collect();
        let hull = convex_hull(&pts);
        assert!(hull.len() >= 3);
        let poly = Polygon::new(hull).unwrap();
        assert!(poly.is_convex());
        for q in &pts {
            assert_ne!(poly.locate(*q), PointLocation::Outside, "{q}");
        }
    }
}
