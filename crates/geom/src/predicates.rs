//! Robust orientation predicates.
//!
//! The visibility graph construction and all segment-intersection tests in
//! this workspace hinge on the sign of the 2×2 determinant
//!
//! ```text
//! | ax - cx   ay - cy |
//! | bx - cx   by - cy |
//! ```
//!
//! Plain `f64` evaluation of that determinant can return the wrong sign for
//! nearly-collinear inputs, which corrupts visibility decisions (an edge
//! that "almost" grazes an obstacle corner may be classified as blocked or
//! free inconsistently between the naive and the plane-sweep builder).
//!
//! [`orient2d`] therefore follows the classic Shewchuk design: a fast
//! floating-point evaluation with a forward error bound, falling back to an
//! exact computation using expansion arithmetic when the filter cannot
//! certify the sign. The exact path ([`orient2d_exact`]) computes the
//! determinant as a sum of nonoverlapping `f64` expansions and is *always*
//! correct for finite inputs.

use crate::Point;

/// Relative orientation of an ordered point triple `(a, b, c)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies strictly to the left of the directed line `a → b`
    /// (the triple makes a counter-clockwise turn).
    CounterClockwise,
    /// `c` lies strictly to the right of the directed line `a → b`.
    Clockwise,
    /// The three points are exactly collinear.
    Collinear,
}

impl Orientation {
    /// Maps a signed determinant to an [`Orientation`].
    #[inline]
    pub fn from_sign(det: f64) -> Orientation {
        if det > 0.0 {
            Orientation::CounterClockwise
        } else if det < 0.0 {
            Orientation::Clockwise
        } else {
            Orientation::Collinear
        }
    }

    /// The orientation of the mirrored triple (`a`, `b` swapped).
    #[inline]
    pub fn reversed(self) -> Orientation {
        match self {
            Orientation::CounterClockwise => Orientation::Clockwise,
            Orientation::Clockwise => Orientation::CounterClockwise,
            Orientation::Collinear => Orientation::Collinear,
        }
    }
}

/// `2^-53`, the relative rounding error of `f64` arithmetic.
const EPSILON: f64 = 1.1102230246251565e-16;
/// Forward error bound for the fast orientation filter
/// (`(3 + 16ε)·ε`, from Shewchuk's robustness analysis).
const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;
/// `2^27 + 1`, used to split a double into two half-precision parts.
const SPLITTER: f64 = 134_217_729.0;

// ---------------------------------------------------------------------------
// Error-free transformations (Dekker / Knuth building blocks).
// Each returns `(x, y)` with `x + y` exactly equal to the true result and
// `x` equal to the rounded result.
// ---------------------------------------------------------------------------

#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let b_virt = x - a;
    let a_virt = x - b_virt;
    let b_round = b - b_virt;
    let a_round = a - a_virt;
    (x, a_round + b_round)
}

#[inline]
fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let b_virt = a - x;
    let a_virt = x + b_virt;
    let b_round = b_virt - b;
    let a_round = a - a_virt;
    (x, a_round + b_round)
}

#[inline]
fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let a_big = c - a;
    let hi = c - a_big;
    (hi, a - hi)
}

#[inline]
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = x - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (x, alo * blo - err3)
}

/// `(a1 + a0) - (b1 + b0)` as an exact 4-component expansion
/// (components in increasing magnitude order).
#[inline]
fn two_two_diff(a1: f64, a0: f64, b1: f64, b0: f64) -> [f64; 4] {
    // Two_One_Diff(a1, a0, b0) ...
    let (i, x0) = two_diff(a0, b0);
    let (j, lo) = two_sum(a1, i);
    // ... followed by Two_One_Diff(j, lo, b1).
    let (i2, x1) = two_diff(lo, b1);
    let (x3, x2) = two_sum(j, i2);
    [x0, x1, x2, x3]
}

/// Sums two expansions (each sorted by increasing magnitude, nonoverlapping)
/// into `out`, eliminating zero components. Returns the number of components
/// written. This is Shewchuk's `FAST_EXPANSION_SUM_ZEROELIM`.
fn fast_expansion_sum_zeroelim(e: &[f64], f: &[f64], out: &mut [f64]) -> usize {
    let (mut e_i, mut f_i) = (0usize, 0usize);
    let mut e_now = e[0];
    let mut f_now = f[0];
    let mut q;
    if (f_now > e_now) == (f_now > -e_now) {
        q = e_now;
        e_i += 1;
        if e_i < e.len() {
            e_now = e[e_i];
        }
    } else {
        q = f_now;
        f_i += 1;
        if f_i < f.len() {
            f_now = f[f_i];
        }
    }
    let mut out_n = 0usize;
    if e_i < e.len() && f_i < f.len() {
        let (new_q, h);
        if (f_now > e_now) == (f_now > -e_now) {
            let r = fast_two_sum(e_now, q);
            new_q = r.0;
            h = r.1;
            e_i += 1;
            if e_i < e.len() {
                e_now = e[e_i];
            }
        } else {
            let r = fast_two_sum(f_now, q);
            new_q = r.0;
            h = r.1;
            f_i += 1;
            if f_i < f.len() {
                f_now = f[f_i];
            }
        }
        q = new_q;
        if h != 0.0 {
            out[out_n] = h;
            out_n += 1;
        }
        while e_i < e.len() && f_i < f.len() {
            let (new_q, h);
            if (f_now > e_now) == (f_now > -e_now) {
                let r = two_sum(q, e_now);
                new_q = r.0;
                h = r.1;
                e_i += 1;
                if e_i < e.len() {
                    e_now = e[e_i];
                }
            } else {
                let r = two_sum(q, f_now);
                new_q = r.0;
                h = r.1;
                f_i += 1;
                if f_i < f.len() {
                    f_now = f[f_i];
                }
            }
            q = new_q;
            if h != 0.0 {
                out[out_n] = h;
                out_n += 1;
            }
        }
    }
    while e_i < e.len() {
        let (new_q, h) = two_sum(q, e_now);
        e_i += 1;
        if e_i < e.len() {
            e_now = e[e_i];
        }
        q = new_q;
        if h != 0.0 {
            out[out_n] = h;
            out_n += 1;
        }
    }
    while f_i < f.len() {
        let (new_q, h) = two_sum(q, f_now);
        f_i += 1;
        if f_i < f.len() {
            f_now = f[f_i];
        }
        q = new_q;
        if h != 0.0 {
            out[out_n] = h;
            out_n += 1;
        }
    }
    if q != 0.0 || out_n == 0 {
        out[out_n] = q;
        out_n += 1;
    }
    out_n
}

#[inline]
fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    (x, b - (x - a))
}

/// Exact sign of the orientation determinant, via expansion arithmetic.
///
/// Computes `ax·by − ax·cy + bx·cy − bx·ay + cx·ay − cx·by` exactly and
/// returns its orientation. Correct for all finite inputs (no overflow
/// handling: coordinates are expected to be well within ±1e150, which holds
/// for the unit-square universes used throughout this workspace).
pub fn orient2d_exact(a: Point, b: Point, c: Point) -> Orientation {
    let (axby1, axby0) = two_product(a.x, b.y);
    let (axcy1, axcy0) = two_product(a.x, c.y);
    let aterms = two_two_diff(axby1, axby0, axcy1, axcy0);

    let (bxcy1, bxcy0) = two_product(b.x, c.y);
    let (bxay1, bxay0) = two_product(b.x, a.y);
    let bterms = two_two_diff(bxcy1, bxcy0, bxay1, bxay0);

    let (cxay1, cxay0) = two_product(c.x, a.y);
    let (cxby1, cxby0) = two_product(c.x, b.y);
    let cterms = two_two_diff(cxay1, cxay0, cxby1, cxby0);

    let mut ab = [0.0f64; 8];
    let ab_n = fast_expansion_sum_zeroelim(&aterms, &bterms, &mut ab);
    let mut abc = [0.0f64; 12];
    let abc_n = fast_expansion_sum_zeroelim(&ab[..ab_n], &cterms, &mut abc);

    // The most significant (last) nonzero component carries the sign.
    Orientation::from_sign(abc[abc_n - 1])
}

/// Orientation of the ordered triple `(a, b, c)`: does `a → b → c` turn
/// counter-clockwise, clockwise, or not at all?
///
/// Uses a fast floating-point evaluation guarded by a forward error bound;
/// when the bound cannot certify the sign the computation falls back to the
/// exact predicate [`orient2d_exact`]. The returned orientation is always
/// the exact one.
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum;
    if detleft > 0.0 {
        if detright <= 0.0 {
            return Orientation::from_sign(det);
        }
        detsum = detleft + detright;
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return Orientation::from_sign(det);
        }
        detsum = -detleft - detright;
    } else {
        return Orientation::from_sign(det);
    }

    let errbound = CCW_ERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return Orientation::from_sign(det);
    }
    orient2d_exact(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn basic_orientations() {
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn exact_and_filtered_agree_on_easy_inputs() {
        let cases = [
            (p(0.0, 0.0), p(3.0, 1.0), p(1.0, 4.0)),
            (p(-5.0, 2.0), p(7.0, -3.0), p(0.25, 0.125)),
            (p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)),
        ];
        for (a, b, c) in cases {
            assert_eq!(orient2d(a, b, c), orient2d_exact(a, b, c));
        }
    }

    #[test]
    fn nearly_collinear_is_resolved_exactly() {
        // Classic robustness torture: points on a line y = x with a tiny
        // perturbation far below the naive rounding noise.
        // An offset of ~1 ulp of 24.0: far below the naive filter's noise
        // floor for this input, so the exact fallback must decide the sign.
        let a = p(0.5, 0.5);
        let b = p(12.0, 12.0);
        let c = p(24.0, 24.0 + 4e-15); // just above the line => CCW turn
        assert_eq!(orient2d(a, b, c), Orientation::CounterClockwise);
        let c2 = p(24.0, 24.0 - 4e-15);
        assert_eq!(orient2d(a, b, c2), Orientation::Clockwise);
        let c3 = p(24.0, 24.0);
        assert_eq!(orient2d(a, b, c3), Orientation::Collinear);
    }

    #[test]
    fn antisymmetry() {
        let a = p(0.1, 0.7);
        let b = p(0.9, 0.3);
        let c = p(0.4, 0.4);
        assert_eq!(orient2d(a, b, c), orient2d(b, a, c).reversed());
    }

    #[test]
    fn cyclic_permutation_invariance() {
        let a = p(0.3, 0.1);
        let b = p(0.9, 0.8);
        let c = p(0.2, 0.95);
        let o = orient2d(a, b, c);
        assert_eq!(o, orient2d(b, c, a));
        assert_eq!(o, orient2d(c, a, b));
    }

    #[test]
    fn degenerate_duplicated_points_are_collinear() {
        let a = p(0.5, 0.25);
        let b = p(0.75, 0.33);
        assert_eq!(orient2d(a, a, b), Orientation::Collinear);
        assert_eq!(orient2d(a, b, b), Orientation::Collinear);
        assert_eq!(orient2d(a, b, a), Orientation::Collinear);
        assert_eq!(orient2d(a, a, a), Orientation::Collinear);
    }

    #[test]
    fn grid_of_adversarial_offsets() {
        // Sweep a point across the line through (0,0)-(1,1) with sub-ulp
        // offsets; the exact predicate must classify every position
        // consistently with the mathematical sign.
        let a = p(0.0, 0.0);
        let b = p(1.0, 1.0);
        for i in 0..50 {
            let base = 0.5 + (i as f64) * 1e-17;
            let c = p(base, base);
            // c is mathematically on the line only when base is exactly
            // representable equal in both coordinates, which it is here.
            assert_eq!(orient2d(a, b, c), Orientation::Collinear);
        }
    }
}
