//! Angular ordering around a pivot point.
//!
//! The rotational plane sweep of Sharir & Schorr \[SS84\] processes the
//! vertices of nearby obstacles in angular order around the sweep origin.
//! [`angular_cmp`] provides that order **exactly** (no trigonometry): it
//! combines a half-plane split with the robust [`orient2d`](crate::orient2d)
//! predicate, breaking ties on the same ray by distance (closer first).

use crate::{orient2d, Orientation, Point};
use std::cmp::Ordering;

/// Cheap monotone surrogate for `atan2(dy, dx)`, mapping directions to
/// `[0, 4)` with `0` at the positive x-axis, increasing counter-clockwise.
/// Only the *order* of the returned values is meaningful. The zero vector
/// maps to `0`.
pub fn pseudo_angle(dx: f64, dy: f64) -> f64 {
    let denom = dx.abs() + dy.abs();
    if denom == 0.0 {
        return 0.0;
    }
    let p = dx / denom;
    if dy >= 0.0 {
        1.0 - p // [0, 2): upper half plane plus both x-axis directions
    } else {
        3.0 + p // [2, 4): lower half plane
    }
}

/// Which half of the plane around `pivot` a point falls in:
/// `0` for angles in `[0°, 180°)` (positive x-axis inclusive, upper half),
/// `1` for `[180°, 360°)`.
#[inline]
fn half(pivot: Point, p: Point) -> u8 {
    let dx = p.x - pivot.x;
    let dy = p.y - pivot.y;
    if dy > 0.0 || (dy == 0.0 && dx > 0.0) {
        0
    } else {
        1
    }
}

/// Exact angular comparison of `a` and `b` around `pivot`.
///
/// Orders by angle from the positive x-axis, counter-clockwise, in
/// `[0°, 360°)`; points on the same ray are ordered near-to-far. `pivot`
/// itself compares before everything else.
pub fn angular_cmp(pivot: Point, a: Point, b: Point) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    if a == pivot {
        return Ordering::Less;
    }
    if b == pivot {
        return Ordering::Greater;
    }
    let ha = half(pivot, a);
    let hb = half(pivot, b);
    if ha != hb {
        return ha.cmp(&hb);
    }
    match orient2d(pivot, a, b) {
        Orientation::CounterClockwise => Ordering::Less,
        Orientation::Clockwise => Ordering::Greater,
        Orientation::Collinear => {
            // Same half and collinear through the pivot ⇒ same ray.
            let da = pivot.dist_sq(a);
            let db = pivot.dist_sq(b);
            crate::total_cmp(da, db)
        }
    }
}

/// Reusable comparator: angular order around a fixed pivot.
///
/// Useful with `sort_by`:
/// ```
/// use obstacle_geom::{AngularOrder, Point};
/// let pivot = Point::new(0.0, 0.0);
/// let mut pts = vec![Point::new(0.0, -1.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)];
/// let ord = AngularOrder::new(pivot);
/// pts.sort_by(|a, b| ord.cmp(*a, *b));
/// assert_eq!(pts[0], Point::new(1.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AngularOrder {
    pivot: Point,
}

impl AngularOrder {
    /// Comparator for angular order around `pivot`.
    pub fn new(pivot: Point) -> Self {
        AngularOrder { pivot }
    }

    /// Compare two points in the angular order.
    pub fn cmp(&self, a: Point, b: Point) -> Ordering {
        angular_cmp(self.pivot, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn pseudo_angle_matches_atan2_order() {
        let dirs = [
            (1.0, 0.0),
            (1.0, 1.0),
            (0.0, 1.0),
            (-1.0, 1.0),
            (-1.0, 0.0),
            (-1.0, -1.0),
            (0.0, -1.0),
            (1.0, -1.0),
        ];
        let mut prev = -1.0;
        for (dx, dy) in dirs {
            let a = pseudo_angle(dx, dy);
            assert!(a > prev, "pseudo_angle must increase CCW from +x");
            prev = a;
        }
        assert_eq!(pseudo_angle(1.0, 0.0), 0.0);
    }

    #[test]
    fn angular_cmp_full_circle() {
        let pivot = p(0.5, 0.5);
        let ring = [
            p(1.5, 0.5),  // 0°
            p(1.5, 1.5),  // 45°
            p(0.5, 1.5),  // 90°
            p(-0.5, 1.5), // 135°
            p(-0.5, 0.5), // 180°
            p(-0.5, -0.5),
            p(0.5, -0.5),
            p(1.5, -0.5),
        ];
        for w in ring.windows(2) {
            assert_eq!(angular_cmp(pivot, w[0], w[1]), Ordering::Less);
            assert_eq!(angular_cmp(pivot, w[1], w[0]), Ordering::Greater);
        }
    }

    #[test]
    fn same_ray_orders_by_distance() {
        let pivot = p(0.0, 0.0);
        assert_eq!(angular_cmp(pivot, p(1.0, 1.0), p(2.0, 2.0)), Ordering::Less);
        assert_eq!(
            angular_cmp(pivot, p(2.0, 2.0), p(1.0, 1.0)),
            Ordering::Greater
        );
        // Opposite rays are NOT the same ray: (−1,−1) is at 225°.
        assert_eq!(
            angular_cmp(pivot, p(1.0, 1.0), p(-1.0, -1.0)),
            Ordering::Less
        );
    }

    #[test]
    fn sort_is_total_and_stable_under_shuffle() {
        let pivot = p(0.0, 0.0);
        let mut pts = vec![
            p(0.0, -2.0),
            p(1.0, 0.0),
            p(-3.0, 0.0),
            p(0.5, 0.5),
            p(2.0, 0.0),
            p(0.0, 4.0),
            p(-1.0, -1.0),
        ];
        pts.sort_by(|a, b| angular_cmp(pivot, *a, *b));
        let expected = vec![
            p(1.0, 0.0),
            p(2.0, 0.0),
            p(0.5, 0.5),
            p(0.0, 4.0),
            p(-3.0, 0.0),
            p(-1.0, -1.0),
            p(0.0, -2.0),
        ];
        assert_eq!(pts, expected);
    }

    #[test]
    fn pivot_sorts_first_and_equal_points_are_equal() {
        let pivot = p(1.0, 1.0);
        assert_eq!(angular_cmp(pivot, pivot, p(2.0, 2.0)), Ordering::Less);
        assert_eq!(angular_cmp(pivot, p(2.0, 2.0), pivot), Ordering::Greater);
        assert_eq!(
            angular_cmp(pivot, p(2.0, 2.0), p(2.0, 2.0)),
            Ordering::Equal
        );
    }
}
