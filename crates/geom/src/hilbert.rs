//! Hilbert space-filling curve.
//!
//! The ODJ algorithm of the paper sorts join seeds "according to Hilbert
//! order to maximise locality" between successive obstacle R-tree range
//! queries (§5, Fig. 10). The R-tree crate also offers Hilbert-order bulk
//! loading. Both use this module.

use crate::{Point, Rect};

/// Default curve order used when mapping unit-universe points:
/// a 2^16 × 2^16 grid is far below `f64` precision but fine enough that
/// Hilbert ordering reflects true spatial locality for any realistic
/// dataset size.
pub const HILBERT_ORDER: u32 = 16;

/// Maps grid cell `(x, y)` on the `2^order × 2^order` Hilbert curve to its
/// distance `d` along the curve. Coordinates must be `< 2^order`.
///
/// This is the classic iterative conversion (rotate/reflect quadrants from
/// the most significant bit downward).
pub fn hilbert_index(order: u32, mut x: u32, mut y: u32) -> u64 {
    assert!(order > 0 && order <= 31, "order must be in 1..=31");
    let n: u32 = 1 << order;
    assert!(x < n && y < n, "coordinates must be < 2^order");
    let mut d: u64 = 0;
    let mut s: u32 = n >> 1;
    while s > 0 {
        let rx: u32 = u32::from(x & s > 0);
        let ry: u32 = u32::from(y & s > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant so the sub-curve is oriented canonically.
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s >>= 1;
    }
    d
}

/// Hilbert index of a point within the `universe` rectangle, using a
/// `2^HILBERT_ORDER` grid. Points outside the universe are clamped to it.
pub fn hilbert_index_unit(p: Point, universe: &Rect) -> u64 {
    let side = (1u32 << HILBERT_ORDER) as f64;
    let w = universe.width().max(f64::MIN_POSITIVE);
    let h = universe.height().max(f64::MIN_POSITIVE);
    let fx = ((p.x - universe.min.x) / w).clamp(0.0, 1.0);
    let fy = ((p.y - universe.min.y) / h).clamp(0.0, 1.0);
    let gx = ((fx * side) as u32).min((1 << HILBERT_ORDER) - 1);
    let gy = ((fy * side) as u32).min((1 << HILBERT_ORDER) - 1);
    hilbert_index(HILBERT_ORDER, gx, gy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_quadrants() {
        assert_eq!(hilbert_index(1, 0, 0), 0);
        assert_eq!(hilbert_index(1, 0, 1), 1);
        assert_eq!(hilbert_index(1, 1, 1), 2);
        assert_eq!(hilbert_index(1, 1, 0), 3);
    }

    #[test]
    fn order_two_is_the_classic_16_cell_curve() {
        // The canonical order-2 Hilbert walk.
        let walk = [
            (0, 0),
            (1, 0),
            (1, 1),
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 3),
            (1, 2),
            (2, 2),
            (2, 3),
            (3, 3),
            (3, 2),
            (3, 1),
            (2, 1),
            (2, 0),
            (3, 0),
        ];
        for (d, (x, y)) in walk.iter().enumerate() {
            assert_eq!(hilbert_index(2, *x, *y), d as u64, "cell ({x},{y})");
        }
    }

    #[test]
    fn is_a_bijection_on_small_grids() {
        for order in 1..=5u32 {
            let n = 1u32 << order;
            let mut seen = vec![false; (n as usize) * (n as usize)];
            for x in 0..n {
                for y in 0..n {
                    let d = hilbert_index(order, x, y) as usize;
                    assert!(d < seen.len());
                    assert!(!seen[d], "duplicate index {d}");
                    seen[d] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells() {
        // The defining locality property of the Hilbert curve.
        let order = 4;
        let n = 1u32 << order;
        let mut by_d = vec![(0u32, 0u32); (n as usize) * (n as usize)];
        for x in 0..n {
            for y in 0..n {
                by_d[hilbert_index(order, x, y) as usize] = (x, y);
            }
        }
        for w in by_d.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let manhattan = (x0 as i64 - x1 as i64).abs() + (y0 as i64 - y1 as i64).abs();
            assert_eq!(manhattan, 1, "curve must move to a 4-neighbour");
        }
    }

    #[test]
    fn unit_mapping_clamps_and_orders() {
        let u = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let a = hilbert_index_unit(Point::new(0.1, 0.1), &u);
        let b = hilbert_index_unit(Point::new(0.11, 0.1), &u);
        let far = hilbert_index_unit(Point::new(0.9, 0.1), &u);
        // Nearby points have nearby indices; far points differ a lot more.
        assert!(a.abs_diff(b) < a.abs_diff(far));
        // Outside points clamp instead of panicking.
        let _ = hilbert_index_unit(Point::new(-5.0, 99.0), &u);
    }

    #[test]
    #[should_panic(expected = "coordinates must be < 2^order")]
    fn out_of_range_coordinates_panic() {
        hilbert_index(2, 4, 0);
    }
}
