//! Axis-aligned rectangles (minimum bounding rectangles).
//!
//! `Rect` is the MBR type used by the R*-tree: entries, node regions and the
//! `mindist` pruning metrics of the query algorithms (best-first NN search
//! [HS99], R-tree join [BKS93], incremental closest pairs [CMTV00]) are all
//! defined on it.

use crate::Point;

/// An axis-aligned rectangle, stored as its min / max corners.
///
/// Degenerate rectangles (zero width and/or height) are valid and are used
/// to index points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners; the corners are normalised so
    /// `min ≤ max` per coordinate.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates the rectangle `[x0, x1] × [y0, y1]`.
    pub fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// An "empty" rectangle that acts as the identity for [`Rect::union`].
    pub fn empty() -> Self {
        Rect {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Whether this is the identity rectangle produced by [`Rect::empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area of the rectangle (zero for degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter (the *margin* used by the R* split algorithm).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Whether the closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Area of the intersection of the two rectangles.
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }

    /// Whether `p` lies inside the closed rectangle.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` lies fully inside `self` (closed containment).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Area increase required to enlarge `self` to also cover `other` —
    /// the R-tree `ChooseSubtree` metric.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// `mindist(p, R)`: the smallest Euclidean distance from `p` to any
    /// point of the rectangle. Zero when `p` is inside. This is the
    /// lower-bound metric driving best-first NN search [HS99].
    pub fn mindist_point(&self, p: Point) -> f64 {
        self.mindist_point_sq(p).sqrt()
    }

    /// Squared version of [`Rect::mindist_point`].
    pub fn mindist_point_sq(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// `mindist(R1, R2)`: smallest Euclidean distance between any two
    /// points of the rectangles; zero when they intersect. Drives the
    /// R-tree join and closest-pair pruning [BKS93, CMTV00].
    pub fn mindist_rect(&self, other: &Rect) -> f64 {
        self.mindist_rect_sq(other).sqrt()
    }

    /// Squared version of [`Rect::mindist_rect`].
    pub fn mindist_rect_sq(&self, other: &Rect) -> f64 {
        let dx = (other.min.x - self.max.x)
            .max(0.0)
            .max(self.min.x - other.max.x);
        let dy = (other.min.y - self.max.y)
            .max(0.0)
            .max(self.min.y - other.max.y);
        dx * dx + dy * dy
    }

    /// Largest possible distance from `p` to a point of the rectangle.
    pub fn maxdist_point(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Expands the rectangle by `r` on every side (an `e`-range query disk
    /// centred at `q` is conservatively approximated by
    /// `Rect::from_point(q).expanded(e)` before the exact disk test).
    pub fn expanded(&self, r: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - r, self.min.y - r),
            max: Point::new(self.max.x + r, self.max.y + r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn construction_normalises_corners() {
        let a = Rect::new(Point::new(2.0, 3.0), Point::new(0.0, 1.0));
        assert_eq!(a, r(0.0, 1.0, 2.0, 3.0));
    }

    #[test]
    fn area_margin_center() {
        let a = r(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn empty_rect_is_union_identity() {
        let e = Rect::empty();
        let a = r(1.0, 1.0, 2.0, 2.0);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.union(&a), a);
        assert_eq!(a.union(&e), a);
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn intersection_tests() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(a.intersects(&r(1.0, 1.0, 3.0, 3.0)));
        assert!(a.intersects(&r(2.0, 2.0, 3.0, 3.0))); // corner touch
        assert!(!a.intersects(&r(2.1, 2.1, 3.0, 3.0)));
        assert_eq!(a.intersection_area(&r(1.0, 1.0, 3.0, 3.0)), 1.0);
        assert_eq!(a.intersection_area(&r(5.0, 5.0, 6.0, 6.0)), 0.0);
    }

    #[test]
    fn point_containment() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert!(a.contains_point(Point::new(0.5, 0.5)));
        assert!(a.contains_point(Point::new(0.0, 1.0))); // boundary
        assert!(!a.contains_point(Point::new(1.5, 0.5)));
    }

    #[test]
    fn mindist_point_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.mindist_point(Point::new(1.0, 1.0)), 0.0); // inside
        assert_eq!(a.mindist_point(Point::new(3.0, 1.0)), 1.0); // right
        assert_eq!(a.mindist_point(Point::new(-3.0, 1.0)), 3.0); // left
        assert_eq!(a.mindist_point(Point::new(3.0, 3.0)), 2f64.sqrt()); // corner
    }

    #[test]
    fn mindist_rect_cases() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.mindist_rect(&r(0.5, 0.5, 2.0, 2.0)), 0.0); // overlap
        assert_eq!(a.mindist_rect(&r(3.0, 0.0, 4.0, 1.0)), 2.0); // beside
        assert_eq!(a.mindist_rect(&r(2.0, 2.0, 3.0, 3.0)), 2f64.sqrt()); // diagonal
    }

    #[test]
    fn maxdist_point_is_farthest_corner() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.maxdist_point(Point::new(0.0, 0.0)), 8f64.sqrt());
        assert_eq!(a.maxdist_point(Point::new(1.0, 1.0)), 2f64.sqrt());
    }

    #[test]
    fn enlargement_metric() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.enlargement(&r(0.2, 0.2, 0.8, 0.8)), 0.0);
        assert_eq!(a.enlargement(&r(0.0, 0.0, 2.0, 1.0)), 1.0);
    }

    #[test]
    fn corners_are_ccw() {
        let a = r(0.0, 0.0, 1.0, 2.0);
        let c = a.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(1.0, 0.0));
        assert_eq!(c[2], Point::new(1.0, 2.0));
        assert_eq!(c[3], Point::new(0.0, 2.0));
    }

    #[test]
    fn expanded_grows_all_sides() {
        let a = Rect::from_point(Point::new(1.0, 1.0)).expanded(0.5);
        assert_eq!(a, r(0.5, 0.5, 1.5, 1.5));
    }

    #[test]
    fn degenerate_point_rect() {
        let a = Rect::from_point(Point::new(1.0, 2.0));
        assert_eq!(a.area(), 0.0);
        assert!(!a.is_empty());
        assert!(a.contains_point(Point::new(1.0, 2.0)));
        assert_eq!(a.mindist_point(Point::new(1.0, 5.0)), 3.0);
    }
}
