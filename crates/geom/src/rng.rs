//! Seeded pseudo-random number generation with zero external dependencies.
//!
//! The workspace builds fully offline, so instead of the `rand` crate this
//! module provides the small surface the workspace actually uses:
//! [`SmallRng`], the [`Rng`] sampling trait and [`SeedableRng`] seeding.
//! The generator is **xoshiro256++** (Blackman & Vigna), a member of the
//! xorshift family, seeded through **SplitMix64** so that every 64-bit
//! seed — including 0 — yields a well-mixed, full-period state.
//!
//! Determinism is a hard requirement: equal seeds produce identical
//! streams across platforms and releases, because dataset generation
//! (`obstacle-datagen`) and the property-test harness ([`crate::check`])
//! both derive all randomness from here.

/// One step of the SplitMix64 sequence (Steele, Lea & Flood), used to
/// expand a single `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be constructed deterministically from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire output stream is a pure function
    /// of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of pseudo-random values.
///
/// Mirrors the subset of `rand::Rng` used by the workspace: raw words,
/// [`Rng::gen`] for the "standard" distribution of a few primitive types,
/// and convenience range/probability helpers.
pub trait Rng {
    /// The next 64 raw pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 raw pseudo-random bits (upper half of a 64-bit word,
    /// which carries the best-mixed bits of xoshiro-style generators).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Uniform value in the half-open range `[lo, hi)`; `lo < hi` required.
    #[inline]
    fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64
    where
        Self: Sized,
    {
        assert!(lo < hi, "gen_range_u64: empty range [{lo}, {hi})");
        // Multiply-shift range reduction (Lemire); the tiny residual bias
        // over a 64-bit word is irrelevant for data generation and tests.
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Standard-distribution sampling for primitive types (the equivalent of
/// `rand`'s `Standard` distribution, scoped to what the workspace needs).
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa entropy.
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Sample for u16 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Sample for u8 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for usize {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// A small, fast, seeded generator: xoshiro256++ state.
///
/// Not cryptographically secure — intended for reproducible synthetic
/// data and tests, exactly like `rand::rngs::SmallRng`.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        // Raw xoshiro with all-zero state would emit only zeros; SplitMix64
        // seeding must prevent that.
        let mut r = SmallRng::seed_from_u64(0);
        assert!((0..16).any(|_| r.next_u64() != 0));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range_u64(10, 17);
            assert!((10..17).contains(&v));
        }
    }
}
