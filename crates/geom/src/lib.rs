//! Computational-geometry kernel for the obstacle spatial-query reproduction
//! (Zhang et al., *Spatial Queries in the Presence of Obstacles*, EDBT 2004).
//!
//! This crate provides the primitives every other crate in the workspace is
//! built on:
//!
//! * [`Point`], [`Segment`], [`Rect`] and simple [`Polygon`]s,
//! * robust orientation predicates ([`orient2d`]) with an adaptive
//!   floating-point filter and an exact expansion-arithmetic fallback,
//! * segment/segment and segment/polygon-interior intersection tests — the
//!   latter is the exact notion of "a sight line is blocked by an obstacle"
//!   used by visibility graphs,
//! * angular comparison around a pivot (used by the rotational plane sweep
//!   of Sharir & Schorr \[SS84\]),
//! * a Hilbert space-filling curve (used by the ODJ algorithm of the paper
//!   to order join seeds for obstacle R-tree locality).
//!
//! Obstacles in the paper are polygons whose *interior* is impassable;
//! their boundary is walkable. All blocking tests in this crate therefore
//! test for intersection with the **open interior** of a polygon.

#![warn(missing_docs)]

pub mod check;
pub mod rng;

mod angle;
mod hilbert;
mod hull;
pub mod order;
mod point;
mod polygon;
mod predicates;
mod rect;
mod segment;

pub use angle::{angular_cmp, pseudo_angle, AngularOrder};
pub use hilbert::{hilbert_index, hilbert_index_unit, HILBERT_ORDER};
pub use hull::convex_hull;
pub use order::{sort_by_f64_key, total_cmp};
pub use point::Point;
pub use polygon::{BoundaryAttachment, PointLocation, Polygon, PolygonError};
pub use predicates::{orient2d, orient2d_exact, Orientation};
pub use rect::Rect;
pub use segment::{
    intersection_params, proper_crossing, segment_point_distance, segments_intersect, Segment,
    SmallParams,
};

/// Tolerance used for non-critical comparisons (e.g. deduplicating
/// parameters along a segment). Critical sidedness decisions always go
/// through the robust [`orient2d`] predicate instead.
pub const EPS: f64 = 1e-12;
