//! Property-based tests for the geometry kernel, running on the in-tree
//! deterministic harness ([`obstacle_geom::check`]).

use obstacle_geom::check::{self, Gen};
use obstacle_geom::{
    angular_cmp, hilbert_index, orient2d, orient2d_exact, proper_crossing, segments_intersect,
    Orientation, Point, PointLocation, Polygon, Rect, Segment,
};

const CASES: u32 = check::DEFAULT_CASES;

fn pt(g: &mut Gen) -> Point {
    Point::new(g.f64(-100.0, 100.0), g.f64(-100.0, 100.0))
}

fn unit_pt(g: &mut Gen) -> Point {
    Point::new(g.f64(0.0, 1.0), g.f64(0.0, 1.0))
}

fn rect(g: &mut Gen) -> Rect {
    let (a, b) = (pt(g), pt(g));
    Rect::new(a, b)
}

#[test]
fn orient2d_filtered_equals_exact() {
    check::cases(CASES, |g| {
        let (a, b, c) = (pt(g), pt(g), pt(g));
        assert_eq!(orient2d(a, b, c), orient2d_exact(a, b, c));
    });
}

#[test]
fn orient2d_antisymmetric() {
    check::cases(CASES, |g| {
        let (a, b, c) = (pt(g), pt(g), pt(g));
        assert_eq!(orient2d(a, b, c), orient2d(b, a, c).reversed());
    });
}

#[test]
fn orient2d_cyclic() {
    check::cases(CASES, |g| {
        let (a, b, c) = (pt(g), pt(g), pt(g));
        let o = orient2d(a, b, c);
        assert_eq!(o, orient2d(b, c, a));
        assert_eq!(o, orient2d(c, a, b));
    });
}

#[test]
fn orient2d_nearly_collinear_scaled() {
    check::cases(CASES, |g| {
        let base = g.f64(-1.0e3, 1.0e3);
        let dx = g.f64(1.0, 50.0);
        let k = g.u32(0, 64);
        // c sits on the segment a-b up to an offset of k ulps; the exact
        // predicate must treat every offset consistently with its sign.
        let a = Point::new(base, base);
        let b = Point::new(base + dx, base + dx);
        let mid = base + dx * 0.5;
        // Step y upward by k ulps (bit-increment moves negative floats the
        // wrong way, so branch on sign).
        let mut y = mid;
        for _ in 0..k {
            y = if y >= 0.0 {
                f64::from_bits(y.to_bits() + 1)
            } else {
                f64::from_bits(y.to_bits() - 1)
            };
        }
        let c = Point::new(mid, y);
        let expect = if k == 0 {
            Orientation::Collinear
        } else {
            Orientation::CounterClockwise
        };
        assert_eq!(orient2d(a, b, c), expect);
    });
}

#[test]
fn segment_intersection_is_symmetric() {
    check::cases(CASES, |g| {
        let s = Segment::new(pt(g), pt(g));
        let t = Segment::new(pt(g), pt(g));
        assert_eq!(segments_intersect(s, t), segments_intersect(t, s));
        assert_eq!(proper_crossing(s, t), proper_crossing(t, s));
    });
}

#[test]
fn proper_crossing_implies_intersection() {
    check::cases(CASES, |g| {
        let s = Segment::new(pt(g), pt(g));
        let t = Segment::new(pt(g), pt(g));
        if proper_crossing(s, t) {
            assert!(segments_intersect(s, t));
        }
    });
}

#[test]
fn shared_endpoint_always_intersects() {
    check::cases(CASES, |g| {
        let (a, b, c) = (pt(g), pt(g), pt(g));
        let s = Segment::new(a, b);
        let t = Segment::new(a, c);
        assert!(segments_intersect(s, t));
        assert!(!proper_crossing(s, t));
    });
}

#[test]
fn rect_union_contains_operands() {
    check::cases(CASES, |g| {
        let (a, b) = (rect(g), rect(g));
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    });
}

#[test]
fn rect_mindist_is_lower_bound() {
    check::cases(CASES, |g| {
        let a = rect(g);
        let (p, q) = (pt(g), pt(g));
        // mindist(p, R) lower-bounds the distance from p to any point in R.
        let inside = Point::new(q.x.clamp(a.min.x, a.max.x), q.y.clamp(a.min.y, a.max.y));
        assert!(a.mindist_point(p) <= p.dist(inside) + 1e-9);
        assert!(a.maxdist_point(p) + 1e-9 >= p.dist(inside));
    });
}

#[test]
fn rect_mindist_rect_zero_iff_intersecting() {
    check::cases(CASES, |g| {
        let (a, b) = (rect(g), rect(g));
        if a.intersects(&b) {
            assert_eq!(a.mindist_rect(&b), 0.0);
        } else {
            assert!(a.mindist_rect(&b) > 0.0);
        }
    });
}

#[test]
fn angular_sort_is_rotationally_consistent() {
    check::cases(CASES, |g| {
        let pivot = pt(g);
        let mut pts = g.vec(2, 20, pt);
        pts.retain(|p| *p != pivot);
        if pts.len() < 2 {
            return;
        }
        pts.sort_by(|a, b| angular_cmp(pivot, *a, *b));
        // Sorted order must be non-decreasing in true angle.
        let angles: Vec<f64> = pts
            .iter()
            .map(|p| {
                let a = (p.y - pivot.y).atan2(p.x - pivot.x);
                if a < 0.0 {
                    a + std::f64::consts::TAU
                } else {
                    a
                }
            })
            .collect();
        for w in angles.windows(2) {
            assert!(
                w[0] <= w[1] + 1e-9,
                "angles out of order: {} > {}",
                w[0],
                w[1]
            );
        }
    });
}

#[test]
fn hilbert_preserves_identity() {
    check::cases(CASES, |g| {
        let order = g.u32_inclusive(1, 10);
        let (x, y) = (g.u32(0, 1024), g.u32(0, 1024));
        let n = 1u32 << order;
        let (x, y) = (x % n, y % n);
        let d = hilbert_index(order, x, y);
        assert!(d < (n as u64) * (n as u64));
    });
}

#[test]
fn polygon_locate_consistent_with_blocking() {
    check::cases(CASES, |g| {
        let (cx, cy) = (g.f64(0.2, 0.8), g.f64(0.2, 0.8));
        let (w, h) = (g.f64(0.05, 0.2), g.f64(0.05, 0.2));
        let (p, q) = (unit_pt(g), unit_pt(g));
        let r = Rect::from_coords(cx - w, cy - h, cx + w, cy + h);
        let poly = Polygon::from_rect(r);
        let seg = Segment::new(p, q);
        let blocked = poly.blocks_segment(seg);
        // Sample the segment densely: if any strictly interior sample point
        // exists, the segment must be blocked; conversely if blocked, some
        // sample should be inside (up to sampling resolution — only check
        // the first direction, which is the safety-critical one).
        let mut interior_sample = false;
        for i in 1..200 {
            let t = i as f64 / 200.0;
            if poly.locate(seg.at(t)) == PointLocation::Inside {
                interior_sample = true;
                break;
            }
        }
        if interior_sample {
            assert!(blocked, "segment has interior samples but was not blocked");
        }
    });
}

#[test]
fn polygon_boundary_points_are_on_boundary() {
    check::cases(CASES, |g| {
        let (cx, cy) = (g.f64(0.2, 0.8), g.f64(0.2, 0.8));
        let (w, h) = (g.f64(0.05, 0.2), g.f64(0.05, 0.2));
        let t = g.f64(0.0, 1.0);
        let poly = Polygon::from_rect(Rect::from_coords(cx - w, cy - h, cx + w, cy + h));
        let p = poly.boundary_point(t);
        assert_eq!(poly.locate(p), PointLocation::Boundary);
    });
}
