//! Property-based tests for the geometry kernel.

use obstacle_geom::{
    angular_cmp, hilbert_index, orient2d, orient2d_exact, proper_crossing, segments_intersect,
    Orientation, Point, PointLocation, Polygon, Rect, Segment,
};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn unit_pt() -> impl Strategy<Value = Point> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (pt(), pt()).prop_map(|(a, b)| Rect::new(a, b))
}

proptest! {
    #[test]
    fn orient2d_filtered_equals_exact(a in pt(), b in pt(), c in pt()) {
        prop_assert_eq!(orient2d(a, b, c), orient2d_exact(a, b, c));
    }

    #[test]
    fn orient2d_antisymmetric(a in pt(), b in pt(), c in pt()) {
        prop_assert_eq!(orient2d(a, b, c), orient2d(b, a, c).reversed());
    }

    #[test]
    fn orient2d_cyclic(a in pt(), b in pt(), c in pt()) {
        let o = orient2d(a, b, c);
        prop_assert_eq!(o, orient2d(b, c, a));
        prop_assert_eq!(o, orient2d(c, a, b));
    }

    #[test]
    fn orient2d_nearly_collinear_scaled(base in -1.0e3f64..1.0e3, dx in 1.0f64..50.0, k in 0u32..64) {
        // c sits on the segment a-b up to an offset of k ulps; the exact
        // predicate must treat every offset consistently with its sign.
        let a = Point::new(base, base);
        let b = Point::new(base + dx, base + dx);
        let mid = base + dx * 0.5;
        // Step y upward by k ulps (bit-increment moves negative floats the
        // wrong way, so branch on sign).
        let mut y = mid;
        for _ in 0..k {
            y = if y >= 0.0 {
                f64::from_bits(y.to_bits() + 1)
            } else {
                f64::from_bits(y.to_bits() - 1)
            };
        }
        let c = Point::new(mid, y);
        let expect = if k == 0 { Orientation::Collinear } else { Orientation::CounterClockwise };
        prop_assert_eq!(orient2d(a, b, c), expect);
    }

    #[test]
    fn segment_intersection_is_symmetric(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s = Segment::new(a, b);
        let t = Segment::new(c, d);
        prop_assert_eq!(segments_intersect(s, t), segments_intersect(t, s));
        prop_assert_eq!(proper_crossing(s, t), proper_crossing(t, s));
    }

    #[test]
    fn proper_crossing_implies_intersection(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s = Segment::new(a, b);
        let t = Segment::new(c, d);
        if proper_crossing(s, t) {
            prop_assert!(segments_intersect(s, t));
        }
    }

    #[test]
    fn shared_endpoint_always_intersects(a in pt(), b in pt(), c in pt()) {
        let s = Segment::new(a, b);
        let t = Segment::new(a, c);
        prop_assert!(segments_intersect(s, t));
        prop_assert!(!proper_crossing(s, t));
    }

    #[test]
    fn rect_union_contains_operands(a in rect(), b in rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn rect_mindist_is_lower_bound(a in rect(), p in pt(), q in pt()) {
        // mindist(p, R) lower-bounds the distance from p to any point in R.
        let inside = Point::new(
            q.x.clamp(a.min.x, a.max.x),
            q.y.clamp(a.min.y, a.max.y),
        );
        prop_assert!(a.mindist_point(p) <= p.dist(inside) + 1e-9);
        prop_assert!(a.maxdist_point(p) + 1e-9 >= p.dist(inside));
    }

    #[test]
    fn rect_mindist_rect_zero_iff_intersecting(a in rect(), b in rect()) {
        if a.intersects(&b) {
            prop_assert_eq!(a.mindist_rect(&b), 0.0);
        } else {
            prop_assert!(a.mindist_rect(&b) > 0.0);
        }
    }

    #[test]
    fn angular_sort_is_rotationally_consistent(pivot in pt(), mut pts in prop::collection::vec(pt(), 2..20)) {
        pts.retain(|p| *p != pivot);
        prop_assume!(pts.len() >= 2);
        pts.sort_by(|a, b| angular_cmp(pivot, *a, *b));
        // Sorted order must be non-decreasing in true angle.
        let angles: Vec<f64> = pts
            .iter()
            .map(|p| {
                let a = (p.y - pivot.y).atan2(p.x - pivot.x);
                if a < 0.0 { a + std::f64::consts::TAU } else { a }
            })
            .collect();
        for w in angles.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9, "angles out of order: {} > {}", w[0], w[1]);
        }
    }

    #[test]
    fn hilbert_preserves_identity(order in 1u32..=10, x in 0u32..1024, y in 0u32..1024) {
        let n = 1u32 << order;
        let (x, y) = (x % n, y % n);
        let d = hilbert_index(order, x, y);
        prop_assert!(d < (n as u64) * (n as u64));
    }

    #[test]
    fn polygon_locate_consistent_with_blocking(cx in 0.2f64..0.8, cy in 0.2f64..0.8, w in 0.05f64..0.2, h in 0.05f64..0.2, p in unit_pt(), q in unit_pt()) {
        let r = Rect::from_coords(cx - w, cy - h, cx + w, cy + h);
        let poly = Polygon::from_rect(r);
        let seg = Segment::new(p, q);
        let blocked = poly.blocks_segment(seg);
        // Sample the segment densely: if any strictly interior sample point
        // exists, the segment must be blocked; conversely if blocked, some
        // sample should be inside (up to sampling resolution — only check
        // the first direction, which is the safety-critical one).
        let mut interior_sample = false;
        for i in 1..200 {
            let t = i as f64 / 200.0;
            if poly.locate(seg.at(t)) == PointLocation::Inside {
                interior_sample = true;
                break;
            }
        }
        if interior_sample {
            prop_assert!(blocked, "segment has interior samples but was not blocked");
        }
    }

    #[test]
    fn polygon_boundary_points_are_on_boundary(cx in 0.2f64..0.8, cy in 0.2f64..0.8, w in 0.05f64..0.2, h in 0.05f64..0.2, t in 0.0f64..1.0) {
        let poly = Polygon::from_rect(Rect::from_coords(cx - w, cy - h, cx + w, cy + h));
        let p = poly.boundary_point(t);
        prop_assert_eq!(poly.locate(p), PointLocation::Boundary);
    }
}
