//! Determinism and distribution-sanity tests for the in-tree PRNG
//! (`obstacle_geom::rng`), the offline replacement for the `rand` crate.
//! Dataset reproducibility (equal seeds ⇒ identical cities/workloads)
//! rests entirely on these guarantees.

use obstacle_geom::rng::{Rng, Sample, SeedableRng, SmallRng};

/// The stream is a pure function of the seed — pinned against golden
/// values so it can never drift silently across refactors or platforms.
#[test]
fn stream_is_pinned_to_golden_values() {
    let mut r = SmallRng::seed_from_u64(0);
    let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
    // xoshiro256++ over a SplitMix64-expanded zero seed.
    let again: Vec<u64> = {
        let mut r = SmallRng::seed_from_u64(0);
        (0..4).map(|_| r.next_u64()).collect()
    };
    assert_eq!(first, again);
    // Golden prefix recorded at shim introduction; a change here breaks
    // every persisted seed in datasets and tests.
    assert_eq!(
        first,
        vec![
            5987356902031041503,
            7051070477665621255,
            6633766593972829180,
            211316841551650330
        ]
    );
}

#[test]
fn clone_continues_the_same_stream() {
    let mut a = SmallRng::seed_from_u64(99);
    for _ in 0..10 {
        a.next_u64();
    }
    let mut b = a.clone();
    for _ in 0..100 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn nearby_seeds_are_uncorrelated() {
    // SplitMix64 expansion must decorrelate consecutive seeds.
    let streams: Vec<Vec<u64>> = (0..8)
        .map(|s| {
            let mut r = SmallRng::seed_from_u64(s);
            (0..32).map(|_| r.next_u64()).collect()
        })
        .collect();
    for i in 0..streams.len() {
        for j in (i + 1)..streams.len() {
            let collisions = streams[i]
                .iter()
                .zip(&streams[j])
                .filter(|(a, b)| a == b)
                .count();
            assert_eq!(collisions, 0, "seeds {i} and {j} produced equal words");
        }
    }
}

#[test]
fn f64_mean_and_spread_are_sane() {
    let mut r = SmallRng::seed_from_u64(123);
    const N: usize = 100_000;
    let mut sum = 0.0;
    let mut buckets = [0usize; 10];
    for _ in 0..N {
        let x: f64 = r.gen();
        assert!((0.0..1.0).contains(&x));
        sum += x;
        buckets[(x * 10.0) as usize] += 1;
    }
    let mean = sum / N as f64;
    assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    // Each decile of a uniform sample should hold ~10% of the draws.
    for (i, &count) in buckets.iter().enumerate() {
        let frac = count as f64 / N as f64;
        assert!(
            (0.08..0.12).contains(&frac),
            "decile {i} holds {frac:.3} of the mass"
        );
    }
}

#[test]
fn bits_are_balanced() {
    // Every bit position of next_u64 should be ~50% ones.
    let mut r = SmallRng::seed_from_u64(7);
    const N: usize = 20_000;
    let mut ones = [0u32; 64];
    for _ in 0..N {
        let w = r.next_u64();
        for (bit, count) in ones.iter_mut().enumerate() {
            *count += ((w >> bit) & 1) as u32;
        }
    }
    for (bit, &count) in ones.iter().enumerate() {
        let frac = count as f64 / N as f64;
        assert!(
            (0.47..0.53).contains(&frac),
            "bit {bit} is set {frac:.3} of the time"
        );
    }
}

#[test]
fn gen_bool_tracks_probability() {
    let mut r = SmallRng::seed_from_u64(11);
    const N: usize = 50_000;
    for p in [0.1, 0.5, 0.9] {
        let hits = (0..N).filter(|_| r.gen_bool(p)).count();
        let frac = hits as f64 / N as f64;
        assert!((frac - p).abs() < 0.02, "gen_bool({p}) hit {frac:.3}");
    }
    assert_eq!((0..1000).filter(|_| r.gen_bool(0.0)).count(), 0);
    assert_eq!((0..1000).filter(|_| r.gen_bool(1.0)).count(), 1000);
}

#[test]
fn gen_range_covers_all_values() {
    let mut r = SmallRng::seed_from_u64(21);
    let mut seen = [false; 7];
    for _ in 0..10_000 {
        seen[r.gen_range_u64(0, 7) as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "range sampling missed a value");
}

#[test]
fn integer_samples_cover_their_width() {
    let mut r = SmallRng::seed_from_u64(31);
    // Small widths: all 256 u8 values should appear quickly.
    let mut seen = [false; 256];
    for _ in 0..20_000 {
        seen[u8::sample(&mut r) as usize] = true;
    }
    let covered = seen.iter().filter(|&&s| s).count();
    assert_eq!(
        covered, 256,
        "u8 sampling covered only {covered}/256 values"
    );
    // Wide types: top and bottom halves both get hit.
    let high = (0..1000)
        .filter(|_| u64::sample(&mut r) > u64::MAX / 2)
        .count();
    assert!((400..600).contains(&high));
}
