//! Shared experiment fixtures: the city, indexes and workloads.

use crate::scale::Scale;
use obstacle_core::{EntityIndex, ObstacleIndex};
use obstacle_datagen::{query_workload, sample_entities, City, CityConfig};
use obstacle_geom::Point;
use obstacle_rtree::{RTreeConfig, TreeBackend};

/// A generated city with its obstacle index, shared by all experiments of
/// one run (the paper uses one obstacle dataset throughout §7).
pub struct Workbench {
    /// The run's scale.
    pub scale: Scale,
    /// The generated city.
    pub city: City,
    /// R*-tree over the obstacles (paper configuration: 4 KiB pages,
    /// LRU buffer 10 %).
    pub obstacles: ObstacleIndex,
}

impl Workbench {
    /// Generates the city and indexes the obstacles.
    ///
    /// Indexes are bulk-loaded (STR): at the paper's full scale,
    /// one-by-one R* insertion of 10·|O| entities is prohibitively slow
    /// for a harness that rebuilds the entity dataset per series point;
    /// occupancy differences shift absolute page counts slightly but no
    /// trend (see EXPERIMENTS.md).
    pub fn new(scale: Scale) -> Workbench {
        let city = City::generate(CityConfig::new(scale.obstacles, scale.seed));
        let obstacles = ObstacleIndex::bulk_load(RTreeConfig::paper(), city.obstacles.clone());
        Workbench {
            scale,
            city,
            obstacles,
        }
    }

    /// An entity dataset of `count` points following the obstacle
    /// distribution (deterministic per `(scale.seed, stream)`).
    pub fn entity_index(&self, count: usize, stream: u64) -> EntityIndex {
        let pts = sample_entities(&self.city, count, self.scale.seed ^ (stream << 8));
        EntityIndex::bulk_load(RTreeConfig::paper(), pts)
    }

    /// The query workload (follows the obstacle distribution).
    pub fn queries(&self) -> Vec<Point> {
        query_workload(&self.city, self.scale.queries, self.scale.seed ^ 0x9)
    }

    /// Universe side length (ranges are expressed as fractions of it).
    pub fn side(&self) -> f64 {
        self.city.universe.width().max(self.city.universe.height())
    }

    /// Density-normalised absolute range from a paper range fraction.
    pub fn range_from_fraction(&self, fraction: f64) -> f64 {
        fraction * self.side() * self.scale.range_scale()
    }

    /// Resets I/O statistics and buffers (cold start) on the obstacle
    /// tree and the given entity trees — call before each measured
    /// workload point.
    pub fn reset_io(&self, entity_trees: &[&EntityIndex]) {
        self.obstacles.tree().reset_buffer();
        self.obstacles.tree().reset_io_stats();
        for t in entity_trees {
            t.tree().reset_buffer();
            t.tree().reset_io_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_is_deterministic() {
        let a = Workbench::new(Scale::tiny());
        let b = Workbench::new(Scale::tiny());
        assert_eq!(a.city.rects, b.city.rects);
        assert_eq!(a.queries(), b.queries());
        let ea = a.entity_index(64, 1);
        let eb = b.entity_index(64, 1);
        let pts = |e: &obstacle_core::EntityIndex| e.live_points().collect::<Vec<_>>();
        assert_eq!(pts(&ea), pts(&eb));
        // Different streams differ.
        let ec = a.entity_index(64, 2);
        assert_ne!(pts(&ea), pts(&ec));
    }

    #[test]
    fn range_normalisation_full_scale_is_identity() {
        let w = Workbench::new(Scale::tiny());
        let e = w.range_from_fraction(0.001);
        assert!((e - 0.001 * w.side() * w.scale.range_scale()).abs() < 1e-15);
        assert!(w.scale.range_scale() > 1.0); // tiny is denser-normalised
    }
}
