//! Plain-text result tables (one per paper figure panel).

use std::fmt::Write as _;

/// A result table: the series the paper plots in one figure panel.
#[derive(Clone, Debug)]
pub struct Table {
    /// Figure id and description, e.g. `"Fig. 13a — OR page accesses…"`.
    pub title: String,
    /// Label of the x-axis column.
    pub x_label: String,
    /// Names of the value columns.
    pub columns: Vec<String>,
    /// Rows: x value (printed verbatim) and one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Table {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push(&mut self, x: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        self.rows.push((x.into(), values));
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let width = 16usize;
        let xw = self
            .rows
            .iter()
            .map(|(x, _)| x.len())
            .chain(std::iter::once(self.x_label.len()))
            .max()
            .unwrap_or(8)
            + 2;
        let _ = write!(out, "  {:<xw$}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, "{c:>width$}");
        }
        let _ = writeln!(out);
        for (x, vals) in &self.rows {
            let _ = write!(out, "  {x:<xw$}");
            for v in vals {
                let _ = write!(out, "{:>width$}", format_value(*v));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (x, vals) in &self.rows {
            let _ = write!(out, "{x}");
            for v in vals {
                let _ = write!(out, ",{v}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Compact value formatting: integers plain, small values with enough
/// significant digits to compare.
fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new(
            "Fig. X — demo",
            "ratio",
            vec!["data R-tree".into(), "obstacle R-tree".into()],
        );
        t.push("0.1", vec![1.25, 4.0]);
        t.push("10", vec![123.456, 0.0123]);
        let s = t.render();
        assert!(s.contains("Fig. X — demo"));
        assert!(s.contains("ratio"));
        assert!(s.contains("1.25"));
        assert!(s.contains("123.5"));
        assert!(s.contains("0.0123"));
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new("t", "x", vec!["a".into(), "b".into()]);
        t.push("1", vec![0.5, 2.0]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("x,a,b"));
        assert!(csv.contains("1,0.5,2"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("t", "x", vec!["a".into()]);
        t.push("1", vec![0.5, 2.0]);
    }
}
