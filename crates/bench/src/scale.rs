//! Experiment scale selection.

use obstacle_datagen::CityConfig;

/// Scale of a reproduction run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Obstacle dataset cardinality |O|.
    pub obstacles: usize,
    /// Queries per workload (the paper uses 200).
    pub queries: usize,
    /// RNG seed for data and workloads.
    pub seed: u64,
}

impl Scale {
    /// Smoke-test scale (seconds).
    pub fn tiny() -> Scale {
        Scale {
            obstacles: 512,
            queries: 4,
            seed: 0xC17,
        }
    }

    /// Default `cargo bench` scale (about a minute for all figures).
    pub fn default_scale() -> Scale {
        Scale {
            obstacles: 16_384,
            queries: 32,
            seed: 0xC17,
        }
    }

    /// The paper's setup: |O| = 131,461, 200-query workloads.
    pub fn full() -> Scale {
        Scale {
            obstacles: CityConfig::PAPER_OBSTACLE_COUNT,
            queries: 200,
            seed: 0xC17,
        }
    }

    /// Parses a scale name (`tiny` / `default` / `full`).
    pub fn by_name(name: &str) -> Option<Scale> {
        match name {
            "tiny" => Some(Scale::tiny()),
            "default" => Some(Scale::default_scale()),
            "full" => Some(Scale::full()),
            _ => None,
        }
    }

    /// Reads `OBSTACLE_SCALE` from the environment (default: `default`).
    pub fn from_env() -> Scale {
        match std::env::var("OBSTACLE_SCALE") {
            Ok(v) => Scale::by_name(&v).unwrap_or_else(|| {
                eprintln!("unknown OBSTACLE_SCALE '{v}', using default");
                Scale::default_scale()
            }),
            Err(_) => Scale::default_scale(),
        }
    }

    /// Density-normalisation factor for query ranges: at full scale 1.0,
    /// at reduced scales `sqrt(131461 / |O|)`, so the expected number of
    /// entities/obstacles inside a range matches the paper's setup and
    /// every curve keeps its shape.
    pub fn range_scale(&self) -> f64 {
        (CityConfig::PAPER_OBSTACLE_COUNT as f64 / self.obstacles as f64).sqrt()
    }

    /// Entity count for a cardinality ratio |P|/|O| (at least 1).
    pub fn entity_count(&self, ratio: f64) -> usize {
        ((self.obstacles as f64 * ratio).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper() {
        let s = Scale::full();
        assert_eq!(s.obstacles, 131_461);
        assert_eq!(s.queries, 200);
        assert!((s.range_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parse_names() {
        assert_eq!(Scale::by_name("tiny"), Some(Scale::tiny()));
        assert_eq!(Scale::by_name("default"), Some(Scale::default_scale()));
        assert_eq!(Scale::by_name("full"), Some(Scale::full()));
        assert_eq!(Scale::by_name("bogus"), None);
    }

    #[test]
    fn range_scale_preserves_expected_counts() {
        let s = Scale::default_scale();
        // (e · scale)² · |O| must equal e² · |O_paper|.
        let e = 0.001;
        let scaled = e * s.range_scale();
        let ours = scaled * scaled * s.obstacles as f64;
        let paper = e * e * 131_461.0;
        assert!((ours - paper).abs() / paper < 1e-9);
    }

    #[test]
    fn entity_counts() {
        let s = Scale::default_scale();
        assert_eq!(s.entity_count(1.0), 16_384);
        assert_eq!(s.entity_count(0.0001), 2);
        assert_eq!(s.entity_count(0.0), 1, "floor of one entity");
    }
}
