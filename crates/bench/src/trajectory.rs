//! Machine-readable performance trajectory (`BENCH_PR4.json`).
//!
//! Until PR 4 the repo's performance history lived as prose in
//! ROADMAP.md; nothing in CI recorded numbers a later PR could diff
//! against. This module measures the two hot paths the PR 4 work targets
//! — batch throughput over the striped buffer pool + scene caches, and
//! the long-path ladder — and serialises them as JSON so every `ci.sh`
//! run leaves a comparable artifact:
//!
//! * **throughput**: one mixed point-query batch executed at each worker
//!   thread count (cold buffers, identical workload), with queries/sec,
//!   speedup over 1 thread, and the per-tree buffer hit rates; every
//!   count is verified result-identical to the first.
//! * **path ladder**: corner-to-corner shortest paths at growing |O|,
//!   each with the wall-clock budget the no-regression gate enforces
//!   (the |O| = 2000 rung carries the same 2 s budget as the
//!   `path_scaling` test gate).
//! * **updates** (PR 7): edit batches interleaved with point queries
//!   over one long-lived scene cache, per backend — edit cost, query
//!   throughput under churn, and the epoch-invalidation counters, every
//!   round verified against a fresh-built engine.
//! * **service** (PR 9): open-loop saturation sweep of the resident
//!   `QueryService` — the same point workload offered at multiples of
//!   the measured sequential capacity through a bounded queue with
//!   `ShedOldest` admission, recording achieved q/s, p50/p90/p99
//!   time-to-answer, and the shed count per (backend, offered load).
//!
//! The JSON is hand-rolled (the workspace is offline, no serde); floats
//! are emitted with fixed precision so the output is always valid JSON.

use crate::batch::to_core_query;
use obstacle_core::{
    shortest_obstructed_path, Admission, BatchOptions, ObstacleIndex, QueryService, Schedule,
    ServiceConfig, SubmitError,
};
use obstacle_core::{Answer, EngineOptions, EntityIndex, Query, QueryEngine, SceneCache, Update};
use obstacle_datagen::{
    batch_workload, clustered_batch_workload, open_loop_arrivals, sample_entities, BatchMix, City,
    CityConfig, ClusterSpec,
};
use obstacle_geom::{Point, Polygon};
use obstacle_rtree::{Backend, IoStats, RTreeConfig, TreeBackend};
use obstacle_visibility::EdgeBuilder;
use std::time::{Duration, Instant};

/// What to measure; the defaults keep the release-mode CI stage under a
/// couple of minutes on one core while still exercising every mechanism.
#[derive(Clone, Debug)]
pub struct TrajectoryConfig {
    /// Obstacles in the throughput city.
    pub obstacles: usize,
    /// Entities in the throughput dataset.
    pub entities: usize,
    /// Queries per batch.
    pub queries: usize,
    /// Buffer-pool lock stripes on both trees.
    pub buffer_shards: usize,
    /// Worker thread counts to sweep.
    pub threads: Vec<usize>,
    /// Path ladder as `(|O|, wall-clock budget in seconds)` rungs.
    pub ladder: Vec<(usize, f64)>,
    /// Queries in the clustered scheduling workload (0 skips the sweep).
    pub clustered_queries: usize,
    /// Hotspots of the clustered workload.
    pub clusters: usize,
    /// Thread counts of the schedule sweep (kept short: the point is the
    /// InputOrder-vs-Hilbert hit-rate split, not another thread ladder).
    pub schedule_threads: Vec<usize>,
    /// Storage backends to A/B: both sweeps run once per backend over
    /// the *same* workload, and every run — any backend, any thread
    /// count, any schedule — must answer identically to the first
    /// (the cross-backend determinism contract).
    pub backends: Vec<Backend>,
    /// Edit batches of the interleaved update/query sweep (0 skips it).
    pub update_rounds: usize,
    /// Edits per batch (split across obstacle deletes/re-inserts and
    /// entity deletes/inserts).
    pub updates_per_round: usize,
    /// Point queries run through the long-lived scene cache after each
    /// edit batch (each round verified against a fresh-built engine).
    pub update_queries: usize,
    /// Queries per saturation point of the service sweep (0 skips it).
    pub service_queries: usize,
    /// Offered-load ladder of the service sweep, as multiples of the
    /// measured sequential capacity (so the same rungs mean the same
    /// queueing regime on any machine: below 1.0 the queue is mostly
    /// empty, above it the open-loop client genuinely overloads the
    /// worker and admission control has to act).
    pub service_loads: Vec<f64>,
    /// Queue-depth bound of the service under test.
    pub service_depth: usize,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            obstacles: 2048,
            entities: 1024,
            queries: 64,
            buffer_shards: 8,
            threads: vec![1, 2, 4, 8],
            // The 2000-rung budget mirrors the `path_scaling` test gate.
            ladder: vec![(500, 1.5), (2000, 2.0)],
            clustered_queries: 64,
            clusters: 8,
            schedule_threads: vec![1, 2],
            backends: vec![Backend::Paged, Backend::Packed],
            update_rounds: 4,
            updates_per_round: 32,
            update_queries: 32,
            service_queries: 48,
            service_loads: vec![0.5, 2.0, 8.0],
            service_depth: 16,
        }
    }
}

/// One measured thread count of the throughput sweep.
#[derive(Clone, Debug)]
pub struct ThreadPoint {
    /// `"paged"` or `"packed"` — the storage backend measured.
    pub backend: String,
    /// Worker threads.
    pub threads: usize,
    /// Batch wall-clock in seconds.
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
    /// Speedup over this backend's first (1-thread) point.
    pub speedup: f64,
    /// Entity-tree buffer hit rate (hits / fetches) over the batch. On
    /// the packed backend every access is a recorded node visit, so
    /// this is 1.0 by construction — it measures nothing there.
    pub entity_hit_rate: f64,
    /// Obstacle-tree buffer hit rate over the batch (packed: 1.0, see
    /// `entity_hit_rate`).
    pub obstacle_hit_rate: f64,
}

/// One measured point of the scheduling sweep: the same clustered batch
/// under one `(schedule, threads)` pair.
#[derive(Clone, Debug)]
pub struct SchedulePoint {
    /// `"paged"` or `"packed"` — the storage backend measured.
    pub backend: String,
    /// `"input_order"` or `"hilbert"`.
    pub schedule: String,
    /// Worker threads.
    pub threads: usize,
    /// Batch wall-clock in seconds.
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
    /// Aggregate `SceneCache` hit count (queries answered on a warm
    /// scene, summed over workers) — the quantity Hilbert scheduling
    /// exists to raise.
    pub scene_reuses: usize,
    /// Scenes retired over the batch.
    pub scene_resets: usize,
    /// Entity-tree buffer hit rate over the batch.
    pub entity_hit_rate: f64,
    /// Obstacle-tree buffer hit rate over the batch.
    pub obstacle_hit_rate: f64,
}

/// One backend's interleaved update/query sweep: edit batches applied
/// through `QueryEngine::apply_updates` alternating with point queries
/// through one scene cache that lives across every edit (the PR 7
/// staleness scenario). Every round's answers are verified against an
/// engine freshly built from the live datasets, and across backends.
#[derive(Clone, Debug)]
pub struct UpdatePoint {
    /// `"paged"` or `"packed"` — the storage backend measured.
    pub backend: String,
    /// Edit batches applied.
    pub rounds: usize,
    /// Total edits across all batches.
    pub edits: usize,
    /// Total `apply_updates` wall-clock in seconds (the packed backend
    /// pays its one re-pack per touched tree per batch here).
    pub edit_seconds: f64,
    /// Total query wall-clock in seconds (across all rounds).
    pub seconds: f64,
    /// Queries per second *under edits* (query time only — edit cost is
    /// reported separately so the two trends stay distinguishable).
    pub qps: f64,
    /// Scenes retired by epoch validation over the sweep.
    pub scene_invalidations: usize,
    /// Queries answered on a warm scene over the sweep.
    pub scene_reuses: usize,
    /// Scenes retired by reuse economics (region jumps / budgets).
    pub scene_resets: usize,
}

/// One saturation point of the resident-service sweep: the point
/// workload offered open-loop at a multiple of the measured sequential
/// capacity, through a bounded queue with `ShedOldest` admission.
#[derive(Clone, Debug)]
pub struct ServicePoint {
    /// `"paged"` or `"packed"` — the storage backend measured.
    pub backend: String,
    /// Offered-load rung, e.g. `"2x"` — the stable identity a later
    /// artifact diff matches on (absolute rates vary with the machine).
    pub load: String,
    /// Offered arrival rate in queries/sec (capacity × multiplier).
    pub offered_qps: f64,
    /// Completions per second over the whole run including the drain —
    /// tracks `offered_qps` below saturation, the service rate above it.
    pub achieved_qps: f64,
    /// Queries answered.
    pub answered: u64,
    /// Queries shed by admission control (queue full, oldest evicted).
    pub shed: u64,
    /// Median time-to-answer (queue wait + execution) in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile time-to-answer in milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile time-to-answer in milliseconds.
    pub p99_ms: f64,
}

/// One rung of the path ladder.
#[derive(Clone, Copy, Debug)]
pub struct LadderPoint {
    /// Obstacle count of the city.
    pub obstacles: usize,
    /// Corner-to-corner wall-clock in seconds.
    pub seconds: f64,
    /// No-regression budget in seconds.
    pub budget_seconds: f64,
    /// The obstructed distance found (sanity anchor for later diffs).
    pub distance: f64,
}

/// The full measurement, ready for JSON serialisation.
#[derive(Clone, Debug)]
pub struct TrajectoryReport {
    /// The configuration measured.
    pub config: TrajectoryConfig,
    /// Cores the host exposed (1 in the usual CI container — speedups
    /// are parity there by physics; the *trajectory* is the point).
    pub cores: usize,
    /// Throughput sweep, one point per thread count.
    pub throughput: Vec<ThreadPoint>,
    /// Scheduling sweep over the clustered workload, one point per
    /// `(schedule, threads)` pair (empty when `clustered_queries` is 0).
    pub schedules: Vec<SchedulePoint>,
    /// Interleaved update/query sweep, one point per backend (empty when
    /// `update_rounds` is 0).
    pub updates: Vec<UpdatePoint>,
    /// Service saturation sweep, one point per (backend, offered load)
    /// (empty when `service_queries` is 0).
    pub service: Vec<ServicePoint>,
    /// Path ladder rungs.
    pub ladder: Vec<LadderPoint>,
    /// Whether every thread count returned results identical to the
    /// first (always checked; `false` never survives to a report —
    /// divergence panics — but the field keeps the artifact explicit).
    pub determinism_verified: bool,
}

fn hit_rate(st: IoStats) -> f64 {
    if st.fetches() == 0 {
        0.0
    } else {
        st.buffer_hits as f64 / st.fetches() as f64
    }
}

/// Canonical rows of one answer (see [`canon_point`]); one update-sweep
/// round collects one `Vec<CanonRows>` per workload query.
type CanonRows = Vec<(u64, u64, u64)>;

/// Canonical payload of a point-query answer for the update sweep's
/// oracle checks: sorted `(id, 0, distance bits)` rows, entity ids
/// remapped through `map` when the answer comes from a fresh-built
/// engine (fresh entity `i` is original entity `map[i]`). Paths carry
/// no ids and canonicalise to their exact polyline bits. The update
/// workload is point queries only, so the join operators cannot appear.
fn canon_point(a: &Answer, map: Option<&[u64]>) -> CanonRows {
    let m = |id: u64| map.map_or(id, |map| map[id as usize]);
    let mut rows: CanonRows = match a {
        Answer::Range(r) => r
            .hits
            .iter()
            .map(|&(id, d)| (m(id), 0, d.to_bits()))
            .collect(),
        Answer::Nearest(r) => r
            .neighbors
            .iter()
            .map(|&(id, d)| (m(id), 0, d.to_bits()))
            .collect(),
        Answer::Path(None) => vec![(u64::MAX, u64::MAX, 0)],
        Answer::Path(Some(p)) => {
            let mut v = vec![(0, 0, p.distance.to_bits())];
            v.extend(
                p.points
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (i as u64 + 1, c.x.to_bits(), c.y.to_bits())),
            );
            return v; // polyline order is part of the answer: no sort
        }
        _ => unreachable!("update sweep workloads are point queries only"),
    };
    rows.sort_unstable();
    rows
}

/// Runs the full measurement. Panics if any run diverges from the first
/// run's results — across thread counts, schedules, *and* storage
/// backends (the determinism contract of `run_batch` plus the
/// paged/packed equivalence contract of `AnyTree`).
pub fn run(config: TrajectoryConfig) -> TrajectoryReport {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let city = City::generate(CityConfig::new(config.obstacles, 0xC17));
    let base_tree_config = RTreeConfig::paper().striped(config.buffer_shards);
    let entity_points = sample_entities(&city, config.entities, 0xC18);
    let queries: Vec<Query> =
        batch_workload(&city, config.queries, 0xC19, BatchMix::point_queries())
            .iter()
            .map(to_core_query)
            .collect();
    let clustered: Vec<Query> = clustered_batch_workload(
        &city,
        config.clustered_queries,
        0xC1A,
        BatchMix::point_queries(),
        ClusterSpec {
            clusters: config.clusters,
            spread: 0.005,
        },
    )
    .iter()
    .map(to_core_query)
    .collect();

    let mut throughput = Vec::new();
    let mut schedules = Vec::new();
    // One baseline per workload, shared across backends: a packed run
    // must reproduce the paged answers bit for bit.
    let mut baseline: Option<Vec<obstacle_core::Answer>> = None;
    let mut schedule_baseline: Option<Vec<obstacle_core::Answer>> = None;

    for &backend in &config.backends {
        let tree_config = base_tree_config.with_backend(backend);
        let obstacles = ObstacleIndex::bulk_load(tree_config, city.obstacles.clone());
        let entities = EntityIndex::bulk_load(tree_config, entity_points.clone());
        let engine = QueryEngine::new(&entities, &obstacles);

        // ---- Throughput sweep (this backend).
        let mut first_seconds: Option<f64> = None;
        for &threads in &config.threads {
            // Cold, identically sized buffers per point: hit rates are
            // then comparable across thread counts instead of
            // compounding (a no-op on the packed backend).
            entities.tree().reset_buffer();
            obstacles.tree().reset_buffer();
            entities.tree().reset_io_stats();
            obstacles.tree().reset_io_stats();
            let t0 = Instant::now();
            let (answers, _) = engine.batch(&queries).threads(threads).collect();
            let seconds = t0.elapsed().as_secs_f64();
            match &baseline {
                None => baseline = Some(answers),
                Some(base) => {
                    for (i, (a, b)) in answers.iter().zip(base.iter()).enumerate() {
                        assert!(
                            a.same_results(b),
                            "query {i} diverged at {threads} threads on the {} backend",
                            backend.name()
                        );
                    }
                }
            }
            let first_seconds = *first_seconds.get_or_insert(seconds);
            throughput.push(ThreadPoint {
                backend: backend.name().to_string(),
                threads,
                seconds,
                qps: queries.len() as f64 / seconds,
                speedup: first_seconds / seconds,
                entity_hit_rate: hit_rate(entities.tree().io_stats()),
                obstacle_hit_rate: hit_rate(obstacles.tree().io_stats()),
            });
        }

        // ---- Scheduling sweep: the same clustered batch under both
        // claim orders. The workload cycles its hotspots round-robin,
        // so input order is maximally scattered and Hilbert has real
        // locality to recover; determinism across schedules (and
        // backends) is asserted on every run.
        if config.clustered_queries > 0 {
            for &threads in &config.schedule_threads {
                for (name, schedule) in [
                    ("input_order", Schedule::InputOrder),
                    ("hilbert", Schedule::Hilbert),
                ] {
                    entities.tree().reset_buffer();
                    obstacles.tree().reset_buffer();
                    entities.tree().reset_io_stats();
                    obstacles.tree().reset_io_stats();
                    let options = BatchOptions::new(threads).schedule(schedule);
                    let t0 = Instant::now();
                    let (answers, stats) = engine.batch(&clustered).options(options).collect();
                    let seconds = t0.elapsed().as_secs_f64();
                    match &schedule_baseline {
                        None => schedule_baseline = Some(answers),
                        Some(base) => {
                            for (i, (a, b)) in answers.iter().zip(base.iter()).enumerate() {
                                assert!(
                                    a.same_results(b),
                                    "clustered query {i} diverged under {name} at {threads} \
                                     threads on the {} backend",
                                    backend.name()
                                );
                            }
                        }
                    }
                    schedules.push(SchedulePoint {
                        backend: backend.name().to_string(),
                        schedule: name.to_string(),
                        threads,
                        seconds,
                        qps: clustered.len() as f64 / seconds,
                        scene_reuses: stats.scene_reuses,
                        scene_resets: stats.scene_resets,
                        entity_hit_rate: hit_rate(entities.tree().io_stats()),
                        obstacle_hit_rate: hit_rate(obstacles.tree().io_stats()),
                    });
                }
            }
        }
    }

    // ---- Interleaved update/query sweep: per backend, edit batches
    // applied through `QueryEngine::apply_updates` alternate with the
    // point workload over ONE scene cache that survives every edit —
    // the PR 7 staleness scenario. Each round's answers are checked
    // bit-identical (after id remapping) to an engine freshly built
    // from the live data, and the per-round payloads must also agree
    // across backends.
    let mut updates = Vec::new();
    if config.update_rounds > 0 {
        let quarter = (config.updates_per_round / 4).max(1);
        // Probes cluster around ONE hotspot: consecutive queries then
        // share a warm scene (like the Hilbert-scheduled sweep above),
        // so the edits actually exercise epoch validation — a scattered
        // workload would retire every scene on region economics alone
        // and the invalidation counters would measure nothing.
        let update_queries: Vec<Query> = clustered_batch_workload(
            &city,
            config.update_queries,
            0xC1B,
            BatchMix::point_queries(),
            ClusterSpec {
                clusters: 1,
                spread: 0.005,
            },
        )
        .iter()
        .map(to_core_query)
        .collect();
        let hotspot = match update_queries[0] {
            Query::Range { q, .. } | Query::Nearest { q, .. } => q,
            Query::Path { from, .. } => from,
            _ => unreachable!("point-query mix"),
        };
        let extra_points = sample_entities(&city, config.update_rounds * quarter, 0xC1C);
        let mut cross_backend: Option<Vec<Vec<CanonRows>>> = None;
        for &backend in &config.backends {
            let tree_config = base_tree_config.with_backend(backend);
            let mut obstacles = ObstacleIndex::bulk_load(tree_config, city.obstacles.clone());
            let mut entities = EntityIndex::bulk_load(tree_config, entity_points.clone());
            let mut cache = SceneCache::new(EngineOptions::default());
            // Polygons retired in earlier rounds: re-inserting them (and
            // only them) keeps the obstacle set disjoint, as the paper
            // assumes of its datasets.
            let mut retired: Vec<Polygon> = Vec::new();
            let mut rounds_canon: Vec<Vec<CanonRows>> = Vec::new();
            let (mut edits, mut edit_seconds, mut query_seconds) = (0usize, 0.0f64, 0.0f64);
            for round in 0..config.update_rounds {
                // Deterministic batch: re-open the obstacles retired
                // last round, retire a spread of live ones, churn a few
                // entities. `live_obs` is snapshotted before the batch
                // applies, so a re-opened polygon is never deleted in
                // the same round it returns.
                let mut batch: Vec<Update> =
                    retired.drain(..).map(Update::InsertObstacle).collect();
                let live_obs: Vec<u64> = obstacles.live_polygons().map(|(id, _)| id).collect();
                let stride = (live_obs.len() / quarter).max(1);
                let mut doomed: Vec<u64> = (0..quarter.min(live_obs.len()))
                    .map(|i| live_obs[i * stride])
                    .collect();
                // One delete per round is guaranteed *relevant*: the live
                // obstacle nearest the probe hotspot, whose dirty rect
                // must retire the warm scene — so the sweep measures the
                // epoch-revalidation path, not only far-away edits.
                let near = live_obs
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let d = |id: u64| obstacles.polygon(id).bbox().center().dist(hotspot);
                        d(a).total_cmp(&d(b))
                    })
                    .expect("city obstacles never empty out");
                if !doomed.contains(&near) {
                    doomed[0] = near;
                }
                for id in doomed {
                    retired.push(obstacles.polygon(id).clone());
                    batch.push(Update::DeleteObstacle(id));
                }
                let live_ent: Vec<u64> = entities.live_points().map(|(id, _)| id).collect();
                let estride = (live_ent.len() / quarter).max(1);
                for i in 0..quarter.min(live_ent.len()) {
                    batch.push(Update::DeleteEntity(live_ent[i * estride]));
                }
                for p in &extra_points[round * quarter..(round + 1) * quarter] {
                    batch.push(Update::InsertEntity(*p));
                }
                edits += batch.len();
                let t0 = Instant::now();
                let stats = QueryEngine::apply_updates(&mut entities, &mut obstacles, batch);
                edit_seconds += t0.elapsed().as_secs_f64();
                assert_eq!(stats.missed_deletes, 0, "update sweep edits must all apply");

                let engine = QueryEngine::new(&entities, &obstacles);
                let t0 = Instant::now();
                let answers: Vec<Answer> = update_queries
                    .iter()
                    .map(|q| engine.execute_with(q, &mut cache))
                    .collect();
                query_seconds += t0.elapsed().as_secs_f64();

                // Oracle: an engine freshly built from the live data
                // must answer identically (modulo its 0..n numbering).
                let (map, live_pts): (Vec<u64>, Vec<Point>) = entities.live_points().unzip();
                let live_polys: Vec<Polygon> =
                    obstacles.live_polygons().map(|(_, p)| p.clone()).collect();
                let fresh_entities = EntityIndex::bulk_load(tree_config, live_pts);
                let fresh_obstacles = ObstacleIndex::bulk_load(tree_config, live_polys);
                let oracle = QueryEngine::new(&fresh_entities, &fresh_obstacles);
                let round_canon: Vec<CanonRows> =
                    answers.iter().map(|a| canon_point(a, None)).collect();
                for (i, (q, got)) in update_queries.iter().zip(&round_canon).enumerate() {
                    let want = canon_point(&oracle.execute(q), Some(&map));
                    assert_eq!(
                        got,
                        &want,
                        "update query {i} went stale in round {round} on the {} backend",
                        backend.name()
                    );
                }
                rounds_canon.push(round_canon);
            }
            match &cross_backend {
                None => cross_backend = Some(rounds_canon),
                Some(base) => assert_eq!(
                    base,
                    &rounds_canon,
                    "update sweep diverged on the {} backend",
                    backend.name()
                ),
            }
            updates.push(UpdatePoint {
                backend: backend.name().to_string(),
                rounds: config.update_rounds,
                edits,
                edit_seconds,
                seconds: query_seconds,
                qps: (config.update_rounds * update_queries.len()) as f64 / query_seconds,
                scene_invalidations: cache.invalidations(),
                scene_reuses: cache.reuses(),
                scene_resets: cache.resets(),
            });
        }
    }

    // ---- Service saturation sweep: the resident `QueryService` fed by
    // an open-loop Poisson client. Rates are anchored to the *measured*
    // sequential capacity of each backend, so the "2x" rung means "twice
    // what one worker can do" on every machine — the regime, not the
    // absolute rate, is what later artifact diffs compare.
    let mut service = Vec::new();
    if config.service_queries > 0 {
        let service_queries: Vec<Query> = batch_workload(
            &city,
            config.service_queries,
            0xC1D,
            BatchMix::point_queries(),
        )
        .iter()
        .map(to_core_query)
        .collect();
        for &backend in &config.backends {
            let tree_config = base_tree_config.with_backend(backend);
            let obstacles = ObstacleIndex::bulk_load(tree_config, city.obstacles.clone());
            let entities = EntityIndex::bulk_load(tree_config, entity_points.clone());

            // Capacity: the same workload, sequentially, warm start.
            let t0 = Instant::now();
            let _ = QueryEngine::new(&entities, &obstacles)
                .batch(&service_queries)
                .threads(1)
                .collect();
            let capacity_qps = service_queries.len() as f64 / t0.elapsed().as_secs_f64();

            for &multiplier in &config.service_loads {
                let offered_qps = capacity_qps * multiplier;
                let arrivals = open_loop_arrivals(offered_qps, service_queries.len(), 0xC1E);
                // Fresh indexes per point: the service takes ownership.
                let obstacles = ObstacleIndex::bulk_load(tree_config, city.obstacles.clone());
                let entities = EntityIndex::bulk_load(tree_config, entity_points.clone());
                let service_config = ServiceConfig::default()
                    .workers(1)
                    .queue_depth(config.service_depth)
                    .admission(Admission::ShedOldest)
                    .schedule(Schedule::Hilbert);
                let t0 = Instant::now();
                let run = QueryService::run(
                    entities,
                    obstacles,
                    EngineOptions::default(),
                    service_config,
                    |svc| {
                        let mut submitted = 0u64;
                        let mut done = 0u64;
                        for (q, at) in service_queries.iter().zip(&arrivals) {
                            // Hold to the arrival schedule, consuming
                            // completions instead of busy-waiting.
                            loop {
                                let now = t0.elapsed();
                                if now >= *at {
                                    break;
                                }
                                let gap = (*at - now).min(Duration::from_millis(5));
                                if svc.recv_timeout(gap).is_some() {
                                    done += 1;
                                }
                            }
                            match svc.submit(*q) {
                                Ok(ticket) => {
                                    ticket.detach();
                                    submitted += 1;
                                }
                                Err(SubmitError::Rejected) => {}
                                Err(e) => unreachable!("service closed mid-sweep: {e}"),
                            }
                        }
                        while done < submitted {
                            if svc.recv_timeout(Duration::from_millis(50)).is_some() {
                                done += 1;
                            }
                        }
                        done
                    },
                );
                let elapsed = t0.elapsed().as_secs_f64();
                let stats = &run.stats;
                assert_eq!(
                    stats.answered + stats.shed,
                    run.output,
                    "every admitted query completes exactly once"
                );
                let ms = |d: Duration| d.as_secs_f64() * 1e3;
                service.push(ServicePoint {
                    backend: backend.name().to_string(),
                    load: format!("{multiplier}x"),
                    offered_qps,
                    achieved_qps: stats.answered as f64 / elapsed,
                    answered: stats.answered,
                    shed: stats.shed,
                    p50_ms: ms(stats.latency.p50()),
                    p90_ms: ms(stats.latency.p90()),
                    p99_ms: ms(stats.latency.p99()),
                });
            }
        }
    }

    // ---- Path ladder (paged backend: its budgets date from before the
    // packed backend existed and gate the lazy-A* engine, not the tree).
    let tree_config = base_tree_config;
    let mut ladder = Vec::with_capacity(config.ladder.len());
    for &(n, budget_seconds) in &config.ladder {
        let city = City::generate(CityConfig::new(n, 0xC17));
        let obstacles = ObstacleIndex::bulk_load(tree_config, city.obstacles.clone());
        let a = Point::new(0.01, 0.01);
        let b = Point::new(0.99, 0.99);
        let t0 = Instant::now();
        let path = shortest_obstructed_path(a, b, &obstacles, EdgeBuilder::RotationalSweep)
            .expect("unit-square corners are connected");
        ladder.push(LadderPoint {
            obstacles: n,
            seconds: t0.elapsed().as_secs_f64(),
            budget_seconds,
            distance: path.distance,
        });
    }

    TrajectoryReport {
        config,
        cores,
        throughput,
        schedules,
        updates,
        service,
        ladder,
        determinism_verified: true,
    }
}

impl TrajectoryReport {
    /// Ladder rungs over budget, as human-readable violation lines
    /// (empty = the no-regression gate passes). Wall-clock budgets are
    /// only meaningful in release builds — callers gate accordingly.
    pub fn budget_violations(&self) -> Vec<String> {
        self.ladder
            .iter()
            .filter(|r| r.seconds > r.budget_seconds)
            .map(|r| {
                format!(
                    "path ladder |O| = {}: {:.2} s over the {:.2} s budget",
                    r.obstacles, r.seconds, r.budget_seconds
                )
            })
            .collect()
    }

    /// Serialises the report as a JSON object (always valid JSON: fixed
    /// float precision, no NaN/Inf can reach the output).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"obstacle-suite-bench-trajectory\",\n");
        s.push_str("  \"pr\": 9,\n");
        s.push_str(&format!(
            "  \"config\": {{\"obstacles\": {}, \"entities\": {}, \"queries\": {}, \
             \"buffer_shards\": {}, \"service_queries\": {}, \"service_depth\": {}, \
             \"cores\": {}}},\n",
            self.config.obstacles,
            self.config.entities,
            self.config.queries,
            self.config.buffer_shards,
            self.config.service_queries,
            self.config.service_depth,
            self.cores
        ));
        s.push_str(&format!(
            "  \"determinism_verified\": {},\n",
            self.determinism_verified
        ));
        s.push_str("  \"throughput\": [\n");
        for (i, p) in self.throughput.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \
                 \"qps\": {:.3}, \"speedup\": {:.3}, \"entity_hit_rate\": {:.4}, \
                 \"obstacle_hit_rate\": {:.4}}}{}\n",
                p.backend,
                p.threads,
                p.seconds,
                p.qps,
                p.speedup,
                p.entity_hit_rate,
                p.obstacle_hit_rate,
                if i + 1 < self.throughput.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"schedules\": [\n");
        for (i, p) in self.schedules.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"schedule\": \"{}\", \"threads\": {}, \
                 \"seconds\": {:.6}, \"qps\": {:.3}, \"scene_reuses\": {}, \
                 \"scene_resets\": {}, \"entity_hit_rate\": {:.4}, \
                 \"obstacle_hit_rate\": {:.4}}}{}\n",
                p.backend,
                p.schedule,
                p.threads,
                p.seconds,
                p.qps,
                p.scene_reuses,
                p.scene_resets,
                p.entity_hit_rate,
                p.obstacle_hit_rate,
                if i + 1 < self.schedules.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"updates\": [\n");
        for (i, p) in self.updates.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"rounds\": {}, \"edits\": {}, \
                 \"edit_seconds\": {:.6}, \"seconds\": {:.6}, \"qps\": {:.3}, \
                 \"scene_invalidations\": {}, \"scene_reuses\": {}, \
                 \"scene_resets\": {}}}{}\n",
                p.backend,
                p.rounds,
                p.edits,
                p.edit_seconds,
                p.seconds,
                p.qps,
                p.scene_invalidations,
                p.scene_reuses,
                p.scene_resets,
                if i + 1 < self.updates.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"service\": [\n");
        for (i, p) in self.service.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"load\": \"{}\", \"offered_qps\": {:.3}, \
                 \"achieved_qps\": {:.3}, \"answered\": {}, \"shed\": {}, \
                 \"p50_ms\": {:.4}, \"p90_ms\": {:.4}, \"p99_ms\": {:.4}}}{}\n",
                p.backend,
                p.load,
                p.offered_qps,
                p.achieved_qps,
                p.answered,
                p.shed,
                p.p50_ms,
                p.p90_ms,
                p.p99_ms,
                if i + 1 < self.service.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"path_ladder\": [\n");
        for (i, r) in self.ladder.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"obstacles\": {}, \"seconds\": {:.6}, \
                 \"budget_seconds\": {:.3}, \"distance\": {:.9}}}{}\n",
                r.obstacles,
                r.seconds,
                r.budget_seconds,
                r.distance,
                if i + 1 < self.ladder.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Diffs this report against a previous `BENCH_*.json` artifact —
    /// the trajectory-history gate: q/s on the shared throughput
    /// workload must not regress beyond `tolerance` (a fraction, e.g.
    /// 0.4 = fail below 60 % of the previous number; generous because
    /// the 1-core CI container is noisy). Points are matched by
    /// `(backend, thread count)`; artifacts written before the packed
    /// backend existed carry no `backend` key and their points count as
    /// `"paged"`, so a fast packed run can never mask a paged
    /// regression. The diff is skipped (`comparable == false`) when the
    /// baseline measured a different workload configuration, since its
    /// q/s would mean nothing here.
    ///
    /// Service points are additionally diffed on **p99 time-to-answer**,
    /// matched by `(backend, load rung)`: the current p99 must stay
    /// under `(1 + p99_tolerance) ×` the baseline's (e.g. 1.0 = fail
    /// only when tail latency more than doubles — queue-wait tails on a
    /// noisy 1-core container swing far wider than throughput does).
    /// Baselines that predate the service sweep (or measured a different
    /// `service_queries`/`service_depth`) skip only this part, with a
    /// note — they stay comparable on throughput.
    pub fn diff_against_baseline(
        &self,
        baseline_json: &str,
        tolerance: f64,
        p99_tolerance: f64,
    ) -> BaselineDiff {
        let mut diff = BaselineDiff {
            comparable: false,
            notes: Vec::new(),
            regressions: Vec::new(),
        };
        // The config object serialises first, so the first occurrence of
        // each key in the artifact is the config value. Every knob that
        // shapes the throughput workload must match, or the q/s numbers
        // mean nothing against each other.
        let config = [
            ("obstacles", self.config.obstacles),
            ("entities", self.config.entities),
            ("queries", self.config.queries),
            ("buffer_shards", self.config.buffer_shards),
        ];
        for (key, current) in config {
            let base = json_number(baseline_json, key);
            if base != Some(current as f64) {
                diff.notes.push(format!(
                    "baseline measured {key} = {base:?}, current = {current} — \
                     q/s not comparable, diff skipped"
                ));
                return diff;
            }
        }
        diff.comparable = true;
        let baseline = throughput_points(baseline_json);
        for p in &self.throughput {
            let Some((_, _, base_qps)) = baseline
                .iter()
                .find(|(b, t, _)| *b == p.backend && *t == p.threads)
            else {
                continue;
            };
            let floor = (1.0 - tolerance) * base_qps;
            let line = format!(
                "throughput [{}] @ {} thread(s): {:.1} q/s vs baseline {:.1} q/s (floor {:.1})",
                p.backend, p.threads, p.qps, base_qps, floor
            );
            if p.qps < floor {
                diff.regressions.push(line);
            } else {
                diff.notes.push(line);
            }
        }
        if baseline.is_empty() {
            diff.notes
                .push("baseline artifact has no throughput points".to_string());
        }

        // ---- Service p99 gate (tail latency is the service's contract;
        // q/s alone would let a regression hide in the queue).
        let base_service = service_points(baseline_json);
        let service_config_matches = [
            ("service_queries", self.config.service_queries),
            ("service_depth", self.config.service_depth),
        ]
        .iter()
        .all(|&(key, current)| json_number(baseline_json, key) == Some(current as f64));
        if base_service.is_empty() || !service_config_matches {
            if !self.service.is_empty() {
                diff.notes.push(
                    "baseline has no comparable service sweep — p99 diff skipped".to_string(),
                );
            }
        } else {
            for p in &self.service {
                let Some((_, _, base_p99, base_shed)) = base_service
                    .iter()
                    .find(|(b, l, _, _)| *b == p.backend && *l == p.load)
                else {
                    continue;
                };
                let ceiling = (1.0 + p99_tolerance) * base_p99;
                let line = format!(
                    "service [{} @ {}]: p99 {:.1} ms vs baseline {:.1} ms (ceiling {:.1}), \
                     shed {} vs {}",
                    p.backend, p.load, p.p99_ms, base_p99, ceiling, p.shed, base_shed
                );
                if p.p99_ms > ceiling {
                    diff.regressions.push(line);
                } else {
                    diff.notes.push(line);
                }
            }
        }
        diff
    }
}

/// Result of [`TrajectoryReport::diff_against_baseline`].
#[derive(Clone, Debug)]
pub struct BaselineDiff {
    /// Whether the baseline measured the same workload configuration.
    pub comparable: bool,
    /// Per-point comparison lines (informational).
    pub notes: Vec<String>,
    /// q/s regressions beyond tolerance (non-empty fails the gate).
    pub regressions: Vec<String>,
}

/// First `"key": <number>` occurrence in `json` (the artifacts are
/// written by [`TrajectoryReport::to_json`], so a full JSON parser —
/// which the offline workspace doesn't have — would be overkill).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// First `"key": "<string>"` occurrence in `json`.
fn json_string<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(&rest[..rest.find('"')?])
}

/// `(backend, threads, qps)` triples of the artifact's `"throughput"`
/// array. Pre-PR-6 artifacts carry no `backend` key: those points were
/// measured on the paged tree (the only backend that existed), so they
/// default to `"paged"`.
fn throughput_points(json: &str) -> Vec<(String, usize, f64)> {
    let Some(start) = json.find("\"throughput\": [") else {
        return Vec::new();
    };
    let body = &json[start..];
    let end = body.find(']').unwrap_or(body.len());
    let mut out = Vec::new();
    for entry in body[..end].split('{').skip(1) {
        if let (Some(threads), Some(qps)) =
            (json_number(entry, "threads"), json_number(entry, "qps"))
        {
            let backend = json_string(entry, "backend").unwrap_or("paged");
            out.push((backend.to_string(), threads as usize, qps));
        }
    }
    out
}

/// `(backend, load, p99_ms, shed)` rows of the artifact's `"service"`
/// array (empty for artifacts that predate the service sweep).
fn service_points(json: &str) -> Vec<(String, String, f64, f64)> {
    let Some(start) = json.find("\"service\": [") else {
        return Vec::new();
    };
    let body = &json[start..];
    let end = body.find(']').unwrap_or(body.len());
    let mut out = Vec::new();
    for entry in body[..end].split('{').skip(1) {
        if let (Some(backend), Some(load), Some(p99), Some(shed)) = (
            json_string(entry, "backend"),
            json_string(entry, "load"),
            json_number(entry, "p99_ms"),
            json_number(entry, "shed"),
        ) {
            out.push((backend.to_string(), load.to_string(), p99, shed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_trajectory_produces_wellformed_json() {
        let report = run(TrajectoryConfig {
            obstacles: 64,
            entities: 48,
            queries: 8,
            buffer_shards: 2,
            threads: vec![1, 2],
            ladder: vec![(32, 60.0)],
            clustered_queries: 12,
            clusters: 3,
            schedule_threads: vec![1],
            backends: vec![Backend::Paged, Backend::Packed],
            update_rounds: 2,
            updates_per_round: 8,
            update_queries: 6,
            service_queries: 6,
            service_loads: vec![0.5, 4.0],
            service_depth: 4,
        });
        assert_eq!(report.throughput.len(), 4, "2 backends x 2 thread counts");
        assert_eq!(
            report.schedules.len(),
            4,
            "2 backends x both schedules at 1 thread"
        );
        assert_eq!(report.updates.len(), 2, "one update point per backend");
        for p in &report.updates {
            assert_eq!(p.rounds, 2);
            assert!(p.edits > 0 && p.qps > 0.0, "{p:?}");
        }
        assert_eq!(report.service.len(), 4, "2 backends x 2 load rungs");
        for p in &report.service {
            assert_eq!(p.answered + p.shed, 6, "{p:?}");
            assert!(p.offered_qps > 0.0 && p.achieved_qps > 0.0, "{p:?}");
            assert!(p.p50_ms <= p.p90_ms && p.p90_ms <= p.p99_ms, "{p:?}");
        }
        assert_eq!(report.ladder.len(), 1);
        assert!(report.determinism_verified);
        assert!(
            report.budget_violations().is_empty(),
            "60 s budget at |O|=32"
        );

        let json = report.to_json();
        // Structural sanity: balanced braces/brackets, required keys, no
        // accidental NaN/Inf leaking into the artifact.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"schema\"",
            "\"throughput\"",
            "\"schedules\"",
            "\"backend\": \"paged\"",
            "\"backend\": \"packed\"",
            "\"schedule\": \"hilbert\"",
            "\"scene_reuses\"",
            "\"updates\"",
            "\"edit_seconds\"",
            "\"scene_invalidations\"",
            "\"service\"",
            "\"offered_qps\"",
            "\"p99_ms\"",
            "\"shed\"",
            "\"path_ladder\"",
            "\"qps\"",
            "\"entity_hit_rate\"",
            "\"obstacle_hit_rate\"",
            "\"budget_seconds\"",
            "\"determinism_verified\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn budget_violations_detect_regressions() {
        let mut report = run(TrajectoryConfig {
            obstacles: 32,
            entities: 16,
            queries: 4,
            buffer_shards: 1,
            threads: vec![1],
            ladder: vec![(16, 30.0)],
            clustered_queries: 0, // skip the schedule sweep
            clusters: 1,
            schedule_threads: vec![],
            backends: vec![Backend::Paged],
            update_rounds: 0, // skip the update sweep
            updates_per_round: 0,
            update_queries: 0,
            service_queries: 0, // skip the service sweep
            service_loads: vec![],
            service_depth: 0,
        });
        assert!(report.schedules.is_empty());
        assert!(report.updates.is_empty());
        assert!(report.service.is_empty());
        assert!(report.budget_violations().is_empty());
        report.ladder[0].budget_seconds = 0.0;
        assert_eq!(report.budget_violations().len(), 1);
    }

    #[test]
    fn baseline_diff_flags_regressions_and_config_mismatches() {
        let report = run(TrajectoryConfig {
            obstacles: 32,
            entities: 16,
            queries: 4,
            buffer_shards: 1,
            threads: vec![1],
            ladder: vec![],
            clustered_queries: 0,
            clusters: 1,
            schedule_threads: vec![],
            backends: vec![Backend::Paged, Backend::Packed],
            update_rounds: 0,
            updates_per_round: 0,
            update_queries: 0,
            service_queries: 2,
            service_loads: vec![2.0],
            service_depth: 2,
        });

        // A baseline of the same configuration but absurdly high q/s:
        // every matched point regresses beyond any tolerance.
        // The baseline predates the backend key: its bare point counts
        // as paged and must still catch the paged regression (the
        // packed point finds no match and is skipped, not compared
        // against the paged number).
        let fast = "{\n  \"config\": {\"obstacles\": 32, \"entities\": 16, \"queries\": 4, \
                    \"buffer_shards\": 1, \"cores\": 1},\n  \"throughput\": [\n    \
                    {\"threads\": 1, \"seconds\": 0.0001, \"qps\": 9999999.0}\n  ]\n}\n";
        let diff = report.diff_against_baseline(fast, 0.4, 1.0);
        assert!(diff.comparable);
        assert_eq!(diff.regressions.len(), 1, "{diff:?}");
        assert!(diff.regressions[0].contains("[paged]"), "{diff:?}");

        // The report diffed against its own artifact never regresses.
        let self_diff = report.diff_against_baseline(&report.to_json(), 0.4, 1.0);
        assert!(self_diff.comparable);
        assert!(self_diff.regressions.is_empty(), "{self_diff:?}");
        assert!(!self_diff.notes.is_empty());

        // A baseline measured on a different workload is incomparable.
        let other = fast.replace("\"obstacles\": 32", "\"obstacles\": 2048");
        let diff = report.diff_against_baseline(&other, 0.4, 1.0);
        assert!(!diff.comparable);
        assert!(diff.regressions.is_empty());
    }

    #[test]
    fn artifact_number_extraction_reads_what_to_json_writes() {
        let json = "{\n  \"config\": {\"obstacles\": 2048, \"queries\": 64},\n  \
                    \"throughput\": [\n    {\"threads\": 1, \"qps\": 17.100},\n    \
                    {\"backend\": \"packed\", \"threads\": 8, \"qps\": 16.533}\n  ],\n  \
                    \"path_ladder\": []\n}\n";
        assert_eq!(json_number(json, "obstacles"), Some(2048.0));
        assert_eq!(json_number(json, "queries"), Some(64.0));
        assert_eq!(
            throughput_points(json),
            vec![
                ("paged".to_string(), 1usize, 17.1),
                ("packed".to_string(), 8usize, 16.533)
            ]
        );
        assert_eq!(json_number(json, "missing"), None);
        assert!(throughput_points("{}").is_empty());
    }
}
