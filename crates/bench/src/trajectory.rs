//! Machine-readable performance trajectory (`BENCH_PR4.json`).
//!
//! Until PR 4 the repo's performance history lived as prose in
//! ROADMAP.md; nothing in CI recorded numbers a later PR could diff
//! against. This module measures the two hot paths the PR 4 work targets
//! — batch throughput over the striped buffer pool + scene caches, and
//! the long-path ladder — and serialises them as JSON so every `ci.sh`
//! run leaves a comparable artifact:
//!
//! * **throughput**: one mixed point-query batch executed at each worker
//!   thread count (cold buffers, identical workload), with queries/sec,
//!   speedup over 1 thread, and the per-tree buffer hit rates; every
//!   count is verified result-identical to the first.
//! * **path ladder**: corner-to-corner shortest paths at growing |O|,
//!   each with the wall-clock budget the no-regression gate enforces
//!   (the |O| = 2000 rung carries the same 2 s budget as the
//!   `path_scaling` test gate).
//!
//! The JSON is hand-rolled (the workspace is offline, no serde); floats
//! are emitted with fixed precision so the output is always valid JSON.

use crate::batch::to_core_query;
use obstacle_core::{shortest_obstructed_path, BatchOptions, ObstacleIndex, Schedule};
use obstacle_core::{EntityIndex, Query, QueryEngine};
use obstacle_datagen::{
    batch_workload, clustered_batch_workload, sample_entities, BatchMix, City, CityConfig,
    ClusterSpec,
};
use obstacle_geom::Point;
use obstacle_rtree::{Backend, IoStats, RTreeConfig, TreeBackend};
use obstacle_visibility::EdgeBuilder;
use std::time::Instant;

/// What to measure; the defaults keep the release-mode CI stage under a
/// couple of minutes on one core while still exercising every mechanism.
#[derive(Clone, Debug)]
pub struct TrajectoryConfig {
    /// Obstacles in the throughput city.
    pub obstacles: usize,
    /// Entities in the throughput dataset.
    pub entities: usize,
    /// Queries per batch.
    pub queries: usize,
    /// Buffer-pool lock stripes on both trees.
    pub buffer_shards: usize,
    /// Worker thread counts to sweep.
    pub threads: Vec<usize>,
    /// Path ladder as `(|O|, wall-clock budget in seconds)` rungs.
    pub ladder: Vec<(usize, f64)>,
    /// Queries in the clustered scheduling workload (0 skips the sweep).
    pub clustered_queries: usize,
    /// Hotspots of the clustered workload.
    pub clusters: usize,
    /// Thread counts of the schedule sweep (kept short: the point is the
    /// InputOrder-vs-Hilbert hit-rate split, not another thread ladder).
    pub schedule_threads: Vec<usize>,
    /// Storage backends to A/B: both sweeps run once per backend over
    /// the *same* workload, and every run — any backend, any thread
    /// count, any schedule — must answer identically to the first
    /// (the cross-backend determinism contract).
    pub backends: Vec<Backend>,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            obstacles: 2048,
            entities: 1024,
            queries: 64,
            buffer_shards: 8,
            threads: vec![1, 2, 4, 8],
            // The 2000-rung budget mirrors the `path_scaling` test gate.
            ladder: vec![(500, 1.5), (2000, 2.0)],
            clustered_queries: 64,
            clusters: 8,
            schedule_threads: vec![1, 2],
            backends: vec![Backend::Paged, Backend::Packed],
        }
    }
}

/// One measured thread count of the throughput sweep.
#[derive(Clone, Debug)]
pub struct ThreadPoint {
    /// `"paged"` or `"packed"` — the storage backend measured.
    pub backend: String,
    /// Worker threads.
    pub threads: usize,
    /// Batch wall-clock in seconds.
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
    /// Speedup over this backend's first (1-thread) point.
    pub speedup: f64,
    /// Entity-tree buffer hit rate (hits / fetches) over the batch. On
    /// the packed backend every access is a recorded node visit, so
    /// this is 1.0 by construction — it measures nothing there.
    pub entity_hit_rate: f64,
    /// Obstacle-tree buffer hit rate over the batch (packed: 1.0, see
    /// `entity_hit_rate`).
    pub obstacle_hit_rate: f64,
}

/// One measured point of the scheduling sweep: the same clustered batch
/// under one `(schedule, threads)` pair.
#[derive(Clone, Debug)]
pub struct SchedulePoint {
    /// `"paged"` or `"packed"` — the storage backend measured.
    pub backend: String,
    /// `"input_order"` or `"hilbert"`.
    pub schedule: String,
    /// Worker threads.
    pub threads: usize,
    /// Batch wall-clock in seconds.
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
    /// Aggregate `SceneCache` hit count (queries answered on a warm
    /// scene, summed over workers) — the quantity Hilbert scheduling
    /// exists to raise.
    pub scene_reuses: usize,
    /// Scenes retired over the batch.
    pub scene_resets: usize,
    /// Entity-tree buffer hit rate over the batch.
    pub entity_hit_rate: f64,
    /// Obstacle-tree buffer hit rate over the batch.
    pub obstacle_hit_rate: f64,
}

/// One rung of the path ladder.
#[derive(Clone, Copy, Debug)]
pub struct LadderPoint {
    /// Obstacle count of the city.
    pub obstacles: usize,
    /// Corner-to-corner wall-clock in seconds.
    pub seconds: f64,
    /// No-regression budget in seconds.
    pub budget_seconds: f64,
    /// The obstructed distance found (sanity anchor for later diffs).
    pub distance: f64,
}

/// The full measurement, ready for JSON serialisation.
#[derive(Clone, Debug)]
pub struct TrajectoryReport {
    /// The configuration measured.
    pub config: TrajectoryConfig,
    /// Cores the host exposed (1 in the usual CI container — speedups
    /// are parity there by physics; the *trajectory* is the point).
    pub cores: usize,
    /// Throughput sweep, one point per thread count.
    pub throughput: Vec<ThreadPoint>,
    /// Scheduling sweep over the clustered workload, one point per
    /// `(schedule, threads)` pair (empty when `clustered_queries` is 0).
    pub schedules: Vec<SchedulePoint>,
    /// Path ladder rungs.
    pub ladder: Vec<LadderPoint>,
    /// Whether every thread count returned results identical to the
    /// first (always checked; `false` never survives to a report —
    /// divergence panics — but the field keeps the artifact explicit).
    pub determinism_verified: bool,
}

fn hit_rate(st: IoStats) -> f64 {
    if st.fetches() == 0 {
        0.0
    } else {
        st.buffer_hits as f64 / st.fetches() as f64
    }
}

/// Runs the full measurement. Panics if any run diverges from the first
/// run's results — across thread counts, schedules, *and* storage
/// backends (the determinism contract of `run_batch` plus the
/// paged/packed equivalence contract of `AnyTree`).
pub fn run(config: TrajectoryConfig) -> TrajectoryReport {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let city = City::generate(CityConfig::new(config.obstacles, 0xC17));
    let base_tree_config = RTreeConfig::paper().striped(config.buffer_shards);
    let entity_points = sample_entities(&city, config.entities, 0xC18);
    let queries: Vec<Query> =
        batch_workload(&city, config.queries, 0xC19, BatchMix::point_queries())
            .iter()
            .map(to_core_query)
            .collect();
    let clustered: Vec<Query> = clustered_batch_workload(
        &city,
        config.clustered_queries,
        0xC1A,
        BatchMix::point_queries(),
        ClusterSpec {
            clusters: config.clusters,
            spread: 0.005,
        },
    )
    .iter()
    .map(to_core_query)
    .collect();

    let mut throughput = Vec::new();
    let mut schedules = Vec::new();
    // One baseline per workload, shared across backends: a packed run
    // must reproduce the paged answers bit for bit.
    let mut baseline: Option<Vec<obstacle_core::Answer>> = None;
    let mut schedule_baseline: Option<Vec<obstacle_core::Answer>> = None;

    for &backend in &config.backends {
        let tree_config = base_tree_config.with_backend(backend);
        let obstacles = ObstacleIndex::bulk_load(tree_config, city.obstacles.clone());
        let entities = EntityIndex::bulk_load(tree_config, entity_points.clone());
        let engine = QueryEngine::new(&entities, &obstacles);

        // ---- Throughput sweep (this backend).
        let mut first_seconds: Option<f64> = None;
        for &threads in &config.threads {
            // Cold, identically sized buffers per point: hit rates are
            // then comparable across thread counts instead of
            // compounding (a no-op on the packed backend).
            entities.tree().reset_buffer();
            obstacles.tree().reset_buffer();
            entities.tree().reset_io_stats();
            obstacles.tree().reset_io_stats();
            let t0 = Instant::now();
            let answers = engine.run_batch(&queries, threads);
            let seconds = t0.elapsed().as_secs_f64();
            match &baseline {
                None => baseline = Some(answers),
                Some(base) => {
                    for (i, (a, b)) in answers.iter().zip(base.iter()).enumerate() {
                        assert!(
                            a.same_results(b),
                            "query {i} diverged at {threads} threads on the {} backend",
                            backend.name()
                        );
                    }
                }
            }
            let first_seconds = *first_seconds.get_or_insert(seconds);
            throughput.push(ThreadPoint {
                backend: backend.name().to_string(),
                threads,
                seconds,
                qps: queries.len() as f64 / seconds,
                speedup: first_seconds / seconds,
                entity_hit_rate: hit_rate(entities.tree().io_stats()),
                obstacle_hit_rate: hit_rate(obstacles.tree().io_stats()),
            });
        }

        // ---- Scheduling sweep: the same clustered batch under both
        // claim orders. The workload cycles its hotspots round-robin,
        // so input order is maximally scattered and Hilbert has real
        // locality to recover; determinism across schedules (and
        // backends) is asserted on every run.
        if config.clustered_queries > 0 {
            for &threads in &config.schedule_threads {
                for (name, schedule) in [
                    ("input_order", Schedule::InputOrder),
                    ("hilbert", Schedule::Hilbert),
                ] {
                    entities.tree().reset_buffer();
                    obstacles.tree().reset_buffer();
                    entities.tree().reset_io_stats();
                    obstacles.tree().reset_io_stats();
                    let options = BatchOptions::new(threads).schedule(schedule);
                    let t0 = Instant::now();
                    let (answers, stats) = engine.run_batch_scheduled(&clustered, &options);
                    let seconds = t0.elapsed().as_secs_f64();
                    match &schedule_baseline {
                        None => schedule_baseline = Some(answers),
                        Some(base) => {
                            for (i, (a, b)) in answers.iter().zip(base.iter()).enumerate() {
                                assert!(
                                    a.same_results(b),
                                    "clustered query {i} diverged under {name} at {threads} \
                                     threads on the {} backend",
                                    backend.name()
                                );
                            }
                        }
                    }
                    schedules.push(SchedulePoint {
                        backend: backend.name().to_string(),
                        schedule: name.to_string(),
                        threads,
                        seconds,
                        qps: clustered.len() as f64 / seconds,
                        scene_reuses: stats.scene_reuses,
                        scene_resets: stats.scene_resets,
                        entity_hit_rate: hit_rate(entities.tree().io_stats()),
                        obstacle_hit_rate: hit_rate(obstacles.tree().io_stats()),
                    });
                }
            }
        }
    }

    // ---- Path ladder (paged backend: its budgets date from before the
    // packed backend existed and gate the lazy-A* engine, not the tree).
    let tree_config = base_tree_config;
    let mut ladder = Vec::with_capacity(config.ladder.len());
    for &(n, budget_seconds) in &config.ladder {
        let city = City::generate(CityConfig::new(n, 0xC17));
        let obstacles = ObstacleIndex::bulk_load(tree_config, city.obstacles.clone());
        let a = Point::new(0.01, 0.01);
        let b = Point::new(0.99, 0.99);
        let t0 = Instant::now();
        let path = shortest_obstructed_path(a, b, &obstacles, EdgeBuilder::RotationalSweep)
            .expect("unit-square corners are connected");
        ladder.push(LadderPoint {
            obstacles: n,
            seconds: t0.elapsed().as_secs_f64(),
            budget_seconds,
            distance: path.distance,
        });
    }

    TrajectoryReport {
        config,
        cores,
        throughput,
        schedules,
        ladder,
        determinism_verified: true,
    }
}

impl TrajectoryReport {
    /// Ladder rungs over budget, as human-readable violation lines
    /// (empty = the no-regression gate passes). Wall-clock budgets are
    /// only meaningful in release builds — callers gate accordingly.
    pub fn budget_violations(&self) -> Vec<String> {
        self.ladder
            .iter()
            .filter(|r| r.seconds > r.budget_seconds)
            .map(|r| {
                format!(
                    "path ladder |O| = {}: {:.2} s over the {:.2} s budget",
                    r.obstacles, r.seconds, r.budget_seconds
                )
            })
            .collect()
    }

    /// Serialises the report as a JSON object (always valid JSON: fixed
    /// float precision, no NaN/Inf can reach the output).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"obstacle-suite-bench-trajectory\",\n");
        s.push_str("  \"pr\": 6,\n");
        s.push_str(&format!(
            "  \"config\": {{\"obstacles\": {}, \"entities\": {}, \"queries\": {}, \
             \"buffer_shards\": {}, \"cores\": {}}},\n",
            self.config.obstacles,
            self.config.entities,
            self.config.queries,
            self.config.buffer_shards,
            self.cores
        ));
        s.push_str(&format!(
            "  \"determinism_verified\": {},\n",
            self.determinism_verified
        ));
        s.push_str("  \"throughput\": [\n");
        for (i, p) in self.throughput.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \
                 \"qps\": {:.3}, \"speedup\": {:.3}, \"entity_hit_rate\": {:.4}, \
                 \"obstacle_hit_rate\": {:.4}}}{}\n",
                p.backend,
                p.threads,
                p.seconds,
                p.qps,
                p.speedup,
                p.entity_hit_rate,
                p.obstacle_hit_rate,
                if i + 1 < self.throughput.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"schedules\": [\n");
        for (i, p) in self.schedules.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"schedule\": \"{}\", \"threads\": {}, \
                 \"seconds\": {:.6}, \"qps\": {:.3}, \"scene_reuses\": {}, \
                 \"scene_resets\": {}, \"entity_hit_rate\": {:.4}, \
                 \"obstacle_hit_rate\": {:.4}}}{}\n",
                p.backend,
                p.schedule,
                p.threads,
                p.seconds,
                p.qps,
                p.scene_reuses,
                p.scene_resets,
                p.entity_hit_rate,
                p.obstacle_hit_rate,
                if i + 1 < self.schedules.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n  \"path_ladder\": [\n");
        for (i, r) in self.ladder.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"obstacles\": {}, \"seconds\": {:.6}, \
                 \"budget_seconds\": {:.3}, \"distance\": {:.9}}}{}\n",
                r.obstacles,
                r.seconds,
                r.budget_seconds,
                r.distance,
                if i + 1 < self.ladder.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Diffs this report against a previous `BENCH_*.json` artifact —
    /// the trajectory-history gate: q/s on the shared throughput
    /// workload must not regress beyond `tolerance` (a fraction, e.g.
    /// 0.4 = fail below 60 % of the previous number; generous because
    /// the 1-core CI container is noisy). Points are matched by
    /// `(backend, thread count)`; artifacts written before the packed
    /// backend existed carry no `backend` key and their points count as
    /// `"paged"`, so a fast packed run can never mask a paged
    /// regression. The diff is skipped (`comparable == false`) when the
    /// baseline measured a different workload configuration, since its
    /// q/s would mean nothing here.
    pub fn diff_against_baseline(&self, baseline_json: &str, tolerance: f64) -> BaselineDiff {
        let mut diff = BaselineDiff {
            comparable: false,
            notes: Vec::new(),
            regressions: Vec::new(),
        };
        // The config object serialises first, so the first occurrence of
        // each key in the artifact is the config value. Every knob that
        // shapes the throughput workload must match, or the q/s numbers
        // mean nothing against each other.
        let config = [
            ("obstacles", self.config.obstacles),
            ("entities", self.config.entities),
            ("queries", self.config.queries),
            ("buffer_shards", self.config.buffer_shards),
        ];
        for (key, current) in config {
            let base = json_number(baseline_json, key);
            if base != Some(current as f64) {
                diff.notes.push(format!(
                    "baseline measured {key} = {base:?}, current = {current} — \
                     q/s not comparable, diff skipped"
                ));
                return diff;
            }
        }
        diff.comparable = true;
        let baseline = throughput_points(baseline_json);
        for p in &self.throughput {
            let Some((_, _, base_qps)) = baseline
                .iter()
                .find(|(b, t, _)| *b == p.backend && *t == p.threads)
            else {
                continue;
            };
            let floor = (1.0 - tolerance) * base_qps;
            let line = format!(
                "throughput [{}] @ {} thread(s): {:.1} q/s vs baseline {:.1} q/s (floor {:.1})",
                p.backend, p.threads, p.qps, base_qps, floor
            );
            if p.qps < floor {
                diff.regressions.push(line);
            } else {
                diff.notes.push(line);
            }
        }
        if baseline.is_empty() {
            diff.notes
                .push("baseline artifact has no throughput points".to_string());
        }
        diff
    }
}

/// Result of [`TrajectoryReport::diff_against_baseline`].
#[derive(Clone, Debug)]
pub struct BaselineDiff {
    /// Whether the baseline measured the same workload configuration.
    pub comparable: bool,
    /// Per-point comparison lines (informational).
    pub notes: Vec<String>,
    /// q/s regressions beyond tolerance (non-empty fails the gate).
    pub regressions: Vec<String>,
}

/// First `"key": <number>` occurrence in `json` (the artifacts are
/// written by [`TrajectoryReport::to_json`], so a full JSON parser —
/// which the offline workspace doesn't have — would be overkill).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// First `"key": "<string>"` occurrence in `json`.
fn json_string<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(&rest[..rest.find('"')?])
}

/// `(backend, threads, qps)` triples of the artifact's `"throughput"`
/// array. Pre-PR-6 artifacts carry no `backend` key: those points were
/// measured on the paged tree (the only backend that existed), so they
/// default to `"paged"`.
fn throughput_points(json: &str) -> Vec<(String, usize, f64)> {
    let Some(start) = json.find("\"throughput\": [") else {
        return Vec::new();
    };
    let body = &json[start..];
    let end = body.find(']').unwrap_or(body.len());
    let mut out = Vec::new();
    for entry in body[..end].split('{').skip(1) {
        if let (Some(threads), Some(qps)) =
            (json_number(entry, "threads"), json_number(entry, "qps"))
        {
            let backend = json_string(entry, "backend").unwrap_or("paged");
            out.push((backend.to_string(), threads as usize, qps));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_trajectory_produces_wellformed_json() {
        let report = run(TrajectoryConfig {
            obstacles: 64,
            entities: 48,
            queries: 8,
            buffer_shards: 2,
            threads: vec![1, 2],
            ladder: vec![(32, 60.0)],
            clustered_queries: 12,
            clusters: 3,
            schedule_threads: vec![1],
            backends: vec![Backend::Paged, Backend::Packed],
        });
        assert_eq!(report.throughput.len(), 4, "2 backends x 2 thread counts");
        assert_eq!(
            report.schedules.len(),
            4,
            "2 backends x both schedules at 1 thread"
        );
        assert_eq!(report.ladder.len(), 1);
        assert!(report.determinism_verified);
        assert!(
            report.budget_violations().is_empty(),
            "60 s budget at |O|=32"
        );

        let json = report.to_json();
        // Structural sanity: balanced braces/brackets, required keys, no
        // accidental NaN/Inf leaking into the artifact.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"schema\"",
            "\"throughput\"",
            "\"schedules\"",
            "\"backend\": \"paged\"",
            "\"backend\": \"packed\"",
            "\"schedule\": \"hilbert\"",
            "\"scene_reuses\"",
            "\"path_ladder\"",
            "\"qps\"",
            "\"entity_hit_rate\"",
            "\"obstacle_hit_rate\"",
            "\"budget_seconds\"",
            "\"determinism_verified\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn budget_violations_detect_regressions() {
        let mut report = run(TrajectoryConfig {
            obstacles: 32,
            entities: 16,
            queries: 4,
            buffer_shards: 1,
            threads: vec![1],
            ladder: vec![(16, 30.0)],
            clustered_queries: 0, // skip the schedule sweep
            clusters: 1,
            schedule_threads: vec![],
            backends: vec![Backend::Paged],
        });
        assert!(report.schedules.is_empty());
        assert!(report.budget_violations().is_empty());
        report.ladder[0].budget_seconds = 0.0;
        assert_eq!(report.budget_violations().len(), 1);
    }

    #[test]
    fn baseline_diff_flags_regressions_and_config_mismatches() {
        let report = run(TrajectoryConfig {
            obstacles: 32,
            entities: 16,
            queries: 4,
            buffer_shards: 1,
            threads: vec![1],
            ladder: vec![],
            clustered_queries: 0,
            clusters: 1,
            schedule_threads: vec![],
            backends: vec![Backend::Paged, Backend::Packed],
        });

        // A baseline of the same configuration but absurdly high q/s:
        // every matched point regresses beyond any tolerance.
        // The baseline predates the backend key: its bare point counts
        // as paged and must still catch the paged regression (the
        // packed point finds no match and is skipped, not compared
        // against the paged number).
        let fast = "{\n  \"config\": {\"obstacles\": 32, \"entities\": 16, \"queries\": 4, \
                    \"buffer_shards\": 1, \"cores\": 1},\n  \"throughput\": [\n    \
                    {\"threads\": 1, \"seconds\": 0.0001, \"qps\": 9999999.0}\n  ]\n}\n";
        let diff = report.diff_against_baseline(fast, 0.4);
        assert!(diff.comparable);
        assert_eq!(diff.regressions.len(), 1, "{diff:?}");
        assert!(diff.regressions[0].contains("[paged]"), "{diff:?}");

        // The report diffed against its own artifact never regresses.
        let self_diff = report.diff_against_baseline(&report.to_json(), 0.4);
        assert!(self_diff.comparable);
        assert!(self_diff.regressions.is_empty(), "{self_diff:?}");
        assert!(!self_diff.notes.is_empty());

        // A baseline measured on a different workload is incomparable.
        let other = fast.replace("\"obstacles\": 32", "\"obstacles\": 2048");
        let diff = report.diff_against_baseline(&other, 0.4);
        assert!(!diff.comparable);
        assert!(diff.regressions.is_empty());
    }

    #[test]
    fn artifact_number_extraction_reads_what_to_json_writes() {
        let json = "{\n  \"config\": {\"obstacles\": 2048, \"queries\": 64},\n  \
                    \"throughput\": [\n    {\"threads\": 1, \"qps\": 17.100},\n    \
                    {\"backend\": \"packed\", \"threads\": 8, \"qps\": 16.533}\n  ],\n  \
                    \"path_ladder\": []\n}\n";
        assert_eq!(json_number(json, "obstacles"), Some(2048.0));
        assert_eq!(json_number(json, "queries"), Some(64.0));
        assert_eq!(
            throughput_points(json),
            vec![
                ("paged".to_string(), 1usize, 17.1),
                ("packed".to_string(), 8usize, 16.533)
            ]
        );
        assert_eq!(json_number(json, "missing"), None);
        assert!(throughput_points("{}").is_empty());
    }
}
