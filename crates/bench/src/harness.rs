//! Minimal wall-clock micro-benchmark harness replacing `criterion`.
//!
//! The workspace builds offline, so the `micro` bench target uses this
//! `std::time::Instant`-based harness instead of the `criterion` crate.
//! The API mirrors the subset the benches use — [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`] and [`Bencher::iter`] — and prints min/median/mean
//! per-iteration times. No statistical outlier analysis is performed;
//! treat the numbers as indicative, not publication-grade.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measured sample; iteration counts
/// are calibrated so a sample takes at least this long.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Top-level harness state: configuration plus result printing.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        routine(&mut b);
        b.report(name);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (`group/function/parameter` ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `routine` against one prepared `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.label);
        self.criterion.bench_function(&full, |b| routine(b, input));
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group by function name + parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Measures a closure handed to it by the benchmark body.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: calibrates an iteration count so one sample runs
    /// at least [`TARGET_SAMPLE`], then records `sample_size` samples of
    /// mean per-iteration time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibration doubles the batch size until a batch is long enough
        // to time reliably; it also serves as warm-up.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                break;
            }
            // Jump straight near the target once we have any signal.
            let grow = if elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters = iters.saturating_mul(grow.clamp(2, 16));
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    fn report(mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| obstacle_geom::total_cmp(*a, *b));
        let min = self.samples_ns[0];
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{name:<44} min {:>10}  median {:>10}  mean {:>10}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}
