//! Reproduction harness for the evaluation section (§7) of
//! *Spatial Queries in the Presence of Obstacles* (EDBT 2004).
//!
//! Every figure of the paper (Figs. 13–22) has a generator here that
//! re-runs the corresponding experiment and prints the same series the
//! paper plots: page accesses per R-tree, CPU time, and false-hit ratios,
//! as functions of the paper's parameter grids.
//!
//! Scaling: the paper uses |O| = 131,461 obstacles and 200-query
//! workloads. The default harness scale is smaller so `cargo bench`
//! terminates quickly; query ranges are **density-normalised** (scaled by
//! `sqrt(131461 / |O|)`) so that the expected number of candidates and
//! obstacles per query — and therefore the *shape* of every curve —
//! matches the paper at any scale. Run the `repro` binary with
//! `--scale full` for the paper-exact setup.

#![warn(missing_docs)]

pub mod batch;
pub mod figures;
pub mod harness;
pub mod scale;
pub mod setup;
pub mod table;
pub mod trajectory;

pub use scale::Scale;
pub use setup::Workbench;
pub use table::Table;
