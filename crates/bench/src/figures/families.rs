//! Experiment families: the eight parameter sweeps behind Figs. 13–22.
//!
//! Each family runs one workload per grid point and aggregates the
//! paper's metrics. Two figures often share a family (e.g. Fig. 13 plots
//! I/O + CPU and Fig. 15a the false-hit ratio of the *same* OR sweep), so
//! the harness runs each family once and derives all panels from it.

use crate::setup::Workbench;
use obstacle_core::{
    closest_pairs, distance_join, EngineOptions, EntityIndex, QueryEngine, QueryStats,
};
use obstacle_datagen::parameter_grid as grid;

/// Aggregated metrics of one grid point (averaged per query for workload
/// families; totals for the single-execution join/CP families).
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// The x-axis value as printed (ratio, range fraction or k).
    pub x: String,
    /// Entity ("data") R-tree page accesses (logical fetches; see
    /// `QueryStats::entity_fetches`).
    pub entity_reads: f64,
    /// Obstacle R-tree page accesses (logical fetches).
    pub obstacle_reads: f64,
    /// CPU time in milliseconds.
    pub cpu_ms: f64,
    /// Aggregate false-hit ratio (total false hits / total results).
    pub fh_ratio: f64,
}

fn finish(x: String, agg: QueryStats, per: f64) -> SeriesPoint {
    SeriesPoint {
        x,
        entity_reads: agg.entity_fetches as f64 / per,
        obstacle_reads: agg.obstacle_fetches as f64 / per,
        cpu_ms: agg.cpu.as_secs_f64() * 1e3 / per,
        fh_ratio: if agg.results == 0 {
            0.0
        } else {
            agg.false_hits as f64 / agg.results as f64
        },
    }
}

/// OR workload over one entity dataset.
fn run_or(w: &Workbench, entities: &EntityIndex, e: f64) -> QueryStats {
    w.reset_io(&[entities]);
    let engine = QueryEngine::new(entities, &w.obstacles);
    let mut agg = QueryStats::default();
    for q in w.queries() {
        agg.accumulate(&engine.range(q, e).stats);
    }
    agg
}

/// ONN workload over one entity dataset.
fn run_onn(w: &Workbench, entities: &EntityIndex, k: usize) -> QueryStats {
    w.reset_io(&[entities]);
    let engine = QueryEngine::new(entities, &w.obstacles);
    let mut agg = QueryStats::default();
    for q in w.queries() {
        agg.accumulate(&engine.nearest(q, k).stats);
    }
    agg
}

/// Fig. 13 / Fig. 15a: OR vs |P|/|O| at e = 0.1 %.
pub fn or_by_ratio(w: &Workbench) -> Vec<SeriesPoint> {
    let e = w.range_from_fraction(grid::DEFAULT_RANGE_FRACTION);
    grid::CARDINALITY_RATIOS
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            let entities = w.entity_index(w.scale.entity_count(ratio), 10 + i as u64);
            let agg = run_or(w, &entities, e);
            finish(format!("{ratio}"), agg, w.scale.queries as f64)
        })
        .collect()
}

/// Fig. 14 / Fig. 15b: OR vs e at |P| = |O|.
pub fn or_by_range(w: &Workbench) -> Vec<SeriesPoint> {
    let entities = w.entity_index(w.scale.entity_count(1.0), 20);
    grid::RANGE_FRACTIONS
        .iter()
        .map(|&frac| {
            let agg = run_or(w, &entities, w.range_from_fraction(frac));
            finish(format!("{}%", frac * 100.0), agg, w.scale.queries as f64)
        })
        .collect()
}

/// Fig. 16 / Fig. 18a: ONN vs |P|/|O| at k = 16.
pub fn onn_by_ratio(w: &Workbench) -> Vec<SeriesPoint> {
    grid::CARDINALITY_RATIOS
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            let entities = w.entity_index(w.scale.entity_count(ratio), 30 + i as u64);
            let agg = run_onn(w, &entities, grid::DEFAULT_K);
            finish(format!("{ratio}"), agg, w.scale.queries as f64)
        })
        .collect()
}

/// Fig. 17 / Fig. 18b: ONN vs k at |P| = |O|.
pub fn onn_by_k(w: &Workbench) -> Vec<SeriesPoint> {
    let entities = w.entity_index(w.scale.entity_count(1.0), 40);
    grid::K_VALUES
        .iter()
        .map(|&k| {
            let agg = run_onn(w, &entities, k);
            finish(format!("{k}"), agg, w.scale.queries as f64)
        })
        .collect()
}

/// Fig. 19: ODJ vs |S|/|O| at e = 0.01 %, |T| = 0.1·|O|.
pub fn odj_by_ratio(w: &Workbench) -> Vec<SeriesPoint> {
    let e = w.range_from_fraction(grid::DEFAULT_JOIN_RANGE_FRACTION);
    let t = w.entity_index(w.scale.entity_count(grid::T_RATIO), 50);
    grid::JOIN_CARDINALITY_RATIOS
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            let s = w.entity_index(w.scale.entity_count(ratio), 60 + i as u64);
            w.reset_io(&[&s, &t]);
            let r = distance_join(&s, &t, &w.obstacles, e, EngineOptions::default());
            finish(format!("{ratio}"), r.stats, 1.0)
        })
        .collect()
}

/// Fig. 20: ODJ vs e at |S| = |T| = 0.1·|O|.
pub fn odj_by_range(w: &Workbench) -> Vec<SeriesPoint> {
    let s = w.entity_index(w.scale.entity_count(grid::T_RATIO), 70);
    let t = w.entity_index(w.scale.entity_count(grid::T_RATIO), 71);
    grid::JOIN_RANGE_FRACTIONS
        .iter()
        .map(|&frac| {
            w.reset_io(&[&s, &t]);
            let r = distance_join(
                &s,
                &t,
                &w.obstacles,
                w.range_from_fraction(frac),
                EngineOptions::default(),
            );
            finish(format!("{}%", frac * 100.0), r.stats, 1.0)
        })
        .collect()
}

/// Fig. 21: OCP vs |S|/|O| at k = 16, |T| = 0.1·|O|.
pub fn ocp_by_ratio(w: &Workbench) -> Vec<SeriesPoint> {
    let t = w.entity_index(w.scale.entity_count(grid::T_RATIO), 80);
    grid::JOIN_CARDINALITY_RATIOS
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            let s = w.entity_index(w.scale.entity_count(ratio), 90 + i as u64);
            w.reset_io(&[&s, &t]);
            let r = closest_pairs(
                &s,
                &t,
                &w.obstacles,
                grid::DEFAULT_K,
                EngineOptions::default(),
            );
            finish(format!("{ratio}"), r.stats, 1.0)
        })
        .collect()
}

/// Fig. 22: OCP vs k at |S| = |T| = 0.1·|O|.
pub fn ocp_by_k(w: &Workbench) -> Vec<SeriesPoint> {
    let s = w.entity_index(w.scale.entity_count(grid::T_RATIO), 100);
    let t = w.entity_index(w.scale.entity_count(grid::T_RATIO), 101);
    grid::K_VALUES
        .iter()
        .map(|&k| {
            w.reset_io(&[&s, &t]);
            let r = closest_pairs(&s, &t, &w.obstacles, k, EngineOptions::default());
            finish(format!("{k}"), r.stats, 1.0)
        })
        .collect()
}
