//! Per-figure table generation (Figs. 13–22 of the paper).

pub mod families;

use crate::setup::Workbench;
use crate::table::Table;
use families::SeriesPoint;

/// The ten figures of the paper's evaluation section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FigureId {
    Fig13,
    Fig14,
    Fig15,
    Fig16,
    Fig17,
    Fig18,
    Fig19,
    Fig20,
    Fig21,
    Fig22,
}

impl FigureId {
    /// All figures in paper order.
    pub fn all() -> [FigureId; 10] {
        use FigureId::*;
        [
            Fig13, Fig14, Fig15, Fig16, Fig17, Fig18, Fig19, Fig20, Fig21, Fig22,
        ]
    }

    /// Parses `"fig13"` … `"fig22"` (case-insensitive, `fig` optional).
    pub fn parse(s: &str) -> Option<FigureId> {
        let s = s.to_ascii_lowercase();
        let n: u32 = s.trim_start_matches("fig").parse().ok()?;
        use FigureId::*;
        Some(match n {
            13 => Fig13,
            14 => Fig14,
            15 => Fig15,
            16 => Fig16,
            17 => Fig17,
            18 => Fig18,
            19 => Fig19,
            20 => Fig20,
            21 => Fig21,
            22 => Fig22,
            _ => return None,
        })
    }
}

fn io_table(title: &str, x_label: &str, points: &[SeriesPoint]) -> Table {
    let mut t = Table::new(
        title,
        x_label,
        vec!["obstacle R-tree".into(), "data R-tree".into()],
    );
    for p in points {
        t.push(p.x.clone(), vec![p.obstacle_reads, p.entity_reads]);
    }
    t
}

fn cpu_table(title: &str, x_label: &str, points: &[SeriesPoint], in_seconds: bool) -> Table {
    let unit = if in_seconds {
        "CPU (sec)"
    } else {
        "CPU (msec)"
    };
    let mut t = Table::new(title, x_label, vec![unit.into()]);
    for p in points {
        let v = if in_seconds { p.cpu_ms / 1e3 } else { p.cpu_ms };
        t.push(p.x.clone(), vec![v]);
    }
    t
}

fn fh_table(title: &str, x_label: &str, points: &[SeriesPoint]) -> Table {
    let mut t = Table::new(title, x_label, vec!["false-hit ratio".into()]);
    for p in points {
        t.push(p.x.clone(), vec![p.fh_ratio]);
    }
    t
}

/// Generates the tables of one figure.
pub fn generate(id: FigureId, w: &Workbench) -> Vec<Table> {
    match id {
        FigureId::Fig13 => {
            let pts = families::or_by_ratio(w);
            vec![
                io_table(
                    "Fig. 13a — OR page accesses vs |P|/|O|  (e = 0.1%)",
                    "|P|/|O|",
                    &pts,
                ),
                cpu_table(
                    "Fig. 13b — OR CPU vs |P|/|O|  (e = 0.1%)",
                    "|P|/|O|",
                    &pts,
                    false,
                ),
            ]
        }
        FigureId::Fig14 => {
            let pts = families::or_by_range(w);
            vec![
                io_table("Fig. 14a — OR page accesses vs e  (|P| = |O|)", "e", &pts),
                cpu_table("Fig. 14b — OR CPU vs e  (|P| = |O|)", "e", &pts, false),
            ]
        }
        FigureId::Fig15 => {
            let by_ratio = families::or_by_ratio(w);
            let by_range = families::or_by_range(w);
            vec![
                fh_table(
                    "Fig. 15a — OR false-hit ratio vs |P|/|O|  (e = 0.1%)",
                    "|P|/|O|",
                    &by_ratio,
                ),
                fh_table(
                    "Fig. 15b — OR false-hit ratio vs e  (|P| = |O|)",
                    "e",
                    &by_range,
                ),
            ]
        }
        FigureId::Fig16 => {
            let pts = families::onn_by_ratio(w);
            vec![
                io_table(
                    "Fig. 16a — ONN page accesses vs |P|/|O|  (k = 16)",
                    "|P|/|O|",
                    &pts,
                ),
                cpu_table(
                    "Fig. 16b — ONN CPU vs |P|/|O|  (k = 16)",
                    "|P|/|O|",
                    &pts,
                    false,
                ),
            ]
        }
        FigureId::Fig17 => {
            let pts = families::onn_by_k(w);
            vec![
                io_table("Fig. 17a — ONN page accesses vs k  (|P| = |O|)", "k", &pts),
                cpu_table("Fig. 17b — ONN CPU vs k  (|P| = |O|)", "k", &pts, false),
            ]
        }
        FigureId::Fig18 => {
            let by_ratio = families::onn_by_ratio(w);
            let by_k = families::onn_by_k(w);
            vec![
                fh_table(
                    "Fig. 18a — ONN false-hit ratio vs |P|/|O|  (k = 16)",
                    "|P|/|O|",
                    &by_ratio,
                ),
                fh_table(
                    "Fig. 18b — ONN false-hit ratio vs k  (|P| = |O|)",
                    "k",
                    &by_k,
                ),
            ]
        }
        FigureId::Fig19 => {
            let pts = families::odj_by_ratio(w);
            vec![
                io_table(
                    "Fig. 19a — ODJ page accesses vs |S|/|O|  (e = 0.01%, |T| = 0.1|O|)",
                    "|S|/|O|",
                    &pts,
                ),
                cpu_table(
                    "Fig. 19b — ODJ CPU vs |S|/|O|  (e = 0.01%, |T| = 0.1|O|)",
                    "|S|/|O|",
                    &pts,
                    true,
                ),
            ]
        }
        FigureId::Fig20 => {
            let pts = families::odj_by_range(w);
            vec![
                io_table(
                    "Fig. 20a — ODJ page accesses vs e  (|S| = |T| = 0.1|O|)",
                    "e",
                    &pts,
                ),
                cpu_table(
                    "Fig. 20b — ODJ CPU vs e  (|S| = |T| = 0.1|O|)",
                    "e",
                    &pts,
                    true,
                ),
            ]
        }
        FigureId::Fig21 => {
            let pts = families::ocp_by_ratio(w);
            vec![
                io_table(
                    "Fig. 21a — OCP page accesses vs |S|/|O|  (k = 16, |T| = 0.1|O|)",
                    "|S|/|O|",
                    &pts,
                ),
                cpu_table(
                    "Fig. 21b — OCP CPU vs |S|/|O|  (k = 16, |T| = 0.1|O|)",
                    "|S|/|O|",
                    &pts,
                    true,
                ),
            ]
        }
        FigureId::Fig22 => {
            let pts = families::ocp_by_k(w);
            vec![
                io_table(
                    "Fig. 22a — OCP page accesses vs k  (|S| = |T| = 0.1|O|)",
                    "k",
                    &pts,
                ),
                cpu_table(
                    "Fig. 22b — OCP CPU vs k  (|S| = |T| = 0.1|O|)",
                    "k",
                    &pts,
                    true,
                ),
            ]
        }
    }
}

/// Generates every figure, running each experiment family exactly once.
pub fn generate_all(w: &Workbench) -> Vec<Table> {
    let or_ratio = families::or_by_ratio(w);
    let or_range = families::or_by_range(w);
    let onn_ratio = families::onn_by_ratio(w);
    let onn_k = families::onn_by_k(w);
    let odj_ratio = families::odj_by_ratio(w);
    let odj_range = families::odj_by_range(w);
    let ocp_ratio = families::ocp_by_ratio(w);
    let ocp_k = families::ocp_by_k(w);

    vec![
        io_table(
            "Fig. 13a — OR page accesses vs |P|/|O|  (e = 0.1%)",
            "|P|/|O|",
            &or_ratio,
        ),
        cpu_table(
            "Fig. 13b — OR CPU vs |P|/|O|  (e = 0.1%)",
            "|P|/|O|",
            &or_ratio,
            false,
        ),
        io_table(
            "Fig. 14a — OR page accesses vs e  (|P| = |O|)",
            "e",
            &or_range,
        ),
        cpu_table("Fig. 14b — OR CPU vs e  (|P| = |O|)", "e", &or_range, false),
        fh_table(
            "Fig. 15a — OR false-hit ratio vs |P|/|O|  (e = 0.1%)",
            "|P|/|O|",
            &or_ratio,
        ),
        fh_table(
            "Fig. 15b — OR false-hit ratio vs e  (|P| = |O|)",
            "e",
            &or_range,
        ),
        io_table(
            "Fig. 16a — ONN page accesses vs |P|/|O|  (k = 16)",
            "|P|/|O|",
            &onn_ratio,
        ),
        cpu_table(
            "Fig. 16b — ONN CPU vs |P|/|O|  (k = 16)",
            "|P|/|O|",
            &onn_ratio,
            false,
        ),
        io_table(
            "Fig. 17a — ONN page accesses vs k  (|P| = |O|)",
            "k",
            &onn_k,
        ),
        cpu_table("Fig. 17b — ONN CPU vs k  (|P| = |O|)", "k", &onn_k, false),
        fh_table(
            "Fig. 18a — ONN false-hit ratio vs |P|/|O|  (k = 16)",
            "|P|/|O|",
            &onn_ratio,
        ),
        fh_table(
            "Fig. 18b — ONN false-hit ratio vs k  (|P| = |O|)",
            "k",
            &onn_k,
        ),
        io_table(
            "Fig. 19a — ODJ page accesses vs |S|/|O|  (e = 0.01%, |T| = 0.1|O|)",
            "|S|/|O|",
            &odj_ratio,
        ),
        cpu_table(
            "Fig. 19b — ODJ CPU vs |S|/|O|  (e = 0.01%, |T| = 0.1|O|)",
            "|S|/|O|",
            &odj_ratio,
            true,
        ),
        io_table(
            "Fig. 20a — ODJ page accesses vs e  (|S| = |T| = 0.1|O|)",
            "e",
            &odj_range,
        ),
        cpu_table(
            "Fig. 20b — ODJ CPU vs e  (|S| = |T| = 0.1|O|)",
            "e",
            &odj_range,
            true,
        ),
        io_table(
            "Fig. 21a — OCP page accesses vs |S|/|O|  (k = 16, |T| = 0.1|O|)",
            "|S|/|O|",
            &ocp_ratio,
        ),
        cpu_table(
            "Fig. 21b — OCP CPU vs |S|/|O|  (k = 16, |T| = 0.1|O|)",
            "|S|/|O|",
            &ocp_ratio,
            true,
        ),
        io_table(
            "Fig. 22a — OCP page accesses vs k  (|S| = |T| = 0.1|O|)",
            "k",
            &ocp_k,
        ),
        cpu_table(
            "Fig. 22b — OCP CPU vs k  (|S| = |T| = 0.1|O|)",
            "k",
            &ocp_k,
            true,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn figure_ids_parse() {
        assert_eq!(FigureId::parse("fig13"), Some(FigureId::Fig13));
        assert_eq!(FigureId::parse("22"), Some(FigureId::Fig22));
        assert_eq!(FigureId::parse("FIG15"), Some(FigureId::Fig15));
        assert_eq!(FigureId::parse("fig12"), None);
        assert_eq!(FigureId::all().len(), 10);
    }

    #[test]
    fn tiny_or_figures_have_expected_grid() {
        let w = Workbench::new(Scale::tiny());
        let tables = generate(FigureId::Fig13, &w);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 5); // 5 cardinality ratios
        assert_eq!(tables[0].columns.len(), 2);
        // I/O counts are non-negative and finite.
        for (_, vals) in &tables[0].rows {
            for v in vals {
                assert!(v.is_finite() && *v >= 0.0);
            }
        }
    }
}
