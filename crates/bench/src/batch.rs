//! Batch-throughput measurement: workload conversion and the shared
//! runner behind the `throughput` bench and `obstacle_cli batch`.

use obstacle_core::{Query, QueryEngine, SemiJoinStrategy};
use obstacle_datagen::BatchQuery;
use std::time::{Duration, Instant};

/// Converts a datagen workload spec into an executable core query
/// (`datagen` stays independent of the query processors, so the mapping
/// lives here).
pub fn to_core_query(spec: &BatchQuery) -> Query {
    match *spec {
        BatchQuery::Range { q, e } => Query::Range { q, e },
        BatchQuery::Nearest { q, k } => Query::Nearest { q, k },
        BatchQuery::DistanceJoin { e } => Query::DistanceJoin { e },
        BatchQuery::SemiJoin => Query::SemiJoin {
            strategy: SemiJoinStrategy::PerObjectNn,
        },
        BatchQuery::ClosestPairs { k } => Query::ClosestPairs { k },
        BatchQuery::Path { from, to } => Query::Path { from, to },
    }
}

/// One measured point of a thread-scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Queries per second.
    pub qps: f64,
}

impl ThroughputPoint {
    /// Speedup of this point over a baseline (usually the 1-thread run).
    pub fn speedup_over(&self, baseline: &ThroughputPoint) -> f64 {
        baseline.elapsed.as_secs_f64() / self.elapsed.as_secs_f64()
    }
}

/// Runs `queries` once per thread count and reports throughput, plus the
/// answers of the **last** run (so callers can inspect or aggregate them
/// without paying for an extra batch execution).
///
/// When `verify` is set, every later run is checked result-for-result
/// against the first run — the determinism guarantee of
/// [`QueryEngine::run_batch`] made observable; a mismatch panics.
pub fn thread_sweep(
    engine: &QueryEngine<'_>,
    queries: &[Query],
    thread_counts: &[usize],
    verify: bool,
) -> (Vec<ThroughputPoint>, Vec<obstacle_core::Answer>) {
    let mut baseline: Option<Vec<obstacle_core::Answer>> = None;
    let mut last = Vec::new();
    let mut out = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let t0 = Instant::now();
        let (answers, _) = engine.batch(queries).threads(threads).collect();
        let elapsed = t0.elapsed();
        if verify {
            match &baseline {
                None => baseline = Some(answers.clone()),
                Some(base) => {
                    for (i, (a, b)) in answers.iter().zip(base.iter()).enumerate() {
                        assert!(a.same_results(b), "query {i} diverged at {threads} threads");
                    }
                }
            }
        }
        last = answers;
        out.push(ThroughputPoint {
            threads,
            elapsed,
            qps: queries.len() as f64 / elapsed.as_secs_f64(),
        });
    }
    (out, last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obstacle_datagen::{batch_workload, BatchMix, City, CityConfig};

    #[test]
    fn conversion_covers_every_operator() {
        let city = City::generate(CityConfig::new(60, 5));
        let specs = batch_workload(&city, 300, 11, BatchMix::default());
        let queries: Vec<Query> = specs.iter().map(to_core_query).collect();
        assert_eq!(queries.len(), specs.len());
        // Spot-check the mapping keeps parameters intact.
        for (s, q) in specs.iter().zip(queries.iter()) {
            match (s, q) {
                (BatchQuery::Range { q: a, e: x }, Query::Range { q: b, e: y }) => {
                    assert_eq!(a, b);
                    assert_eq!(x, y);
                }
                (BatchQuery::Nearest { q: a, k: x }, Query::Nearest { q: b, k: y }) => {
                    assert_eq!(a, b);
                    assert_eq!(x, y);
                }
                (BatchQuery::DistanceJoin { e: x }, Query::DistanceJoin { e: y }) => {
                    assert_eq!(x, y)
                }
                (BatchQuery::SemiJoin, Query::SemiJoin { .. }) => {}
                (BatchQuery::ClosestPairs { k: x }, Query::ClosestPairs { k: y }) => {
                    assert_eq!(x, y)
                }
                (BatchQuery::Path { from, to }, Query::Path { from: f, to: t }) => {
                    assert_eq!(from, f);
                    assert_eq!(to, t);
                }
                other => panic!("mismatched mapping {other:?}"),
            }
        }
    }
}
