//! CI entry point for the performance-trajectory artifact.
//!
//! Measures batch throughput (striped buffers + scene caches, 1/2/4/8
//! worker threads, determinism-verified) and the long-path ladder, writes
//! `BENCH_PR4.json`, and exits non-zero if any ladder rung blows its
//! wall-clock budget — the no-regression gate `ci.sh bench` enforces.
//!
//! ```sh
//! cargo run --release -p obstacle-bench --bin bench_trajectory
//! OBSTACLE_TRAJECTORY_OUT=/tmp/t.json \
//! OBSTACLE_TRAJECTORY_OBSTACLES=512 cargo run --release --bin bench_trajectory
//! ```
//!
//! Knobs (all env vars): `OBSTACLE_TRAJECTORY_OUT` (output path, default
//! `BENCH_PR4.json`), `_OBSTACLES`, `_ENTITIES`, `_QUERIES`, `_SHARDS`.

use obstacle_bench::trajectory::{run, TrajectoryConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let defaults = TrajectoryConfig::default();
    let config = TrajectoryConfig {
        obstacles: env_usize("OBSTACLE_TRAJECTORY_OBSTACLES", defaults.obstacles),
        entities: env_usize("OBSTACLE_TRAJECTORY_ENTITIES", defaults.entities),
        queries: env_usize("OBSTACLE_TRAJECTORY_QUERIES", defaults.queries),
        buffer_shards: env_usize("OBSTACLE_TRAJECTORY_SHARDS", defaults.buffer_shards),
        ..defaults
    };
    let out =
        std::env::var("OBSTACLE_TRAJECTORY_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());

    println!(
        "bench_trajectory: |O| = {}, |P| = {}, {} queries, {} buffer shard(s)",
        config.obstacles, config.entities, config.queries, config.buffer_shards
    );
    let report = run(config);
    for p in &report.throughput {
        println!(
            "  threads {:>2}: {:>8.2} s  {:>7.1} q/s  speedup {:>5.2}x  \
             hit rates P {:.1} % / O {:.1} %",
            p.threads,
            p.seconds,
            p.qps,
            p.speedup,
            100.0 * p.entity_hit_rate,
            100.0 * p.obstacle_hit_rate
        );
    }
    for r in &report.ladder {
        println!(
            "  path |O| {:>6}: {:>6.2} s (budget {:.1} s)  d = {:.6}",
            r.obstacles, r.seconds, r.budget_seconds, r.distance
        );
    }

    std::fs::write(&out, report.to_json()).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("bench_trajectory: wrote {out}");

    let violations = report.budget_violations();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("REGRESSION: {v}");
        }
        std::process::exit(1);
    }
}
