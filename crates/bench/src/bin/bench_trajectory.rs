//! CI entry point for the performance-trajectory artifact.
//!
//! Measures batch throughput (striped buffers + scene caches, 1/2/4/8
//! worker threads, determinism-verified) and the InputOrder-vs-Hilbert
//! scheduling sweep on a clustered workload — both **once per storage
//! backend** (paged vs packed A/B, every run answer-identical across
//! backends) — plus the interleaved update/query sweep (edit batches
//! through `apply_updates` alternating with point queries over one
//! long-lived scene cache, every round verified against a fresh-built
//! engine), the open-loop service saturation sweep (offered-load ladder
//! through the resident `QueryService`, p50/p90/p99 time-to-answer and
//! shed counts per backend), and the long-path ladder;
//! writes `BENCH_PR9.json`; then **diffs against the previous
//! `BENCH_*.json` artifact** and exits non-zero on a q/s regression
//! beyond tolerance, a service p99 blowout beyond its own tolerance, or
//! a ladder-budget blowout — the no-regression gates `ci.sh bench`
//! enforces.
//!
//! ```sh
//! cargo run --release -p obstacle-bench --bin bench_trajectory
//! OBSTACLE_TRAJECTORY_OUT=/tmp/t.json \
//! OBSTACLE_TRAJECTORY_OBSTACLES=512 cargo run --release --bin bench_trajectory
//! ```
//!
//! Knobs (all env vars): `OBSTACLE_TRAJECTORY_OUT` (output path, default
//! `BENCH_PR9.json`), `_OBSTACLES`, `_ENTITIES`, `_QUERIES`, `_SHARDS`,
//! `_SERVICE_QUERIES`, `_BASELINE` (previous artifact; default: the
//! highest-numbered other `BENCH_PR*.json` in the working directory),
//! `_QPS_TOLERANCE` (fractional q/s regression allowance, default 0.4 —
//! generous because the 1-core CI container is noisy), `_P99_TOLERANCE`
//! (fractional service-p99 allowance, default 1.0: fail only when tail
//! latency more than doubles — queue-wait tails swing wider than q/s).

use obstacle_bench::trajectory::{run, TrajectoryConfig};
use std::path::PathBuf;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The previous trajectory artifact to diff against: the explicitly
/// named one, else the highest-numbered `BENCH_PR<k>.json` in the
/// working directory other than the output file itself.
fn find_baseline(out: &str) -> Option<PathBuf> {
    if let Ok(explicit) = std::env::var("OBSTACLE_TRAJECTORY_BASELINE") {
        return (!explicit.is_empty()).then(|| PathBuf::from(explicit));
    }
    let out_name = PathBuf::from(out);
    let out_name = out_name.file_name()?.to_owned();
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name();
        let Some(name_str) = name.to_str() else {
            continue;
        };
        let Some(k) = name_str
            .strip_prefix("BENCH_PR")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if name == out_name {
            continue;
        }
        if best.as_ref().is_none_or(|(bk, _)| k > *bk) {
            best = Some((k, entry.path()));
        }
    }
    best.map(|(_, p)| p)
}

fn main() {
    let defaults = TrajectoryConfig::default();
    let config = TrajectoryConfig {
        obstacles: env_usize("OBSTACLE_TRAJECTORY_OBSTACLES", defaults.obstacles),
        entities: env_usize("OBSTACLE_TRAJECTORY_ENTITIES", defaults.entities),
        queries: env_usize("OBSTACLE_TRAJECTORY_QUERIES", defaults.queries),
        buffer_shards: env_usize("OBSTACLE_TRAJECTORY_SHARDS", defaults.buffer_shards),
        service_queries: env_usize(
            "OBSTACLE_TRAJECTORY_SERVICE_QUERIES",
            defaults.service_queries,
        ),
        ..defaults
    };
    let out =
        std::env::var("OBSTACLE_TRAJECTORY_OUT").unwrap_or_else(|_| "BENCH_PR9.json".to_string());
    let tolerance = std::env::var("OBSTACLE_TRAJECTORY_QPS_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.4);
    let p99_tolerance = std::env::var("OBSTACLE_TRAJECTORY_P99_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);

    println!(
        "bench_trajectory: |O| = {}, |P| = {}, {} queries, {} buffer shard(s)",
        config.obstacles, config.entities, config.queries, config.buffer_shards
    );
    let report = run(config);
    for p in &report.throughput {
        println!(
            "  [{:>6}] threads {:>2}: {:>8.2} s  {:>7.1} q/s  speedup {:>5.2}x  \
             hit rates P {:.1} % / O {:.1} %",
            p.backend,
            p.threads,
            p.seconds,
            p.qps,
            p.speedup,
            100.0 * p.entity_hit_rate,
            100.0 * p.obstacle_hit_rate
        );
    }
    for p in &report.schedules {
        println!(
            "  [{:>6}] clustered {:>11} @ {} thread(s): {:>6.2} s  {:>7.1} q/s  \
             scene reuses {:>3} / resets {:>3}  hit rates P {:.1} % / O {:.1} %",
            p.backend,
            p.schedule,
            p.threads,
            p.seconds,
            p.qps,
            p.scene_reuses,
            p.scene_resets,
            100.0 * p.entity_hit_rate,
            100.0 * p.obstacle_hit_rate
        );
    }
    for p in &report.updates {
        println!(
            "  [{:>6}] updates: {} round(s), {} edits in {:>6.3} s  queries {:>6.2} s  \
             {:>7.1} q/s  invalidations {:>3} / reuses {:>3} / resets {:>3}",
            p.backend,
            p.rounds,
            p.edits,
            p.edit_seconds,
            p.seconds,
            p.qps,
            p.scene_invalidations,
            p.scene_reuses,
            p.scene_resets
        );
    }
    for p in &report.service {
        println!(
            "  [{:>6}] service @ {:>4} load: offered {:>7.1} q/s  achieved {:>7.1} q/s  \
             answered {:>3} / shed {:>3}  p50 {:>8.2} ms  p90 {:>8.2} ms  p99 {:>8.2} ms",
            p.backend,
            p.load,
            p.offered_qps,
            p.achieved_qps,
            p.answered,
            p.shed,
            p.p50_ms,
            p.p90_ms,
            p.p99_ms
        );
    }
    for r in &report.ladder {
        println!(
            "  path |O| {:>6}: {:>6.2} s (budget {:.1} s)  d = {:.6}",
            r.obstacles, r.seconds, r.budget_seconds, r.distance
        );
    }

    std::fs::write(&out, report.to_json()).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("bench_trajectory: wrote {out}");

    let mut failed = false;

    // Trajectory history: diff against the previous artifact.
    match find_baseline(&out) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(baseline) => {
                let diff = report.diff_against_baseline(&baseline, tolerance, p99_tolerance);
                println!(
                    "bench_trajectory: baseline {} ({}comparable)",
                    path.display(),
                    if diff.comparable { "" } else { "not " }
                );
                for n in &diff.notes {
                    println!("  {n}");
                }
                for r in &diff.regressions {
                    eprintln!("REGRESSION: {r}");
                    failed = true;
                }
            }
            Err(e) => println!(
                "bench_trajectory: baseline {} unreadable: {e}",
                path.display()
            ),
        },
        None => println!("bench_trajectory: no previous BENCH_PR*.json artifact — diff skipped"),
    }

    let violations = report.budget_violations();
    for v in &violations {
        eprintln!("REGRESSION: {v}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
