//! Reproduction CLI.
//!
//! ```text
//! repro [--figure fig13|...|fig22|all] [--scale tiny|default|full]
//!       [--obstacles N] [--queries N] [--seed N] [--csv]
//! ```
//!
//! Regenerates the requested figure(s) of the paper and prints the series
//! as plain-text tables (or CSV with `--csv`).

use obstacle_bench::figures::{self, FigureId};
use obstacle_bench::{Scale, Workbench};

fn main() {
    let mut figure: Option<FigureId> = None;
    let mut all = true;
    let mut scale = Scale::default_scale();
    let mut csv = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--figure" => {
                let v = args.next().unwrap_or_else(|| usage("missing figure id"));
                if v == "all" {
                    all = true;
                    figure = None;
                } else {
                    figure =
                        Some(FigureId::parse(&v).unwrap_or_else(|| usage("unknown figure id")));
                    all = false;
                }
            }
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage("missing scale"));
                scale = Scale::by_name(&v).unwrap_or_else(|| usage("unknown scale"));
            }
            "--obstacles" => {
                scale.obstacles = parse_num(args.next(), "obstacles");
            }
            "--queries" => {
                scale.queries = parse_num(args.next(), "queries");
            }
            "--seed" => {
                scale.seed = parse_num(args.next(), "seed") as u64;
            }
            "--csv" => csv = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    eprintln!(
        "generating city: |O| = {}, {} queries/workload, seed {:#x} ...",
        scale.obstacles, scale.queries, scale.seed
    );
    let t0 = std::time::Instant::now();
    let w = Workbench::new(scale);
    eprintln!("ready in {:.1?}", t0.elapsed());

    let tables = match (all, figure) {
        (false, Some(id)) => figures::generate(id, &w),
        _ => figures::generate_all(&w),
    };
    for t in tables {
        if csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
            println!();
        } else {
            println!("{}", t.render());
        }
    }
    eprintln!("done in {:.1?}", t0.elapsed());
}

fn parse_num(v: Option<String>, what: &str) -> usize {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("bad value for --{what}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--figure fig13..fig22|all] [--scale tiny|default|full]\n\
         \x20            [--obstacles N] [--queries N] [--seed N] [--csv]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
