//! Interactive command-line front end for the obstacle-query engine.
//!
//! Cities are deterministic functions of `(--obstacles, --seed)`, so no
//! dataset files are needed — every invocation regenerates the same world
//! (bulk loading makes this near-instant below ~10⁵ obstacles).
//!
//! ```text
//! obstacle_cli info   [--obstacles N] [--seed S]
//! obstacle_cli nn     --at X,Y [--k K] [--paths]
//! obstacle_cli range  --at X,Y --e E
//! obstacle_cli path   --from X,Y --to X,Y
//! obstacle_cli join   --e E [--s N] [--t N]
//! obstacle_cli cp     [--k K] [--s N] [--t N]
//! obstacle_cli batch  [--queries N] [--threads T] [--verify] [--stream]
//!                     [--schedule input|hilbert] [--clusters N]
//! obstacle_cli update [--rounds R] [--edits N] [--queries Q] [--verify]
//! obstacle_cli serve  [--depth N] [--admission block|reject|shed]
//!                     [--generate N --rate R] [--listen HOST:PORT]
//! ```
//!
//! `--shards N` stripes each tree's LRU buffer pool across `N` locks
//! (default 1, the paper's single buffer; see `RTreeConfig::striped`).
//! `--backend packed` swaps the paged R*-tree for the packed static tree
//! (one contiguous buffer, lock-free reads; `--shards` then has no
//! effect on tree access).
//! `--schedule hilbert` claims batch queries in Hilbert order of their
//! regions (scene-cache locality), `--stream` prints answers as workers
//! finish them instead of waiting for the whole batch, and
//! `--clusters N` draws the workload around `N` hotspots (the
//! obstructed-clustering access pattern) instead of scattering it.
//!
//! `serve` starts a resident [`QueryService`]: `--threads` workers stay
//! up for the whole session, stdin lines (`nn X Y [K]`, `range X Y E`,
//! `path X1 Y1 X2 Y2`) are submitted as they arrive and answered as
//! workers finish, the queue is bounded at `--depth` with the
//! `--admission` policy deciding what happens when it fills. `--generate
//! N --rate R` replaces stdin with an open-loop Poisson arrival schedule
//! (queries fired on time whether or not earlier ones finished — the
//! saturation regime), and `--listen` additionally accepts the same line
//! protocol over blocking TCP connections until the process is killed.

use obstacle_bench::batch::{thread_sweep, to_core_query};
use obstacle_core::{
    closest_pairs, distance_join, shortest_obstructed_path, Admission, BatchOptions, Completion,
    EngineOptions, EntityIndex, ObstacleIndex, Outcome, QueryEngine, QueryService, QueryStats,
    SceneCache, Schedule, ServiceConfig, SubmitError, Update,
};
use obstacle_datagen::{
    batch_workload, clustered_batch_workload, open_loop_arrivals, sample_entities, BatchMix, City,
    CityConfig, ClusterSpec,
};
use obstacle_geom::Point;
use obstacle_rtree::sync::Mutex;
use obstacle_rtree::{Backend, RTreeConfig};
use obstacle_visibility::EdgeBuilder;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Flags shared by every subcommand — world shape, tree configuration,
/// and worker-pool sizing are parsed once here, so a new subcommand
/// (like `serve`) never grows its own copy of the parser.
struct CommonOpts {
    obstacles: usize,
    seed: u64,
    backend: Backend,
    entities: usize,
    threads: usize,
    shards: usize,
    /// `None` = flag absent. For `batch` that selects the legacy
    /// thread-sweep path (passing `--schedule`, either value, selects
    /// the scheduled single-run path, so `--schedule input` and
    /// `--schedule hilbert` produce directly comparable output); for
    /// `serve` the default is the service's Hilbert claim order.
    schedule: Option<Schedule>,
}

impl CommonOpts {
    /// Consume `flag` if it is one of the shared flags; `value` pulls
    /// the flag's argument from the command line. Returns `false` when
    /// the flag belongs to a subcommand instead.
    fn accept(&mut self, flag: &str, value: &mut dyn FnMut(&str) -> String) -> bool {
        match flag {
            "--obstacles" => {
                self.obstacles = value("--obstacles")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --obstacles"))
            }
            "--seed" => {
                self.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--backend" => {
                self.backend = Backend::parse(&value("--backend"))
                    .unwrap_or_else(|| usage("bad --backend (paged|packed)"))
            }
            "--entities" => {
                self.entities = value("--entities")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --entities"))
            }
            "--threads" => {
                self.threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --threads"))
            }
            "--shards" => {
                self.shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --shards"))
            }
            "--schedule" => {
                self.schedule = Some(match value("--schedule").as_str() {
                    "input" | "input-order" | "input_order" => Schedule::InputOrder,
                    "hilbert" => Schedule::Hilbert,
                    _ => usage("bad --schedule (input|hilbert)"),
                })
            }
            _ => return false,
        }
        true
    }
}

struct Args {
    command: String,
    common: CommonOpts,
    s_count: usize,
    t_count: usize,
    k: usize,
    e: f64,
    at: Option<Point>,
    from: Option<Point>,
    to: Option<Point>,
    paths: bool,
    queries: usize,
    verify: bool,
    stream: bool,
    clusters: usize,
    /// Edit batches of the `update` command.
    rounds: usize,
    /// Edits per batch of the `update` command.
    edits: usize,
    /// Queue depth bound of the `serve` command.
    depth: usize,
    /// What `serve` does when the queue is full.
    admission: Admission,
    /// `serve --listen HOST:PORT`: also accept the line protocol over TCP.
    listen: Option<String>,
    /// `serve --generate N`: self-drive with an open-loop workload.
    generate: usize,
    /// Offered arrival rate (queries/sec) of `serve --generate`.
    rate: f64,
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "info" => info(&args),
        "nn" => nn(&args),
        "range" => range(&args),
        "path" => path(&args),
        "join" => join(&args),
        "cp" => cp(&args),
        "batch" => batch(&args),
        "update" => update(&args),
        "serve" => serve(&args),
        other => usage(&format!("unknown command '{other}'")),
    }
}

/// Tree configuration of this invocation: the paper's cost model,
/// buffer-striped when `--shards` asks for it, on the storage backend
/// `--backend` selects (paged R*-tree or packed static tree).
fn tree_config(args: &Args) -> RTreeConfig {
    RTreeConfig::paper()
        .striped(args.common.shards)
        .with_backend(args.common.backend)
}

fn world(args: &Args) -> (City, ObstacleIndex) {
    let t0 = std::time::Instant::now();
    let city = City::generate(CityConfig::new(args.common.obstacles, args.common.seed));
    let obstacles = ObstacleIndex::bulk_load(tree_config(args), city.obstacles.clone());
    eprintln!(
        "[city: {} obstacles, seed {:#x}, built in {:.1?}]",
        city.len(),
        args.common.seed,
        t0.elapsed()
    );
    (city, obstacles)
}

fn entity_index(args: &Args, city: &City, count: usize, seed: u64) -> EntityIndex {
    EntityIndex::bulk_load(tree_config(args), sample_entities(city, count, seed))
}

fn info(args: &Args) {
    let (city, obstacles) = world(args);
    let stats = obstacles.tree().stats();
    println!("universe: {:?}", city.universe);
    println!("obstacles: {}", city.len());
    println!("total obstacle perimeter: {:.4}", city.total_perimeter());
    match obstacles.tree().backend() {
        Backend::Paged => println!(
            "obstacle R-tree (paged): height {}, {} pages, buffer {} pages",
            obstacles.tree().height(),
            obstacles.tree().pages(),
            obstacles.tree().buffer_capacity()
        ),
        Backend::Packed => println!(
            "obstacle R-tree (packed): height {}, {} nodes, single buffer (no page cache)",
            obstacles.tree().height(),
            obstacles.tree().pages(),
        ),
    }
    let cap = match obstacles.tree().backend() {
        Backend::Paged => obstacles.tree().config().capacity(),
        Backend::Packed => obstacles.tree().config().packed_node_size,
    };
    for (lvl, l) in stats.levels.iter().enumerate() {
        println!(
            "  level {lvl}: {} nodes, {} entries, occupancy {:.1}%",
            l.nodes,
            l.entries,
            100.0 * l.occupancy(cap)
        );
    }
}

fn nn(args: &Args) {
    let q = args.at.unwrap_or_else(|| usage("nn needs --at X,Y"));
    let (city, obstacles) = world(args);
    let entities = entity_index(args, &city, args.common.entities, args.common.seed + 1);
    let engine = QueryEngine::new(&entities, &obstacles);
    let r = engine.nearest(q, args.k);
    println!(
        "obstructed {}-NN of {} over {} entities:",
        args.k,
        q,
        entities.len()
    );
    for (id, d) in &r.neighbors {
        let p = entities.position(*id);
        let euclid = p.dist(q);
        print!("  entity {id:<6} at {p}  d_O = {d:.5} (d_E = {euclid:.5})");
        if args.paths {
            let path = shortest_obstructed_path(q, p, &obstacles, EdgeBuilder::RotationalSweep)
                .expect("reachable neighbour");
            print!("  corners: {}", path.points.len().saturating_sub(2));
        }
        println!();
    }
    print_stats(&r.stats);
}

fn range(args: &Args) {
    let q = args.at.unwrap_or_else(|| usage("range needs --at X,Y"));
    if args.e <= 0.0 {
        usage("range needs --e > 0");
    }
    let (city, obstacles) = world(args);
    let entities = entity_index(args, &city, args.common.entities, args.common.seed + 1);
    let engine = QueryEngine::new(&entities, &obstacles);
    let r = engine.range(q, args.e);
    println!(
        "entities within obstructed distance {} of {}: {}",
        args.e,
        q,
        r.hits.len()
    );
    for (id, d) in r.hits.iter().take(20) {
        println!("  entity {id:<6} d_O = {d:.5}");
    }
    if r.hits.len() > 20 {
        println!("  ... and {} more", r.hits.len() - 20);
    }
    print_stats(&r.stats);
}

fn path(args: &Args) {
    let from = args.from.unwrap_or_else(|| usage("path needs --from X,Y"));
    let to = args.to.unwrap_or_else(|| usage("path needs --to X,Y"));
    let (_city, obstacles) = world(args);
    let t0 = std::time::Instant::now();
    let result = shortest_obstructed_path(from, to, &obstacles, EdgeBuilder::RotationalSweep);
    let elapsed = t0.elapsed();
    match result {
        Some(p) => {
            println!(
                "shortest obstructed path {} -> {}: length {:.5} (Euclidean {:.5})",
                from,
                to,
                p.distance,
                from.dist(to)
            );
            for (i, w) in p.points.iter().enumerate() {
                println!("  {i:>3}: {w}");
            }
        }
        None => println!("unreachable (an endpoint lies inside an obstacle)"),
    }
    eprintln!("[lazy A* path query: {elapsed:.1?}]");
}

fn join(args: &Args) {
    if args.e <= 0.0 {
        usage("join needs --e > 0");
    }
    let (city, obstacles) = world(args);
    let s = entity_index(args, &city, args.s_count, args.common.seed + 2);
    let t = entity_index(args, &city, args.t_count, args.common.seed + 3);
    let r = distance_join(&s, &t, &obstacles, args.e, EngineOptions::default());
    println!(
        "obstructed e-distance join (e = {}): {} pairs from |S| = {}, |T| = {}",
        args.e,
        r.pairs.len(),
        s.len(),
        t.len()
    );
    for (a, b, d) in r.pairs.iter().take(15) {
        println!("  s{a} <-> t{b}  d_O = {d:.5}");
    }
    if r.pairs.len() > 15 {
        println!("  ... and {} more", r.pairs.len() - 15);
    }
    print_stats(&r.stats);
}

fn cp(args: &Args) {
    let (city, obstacles) = world(args);
    let s = entity_index(args, &city, args.s_count, args.common.seed + 2);
    let t = entity_index(args, &city, args.t_count, args.common.seed + 3);
    let r = closest_pairs(&s, &t, &obstacles, args.k, EngineOptions::default());
    println!(
        "obstructed {}-closest pairs over |S| = {}, |T| = {}:",
        args.k,
        s.len(),
        t.len()
    );
    for (a, b, d) in &r.pairs {
        println!("  s{a} <-> t{b}  d_O = {d:.5}");
    }
    print_stats(&r.stats);
}

fn batch(args: &Args) {
    let (city, obstacles) = world(args);
    let entities = entity_index(args, &city, args.common.entities, args.common.seed + 1);
    let engine = QueryEngine::new(&entities, &obstacles);
    let specs = if args.clusters > 0 {
        clustered_batch_workload(
            &city,
            args.queries,
            args.common.seed + 4,
            BatchMix::default(),
            ClusterSpec {
                clusters: args.clusters,
                spread: 0.005,
            },
        )
    } else {
        batch_workload(
            &city,
            args.queries,
            args.common.seed + 4,
            BatchMix::default(),
        )
    };
    let queries: Vec<obstacle_core::Query> = specs.iter().map(to_core_query).collect();
    if args.stream {
        return batch_streaming(args, &engine, &queries);
    }
    if let Some(schedule) = args.common.schedule {
        return batch_scheduled(args, schedule, &engine, &queries);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Verification needs a second (sequential) run to compare against;
    // with one worker thread the run *is* sequential, so there is
    // nothing to verify and the flag is reported as inapplicable.
    let verifying = args.verify && args.common.threads > 1;
    if args.verify && !verifying {
        eprintln!("[--verify: nothing to verify with 1 worker thread — the run is sequential]");
    }
    println!(
        "batch of {} mixed queries over {} entities, {} worker thread(s) \
         ({} core(s) available){}:",
        queries.len(),
        entities.len(),
        args.common.threads,
        cores,
        if verifying {
            ", verifying against sequential"
        } else {
            ""
        }
    );
    let counts: Vec<usize> = if verifying {
        vec![1, args.common.threads]
    } else {
        vec![args.common.threads]
    };
    let (points, answers) = thread_sweep(&engine, &queries, &counts, verifying);
    for p in &points {
        println!(
            "  threads {:>2}: {:>10.2?} total, {:>8.1} queries/sec",
            p.threads, p.elapsed, p.qps
        );
    }
    if let [seq, par] = points.as_slice() {
        println!(
            "  speedup {:.2}x; results verified identical to sequential",
            par.speedup_over(seq)
        );
    }
    // Aggregate per-query stats of the last run (attributed via
    // IoSnapshot windows; the answers come from thread_sweep — no extra
    // batch execution).
    let mut agg = QueryStats::default();
    for a in &answers {
        if let Some(s) = a.stats() {
            agg.accumulate(s);
        }
    }
    eprintln!(
        "[aggregate cost: {} entity + {} obstacle page fetches, \
         {} candidates, {} results]",
        agg.entity_fetches, agg.obstacle_fetches, agg.candidates, agg.results
    );
}

/// `batch --stream`: answers are consumed while workers still run; the
/// interesting numbers are time-to-first-answer vs total wall clock and
/// the scene-cache economics of the chosen schedule.
fn batch_streaming(args: &Args, engine: &QueryEngine<'_>, queries: &[obstacle_core::Query]) {
    let schedule = args.common.schedule.unwrap_or_default();
    println!(
        "streaming batch of {} queries, {} worker thread(s), {} schedule:",
        queries.len(),
        args.common.threads,
        schedule_name(schedule)
    );
    let options = BatchOptions::new(args.common.threads).schedule(schedule);
    let progress_every = (queries.len() / 8).max(1);
    let t0 = std::time::Instant::now();
    let mut first = None;
    let mut agg = QueryStats::default();
    let ((count, results), stats) = engine.batch(queries).options(options).stream(|stream| {
        let mut count = 0usize;
        let mut results = 0usize;
        for (i, answer) in stream {
            count += 1;
            results += answer.result_count();
            if let Some(s) = answer.stats() {
                agg.accumulate(s);
            }
            if count == 1 {
                first = Some(t0.elapsed());
            }
            if count.is_multiple_of(progress_every) || count == queries.len() {
                println!(
                    "  [{:>6.2?}] {:>4}/{} answers (latest: query {} with {} result rows)",
                    t0.elapsed(),
                    count,
                    queries.len(),
                    i,
                    answer.result_count()
                );
            }
        }
        (count, results)
    });
    let elapsed = t0.elapsed();
    println!(
        "  {} answers, {} result rows in {:.2?} ({:.1} queries/sec); first answer after {:.2?}",
        count,
        results,
        elapsed,
        count as f64 / elapsed.as_secs_f64(),
        first.unwrap_or(elapsed)
    );
    println!(
        "  scene caches: {} reuse(s), {} reset(s) across {} worker(s)",
        stats.scene_reuses, stats.scene_resets, stats.workers
    );
    eprintln!(
        "[aggregate cost: {} entity + {} obstacle page fetches, \
         {} candidates, {} results]",
        agg.entity_fetches, agg.obstacle_fetches, agg.candidates, agg.results
    );
    if args.verify {
        let (sequential, _) = engine.batch(queries).threads(1).collect();
        let (streamed, _) = engine.batch(queries).options(options).stream(|stream| {
            let mut v: Vec<(usize, obstacle_core::Answer)> = stream.collect();
            v.sort_by_key(|(i, _)| *i);
            v
        });
        for (i, (idx, a)) in streamed.iter().enumerate() {
            assert_eq!(i, *idx);
            assert!(
                a.same_results(&sequential[i]),
                "streamed query {i} diverged from sequential"
            );
        }
        println!("  verified: streamed answers identical to the sequential loop");
    }
}

/// `batch --schedule <input|hilbert>` (collected): one scheduled run
/// with scene stats — the same output shape for both schedules, so the
/// two invocations compare directly — optionally verified against the
/// sequential input-order loop.
fn batch_scheduled(
    args: &Args,
    schedule: Schedule,
    engine: &QueryEngine<'_>,
    queries: &[obstacle_core::Query],
) {
    println!(
        "batch of {} queries, {} worker thread(s), {} schedule:",
        queries.len(),
        args.common.threads,
        schedule_name(schedule)
    );
    let options = BatchOptions::new(args.common.threads).schedule(schedule);
    let t0 = std::time::Instant::now();
    let (answers, stats) = engine.batch(queries).options(options).collect();
    let elapsed = t0.elapsed();
    println!(
        "  {:>10.2?} total, {:>8.1} queries/sec; scene caches: {} reuse(s), {} reset(s)",
        elapsed,
        queries.len() as f64 / elapsed.as_secs_f64(),
        stats.scene_reuses,
        stats.scene_resets
    );
    if args.verify {
        let (sequential, _) = engine.batch(queries).threads(1).collect();
        for (i, (a, s)) in answers.iter().zip(sequential.iter()).enumerate() {
            assert!(
                a.same_results(s),
                "scheduled query {i} diverged from sequential"
            );
        }
        println!("  verified: scheduled answers identical to the sequential loop");
    }
    let mut agg = QueryStats::default();
    for a in &answers {
        if let Some(s) = a.stats() {
            agg.accumulate(s);
        }
    }
    eprintln!(
        "[aggregate cost: {} entity + {} obstacle page fetches, \
         {} candidates, {} results]",
        agg.entity_fetches, agg.obstacle_fetches, agg.candidates, agg.results
    );
}

/// `update`: interleaves deterministic edit batches with probe queries
/// over one scene cache that survives every edit — the staleness
/// scenario epoch validation exists for, live. Each round re-opens the
/// obstacles retired the round before (so the set stays disjoint, as
/// the paper assumes), retires a spread of live obstacles, churns a few
/// entities, then runs the probes and prints the epochs, edit timings,
/// and the cache's invalidation economics. `--verify` re-answers every
/// probe on a fresh scene and asserts identity — the check that fails
/// if a stale scene ever survives an edit.
fn update(args: &Args) {
    let (city, mut obstacles) = world(args);
    let mut entities = entity_index(args, &city, args.common.entities, args.common.seed + 1);
    let quarter = (args.edits / 4).max(1);
    let extra = sample_entities(&city, args.rounds * quarter, args.common.seed + 5);
    let specs = batch_workload(
        &city,
        args.queries,
        args.common.seed + 4,
        BatchMix::point_queries(),
    );
    let queries: Vec<obstacle_core::Query> = specs.iter().map(to_core_query).collect();
    let mut cache = SceneCache::new(EngineOptions::default());
    let mut retired: Vec<obstacle_geom::Polygon> = Vec::new();
    println!(
        "{} round(s) of ~{} edits, each followed by {} probe queries \
         (one scene cache across all rounds):",
        args.rounds,
        args.edits,
        queries.len()
    );
    for round in 0..args.rounds {
        let mut batch: Vec<Update> = retired.drain(..).map(Update::InsertObstacle).collect();
        let live_obs: Vec<u64> = obstacles.live_polygons().map(|(id, _)| id).collect();
        let stride = (live_obs.len() / quarter).max(1);
        for i in 0..quarter.min(live_obs.len()) {
            let id = live_obs[i * stride];
            retired.push(obstacles.polygon(id).clone());
            batch.push(Update::DeleteObstacle(id));
        }
        let live_ent: Vec<u64> = entities.live_points().map(|(id, _)| id).collect();
        let estride = (live_ent.len() / quarter).max(1);
        for i in 0..quarter.min(live_ent.len()) {
            batch.push(Update::DeleteEntity(live_ent[i * estride]));
        }
        for p in &extra[round * quarter..(round + 1) * quarter] {
            batch.push(Update::InsertEntity(*p));
        }
        let edits = batch.len();
        let t0 = std::time::Instant::now();
        let stats = QueryEngine::apply_updates(&mut entities, &mut obstacles, batch);
        let edit_elapsed = t0.elapsed();
        println!(
            "  round {round}: {edits} edit(s) in {edit_elapsed:.1?} — obstacles +{}/-{}, \
             entities +{}/-{} (epochs: O {}, P {})",
            stats.inserted_obstacles.len(),
            stats.deleted_obstacles,
            stats.inserted_entities.len(),
            stats.deleted_entities,
            stats.obstacle_epoch,
            stats.entity_epoch
        );
        let engine = QueryEngine::new(&entities, &obstacles);
        let t0 = std::time::Instant::now();
        let answers: Vec<obstacle_core::Answer> = queries
            .iter()
            .map(|q| engine.execute_with(q, &mut cache))
            .collect();
        let q_elapsed = t0.elapsed();
        println!(
            "    {} queries in {:.1?} ({:.1} queries/sec); scene cache: \
             {} invalidation(s), {} reuse(s), {} reset(s)",
            answers.len(),
            q_elapsed,
            answers.len() as f64 / q_elapsed.as_secs_f64(),
            cache.invalidations(),
            cache.reuses(),
            cache.resets()
        );
        if args.verify {
            for (i, (q, a)) in queries.iter().zip(&answers).enumerate() {
                assert!(
                    engine.execute(q).same_results(a),
                    "query {i} went stale in round {round}"
                );
            }
            println!("    verified: every answer identical to a fresh-scene execution");
        }
    }
}

/// `serve`: stand up a resident [`QueryService`] over the generated
/// world and feed it from stdin, an open-loop generator, or TCP
/// connections. The worker pool, the bounded queue, and the admission
/// policy all come from the service — this function is only a client.
fn serve(args: &Args) {
    let (city, obstacles) = world(args);
    let entities = entity_index(args, &city, args.common.entities, args.common.seed + 1);
    let schedule = args.common.schedule.unwrap_or(Schedule::Hilbert);
    let cfg = ServiceConfig::default()
        .workers(args.common.threads)
        .queue_depth(args.depth)
        .admission(args.admission)
        .schedule(schedule);
    eprintln!(
        "[serve: {} worker(s), queue depth {}, {} admission, {} claim order]",
        args.common.threads,
        args.depth,
        admission_name(args.admission),
        schedule_name(schedule)
    );
    let run = QueryService::run(entities, obstacles, EngineOptions::default(), cfg, |svc| {
        if let Some(addr) = &args.listen {
            serve_tcp(svc, addr);
        } else if args.generate > 0 {
            serve_generated(args, &city, svc);
        } else {
            serve_stdin(svc);
        }
    });
    let stats = &run.stats;
    println!(
        "service: {} submitted, {} answered, {} shed, {} rejected, {} cancelled",
        stats.submitted, stats.answered, stats.shed, stats.rejected, stats.cancelled
    );
    println!(
        "latency: p50 {:.2?}  p90 {:.2?}  p99 {:.2?}  max {:.2?} over {} answer(s)",
        stats.latency.p50(),
        stats.latency.p90(),
        stats.latency.p99(),
        stats.latency.max(),
        stats.latency.count()
    );
    eprintln!(
        "[scene caches: {} reuse(s), {} reset(s), {} invalidation(s)]",
        stats.scene_reuses, stats.scene_resets, stats.scene_invalidations
    );
}

/// Read the line protocol from stdin, submitting as lines arrive and
/// printing completions as workers produce them; at EOF, drain what is
/// still in flight. One completion comes back per admitted submission
/// (answered or shed), so the drain loop counts instead of guessing.
fn serve_stdin(svc: &QueryService<'_>) {
    let stdin = std::io::stdin();
    let mut submitted = 0u64;
    let mut done = 0u64;
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_query_line(line) {
            Ok(q) => match svc.submit(q) {
                Ok(ticket) => {
                    submitted += 1;
                    println!("#{} queued: {line}", ticket.detach());
                }
                Err(e) => println!("!not admitted: {e}"),
            },
            Err(msg) => println!("!parse error: {msg} (in '{line}')"),
        }
        while let Some(c) = svc.try_recv() {
            done += 1;
            print_completion(&c);
        }
    }
    drain(svc, submitted, &mut done);
}

/// `serve --generate N --rate R`: submit a deterministic point-query
/// workload on an open-loop Poisson schedule — arrivals fire on time
/// whether or not earlier queries finished, so offered load above the
/// service rate actually queues (and sheds/rejects/blocks, per the
/// admission policy) instead of silently throttling the client.
fn serve_generated(args: &Args, city: &City, svc: &QueryService<'_>) {
    let specs = batch_workload(
        city,
        args.generate,
        args.common.seed + 4,
        BatchMix::point_queries(),
    );
    let queries: Vec<obstacle_core::Query> = specs.iter().map(to_core_query).collect();
    let arrivals = open_loop_arrivals(args.rate, queries.len(), args.common.seed + 6);
    println!(
        "open-loop: {} queries offered at {:.1}/sec (schedule spans {:.2?})",
        queries.len(),
        args.rate,
        arrivals.last().copied().unwrap_or_default()
    );
    let mut submitted = 0u64;
    let mut rejected = 0u64;
    let mut done = 0u64;
    let t0 = std::time::Instant::now();
    for (q, at) in queries.iter().zip(&arrivals) {
        // Wait out the gap to this arrival instant, consuming
        // completions while we wait instead of busy-spinning.
        loop {
            let now = t0.elapsed();
            if now >= *at {
                break;
            }
            let patience = (*at - now).min(Duration::from_millis(5));
            if let Some(c) = svc.recv_timeout(patience) {
                done += 1;
                print_completion(&c);
            }
        }
        match svc.submit(*q) {
            Ok(ticket) => {
                submitted += 1;
                ticket.detach();
            }
            Err(SubmitError::Rejected) => rejected += 1,
            Err(e) => {
                println!("!not admitted: {e}");
                break;
            }
        }
    }
    drain(svc, submitted, &mut done);
    let elapsed = t0.elapsed();
    println!(
        "offered {:.1}/sec for {:.2?}: {} admitted, {} rejected at the gate, \
         {:.1} completions/sec end to end",
        args.rate,
        elapsed,
        submitted,
        rejected,
        done as f64 / elapsed.as_secs_f64()
    );
}

/// `serve --listen HOST:PORT`: blocking TCP front end speaking the same
/// line protocol, one reader thread per connection plus one dispatcher
/// routing completions back to the socket that submitted them. Serves
/// until the process is killed (the accept loop never returns).
fn serve_tcp(svc: &QueryService<'_>, addr: &str) {
    let listener = TcpListener::bind(addr).unwrap_or_else(|e| {
        eprintln!("error: cannot listen on {addr}: {e}");
        std::process::exit(2);
    });
    eprintln!("[listening on {addr}; line protocol: nn X Y [K] | range X Y E | path X1 Y1 X2 Y2]");
    let routes: Mutex<HashMap<u64, TcpStream>> = Mutex::new(HashMap::new());
    std::thread::scope(|s| {
        s.spawn(|| loop {
            if let Some(c) = svc.recv_timeout(Duration::from_millis(200)) {
                let target = routes.lock().remove(&c.id);
                match target {
                    Some(mut stream) => {
                        let _ = writeln!(stream, "{}", completion_line(&c));
                    }
                    None => print_completion(&c),
                }
            }
        });
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let routes = &routes;
            s.spawn(move || {
                let Ok(reader) = stream.try_clone() else {
                    return;
                };
                let mut reply = stream;
                for line in BufReader::new(reader).lines() {
                    let Ok(line) = line else { break };
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    match parse_query_line(line) {
                        Ok(q) => {
                            // The routes lock is held across submit so the
                            // dispatcher cannot look up a completion before
                            // its reply route is registered — a worker can
                            // answer a cheap query faster than two more
                            // statements run here, and an unrouted answer
                            // would fall back to the server console. Only
                            // reader threads take routes before the queue
                            // lock inside submit; nothing orders them the
                            // other way round.
                            let mut guard = routes.lock();
                            let submitted = svc.submit(q);
                            match submitted {
                                Ok(ticket) => {
                                    let id = ticket.detach();
                                    if let Ok(route) = reply.try_clone() {
                                        guard.insert(id, route);
                                    }
                                    drop(guard);
                                    let _ = writeln!(reply, "#{id} queued");
                                }
                                Err(e) => {
                                    drop(guard);
                                    let _ = writeln!(reply, "!not admitted: {e}");
                                }
                            }
                        }
                        Err(msg) => {
                            let _ = writeln!(reply, "!parse error: {msg}");
                        }
                    }
                }
            });
        }
    });
}

/// Collect the remaining in-flight completions after the input source
/// is exhausted. Bounded patience: a worker answering a pathological
/// query still gets minutes, but a lost completion cannot hang the CLI.
fn drain(svc: &QueryService<'_>, submitted: u64, done: &mut u64) {
    let t0 = std::time::Instant::now();
    while *done < submitted && t0.elapsed() < Duration::from_secs(300) {
        if let Some(c) = svc.recv_timeout(Duration::from_millis(200)) {
            *done += 1;
            print_completion(&c);
        }
    }
    if *done < submitted {
        eprintln!(
            "[drain gave up: {} of {submitted} completions arrived]",
            *done
        );
    }
}

/// One line of the `serve` protocol: `nn X Y [K]`, `range X Y E`, or
/// `path X1 Y1 X2 Y2` (whitespace-separated, `#` starts a comment).
fn parse_query_line(line: &str) -> Result<obstacle_core::Query, String> {
    let mut parts = line.split_whitespace();
    let head = parts.next().unwrap_or_default();
    let mut num = |what: &str| -> Result<f64, String> {
        parts
            .next()
            .ok_or_else(|| format!("missing {what}"))?
            .parse()
            .map_err(|_| format!("bad {what}"))
    };
    match head {
        "nn" => {
            let (x, y) = (num("x")?, num("y")?);
            let k = num("k").unwrap_or(1.0) as usize;
            Ok(obstacle_core::Query::Nearest {
                q: Point::new(x, y),
                k: k.max(1),
            })
        }
        "range" => Ok(obstacle_core::Query::Range {
            q: Point::new(num("x")?, num("y")?),
            e: num("e")?,
        }),
        "path" => Ok(obstacle_core::Query::Path {
            from: Point::new(num("x1")?, num("y1")?),
            to: Point::new(num("x2")?, num("y2")?),
        }),
        other => Err(format!("unknown query '{other}' (nn|range|path)")),
    }
}

fn print_completion(c: &Completion) {
    println!("{}", completion_line(c));
}

fn completion_line(c: &Completion) -> String {
    match &c.outcome {
        Outcome::Answered { answer, .. } => format!(
            "#{} answered in {:.2?}: {} result row(s)",
            c.id,
            c.latency,
            answer.result_count()
        ),
        Outcome::Shed => format!("#{} shed after {:.2?} (queue full)", c.id, c.latency),
        Outcome::Cancelled => format!("#{} cancelled", c.id),
    }
}

fn admission_name(a: Admission) -> &'static str {
    match a {
        Admission::Block => "block",
        Admission::Reject => "reject",
        Admission::ShedOldest => "shed-oldest",
    }
}

fn schedule_name(s: Schedule) -> &'static str {
    match s {
        Schedule::InputOrder => "input-order",
        Schedule::Hilbert => "hilbert",
    }
}

fn print_stats(stats: &obstacle_core::QueryStats) {
    eprintln!(
        "[cost: {} entity + {} obstacle page fetches ({} + {} buffer misses), \
         {} candidates, {} false hits, {:.2?} CPU]",
        stats.entity_fetches,
        stats.obstacle_fetches,
        stats.entity_reads,
        stats.obstacle_reads,
        stats.candidates,
        stats.false_hits,
        stats.cpu
    );
}

fn parse_point(s: &str) -> Option<Point> {
    let (x, y) = s.split_once(',')?;
    Some(Point::new(x.trim().parse().ok()?, y.trim().parse().ok()?))
}

fn parse_args() -> Args {
    let mut out = Args {
        command: String::new(),
        common: CommonOpts {
            obstacles: 16_384,
            seed: 0xC17,
            backend: Backend::Paged,
            entities: 4_096,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shards: 1,
            schedule: None,
        },
        s_count: 2_048,
        t_count: 2_048,
        k: 5,
        e: 0.0,
        at: None,
        from: None,
        to: None,
        paths: false,
        queries: 128,
        verify: false,
        stream: false,
        clusters: 0,
        rounds: 4,
        edits: 32,
        depth: 64,
        admission: Admission::Block,
        listen: None,
        generate: 0,
        rate: 50.0,
    };
    let mut argv = std::env::args().skip(1);
    out.command = argv.next().unwrap_or_else(|| usage("missing command"));
    if out.command == "--help" || out.command == "-h" {
        usage("");
    }
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| -> String {
            argv.next()
                .unwrap_or_else(|| usage(&format!("missing value for {what}")))
        };
        if out.common.accept(flag.as_str(), &mut value) {
            continue;
        }
        match flag.as_str() {
            "--s" => out.s_count = value("--s").parse().unwrap_or_else(|_| usage("bad --s")),
            "--t" => out.t_count = value("--t").parse().unwrap_or_else(|_| usage("bad --t")),
            "--k" => out.k = value("--k").parse().unwrap_or_else(|_| usage("bad --k")),
            "--e" => out.e = value("--e").parse().unwrap_or_else(|_| usage("bad --e")),
            "--at" => {
                out.at = Some(parse_point(&value("--at")).unwrap_or_else(|| usage("bad --at")))
            }
            "--from" => {
                out.from =
                    Some(parse_point(&value("--from")).unwrap_or_else(|| usage("bad --from")))
            }
            "--to" => {
                out.to = Some(parse_point(&value("--to")).unwrap_or_else(|| usage("bad --to")))
            }
            "--paths" => out.paths = true,
            "--queries" => {
                out.queries = value("--queries")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --queries"))
            }
            "--verify" => out.verify = true,
            "--stream" => out.stream = true,
            "--clusters" => {
                out.clusters = value("--clusters")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --clusters"))
            }
            "--rounds" => {
                out.rounds = value("--rounds")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --rounds"))
            }
            "--edits" => {
                out.edits = value("--edits")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --edits"))
            }
            "--depth" => {
                out.depth = value("--depth")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --depth"))
            }
            "--admission" => {
                out.admission = match value("--admission").as_str() {
                    "block" => Admission::Block,
                    "reject" => Admission::Reject,
                    "shed" | "shed-oldest" | "shed_oldest" => Admission::ShedOldest,
                    _ => usage("bad --admission (block|reject|shed)"),
                }
            }
            "--listen" => out.listen = Some(value("--listen")),
            "--generate" => {
                out.generate = value("--generate")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --generate"))
            }
            "--rate" => {
                out.rate = value("--rate")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --rate"))
            }
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    out
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: obstacle_cli <command> [flags]\n\
         commands:\n\
         \x20 info                         city + index statistics\n\
         \x20 nn    --at X,Y [--k K] [--paths]\n\
         \x20 range --at X,Y --e E\n\
         \x20 path  --from X,Y --to X,Y\n\
         \x20 join  --e E [--s N] [--t N]\n\
         \x20 cp    [--k K] [--s N] [--t N]\n\
         \x20 batch [--queries N] [--threads T] [--verify] [--stream]\n\
         \x20       [--schedule input|hilbert] [--clusters N]\n\
         \x20 update [--rounds R] [--edits N] [--queries Q] [--verify]\n\
         \x20       (interleaves edit batches with probe queries over one\n\
         \x20       long-lived scene cache; --verify checks every answer\n\
         \x20       against a fresh-scene execution)\n\
         \x20 serve [--depth N (64)] [--admission block|reject|shed]\n\
         \x20       [--generate N --rate R] [--listen HOST:PORT]\n\
         \x20       (resident query service, --threads workers; reads\n\
         \x20       'nn X Y [K]' | 'range X Y E' | 'path X1 Y1 X2 Y2'\n\
         \x20       lines from stdin, or self-drives an open-loop Poisson\n\
         \x20       workload with --generate/--rate; prints p50/p90/p99\n\
         \x20       time-to-answer at exit)\n\
         common flags: --obstacles N (16384) --seed S --entities N (4096)\n\
         \x20              --threads T --schedule input|hilbert\n\
         \x20              --shards N (1: buffer-pool lock stripes per tree)\n\
         \x20              --backend paged|packed (paged: the R*-tree over\n\
         \x20              simulated disk pages; packed: the static\n\
         \x20              single-buffer tree, lock-free reads)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
