//! Regenerates every figure of the paper's evaluation (Figs. 13–22).
//!
//! Runs at the scale selected by `OBSTACLE_SCALE` (tiny / default / full;
//! default: `default`). Invoked by `cargo bench -p obstacle-bench --bench
//! figures`; for the paper-exact scale use the `repro` binary.

use obstacle_bench::{figures, Scale, Workbench};

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Obstacle query reproduction: all figures ==\n\
         scale: |O| = {}, {} queries/workload, range normalisation x{:.2}\n",
        scale.obstacles,
        scale.queries,
        scale.range_scale()
    );
    let t0 = std::time::Instant::now();
    let w = Workbench::new(scale);
    println!(
        "city generated and indexed in {:.1?} ({} obstacle-tree pages, buffer {} pages)\n",
        t0.elapsed(),
        w.obstacles.tree().pages(),
        w.obstacles.tree().buffer_capacity()
    );
    for table in figures::generate_all(&w) {
        println!("{}", table.render());
    }
    println!("total: {:.1?}", t0.elapsed());
}
