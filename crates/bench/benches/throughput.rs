//! Batch query throughput vs. worker-thread count.
//!
//! Builds the benchmark city (default |O| = 16384, seed 0xC17 — the same
//! world as `obstacle_cli`), a 4096-entity dataset, and a deterministic
//! mixed point-query workload, then executes the identical batch at
//! 1..=8 threads through [`QueryEngine::run_batch`], verifying that every
//! thread count returns bit-identical results. Reported: wall-clock,
//! queries/sec, and speedup over the 1-thread run.
//!
//! Run in release mode — the numbers are meaningless otherwise:
//!
//! ```sh
//! cargo bench --bench throughput
//! OBSTACLE_BATCH_OBSTACLES=2048 OBSTACLE_BATCH_QUERIES=64 cargo bench --bench throughput
//! ```
//!
//! On machines pinned to a single core the sweep degenerates to parity —
//! the determinism verification still runs; the scaling claim is only
//! observable with real hardware parallelism (the harness prints the
//! detected core count so logs are interpretable).

use obstacle_bench::batch::{thread_sweep, to_core_query};
use obstacle_core::{EntityIndex, ObstacleIndex, Query, QueryEngine};
use obstacle_datagen::{batch_workload, sample_entities, BatchMix, City, CityConfig};
use obstacle_rtree::RTreeConfig;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let obstacle_count = env_usize("OBSTACLE_BATCH_OBSTACLES", 16_384);
    let entity_count = env_usize("OBSTACLE_BATCH_ENTITIES", 4_096);
    let query_count = env_usize("OBSTACLE_BATCH_QUERIES", 256);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let city = City::generate(CityConfig::new(obstacle_count, 0xC17));
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::paper(), city.obstacles.clone());
    let entities = EntityIndex::bulk_load(
        RTreeConfig::paper(),
        sample_entities(&city, entity_count, 0xC18),
    );
    let engine = QueryEngine::new(&entities, &obstacles);
    let queries: Vec<Query> = batch_workload(&city, query_count, 0xC19, BatchMix::point_queries())
        .iter()
        .map(to_core_query)
        .collect();

    println!(
        "batch throughput: |O| = {obstacle_count}, |P| = {entity_count}, \
         {query_count} mixed point queries, {cores} core(s) available"
    );

    // Warm-up: populate LRU buffers and lazy-scene-independent caches so
    // the 1-thread baseline is not penalised by cold buffers.
    let _ = engine
        .batch(&queries[..queries.len().min(16)])
        .threads(1)
        .collect();

    let counts = [1usize, 2, 4, 8];
    let (points, _answers) = thread_sweep(&engine, &queries, &counts, true);
    let base = points[0];
    for p in &points {
        println!(
            "  threads {:>2}: {:>10.2?}  {:>8.1} q/s  speedup {:>5.2}x",
            p.threads,
            p.elapsed,
            p.qps,
            p.speedup_over(&base)
        );
    }
    println!("  (all thread counts verified result-identical to sequential)");
}
