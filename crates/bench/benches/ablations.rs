//! Ablation benchmarks for the design choices called out in DESIGN.md §6.
//!
//! Each ablation toggles exactly one knob of the paper's design and
//! reports the cost difference on the same workload (results are verified
//! identical — the knobs trade cost, not correctness):
//!
//! 1. ODJ Hilbert seed ordering on/off — obstacle-buffer locality (§5);
//! 2. ODJ seed-side heuristic on/off — fewer visibility graphs (§5);
//! 3. ONN visibility-graph reuse on/off — add/delete-entity vs rebuild (§4);
//! 4. ONN shrinking threshold on/off — candidate pruning (§4);
//! 5. sweep vs naive edge construction for OR (§2.3/[SS84]);
//! 6. R* insertion vs STR vs Hilbert bulk loading — tree quality;
//! 7. iOCP vs OCP — cost of incrementality (§6);
//! 8. ellipse vs disk search regions in Fig. 8 (extension);
//! 9. tangent visibility-graph filter [PV95] for OR (extension).

use obstacle_bench::{Scale, Workbench};
use obstacle_core::{
    closest_pairs, distance_join, incremental_closest_pairs, EngineOptions, EntityIndex,
    QueryEngine,
};
use obstacle_datagen::parameter_grid as grid;
use obstacle_rtree::{Item, RTree, RTreeConfig};
use obstacle_visibility::EdgeBuilder;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Ablations (|O| = {}, {} queries) ==\n",
        scale.obstacles, scale.queries
    );
    let w = Workbench::new(scale);

    odj_hilbert_and_seed_side(&w);
    onn_reuse_and_threshold(&w);
    or_sweep_vs_naive(&w);
    loading_strategies(&w);
    iocp_vs_ocp(&w);
    ellipse_vs_disk(&w);
    tangent_filter(&w);
}

fn ellipse_vs_disk(w: &Workbench) {
    let entities = w.entity_index(w.scale.entity_count(0.1), 208);
    let k = grid::DEFAULT_K;
    println!(
        "-- Fig. 8 search region: disk around q (paper) vs p/q ellipse (k = {k}, sparse |P|) --"
    );
    println!(
        "  {:<34}{:>14}{:>14}{:>12}",
        "region", "obst. reads", "graph nodes", "CPU (ms)"
    );
    let mut reference: Option<Vec<u64>> = None;
    for (name, ellipse) in [("disk (paper)", false), ("ellipse", true)] {
        let opts = EngineOptions {
            ellipse_pruning: ellipse,
            ..Default::default()
        };
        w.reset_io(&[&entities]);
        let engine = QueryEngine::with_options(&entities, &w.obstacles, opts);
        let (mut cpu, mut peak, mut reads) = (0.0f64, 0usize, 0u64);
        let mut ids: Vec<u64> = Vec::new();
        for q in w.queries() {
            let r = engine.nearest(q, k);
            cpu += r.stats.cpu.as_secs_f64() * 1e3;
            peak = peak.max(r.stats.peak_graph_nodes);
            reads += r.stats.obstacle_reads;
            ids.extend(r.neighbors.iter().map(|(id, _)| *id));
        }
        if let Some(rf) = &reference {
            assert_eq!(rf, &ids, "pruning must not change results");
        } else {
            reference = Some(ids);
        }
        let n = w.scale.queries as f64;
        println!(
            "  {:<34}{:>14.2}{:>14}{:>12.2}",
            name,
            reads as f64 / n,
            peak,
            cpu / n
        );
    }
    println!();
}

fn tangent_filter(w: &Workbench) {
    let entities = w.entity_index(w.scale.entity_count(2.0), 209);
    let e = w.range_from_fraction(grid::DEFAULT_RANGE_FRACTION * 5.0);
    println!("-- OR: tangent visibility-graph filter [PV95] (e scaled x5) --");
    println!("  {:<34}{:>12}{:>12}", "variant", "CPU (ms)", "results");
    for (name, tangent) in [("full graph (paper)", false), ("tangent filter", true)] {
        let opts = EngineOptions {
            tangent_filter: tangent,
            ..Default::default()
        };
        w.reset_io(&[&entities]);
        let engine = QueryEngine::with_options(&entities, &w.obstacles, opts);
        let (mut cpu, mut results) = (0.0f64, 0usize);
        for q in w.queries() {
            let r = engine.range(q, e);
            cpu += r.stats.cpu.as_secs_f64() * 1e3;
            results += r.hits.len();
        }
        println!(
            "  {:<34}{:>12.2}{:>12}",
            name,
            cpu / w.scale.queries as f64,
            results
        );
    }
    println!();
}

fn odj_hilbert_and_seed_side(w: &Workbench) {
    let e = w.range_from_fraction(grid::DEFAULT_JOIN_RANGE_FRACTION * 5.0);
    let s = w.entity_index(w.scale.entity_count(0.5), 201);
    let t = w.entity_index(w.scale.entity_count(grid::T_RATIO), 202);

    println!("-- ODJ: Hilbert seed ordering & seed-side heuristic (e scaled x5) --");
    println!(
        "  {:<34}{:>14}{:>14}{:>12}{:>10}",
        "variant", "obst. reads", "entity reads", "CPU (ms)", "pairs"
    );
    let variants: [(&str, EngineOptions); 4] = [
        ("paper (hilbert + heuristic)", EngineOptions::default()),
        (
            "no hilbert order",
            EngineOptions {
                hilbert_seed_order: false,
                ..Default::default()
            },
        ),
        (
            "no seed-side heuristic",
            EngineOptions {
                seed_side_heuristic: false,
                ..Default::default()
            },
        ),
        (
            "neither",
            EngineOptions {
                hilbert_seed_order: false,
                seed_side_heuristic: false,
                ..Default::default()
            },
        ),
    ];
    let mut reference: Option<usize> = None;
    for (name, opts) in variants {
        w.reset_io(&[&s, &t]);
        let r = distance_join(&s, &t, &w.obstacles, e, opts);
        if let Some(n) = reference {
            assert_eq!(n, r.pairs.len(), "ablations must not change results");
        } else {
            reference = Some(r.pairs.len());
        }
        println!(
            "  {:<34}{:>14}{:>14}{:>12.2}{:>10}",
            name,
            r.stats.obstacle_reads,
            r.stats.entity_reads,
            r.stats.cpu.as_secs_f64() * 1e3,
            r.pairs.len()
        );
    }
    println!();
}

fn onn_reuse_and_threshold(w: &Workbench) {
    let entities = w.entity_index(w.scale.entity_count(1.0), 203);
    let k = grid::DEFAULT_K;
    println!("-- ONN: graph reuse & shrinking threshold (k = {k}) --");
    println!(
        "  {:<34}{:>14}{:>14}{:>12}",
        "variant", "candidates", "obst. reads", "CPU (ms)"
    );
    let variants: [(&str, EngineOptions); 3] = [
        ("paper (reuse + shrink)", EngineOptions::default()),
        (
            "rebuild graph per candidate",
            EngineOptions {
                reuse_graph: false,
                ..Default::default()
            },
        ),
        (
            "fixed threshold (no shrink)",
            EngineOptions {
                shrink_threshold: false,
                ..Default::default()
            },
        ),
    ];
    for (name, opts) in variants {
        w.reset_io(&[&entities]);
        let engine = QueryEngine::with_options(&entities, &w.obstacles, opts);
        let mut cpu = 0.0;
        let mut candidates = 0usize;
        let mut obstacle_reads = 0u64;
        for q in w.queries() {
            let r = engine.nearest(q, k);
            cpu += r.stats.cpu.as_secs_f64() * 1e3;
            candidates += r.stats.candidates;
            obstacle_reads += r.stats.obstacle_reads;
        }
        let n = w.scale.queries as f64;
        println!(
            "  {:<34}{:>14.2}{:>14.2}{:>12.2}",
            name,
            candidates as f64 / n,
            obstacle_reads as f64 / n,
            cpu / n
        );
    }
    println!();
}

fn or_sweep_vs_naive(w: &Workbench) {
    let entities = w.entity_index(w.scale.entity_count(2.0), 204);
    // A larger range makes graphs big enough for the asymptotic gap
    // between O(n log n) and naive edge construction to show.
    let e = w.range_from_fraction(grid::DEFAULT_RANGE_FRACTION * 5.0);
    println!("-- OR: rotational sweep vs naive visibility construction (e scaled x5) --");
    println!("  {:<34}{:>12}{:>14}", "builder", "CPU (ms)", "graph nodes");
    for (name, builder) in [
        ("rotational sweep [SS84]", EdgeBuilder::RotationalSweep),
        ("naive pairwise", EdgeBuilder::Naive),
    ] {
        let opts = EngineOptions {
            builder,
            ..Default::default()
        };
        w.reset_io(&[&entities]);
        let engine = QueryEngine::with_options(&entities, &w.obstacles, opts);
        let mut cpu = 0.0;
        let mut peak = 0usize;
        for q in w.queries() {
            let r = engine.range(q, e);
            cpu += r.stats.cpu.as_secs_f64() * 1e3;
            peak = peak.max(r.stats.peak_graph_nodes);
        }
        println!(
            "  {:<34}{:>12.2}{:>14}",
            name,
            cpu / w.scale.queries as f64,
            peak
        );
    }
    println!();
}

fn loading_strategies(w: &Workbench) {
    // Compare tree quality: pages and range-query I/O for the three
    // construction paths, on a moderate dataset.
    let count = w.scale.entity_count(1.0).min(20_000);
    let items: Vec<Item> = w
        .entity_index(count, 205)
        .live_points()
        .map(|(id, p)| Item::point(p, id))
        .collect();
    println!("-- R-tree loading strategies ({count} points, paper node capacity) --");
    println!(
        "  {:<34}{:>12}{:>12}{:>20}",
        "strategy", "build (ms)", "pages", "range reads/query"
    );
    let universe = w.city.universe;
    type TreeBuilder<'a> = Box<dyn Fn() -> RTree + 'a>;
    let builders: [(&str, TreeBuilder); 3] = [
        (
            "one-by-one R* insertion",
            Box::new(|| RTree::build(RTreeConfig::paper(), items.iter().copied())),
        ),
        (
            "STR bulk load",
            Box::new(|| RTree::bulk_load_str(RTreeConfig::paper(), items.clone())),
        ),
        (
            "Hilbert bulk load",
            Box::new(|| RTree::bulk_load_hilbert(RTreeConfig::paper(), items.clone(), &universe)),
        ),
    ];
    for (name, build) in builders {
        let t0 = Instant::now();
        let tree = build();
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        tree.reset_buffer();
        tree.reset_io_stats();
        let e = w.range_from_fraction(0.01);
        for q in w.queries() {
            let _ = tree.range_circle(q, e);
        }
        let reads = tree.io_stats().reads as f64 / w.scale.queries as f64;
        println!(
            "  {:<34}{:>12.1}{:>12}{:>20.2}",
            name,
            build_ms,
            tree.pages(),
            reads
        );
    }
    println!();
}

fn iocp_vs_ocp(w: &Workbench) {
    let s = w.entity_index(w.scale.entity_count(grid::T_RATIO), 206);
    let t = w.entity_index(w.scale.entity_count(grid::T_RATIO), 207);
    let k = grid::DEFAULT_K;
    println!("-- OCP vs iOCP (k = {k}) --");
    w.reset_io(&[&s, &t]);
    let t0 = Instant::now();
    let batch = closest_pairs(&s, &t, &w.obstacles, k, EngineOptions::default());
    let batch_ms = t0.elapsed().as_secs_f64() * 1e3;
    w.reset_io(&[&s, &t]);
    let t0 = Instant::now();
    let inc: Vec<_> = incremental_closest_pairs(&s, &t, &w.obstacles, EngineOptions::default())
        .take(k)
        .collect();
    let inc_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(batch.pairs.len(), inc.len());
    for (a, b) in batch.pairs.iter().zip(inc.iter()) {
        assert!((a.2 - b.2).abs() < 1e-9, "OCP and iOCP must agree");
    }
    println!(
        "  {:<34}{:>12.2}\n  {:<34}{:>12.2}\n",
        "OCP (batch, known k)", batch_ms, "iOCP (incremental, take k)", inc_ms
    );
}

// Keep a type check that EntityIndex is what the helpers expect.
#[allow(dead_code)]
fn _type_assertions(e: &EntityIndex) {
    let _ = e.len();
}
