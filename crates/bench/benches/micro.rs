//! Micro-benchmarks for the substrates.
//!
//! Covers the hot kernels behind the paper's cost model: visibility-graph
//! construction (the O(n² log n) term dominating OR/ONN CPU), obstructed
//! distance computation, Dijkstra, and the R-tree query operations.
//! Runs on the in-tree [`obstacle_bench::harness`] (the offline
//! replacement for `criterion`).

use obstacle_bench::harness::{BenchmarkId, Criterion};
use obstacle_core::{compute_obstructed_distance, EntityIndex, LocalGraph, ObstacleIndex};
use obstacle_datagen::{sample_entities, City, CityConfig};
use obstacle_geom::Point;
use obstacle_rtree::{Item, RTree, RTreeConfig};
use obstacle_visibility::{bounded_expansion, EdgeBuilder, VisibilityGraph};
use std::hint::black_box;

fn scene(n_obstacles: usize) -> City {
    City::generate(CityConfig::new(n_obstacles, 42))
}

fn bench_graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("visibility_graph_build");
    for &n in &[8usize, 32, 128] {
        let city = scene(n);
        let waypoints: Vec<(Point, u64)> = sample_entities(&city, 8, 1)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        for (name, builder) in [
            ("sweep", EdgeBuilder::RotationalSweep),
            ("naive", EdgeBuilder::Naive),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, n),
                &(&city, &waypoints, builder),
                |b, (city, waypoints, builder)| {
                    b.iter(|| {
                        let (g, _) = VisibilityGraph::build(
                            *builder,
                            city.obstacles
                                .iter()
                                .enumerate()
                                .map(|(i, p)| (p.clone(), i as u64)),
                            waypoints.iter().copied(),
                        );
                        black_box(g.edge_count())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_dijkstra(c: &mut Criterion) {
    let city = scene(64);
    let wps: Vec<(Point, u64)> = sample_entities(&city, 16, 2)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let (g, ids) = VisibilityGraph::build(
        EdgeBuilder::RotationalSweep,
        city.obstacles
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64)),
        wps,
    );
    c.bench_function("dijkstra_bounded_expansion", |b| {
        b.iter(|| black_box(bounded_expansion(&g, ids[0], 0.3).len()))
    });
}

fn bench_obstructed_distance(c: &mut Criterion) {
    let city = scene(512);
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::paper(), city.obstacles.clone());
    let pts = sample_entities(&city, 16, 3);
    c.bench_function("compute_obstructed_distance", |b| {
        b.iter(|| {
            let mut g = LocalGraph::new(EdgeBuilder::RotationalSweep);
            let a = g.add_waypoint(pts[0], 0);
            let z = g.add_waypoint(pts[9], u64::MAX);
            black_box(compute_obstructed_distance(&mut g, a, z, &obstacles))
        })
    });
}

fn bench_rtree_ops(c: &mut Criterion) {
    let city = scene(256);
    let pts = sample_entities(&city, 50_000, 4);
    let items: Vec<Item> = pts
        .iter()
        .enumerate()
        .map(|(i, &p)| Item::point(p, i as u64))
        .collect();

    c.bench_function("rtree_str_bulk_load_50k", |b| {
        b.iter(|| black_box(RTree::bulk_load_str(RTreeConfig::paper(), items.clone()).pages()))
    });

    let tree = RTree::bulk_load_str(RTreeConfig::paper(), items.clone());
    let q = Point::new(0.37, 0.58);
    c.bench_function("rtree_range_circle", |b| {
        b.iter(|| black_box(tree.range_circle(q, 0.05).len()))
    });
    c.bench_function("rtree_k_nearest_16", |b| {
        b.iter(|| black_box(tree.k_nearest(q, 16).len()))
    });

    let entities = EntityIndex::bulk_load(RTreeConfig::paper(), pts[..5_000].to_vec());
    let entities2 = EntityIndex::bulk_load(RTreeConfig::paper(), pts[5_000..10_000].to_vec());
    c.bench_function("rtree_distance_join_5k_x_5k", |b| {
        b.iter(|| {
            black_box(obstacle_rtree::distance_join(entities.tree(), entities2.tree(), 0.001).len())
        })
    });
}

fn bench_insertion(c: &mut Criterion) {
    let city = scene(64);
    let pts = sample_entities(&city, 2_000, 5);
    let items: Vec<Item> = pts
        .iter()
        .enumerate()
        .map(|(i, &p)| Item::point(p, i as u64))
        .collect();
    c.bench_function("rtree_rstar_insert_2k", |b| {
        b.iter(|| {
            let t = RTree::build(RTreeConfig::tiny(32), items.iter().copied());
            black_box(t.pages())
        })
    });
}

fn main() {
    let mut c = Criterion::default().sample_size(10);
    bench_graph_construction(&mut c);
    bench_dijkstra(&mut c);
    bench_obstructed_distance(&mut c);
    bench_rtree_ops(&mut c);
    bench_insertion(&mut c);
}
