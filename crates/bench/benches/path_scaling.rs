//! Long obstructed shortest-path scaling: corner-to-corner routes on
//! growing cities, lazy A* vs the materialized local-graph fixpoint.
//!
//! The corner-to-corner query is the adversarial case for the Fig. 8
//! construction — the search region spans the whole city, so the
//! materialized local graph degenerates into the *global* visibility
//! graph and every absorbed vertex pays a scene-wide sweep. The lazy
//! engine explores the same graph on demand, guided by the Euclidean
//! lower bound and pruned by the `|x−f1| + |x−f2| ≤ d` ellipse, so its
//! cost tracks the corridor the optimal path actually touches.
//!
//! ```sh
//! cargo bench --bench path_scaling               # default scale ladder
//! OBSTACLE_SCALE=tiny cargo bench --bench path_scaling
//! ```

use obstacle_bench::harness::{BenchmarkId, Criterion};
use obstacle_bench::Scale;
use obstacle_core::{shortest_obstructed_path, ObstacleIndex};
use obstacle_datagen::{City, CityConfig};
use obstacle_geom::Point;
use obstacle_rtree::RTreeConfig;
use obstacle_visibility::EdgeBuilder;
use std::hint::black_box;

fn bench_corner_to_corner(c: &mut Criterion, sizes: &[usize]) {
    let mut group = c.benchmark_group("path_corner_to_corner");
    for &n in sizes {
        let city = City::generate(CityConfig::new(n, 0xC17));
        let obstacles = ObstacleIndex::bulk_load(RTreeConfig::paper(), city.obstacles.clone());
        let (a, b) = (Point::new(0.01, 0.01), Point::new(0.99, 0.99));
        group.bench_with_input(
            BenchmarkId::new("lazy_astar", n),
            &obstacles,
            |bench, obstacles| {
                bench.iter(|| {
                    let p = shortest_obstructed_path(a, b, obstacles, EdgeBuilder::RotationalSweep)
                        .expect("corners are connected");
                    black_box(p.distance)
                })
            },
        );
    }
    group.finish();
}

fn bench_cross_town(c: &mut Criterion, n: usize) {
    // Medium-length paths (half the diagonal) at one fixed scale: the
    // common navigation workload, dominated by corridor exploration.
    let city = City::generate(CityConfig::new(n, 0xC17));
    let obstacles = ObstacleIndex::bulk_load(RTreeConfig::paper(), city.obstacles.clone());
    // Endpoints can land inside an obstacle at some scales; nudge them
    // off until both are free so every pair measures a real route.
    let free = |mut p: Point| {
        while city.obstacles.iter().any(|o| o.contains_interior(p)) {
            p = Point::new(p.x + 0.003, p.y + 0.001);
        }
        p
    };
    let pairs = [
        (free(Point::new(0.25, 0.25)), free(Point::new(0.75, 0.75))),
        (free(Point::new(0.1, 0.8)), free(Point::new(0.6, 0.2))),
        (free(Point::new(0.5, 0.05)), free(Point::new(0.5, 0.95))),
    ];
    let mut group = c.benchmark_group("path_cross_town");
    for (i, (a, b)) in pairs.into_iter().enumerate() {
        group.bench_with_input(
            BenchmarkId::new("lazy_astar", i),
            &obstacles,
            |bench, obstacles| {
                bench.iter(|| {
                    let p = shortest_obstructed_path(a, b, obstacles, EdgeBuilder::RotationalSweep)
                        .expect("free points are connected");
                    black_box(p.distance)
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let scale = Scale::from_env();
    // The ladder tops out at the configured |O| (default 16384): each
    // step reports absolute time, so the scaling exponent is visible by
    // inspection across the rows.
    let mut sizes: Vec<usize> = vec![512, 2048, 8192];
    sizes.retain(|&n| n < scale.obstacles);
    sizes.push(scale.obstacles);
    println!(
        "== path_scaling (corner-to-corner ladder up to |O| = {}) ==",
        scale.obstacles
    );
    let mut c = Criterion::default().sample_size(3);
    bench_corner_to_corner(&mut c, &sizes);
    bench_cross_town(&mut c, scale.obstacles.min(8192));
}
