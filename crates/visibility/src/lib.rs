//! Dynamic local visibility graphs and obstructed shortest paths.
//!
//! The paper computes obstructed distances on **local visibility graphs**
//! built on-line from the obstacles (and entities) relevant to a query
//! (§2.4): maintaining the full visibility graph of a real obstacle dataset
//! in memory is infeasible and pre-materialisation breaks under updates.
//!
//! This crate provides:
//!
//! * [`VisibilityGraph`] — nodes are obstacle vertices plus free
//!   *waypoints* (query points and entities); an edge connects two nodes
//!   iff the segment between them crosses no obstacle interior. Supports
//!   the paper's three dynamic operations (`add_obstacle`, `add_waypoint`
//!   a.k.a. *add entity*, `remove_waypoint` a.k.a. *delete entity*)
//!   without rebuilding from scratch (§4).
//! * Two edge builders: a **naive** quadratic checker (the correctness
//!   oracle) and the **rotational plane sweep** of Sharir & Schorr
//!   \[SS84\] used by the paper, O(n log n) per node.
//! * [`dijkstra`] — shortest-path computation on the graph \[D59\]: point
//!   to point, bounded-radius expansion (for obstructed range queries) and
//!   path reconstruction.
//! * [`LazyScene`] — the **lazy** alternative for point-to-point queries:
//!   no edges are ever materialized; A\* guided by the Euclidean lower
//!   bound runs one rotational sweep per *settled* node, on demand.
//!
//! Scenes are **storage-agnostic**: obstacles arrive as polygons, so the
//! same scene (and every cached sweep) serves candidates selected by the
//! paged R*-tree or the packed static tree — the `TreeBackend` choice
//! upstream never changes what a scene computes, only how the candidate
//! set was found (the `backend_equivalence` suite in `obstacle-core`
//! pins the two bit-identical).
//!
//! # Lazy vs. materialized
//!
//! The two representations answer the same queries with the same results;
//! they trade where the visibility work happens:
//!
//! * **[`VisibilityGraph`] (materialized)** pays O(n log n) per node *up
//!   front* (plus an edge re-check per obstacle insertion) and then
//!   answers any number of graph searches at pure Dijkstra cost. Right
//!   for one-source-many-targets workloads — the OR range query's single
//!   bounded expansion (Fig. 5), or repeated queries over a static local
//!   graph.
//! * **[`LazyScene`] (lazy)** registers obstacles with only O(n)
//!   classification bookkeeping and defers every visibility computation
//!   until A\* actually pops the node. Settled nodes are confined to the
//!   ellipse `|x−p| + |x−q| ≤ d_O(p, q)`, so long point-to-point paths
//!   touch a corridor, not the scene — this is what makes
//!   corner-to-corner shortest paths over 10⁴⁺ obstacles feasible (see
//!   `obstacle_core::compute_obstructed_path`). Successor caches are
//!   epoch-invalidated on obstacle insertion, so a growing scene re-pays
//!   sweeps only for nodes it re-settles.
//!
//! Visibility semantics: obstacle **interiors** block sight; boundaries do
//! not. Paths may slide along obstacle edges and pass through touching
//! corners — matching the obstructed-distance definition of the paper.
//!
//! # Example
//!
//! ```
//! use obstacle_geom::{Point, Polygon, Rect};
//! use obstacle_visibility::{dijkstra_distance, EdgeBuilder, VisibilityGraph};
//!
//! // A square blocks the direct line between two waypoints.
//! let square = Polygon::from_rect(Rect::from_coords(1.0, -1.0, 2.0, 1.0));
//! let (graph, wps) = VisibilityGraph::build(
//!     EdgeBuilder::RotationalSweep,
//!     [(square, 0u64)],
//!     [(Point::new(0.0, 0.0), 1), (Point::new(3.0, 0.0), 2)],
//! );
//! let d = dijkstra_distance(&graph, wps[0], wps[1]).unwrap();
//! assert!(d > 3.0); // forced around a corner: 2·√2 + 1 ≈ 3.83
//! assert!((d - (2.0 * 2.0f64.sqrt() + 1.0)).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod astar;
pub mod dijkstra;
mod graph;
mod sweep;

pub use astar::LazyScene;
pub use dijkstra::{bounded_expansion, dijkstra_distance, shortest_path, PathResult};
pub use graph::{EdgeBuilder, NodeId, NodeKind, ObstacleId, VisibilityGraph};
pub use sweep::{
    classify, classify_incremental, visible_set, visible_set_prepared, visible_set_windowed,
    PointClass, VisibleSet, WindowedVisibility,
};
