//! Shortest paths on visibility graphs \[D59\].
//!
//! Three flavours, matching the needs of the paper's query processors:
//!
//! * [`dijkstra_distance`] — point-to-point distance with early
//!   termination at the target (obstructed-distance computation, Fig. 8);
//! * [`bounded_expansion`] — all nodes within a radius, reported in
//!   ascending distance order (the single expansion of the OR algorithm,
//!   Fig. 5);
//! * [`shortest_path`] — distance plus the actual polyline (useful for
//!   applications; the paper only needs distances).

use crate::graph::{NodeId, VisibilityGraph};
use obstacle_geom::Point;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Totally ordered f64 for the heap (distances are finite, non-NaN).
#[derive(Clone, Copy, PartialEq)]
struct D(f64);
impl Eq for D {}
impl PartialOrd for D {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for D {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        obstacle_geom::total_cmp(self.0, other.0)
    }
}

/// A shortest path: total length and the polyline from source to target.
#[derive(Clone, Debug, PartialEq)]
pub struct PathResult {
    /// Total path length (the obstructed distance).
    pub distance: f64,
    /// Waypoints from source to target inclusive.
    pub points: Vec<Point>,
}

/// Shortest-path distance from `from` to `to`; `None` when unreachable in
/// the graph. Terminates as soon as the target is settled.
pub fn dijkstra_distance(graph: &VisibilityGraph, from: NodeId, to: NodeId) -> Option<f64> {
    if from == to {
        return Some(0.0);
    }
    let n = graph.node_slots();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(D, u32)>> = BinaryHeap::new();
    dist[from.0 as usize] = 0.0;
    heap.push(Reverse((D(0.0), from.0)));
    while let Some(Reverse((D(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        if u == to.0 {
            return Some(d);
        }
        for &(v, w) in graph.neighbors(NodeId(u)) {
            let nd = d + w;
            if nd < dist[v.0 as usize] {
                dist[v.0 as usize] = nd;
                heap.push(Reverse((D(nd), v.0)));
            }
        }
    }
    None
}

/// All nodes within distance `radius` of `from`, in ascending distance
/// order (including `from` itself at distance 0).
///
/// This is the core of the paper's OR algorithm (Fig. 5): one Dijkstra
/// expansion from the query point, pruned at the range `e`, reporting
/// entities as they are settled.
pub fn bounded_expansion(graph: &VisibilityGraph, from: NodeId, radius: f64) -> Vec<(NodeId, f64)> {
    let n = graph.node_slots();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = Vec::new();
    let mut heap: BinaryHeap<Reverse<(D, u32)>> = BinaryHeap::new();
    dist[from.0 as usize] = 0.0;
    heap.push(Reverse((D(0.0), from.0)));
    while let Some(Reverse((D(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        settled.push((NodeId(u), d));
        for &(v, w) in graph.neighbors(NodeId(u)) {
            let nd = d + w;
            if nd <= radius && nd < dist[v.0 as usize] {
                dist[v.0 as usize] = nd;
                heap.push(Reverse((D(nd), v.0)));
            }
        }
    }
    settled
}

/// Shortest path (distance and polyline) from `from` to `to`.
pub fn shortest_path(graph: &VisibilityGraph, from: NodeId, to: NodeId) -> Option<PathResult> {
    let n = graph.node_slots();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<u32> = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(D, u32)>> = BinaryHeap::new();
    dist[from.0 as usize] = 0.0;
    heap.push(Reverse((D(0.0), from.0)));
    while let Some(Reverse((D(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        if u == to.0 {
            break;
        }
        for &(v, w) in graph.neighbors(NodeId(u)) {
            let nd = d + w;
            if nd < dist[v.0 as usize] {
                dist[v.0 as usize] = nd;
                pred[v.0 as usize] = u;
                heap.push(Reverse((D(nd), v.0)));
            }
        }
    }
    if dist[to.0 as usize].is_infinite() {
        return None;
    }
    let mut points = vec![graph.position(to)];
    let mut cur = to.0;
    while cur != from.0 {
        cur = pred[cur as usize];
        debug_assert_ne!(cur, u32::MAX);
        points.push(graph.position(NodeId(cur)));
    }
    points.reverse();
    Some(PathResult {
        distance: dist[to.0 as usize],
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeBuilder, VisibilityGraph};
    use obstacle_geom::{Polygon, Rect};

    /// One square obstacle between two waypoints.
    fn blocked_scene() -> (VisibilityGraph, NodeId, NodeId) {
        let square = Polygon::from_rect(Rect::from_coords(1.0, -1.0, 2.0, 1.0));
        let (g, wps) = VisibilityGraph::build(
            EdgeBuilder::Naive,
            [(square, 0u64)],
            [(Point::new(0.0, 0.0), 1), (Point::new(3.0, 0.0), 2)],
        );
        (g, wps[0], wps[1])
    }

    #[test]
    fn detour_around_square() {
        let (g, s, t) = blocked_scene();
        // Direct distance is 3; the detour passes a corner of the square:
        // from (0,0) to (1,1) to (2,1) to (3,0):  √2 + 1 + √2.
        let d = dijkstra_distance(&g, s, t).unwrap();
        let expect = 2.0f64.sqrt() + 1.0 + 2.0f64.sqrt();
        assert!((d - expect).abs() < 1e-9, "{d} vs {expect}");
        assert!(d > g.position(s).dist(g.position(t)));
    }

    #[test]
    fn path_polyline_matches_distance() {
        let (g, s, t) = blocked_scene();
        let p = shortest_path(&g, s, t).unwrap();
        let total: f64 = p.points.windows(2).map(|w| w[0].dist(w[1])).sum();
        assert!((total - p.distance).abs() < 1e-9);
        assert_eq!(p.points.first().copied(), Some(g.position(s)));
        assert_eq!(p.points.last().copied(), Some(g.position(t)));
        assert_eq!(p.points.len(), 4); // source, two corners, target
    }

    #[test]
    fn self_distance_is_zero() {
        let (g, s, _) = blocked_scene();
        assert_eq!(dijkstra_distance(&g, s, s), Some(0.0));
    }

    #[test]
    fn walled_chamber_escapes_along_boundaries() {
        // Four walls with touching (but non-overlapping) interiors form a
        // chamber around (1.5, 1.5). Obstacle *boundaries* are walkable,
        // so a path escapes through the touching corner at (1,1) and
        // slides along the shared wall line — the chamber is not sealed,
        // but the distance is far longer than the Euclidean one.
        let walls = [
            Rect::from_coords(0.0, 0.0, 3.0, 1.0),
            Rect::from_coords(0.0, 2.0, 3.0, 3.0),
            Rect::from_coords(0.0, 1.0, 1.0, 2.0),
            Rect::from_coords(2.0, 1.0, 3.0, 2.0),
        ];
        let (g, wps) = VisibilityGraph::build(
            EdgeBuilder::Naive,
            walls
                .iter()
                .enumerate()
                .map(|(i, r)| (Polygon::from_rect(*r), i as u64)),
            [(Point::new(1.5, 1.5), 0), (Point::new(5.0, 5.0), 1)],
        );
        let d = dijkstra_distance(&g, wps[0], wps[1]).unwrap();
        let euclid = Point::new(1.5, 1.5).dist(Point::new(5.0, 5.0));
        assert!(d > euclid + 0.2, "obstructed {d} vs euclid {euclid}");
    }

    #[test]
    fn entity_inside_an_obstacle_is_unreachable() {
        // An entity strictly inside an obstacle interior gets no edges at
        // all: every sight line to it crosses the interior.
        let square = Polygon::from_rect(Rect::from_coords(1.0, 1.0, 2.0, 2.0));
        let (g, wps) = VisibilityGraph::build(
            EdgeBuilder::Naive,
            [(square, 0u64)],
            [(Point::new(0.0, 0.0), 0), (Point::new(1.5, 1.5), 1)],
        );
        assert_eq!(dijkstra_distance(&g, wps[0], wps[1]), None);
        assert!(shortest_path(&g, wps[0], wps[1]).is_none());
        assert!(g.neighbors(wps[1]).is_empty());
    }

    #[test]
    fn bounded_expansion_is_sorted_and_bounded() {
        let (g, s, _) = blocked_scene();
        let within = bounded_expansion(&g, s, 2.0);
        assert_eq!(within[0], (s, 0.0));
        for w in within.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        for (_, d) in &within {
            assert!(*d <= 2.0 + 1e-12);
        }
        // The far waypoint at obstructed distance ≈ 3.83 is not included.
        assert!(within.iter().all(|(n, _)| g.position(*n).x < 3.0));
    }

    #[test]
    fn bounded_expansion_radius_zero_only_source() {
        let (g, s, _) = blocked_scene();
        let within = bounded_expansion(&g, s, 0.0);
        assert_eq!(within.len(), 1);
        assert_eq!(within[0], (s, 0.0));
    }

    #[test]
    fn dijkstra_equals_euclidean_when_unobstructed() {
        let (g, wps) = VisibilityGraph::build(
            EdgeBuilder::Naive,
            std::iter::empty::<(Polygon, u64)>(),
            [(Point::new(0.0, 0.0), 0), (Point::new(3.0, 4.0), 1)],
        );
        assert_eq!(dijkstra_distance(&g, wps[0], wps[1]), Some(5.0));
    }

    #[test]
    fn heap_key_tolerates_nan_without_panicking() {
        // Regression for the NaN burn-down: a NaN distance key must order
        // deterministically (totalOrder) instead of aborting the search.
        let mut h = std::collections::BinaryHeap::new();
        for v in [f64::NAN, 1.0, 0.5] {
            h.push(std::cmp::Reverse(D(v)));
        }
        assert_eq!(h.pop().unwrap().0 .0, 0.5);
        assert_eq!(h.pop().unwrap().0 .0, 1.0);
        assert!(h.pop().unwrap().0 .0.is_nan());
    }
}
